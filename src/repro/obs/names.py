"""Catalogue of every metric and span name emitted by the pipeline.

All instrumented code imports its names from here instead of spelling
string literals inline. That buys two things:

* one place to read the full observability surface (mirrored, with
  units and emission sites, in ``docs/METRICS.md``), and
* a lintable contract — ``tests/test_docs_lint.py`` fails if a name in
  this catalogue (or a literal that bypasses it) is missing from the
  documentation.

Naming convention: ``<component>.<noun>`` with dots as separators
(sanitised to underscores in the Prometheus exposition). Counters count
events, gauges are levels, spans are histograms of seconds under the
span's own name.
"""

from __future__ import annotations

__all__ = ["ALL_COUNTERS", "ALL_GAUGES", "ALL_SPANS", "ALL_NAMES"]

# -- counters ----------------------------------------------------------
C_STREAMING_FLOWS_INGESTED = "streaming.flows_ingested"
C_STREAMING_BINS_CLOSED = "streaming.bins_closed"
C_STREAMING_VERDICTS_EMITTED = "streaming.verdicts_emitted"
C_STREAMING_DDOS_VERDICTS = "streaming.ddos_verdicts"
C_STREAMING_RETRAININGS = "streaming.retrainings"
C_STREAMING_DRIFT_TRIPS = "streaming.drift_trips"
C_CHECKPOINT_SAVES = "checkpoint.saves"
C_CHECKPOINT_FAILURES = "checkpoint.failures"
C_CHECKPOINT_JOURNAL_APPENDS = "checkpoint.journal_appends"
C_CHECKPOINT_VERDICTS_SUPPRESSED = "checkpoint.verdicts_suppressed"
C_CHECKPOINT_SNAPSHOTS_REJECTED = "checkpoint.snapshots_rejected"
C_CHECKPOINT_RESUMES = "checkpoint.resumes"
C_LABELING_FLOWS_IN = "labeling.flows_in"
C_LABELING_FLOWS_KEPT = "labeling.flows_kept"
C_RULES_TRANSACTIONS = "rules.transactions"
C_RULES_FREQUENT_ITEMSETS = "rules.frequent_itemsets"
C_RULES_GENERATED = "rules.rules_generated"
C_RULES_BLACKHOLE = "rules.blackhole_rules"
C_SCRUBBER_RULES_ACCEPTED = "scrubber.rules_accepted"
C_SCRUBBER_RECORDS_SCORED = "scrubber.records_scored"
C_FEATURES_RECORDS_AGGREGATED = "features.records_aggregated"
C_ENCODING_ROWS_ASSEMBLED = "encoding.rows_assembled"
C_IXP_SAMPLER_FLOWS_IN = "ixp.sampler_flows_in"
C_IXP_SAMPLER_FLOWS_KEPT = "ixp.sampler_flows_kept"
C_DRIFT_MODELS_TRAINED = "drift.models_trained"
C_DRIFT_DAYS_SCORED = "drift.days_scored"
C_MODELS_TREES_BUILT = "models.trees_built"
C_MODELS_KERNEL_COMPILES = "models.kernel_compiles"
C_PARALLEL_FLOWS_DISPATCHED = "parallel.flows_dispatched"
C_PARALLEL_SHARD_FLOWS = "parallel.shard_flows"
C_PARALLEL_MODEL_BROADCASTS = "parallel.model_broadcasts"
C_PARALLEL_BROADCAST_BYTES = "parallel.broadcast_bytes"
C_PARALLEL_BROADCAST_SKIPPED = "parallel.broadcast_skipped"
C_PARALLEL_EQUIVALENCE_CHECKS = "parallel.equivalence_checks"
C_PARALLEL_IPC_RING_BYTES = "parallel.ipc_ring_bytes"
C_PARALLEL_IPC_FALLBACKS = "parallel.ipc_fallbacks"
C_PARALLEL_IPC_SEGMENT_REMAPS = "parallel.ipc_segment_remaps"
C_RESILIENCE_WORKER_RESTARTS = "resilience.worker_restarts"
C_RESILIENCE_BATCH_RETRIES = "resilience.batch_retries"
C_RESILIENCE_BATCHES_QUARANTINED = "resilience.batches_quarantined"
C_RESILIENCE_DEADLINE_MISSES = "resilience.deadline_misses"
C_RESILIENCE_FAULTS_INJECTED = "resilience.faults_injected"
C_SKETCH_FLOWS_ABSORBED = "sketch.flows_absorbed"
C_SKETCH_MERGES = "sketch.merges"
C_SKETCH_RECORDS_BUILT = "sketch.records_built"
C_SCENARIO_RUNS = "scenario.runs"
C_SCENARIO_WORKLOAD_FLOWS = "scenario.workload_flows"
C_SCENARIO_ATTACK_FLOWS = "scenario.attack_flows"
C_SCENARIO_ATTACKS_INJECTED = "scenario.attacks_injected"
C_SCENARIO_CHECKS_FAILED = "scenario.checks_failed"

# -- gauges ------------------------------------------------------------
G_STREAMING_TRAINING_FLOWS = "streaming.training_flows"
G_STREAMING_OPEN_BINS = "streaming.open_bins"
G_STREAMING_PENDING_LABEL_BINS = "streaming.pending_label_bins"
G_STREAMING_DAY_BUFFERS = "streaming.day_buffers"
G_CHECKPOINT_STATE_BYTES = "checkpoint.state_bytes"
G_CHECKPOINT_RESUME_LAG_TICKS = "checkpoint.resume_lag_ticks"
G_LABELING_LAST_REDUCTION = "labeling.last_reduction"
G_MODELS_ENSEMBLE_NODES = "models.ensemble_nodes"
G_PARALLEL_SHARDS = "parallel.shards"
G_PARALLEL_IPC_RING_CAPACITY = "parallel.ipc_ring_capacity_bytes"
G_RESILIENCE_DEGRADED_SHARDS = "resilience.degraded_shards"
G_SKETCH_MEMORY_BYTES = "sketch.memory_bytes"
G_SKETCH_ERROR_BOUND = "sketch.error_bound"
G_SCENARIO_ACTIVE_USERS = "scenario.active_users"

# -- spans (histograms of seconds) -------------------------------------
SPAN_STREAMING_INGEST = "streaming.ingest"
SPAN_STREAMING_CLOSE_BIN = "streaming.close_bin"
SPAN_STREAMING_CLASSIFY_BIN = "streaming.classify_bin"
SPAN_STREAMING_LABEL_BIN = "streaming.label_bin"
SPAN_STREAMING_RETRAIN = "streaming.retrain"
SPAN_CHECKPOINT_SAVE = "checkpoint.save"
SPAN_CHECKPOINT_RESTORE = "checkpoint.restore"
SPAN_SCRUBBER_FIT = "scrubber.fit"
SPAN_SCRUBBER_MINE_RULES = "scrubber.mine_rules"
SPAN_SCRUBBER_SCORE = "scrubber.score"
SPAN_LABELING_BALANCE = "labeling.balance"
SPAN_MODELS_FIT = "models.fit"
SPAN_MODELS_PREDICT = "models.predict"
SPAN_RULES_MINE = "rules.mine"
SPAN_FEATURES_AGGREGATE = "features.aggregate"
SPAN_ENCODING_WOE_FIT = "encoding.woe_fit"
SPAN_ENCODING_ASSEMBLE = "encoding.assemble"
SPAN_IXP_SAMPLE = "ixp.sample"
SPAN_PARALLEL_CLASSIFY = "parallel.classify"
SPAN_PARALLEL_SHARD_CLASSIFY = "parallel.shard_classify"
SPAN_PARALLEL_MERGE = "parallel.merge"
SPAN_RESILIENCE_RESTART = "resilience.restart_worker"
SPAN_DRIFT_ONE_SHOT = "drift.one_shot"
SPAN_DRIFT_SLIDING_WINDOW = "drift.sliding_window"
SPAN_DRIFT_TRANSFER = "drift.transfer"
SPAN_SKETCH_INGEST = "sketch.ingest"
SPAN_SKETCH_MERGE = "sketch.merge"
SPAN_SKETCH_BUILD = "sketch.build_records"
SPAN_SCENARIO_BUILD = "scenario.build"
SPAN_SCENARIO_RUN = "scenario.run"
SPAN_SCENARIO_SCORE = "scenario.score"

ALL_COUNTERS: tuple[str, ...] = tuple(
    v for k, v in sorted(globals().items()) if k.startswith("C_")
)
ALL_GAUGES: tuple[str, ...] = tuple(
    v for k, v in sorted(globals().items()) if k.startswith("G_")
)
ALL_SPANS: tuple[str, ...] = tuple(
    v for k, v in sorted(globals().items()) if k.startswith("SPAN_")
)
ALL_NAMES: tuple[str, ...] = ALL_COUNTERS + ALL_GAUGES + ALL_SPANS
