"""Typed failure modes of the checkpoint/restore subsystem.

Recovery never guesses: every way a snapshot, journal, or resume can go
wrong has its own exception type, and every one of them derives from
:class:`RecoveryError` so callers can catch the family. The contract
the chaos suite enforces is *fail closed*: a damaged artifact produces
one of these errors (or is skipped in favour of an older valid
snapshot) — it never produces silently wrong verdicts.
"""

from __future__ import annotations

__all__ = [
    "RecoveryError",
    "CheckpointWriteError",
    "CorruptSnapshotError",
    "CorruptJournalError",
    "NoCheckpointError",
    "CheckpointConfigError",
    "JournalExistsError",
    "ResumeDivergenceError",
]


class RecoveryError(RuntimeError):
    """Base class for every checkpoint/restore failure."""


class CheckpointWriteError(RecoveryError):
    """Writing a snapshot to disk failed (e.g. the device is full).

    Raised by the checkpoint store when the durable write of a payload
    or manifest fails. The recovery session treats it as survivable:
    the engine keeps streaming on the previous snapshot and the failure
    is counted (``checkpoint.failures``).
    """


class CorruptSnapshotError(RecoveryError):
    """A snapshot payload or manifest failed validation.

    Covers torn payloads (sha256 mismatch against the manifest),
    truncated or non-JSON manifests, and manifests of an unknown format
    version. ``CheckpointStore.latest`` skips corrupt snapshots and
    falls back to the newest valid one.
    """


class CorruptJournalError(RecoveryError):
    """The verdict journal is damaged beyond the torn tail.

    A torn *final* line is expected after a crash (the append was cut
    mid-write) and is truncated away on recovery; a checksum mismatch
    anywhere earlier means the file was tampered with or the disk
    corrupted it, and resuming from it would fabricate history.
    """


class NoCheckpointError(RecoveryError):
    """The checkpoint directory holds no usable snapshot.

    Not necessarily fatal: with an intact journal the recovery session
    falls back to a full replay from the start of the stream — the
    snapshot is an optimisation, not the source of truth.
    """


class CheckpointConfigError(RecoveryError):
    """The snapshot was taken under an incompatible engine configuration.

    Restoring state captured with different engine parameters (window
    length, bin geometry, aggregation mode, sketch parameters, model
    config) would produce a verdict stream that matches neither the old
    run nor a fresh one; the restore refuses instead.
    """


class JournalExistsError(RecoveryError):
    """The checkpoint directory already holds a journal.

    Starting a *fresh* run into a directory with history would
    interleave two verdict streams; pass ``resume=True`` (CLI:
    ``--resume``) to continue the previous run, or point the run at an
    empty directory.
    """


class ResumeDivergenceError(RecoveryError):
    """Replayed verdicts differ from what the journal recorded.

    During resume the ticks between the restored snapshot and the
    journal head are re-ingested and must reproduce the journaled
    verdicts bit for bit. A mismatch means the snapshot, the journal,
    the input stream, or the code changed between incarnations —
    continuing would emit a stream that is provably not the
    uninterrupted one.
    """
