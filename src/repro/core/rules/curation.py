"""Simulated operator curation (paper §5.1.3).

The paper runs a small-scale subjective study: five domain experts
curate 38 mined rules (accept = drop traffic, decline = pass) and the
compiled sets are scored against ground truth. We reproduce the study's
*quantitative harness* with simulated operators: an operator accepts a
rule when its evidence (confidence, support, well-known DDoS port) is
convincing, with a per-subject error rate; curation time per rule is
drawn from a lognormal around ~10 s, matching the reported 6.62 minutes
for 38 rules.

This is a simulation of the human subjects, documented as such in
DESIGN.md — the pipeline around it (rule presentation, set compilation,
coverage scoring) is the real code path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.rules.matcher import coverage
from repro.core.rules.model import RuleSet, RuleStatus, TaggingRule
from repro.netflow.dataset import FlowDataset
from repro.netflow.fields import WELL_KNOWN_DDOS_PORTS

#: Mean curation time per rule in seconds (6.62 min / 38 rules ≈ 10.5 s).
MEAN_SECONDS_PER_RULE = 10.5


@dataclass(frozen=True)
class OperatorProfile:
    """Behavioural parameters of one simulated operator."""

    name: str
    #: Probability of flipping the "correct" decision on a rule.
    error_rate: float = 0.06
    #: Minimum confidence below which the operator declines.
    confidence_threshold: float = 0.9
    #: Extra scepticism against rules with no well-known DDoS port.
    requires_known_port: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_rate <= 0.5:
            raise ValueError("error_rate out of [0, 0.5]")


#: The study cohort: two IXP operators, three non-designing authors.
DEFAULT_COHORT: tuple[OperatorProfile, ...] = (
    OperatorProfile("operator-1", error_rate=0.04, confidence_threshold=0.92),
    OperatorProfile("operator-2", error_rate=0.05, confidence_threshold=0.90),
    OperatorProfile("author-1", error_rate=0.08, confidence_threshold=0.88),
    OperatorProfile("author-2", error_rate=0.07, confidence_threshold=0.90, requires_known_port=True),
    OperatorProfile("author-3", error_rate=0.09, confidence_threshold=0.85),
)


def _rule_has_known_ddos_port(rule: TaggingRule) -> bool:
    if rule.port_src is None or rule.port_src.negated:
        return False
    known = {port for (_, port) in WELL_KNOWN_DDOS_PORTS}
    return bool(rule.port_src.values & known)


def curate(
    rules: RuleSet, operator: OperatorProfile, rng: np.random.Generator
) -> tuple[RuleSet, float]:
    """One operator's pass over a staged rule set.

    Returns the curated set and the simulated curation time in seconds.
    """
    curated = RuleSet(rules)
    seconds = 0.0
    for rule in rules:
        accept = rule.confidence >= operator.confidence_threshold
        if operator.requires_known_port and not _rule_has_known_ddos_port(rule):
            # Sceptical subjects still accept overwhelming evidence.
            accept = accept and rule.confidence >= 0.97
        if rng.random() < operator.error_rate:
            accept = not accept
        curated.set_status(
            rule.rule_id, RuleStatus.ACCEPT if accept else RuleStatus.DECLINE
        )
        seconds += float(
            np.clip(rng.lognormal(np.log(MEAN_SECONDS_PER_RULE), 0.5), 2.0, 60.0)
        )
    return curated, seconds


@dataclass(frozen=True)
class StudyResult:
    """Outcome of the operator study for one subject."""

    operator: str
    attack_dropped: float
    benign_dropped: float
    minutes: float
    n_accepted: int


def run_study(
    rules: RuleSet,
    test_flows: FlowDataset,
    cohort: tuple[OperatorProfile, ...] = DEFAULT_COHORT,
    seed: int = 0,
) -> list[StudyResult]:
    """Run the §5.1.3 study harness over a cohort of subjects.

    ``test_flows`` must carry ground-truth labels (e.g. the self-attack
    set): each subject's accepted rules are scored for the share of
    attack traffic dropped and benign traffic collaterally dropped.
    """
    results = []
    for k, operator in enumerate(cohort):
        rng = np.random.default_rng(np.random.SeedSequence([seed, k]))
        curated, seconds = curate(rules, operator, rng)
        accepted = curated.accepted()
        scores = coverage(accepted, test_flows)
        results.append(
            StudyResult(
                operator=operator.name,
                attack_dropped=scores["attack_dropped"],
                benign_dropped=scores["benign_dropped"],
                minutes=seconds / 60.0,
                n_accepted=len(accepted),
            )
        )
    return results
