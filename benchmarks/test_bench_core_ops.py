"""Micro-benchmarks of the substrate and pipeline hot paths.

Not a paper artifact — these track the throughput of the operations
that dominate experiment wall-clock: workload generation, blackhole
matching, balancing, aggregation, WoE fitting/encoding, GBT training
and prediction, and FP-Growth mining.
"""

import numpy as np
import pytest

from repro.core.encoding.matrix import assemble
from repro.core.encoding.woe import WoEEncoder
from repro.core.features.aggregation import aggregate
from repro.core.labeling.balancer import balance
from repro.core.models.boosting import GradientBoostedTrees
from repro.core.rules.items import ItemEncoder, deduplicate
from repro.core.rules.itemsets import fp_growth
from repro.ixp.fabric import IXPFabric
from repro.ixp.profiles import IXP_SE
from repro.traffic.workload import WorkloadGenerator


@pytest.fixture(scope="module")
def corpus():
    fabric = IXPFabric(IXP_SE)
    capture = WorkloadGenerator(fabric).generate(0, 2)
    labeled = capture.labeled_flows()
    balanced = balance(labeled, np.random.default_rng(0)).flows
    data = aggregate(balanced)
    woe = WoEEncoder().fit(data)
    matrix = assemble(data, woe)
    return capture, labeled, balanced, data, woe, matrix


def test_bench_workload_generation(benchmark):
    fabric = IXPFabric(IXP_SE)

    def generate():
        return WorkloadGenerator(fabric).generate(0, 1)

    capture = benchmark.pedantic(generate, rounds=3, iterations=1)
    assert len(capture.flows) > 1000


def test_bench_blackhole_matching(benchmark, corpus):
    capture, *_ = corpus
    registry = capture.registry()
    mask = benchmark(registry.match_flows, capture.flows, capture.end)
    assert mask.any()


def test_bench_balancing(benchmark, corpus):
    _, labeled, *_ = corpus

    def run():
        return balance(labeled, np.random.default_rng(0))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert abs(result.blackhole_share - 0.5) < 0.1


def test_bench_aggregation(benchmark, corpus):
    _, _, balanced, *_ = corpus
    data = benchmark.pedantic(lambda: aggregate(balanced), rounds=3, iterations=1)
    assert len(data) > 50


def test_bench_woe_fit(benchmark, corpus):
    data = corpus[3]
    woe = benchmark.pedantic(lambda: WoEEncoder().fit(data), rounds=3, iterations=1)
    assert woe.is_fitted


def test_bench_feature_assembly(benchmark, corpus):
    data, woe = corpus[3], corpus[4]
    matrix = benchmark(assemble, data, woe)
    assert matrix.X.shape[1] == 150


def test_bench_gbt_fit(benchmark, corpus):
    matrix = corpus[5]
    X = np.nan_to_num(matrix.X, nan=-1.0)

    def fit():
        return GradientBoostedTrees(n_estimators=10, max_depth=4).fit(X, matrix.y)

    model = benchmark.pedantic(fit, rounds=2, iterations=1)
    assert model.trees_


def test_bench_gbt_predict(benchmark, corpus):
    matrix = corpus[5]
    X = np.nan_to_num(matrix.X, nan=-1.0)
    model = GradientBoostedTrees(n_estimators=10, max_depth=4).fit(X, matrix.y)
    predictions = benchmark(model.predict, X)
    assert predictions.shape == (X.shape[0],)


def test_bench_fp_growth(benchmark, corpus):
    _, _, balanced, *_ = corpus
    encoder = ItemEncoder.fit(balanced)
    transactions = deduplicate(encoder.encode_labeled(balanced))
    itemsets = benchmark(fp_growth, transactions, 0.001)
    assert itemsets


# ---------------------------------------------------------------------------
# Streaming engine throughput: serial vs sharded (repro.core.parallel).


@pytest.fixture(scope="module")
def streaming_setup():
    """A warm-start scrubber + a classification-heavy workload."""
    from tests import strategies
    from repro.core.scrubber import IXPScrubber, ScrubberConfig

    rng = strategies.rng_for(999)
    labeled = strategies.labeled_flows(rng, n_flows=6000, n_targets=12, n_bins=20)
    balanced = balance(labeled, np.random.default_rng(7)).flows
    scrubber = IXPScrubber(
        ScrubberConfig(model="XGB", model_params={"n_estimators": 10})
    ).fit(balanced)
    workload = strategies.labeled_flows(
        strategies.rng_for(5), n_flows=90000, n_targets=128, n_bins=60
    )
    return scrubber, workload


#: Engine kwargs for pure-classification runs (grace never elapses, so
#: no retrain: the benchmark isolates the per-bin classify path).
_STREAM_KWARGS = dict(
    window_days=2,
    bins_per_day=48,
    min_flows_per_verdict=3,
    label_grace_bins=10**6,
    seed=1,
)


def _drive_stream(engine, workload, chunk_bins=8):
    bins = workload.time // 60
    n = 0
    for start in range(int(bins.min()), int(bins.max()) + 1, chunk_bins):
        mask = (bins >= start) & (bins < start + chunk_bins)
        n += len(engine.ingest(workload.select(mask)))
    n += len(engine.flush())
    return n


def _best_stream_time(make_engine, workload, rounds=3):
    import time

    best = float("inf")
    verdicts = 0
    for _ in range(rounds):
        engine = make_engine()
        try:
            start = time.perf_counter()
            verdicts = _drive_stream(engine, workload)
            best = min(best, time.perf_counter() - start)
        finally:
            if hasattr(engine, "close"):
                engine.close()
    return verdicts, best


def test_bench_streaming_serial(benchmark, streaming_setup):
    from repro.core.streaming import StreamingScrubber

    scrubber, workload = streaming_setup

    def run():
        engine = StreamingScrubber(**_STREAM_KWARGS).warm_start(scrubber)
        return _drive_stream(engine, workload)

    n = benchmark.pedantic(run, rounds=2, iterations=1)
    assert n > 1000


def test_bench_streaming_sharded_process(benchmark, streaming_setup):
    from repro.core.parallel import ShardedStreamingScrubber

    scrubber, workload = streaming_setup

    def run():
        with ShardedStreamingScrubber(
            n_shards=4, backend="process", **_STREAM_KWARGS
        ) as engine:
            return _drive_stream(engine.warm_start(scrubber), workload)

    n = benchmark.pedantic(run, rounds=2, iterations=1)
    assert n > 1000


def test_streaming_sharded_speedup_at_4_shards(streaming_setup):
    """The tentpole throughput target: >= 2x at 4 process shards.

    The sharded path wins on batched aggregation + the frozen WoE
    encoder even on one core; worker parallelism stacks on top where
    cores exist. Best-of-2 timing keeps CI noise out of the ratio.
    """
    from repro.core.parallel import ShardedStreamingScrubber
    from repro.core.streaming import StreamingScrubber

    scrubber, workload = streaming_setup
    n_serial, t_serial = _best_stream_time(
        lambda: StreamingScrubber(**_STREAM_KWARGS).warm_start(scrubber),
        workload,
    )
    n_sharded, t_sharded = _best_stream_time(
        lambda: ShardedStreamingScrubber(
            n_shards=4, backend="process", **_STREAM_KWARGS
        ).warm_start(scrubber),
        workload,
    )
    assert n_sharded == n_serial, "sharded run changed the verdict stream"
    speedup = t_serial / t_sharded
    assert speedup >= 2.0, (
        f"4-shard process backend only {speedup:.2f}x faster "
        f"({t_serial:.3f}s serial vs {t_sharded:.3f}s sharded)"
    )
