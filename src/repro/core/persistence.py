"""Model persistence: save/load a fitted IXP Scrubber without pickle.

A deployed scrubber consists of curated tagging rules, the item-encoder
vocabularies, per-domain WoE tables, the fitted numeric transformer
chain, and the classifier. All of it serialises to one JSON document
(arrays as lists — the models are small: a fitted GBT is a few thousand
numbers), so models can be shipped between vantage points, versioned,
and audited — which matters for a system whose selling point is operator
control.

Public API: :func:`save_scrubber`, :func:`load_scrubber`,
:func:`scrubber_to_dict`, :func:`scrubber_from_dict`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional

import numpy as np

from repro.core.encoding.pca import PCA
from repro.core.encoding.transforms import (
    FeatureReducer,
    Imputer,
    MinMaxNormalizer,
    Standardizer,
    Transformer,
)
from repro.core.encoding.woe import WoEEncoder, WoETable
from repro.core.models.base import Classifier
from repro.core.models.baselines import DummyClassifier
from repro.core.models.bayes import BernoulliNB, ComplementNB, GaussianNB, MultinomialNB
from repro.core.models.boosting import GradientBoostedTrees
from repro.core.models.kernels import ForestKernel, TreeKernel
from repro.core.models.linear import LinearSVM
from repro.core.models.nn import NeuralNetwork
from repro.core.models.pipeline import ModelPipeline
from repro.core.models.tree import DecisionTree
from repro.core.rules.items import ItemEncoder
from repro.core.rules.model import RuleSet
from repro.core.rules.serialization import rule_from_dict, rule_to_dict
from repro.core.scrubber import IXPScrubber, ScrubberConfig

#: Format version; bump on breaking layout changes. Version 2 stores
#: tree models as flat kernel arrays instead of nested node objects.
FORMAT_VERSION = 2


def _array(values: Optional[np.ndarray]) -> Any:
    return None if values is None else np.asarray(values).tolist()


def _maybe_array(values: Any, dtype=np.float64) -> Optional[np.ndarray]:
    return None if values is None else np.asarray(values, dtype=dtype)


# ----------------------------------------------------------------------
# WoE / item encoders
# ----------------------------------------------------------------------
def _woe_to_dict(woe: WoEEncoder) -> dict[str, Any]:
    return {
        "min_count": woe.min_count,
        "fitted": woe.is_fitted,
        "tables": {
            domain: {str(value): score for value, score in table.mapping.items()}
            for domain, table in woe.tables.items()
        },
    }


def _woe_from_dict(data: dict[str, Any]) -> WoEEncoder:
    woe = WoEEncoder(min_count=int(data["min_count"]))
    for domain, mapping in data["tables"].items():
        woe.tables[domain] = WoETable(
            domain=domain,
            mapping={int(value): float(score) for value, score in mapping.items()},
        )
    woe._fitted = bool(data["fitted"])
    return woe


def _item_encoder_to_dict(encoder: Optional[ItemEncoder]) -> Optional[dict[str, Any]]:
    if encoder is None:
        return None
    return {
        "src_ports": sorted(encoder.src_ports),
        "dst_ports": sorted(encoder.dst_ports),
    }


def _item_encoder_from_dict(data: Optional[dict[str, Any]]) -> Optional[ItemEncoder]:
    if data is None:
        return None
    return ItemEncoder(
        src_ports=frozenset(int(p) for p in data["src_ports"]),
        dst_ports=frozenset(int(p) for p in data["dst_ports"]),
    )


# ----------------------------------------------------------------------
# Transformers
# ----------------------------------------------------------------------
def _transformer_to_dict(transformer: Transformer) -> dict[str, Any]:
    if isinstance(transformer, Imputer):
        return {"kind": "imputer", "fill_value": transformer.fill_value}
    if isinstance(transformer, FeatureReducer):
        return {
            "kind": "feature_reducer",
            "threshold": transformer.threshold,
            "keep": _array(transformer.keep_),
        }
    if isinstance(transformer, Standardizer):
        return {
            "kind": "standardizer",
            "mean": _array(transformer.mean_),
            "scale": _array(transformer.scale_),
        }
    if isinstance(transformer, MinMaxNormalizer):
        return {
            "kind": "minmax",
            "min": _array(transformer.min_),
            "range": _array(transformer.range_),
        }
    if isinstance(transformer, PCA):
        return {
            "kind": "pca",
            "n_components": transformer.n_components,
            "mean": _array(transformer.mean_),
            "components": _array(transformer.components_),
            "explained_variance_ratio": _array(transformer.explained_variance_ratio_),
        }
    raise TypeError(f"cannot serialise transformer {type(transformer).__name__}")


def _transformer_from_dict(data: dict[str, Any]) -> Transformer:
    kind = data["kind"]
    if kind == "imputer":
        return Imputer(fill_value=float(data["fill_value"]))
    if kind == "feature_reducer":
        reducer = FeatureReducer(threshold=float(data["threshold"]))
        keep = _maybe_array(data["keep"], dtype=bool)
        reducer.keep_ = keep
        return reducer
    if kind == "standardizer":
        standardizer = Standardizer()
        standardizer.mean_ = _maybe_array(data["mean"])
        standardizer.scale_ = _maybe_array(data["scale"])
        return standardizer
    if kind == "minmax":
        normalizer = MinMaxNormalizer()
        normalizer.min_ = _maybe_array(data["min"])
        normalizer.range_ = _maybe_array(data["range"])
        return normalizer
    if kind == "pca":
        pca = PCA(n_components=int(data["n_components"]))
        pca.mean_ = _maybe_array(data["mean"])
        pca.components_ = _maybe_array(data["components"])
        pca.explained_variance_ratio_ = _maybe_array(data["explained_variance_ratio"])
        return pca
    raise ValueError(f"unknown transformer kind {kind!r}")


# ----------------------------------------------------------------------
# Tree structures (format v2: flat kernel arrays, no nested nodes)
# ----------------------------------------------------------------------
def _forest_to_dict(forest: Optional[ForestKernel]) -> Optional[dict[str, Any]]:
    if forest is None:
        return None
    return {
        "feature": _array(forest.feature),
        "threshold": _array(forest.threshold),
        "split_bin": _array(forest.split_bin),
        "left": _array(forest.left),
        "right": _array(forest.right),
        "value": _array(forest.value),
        "offsets": _array(forest.offsets),
    }


def _forest_from_dict(data: Optional[dict[str, Any]]) -> Optional[ForestKernel]:
    if data is None:
        return None
    return ForestKernel(
        feature=np.asarray(data["feature"], dtype=np.int32),
        threshold=np.asarray(data["threshold"], dtype=np.float64),
        split_bin=np.asarray(data["split_bin"], dtype=np.int32),
        left=np.asarray(data["left"], dtype=np.int32),
        right=np.asarray(data["right"], dtype=np.int32),
        value=np.asarray(data["value"], dtype=np.float64),
        offsets=np.asarray(data["offsets"], dtype=np.int64),
    )


def _tree_kernel_to_dict(kernel: Optional[TreeKernel]) -> Optional[dict[str, Any]]:
    if kernel is None:
        return None
    return {
        "feature": _array(kernel.feature),
        "threshold": _array(kernel.threshold),
        "split_bin": _array(kernel.split_bin),
        "left": _array(kernel.left),
        "right": _array(kernel.right),
        "value": _array(kernel.value),
        "n": _array(kernel.n),
        "impurity": _array(kernel.impurity),
    }


def _tree_kernel_from_dict(data: Optional[dict[str, Any]]) -> Optional[TreeKernel]:
    if data is None:
        return None
    return TreeKernel(
        feature=np.asarray(data["feature"], dtype=np.int32),
        threshold=np.asarray(data["threshold"], dtype=np.float64),
        split_bin=np.asarray(data["split_bin"], dtype=np.int32),
        left=np.asarray(data["left"], dtype=np.int32),
        right=np.asarray(data["right"], dtype=np.int32),
        value=np.asarray(data["value"], dtype=np.float64),
        n=_maybe_array(data["n"], dtype=np.int64),
        impurity=_maybe_array(data["impurity"]),
    )


# ----------------------------------------------------------------------
# Classifiers
# ----------------------------------------------------------------------
def _classifier_to_dict(classifier: Classifier) -> dict[str, Any]:
    if isinstance(classifier, GradientBoostedTrees):
        return {
            "kind": "gbt",
            "params": classifier.get_params(),
            "min_child_weight": classifier.min_child_weight,
            "base_score": classifier.base_score_,
            "forest": _forest_to_dict(classifier.forest_),
            "feature_gain": _array(classifier.feature_gain_),
            "feature_splits": _array(classifier.feature_splits_),
        }
    if isinstance(classifier, DecisionTree):
        return {
            "kind": "cart",
            "params": classifier.get_params(),
            "n_train": classifier._n_train,
            "tree": _tree_kernel_to_dict(classifier.kernel_),
        }
    if isinstance(classifier, LinearSVM):
        return {
            "kind": "lsvm",
            "params": classifier.get_params(),
            "coef": _array(classifier.coef_),
            "intercept": classifier.intercept_,
        }
    if isinstance(classifier, NeuralNetwork):
        params = None
        if classifier._params is not None:
            params = {k: _array(v) for k, v in classifier._params.items()}
        return {
            "kind": "nn",
            "params": classifier.get_params(),
            "batch_size": classifier.batch_size,
            "seed": classifier.seed,
            "weights": params,
        }
    if isinstance(classifier, GaussianNB):
        return {
            "kind": "nb-g",
            "params": classifier.get_params(),
            "theta": _array(classifier.theta_),
            "var": _array(classifier.var_),
            "class_log_prior": _array(classifier.class_log_prior_),
        }
    if isinstance(classifier, (MultinomialNB, ComplementNB, BernoulliNB)):
        kind = {"NB-M": "nb-m", "NB-C": "nb-c", "NB-B": "nb-b"}[classifier.name]
        out = {
            "kind": kind,
            "params": classifier.get_params(),
            "feature_log_prob": _array(classifier.feature_log_prob_),
            "class_log_prior": _array(classifier.class_log_prior_),
        }
        if isinstance(classifier, BernoulliNB):
            out["class_count"] = _array(classifier.class_count_)
        return out
    if isinstance(classifier, DummyClassifier):
        return {"kind": "dummy", "params": classifier.get_params(), "fitted": classifier._fitted}
    raise TypeError(f"cannot serialise classifier {type(classifier).__name__}")


def _classifier_from_dict(data: dict[str, Any]) -> Classifier:
    kind = data["kind"]
    if kind == "gbt":
        params = dict(data["params"])
        model = GradientBoostedTrees(
            min_child_weight=float(data["min_child_weight"]), **params
        )
        model.base_score_ = float(data["base_score"])
        model.forest_ = _forest_from_dict(data["forest"])
        model.feature_gain_ = _maybe_array(data["feature_gain"])
        model.feature_splits_ = _maybe_array(data["feature_splits"], dtype=np.int64)
        return model
    if kind == "cart":
        model = DecisionTree(**data["params"])
        model._n_train = int(data["n_train"])
        model.kernel_ = _tree_kernel_from_dict(data["tree"])
        return model
    if kind == "lsvm":
        model = LinearSVM(**data["params"])
        model.coef_ = _maybe_array(data["coef"])
        model.intercept_ = float(data["intercept"])
        return model
    if kind == "nn":
        model = NeuralNetwork(
            batch_size=int(data["batch_size"]), seed=int(data["seed"]), **data["params"]
        )
        if data["weights"] is not None:
            model._params = {k: np.asarray(v) for k, v in data["weights"].items()}
        return model
    if kind == "nb-g":
        model = GaussianNB(**data["params"])
        model.theta_ = _maybe_array(data["theta"])
        model.var_ = _maybe_array(data["var"])
        model.class_log_prior_ = _maybe_array(data["class_log_prior"])
        return model
    if kind in ("nb-m", "nb-c", "nb-b"):
        cls = {"nb-m": MultinomialNB, "nb-c": ComplementNB, "nb-b": BernoulliNB}[kind]
        model = cls(**data["params"])
        model.feature_log_prob_ = _maybe_array(data["feature_log_prob"])
        model.class_log_prior_ = _maybe_array(data["class_log_prior"])
        if kind == "nb-b":
            model.class_count_ = _maybe_array(data["class_count"])
        return model
    if kind == "dummy":
        model = DummyClassifier(**data["params"])
        model._fitted = bool(data["fitted"])
        return model
    raise ValueError(f"unknown classifier kind {kind!r}")


# ----------------------------------------------------------------------
# Whole scrubbers
# ----------------------------------------------------------------------
def scrubber_to_dict(scrubber: IXPScrubber) -> dict[str, Any]:
    """Serialise a (fitted or unfitted) scrubber to a JSON-safe dict."""
    config = scrubber.config
    pipeline = None
    if scrubber.pipeline is not None:
        pipeline = {
            "transformers": [
                _transformer_to_dict(t) for t in scrubber.pipeline.transformers
            ],
            "classifier": _classifier_to_dict(scrubber.pipeline.classifier),
        }
    return {
        "format_version": FORMAT_VERSION,
        "config": {
            "model": config.model,
            "model_params": config.model_params,
            "min_support": config.min_support,
            "min_confidence": config.min_confidence,
            "confidence_loss": config.confidence_loss,
            "support_loss": config.support_loss,
            "auto_accept_rules": config.auto_accept_rules,
            "bin_seconds": config.bin_seconds,
        },
        "rules": [rule_to_dict(r) for r in scrubber.rule_set],
        "item_encoder": _item_encoder_to_dict(scrubber.item_encoder),
        "woe": _woe_to_dict(scrubber.woe),
        "pipeline": pipeline,
    }


def scrubber_from_dict(data: dict[str, Any]) -> IXPScrubber:
    """Rebuild a scrubber from :func:`scrubber_to_dict` output."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported scrubber format version: {version}")
    raw_config = data["config"]
    config = ScrubberConfig(
        model=raw_config["model"],
        model_params=dict(raw_config["model_params"]),
        min_support=float(raw_config["min_support"]),
        min_confidence=float(raw_config["min_confidence"]),
        confidence_loss=float(raw_config["confidence_loss"]),
        support_loss=float(raw_config["support_loss"]),
        auto_accept_rules=bool(raw_config["auto_accept_rules"]),
        bin_seconds=int(raw_config["bin_seconds"]),
    )
    scrubber = IXPScrubber(config)
    scrubber.rule_set = RuleSet(rule_from_dict(r) for r in data["rules"])
    scrubber.item_encoder = _item_encoder_from_dict(data["item_encoder"])
    scrubber.woe = _woe_from_dict(data["woe"])
    if data["pipeline"] is not None:
        transformers = [
            _transformer_from_dict(t) for t in data["pipeline"]["transformers"]
        ]
        classifier = _classifier_from_dict(data["pipeline"]["classifier"])
        scrubber.pipeline = ModelPipeline(transformers, classifier)
    return scrubber


def save_scrubber(scrubber: IXPScrubber, path: str | Path) -> None:
    """Write a scrubber to a JSON file (atomically and durably).

    Model files are recovery-critical — a checkpointed engine may be
    the only holder of the current model — so the write goes through
    the temp + fsync + rename idiom of :mod:`repro.core.recovery`
    rather than a bare ``write_text`` a crash could tear.
    """
    from repro.core.recovery.durable import durable_write

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = (json.dumps(scrubber_to_dict(scrubber)) + "\n").encode("utf-8")
    durable_write(path, payload)


def load_scrubber(path: str | Path) -> IXPScrubber:
    """Read a scrubber previously written by :func:`save_scrubber`."""
    return scrubber_from_dict(json.loads(Path(path).read_text()))
