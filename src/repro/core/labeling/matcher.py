"""Deriving flow labels from the BGP blackhole feed.

Thin convenience layer over
:meth:`repro.bgp.blackhole.BlackholeRegistry.label_flows`: takes a raw
:class:`~repro.traffic.workload.WorkloadCapture` and returns its flows
with the crowdsourced ``blackhole`` label set.
"""

from __future__ import annotations

from repro.netflow.dataset import FlowDataset
from repro.traffic.workload import WorkloadCapture


def label_capture(capture: WorkloadCapture) -> FlowDataset:
    """Label a capture's flows from its own BGP feed.

    A flow is labeled ``blackhole=True`` when its destination address was
    covered by an active blackhole announcement at the flow timestamp.
    This is the paper's "crowdsourced labeling": the label is *unwanted
    by the receiving network*, not *verified attack* — downstream steps
    (balancing, rule tagging) deal with the label noise.
    """
    return capture.labeled_flows()
