"""Tests for FP-Growth, cross-checked against brute-force Apriori."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rules.itemsets import fp_growth, total_weight


def brute_force(transactions, min_support):
    """Enumerate all frequent itemsets naively."""
    total = sum(w for _, w in transactions)
    min_count = max(1, int(min_support * total + 0.5))
    items = sorted({i for t, _ in transactions for i in t})
    out = {}
    for size in range(1, len(items) + 1):
        for combo in itertools.combinations(items, size):
            combo_set = frozenset(combo)
            support = sum(w for t, w in transactions if combo_set <= set(t))
            if support >= min_count:
                out[combo_set] = support
    return out


class TestFpGrowth:
    def test_single_transaction(self):
        result = fp_growth([(("a", "b"), 1)], min_support=0.5)
        assert result == {
            frozenset({"a"}): 1,
            frozenset({"b"}): 1,
            frozenset({"a", "b"}): 1,
        }

    def test_support_threshold(self):
        transactions = [(("a",), 9), (("b",), 1)]
        result = fp_growth(transactions, min_support=0.5)
        assert frozenset({"a"}) in result
        assert frozenset({"b"}) not in result

    def test_weighted_counts(self):
        transactions = [(("a", "b"), 3), (("a",), 2)]
        result = fp_growth(transactions, min_support=0.1)
        assert result[frozenset({"a"})] == 5
        assert result[frozenset({"a", "b"})] == 3

    def test_max_len(self):
        result = fp_growth([(("a", "b", "c"), 5)], min_support=0.1, max_len=2)
        assert all(len(s) <= 2 for s in result)

    def test_empty_transactions(self):
        assert fp_growth([], min_support=0.5) == {}

    def test_invalid_support(self):
        with pytest.raises(ValueError):
            fp_growth([(("a",), 1)], min_support=0.0)

    def test_total_weight(self):
        assert total_weight([(("a",), 3), (("b",), 4)]) == 7

    def test_known_example(self):
        """Classic market-basket example."""
        baskets = [
            ("milk", "bread"),
            ("milk", "bread", "eggs"),
            ("bread", "eggs"),
            ("milk", "eggs"),
            ("milk", "bread", "eggs"),
        ]
        result = fp_growth([(b, 1) for b in baskets], min_support=0.6)
        assert result[frozenset({"milk"})] == 4
        assert result[frozenset({"bread"})] == 4
        assert result[frozenset({"milk", "bread"})] == 3


@settings(max_examples=40, deadline=None)
@given(
    transactions=st.lists(
        st.tuples(
            st.lists(
                st.sampled_from(["a", "b", "c", "d", "e"]),
                min_size=1,
                max_size=4,
                unique=True,
            ).map(tuple),
            st.integers(min_value=1, max_value=5),
        ),
        min_size=1,
        max_size=12,
    ),
    min_support=st.sampled_from([0.1, 0.3, 0.5, 0.8]),
)
def test_fp_growth_matches_brute_force(transactions, min_support):
    expected = brute_force(transactions, min_support)
    actual = fp_growth(transactions, min_support=min_support)
    assert actual == expected
