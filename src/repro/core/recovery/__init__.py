"""Crash-safe checkpointing and exact resume for the streaming engine.

The subsystem (see ``docs/RECOVERY.md``) has four small parts:

* :mod:`~repro.core.recovery.durable` — the single sanctioned
  temp + fsync + rename write idiom (lint rules RS501/RS502 enforce
  that recovery/persistence paths go through it);
* :mod:`~repro.core.recovery.state_codec` — bitwise-faithful JSON
  capture/restore of engine state (no pickle on disk);
* :mod:`~repro.core.recovery.journal` /
  :mod:`~repro.core.recovery.snapshot` — the append-only verdict
  journal (source of truth) and the sha256-manifested snapshot store
  (replay shortcut), both crash-atomic;
* :mod:`~repro.core.recovery.session` — :class:`RecoverySession`, the
  driver-side glue that makes the concatenated verdict stream of any
  crash/resume sequence bit-identical to an uninterrupted run.

Errors and the durable writer import eagerly (persistence depends on
them); everything else loads lazily to keep the
persistence ↔ recovery dependency a one-way street at import time.
"""

from __future__ import annotations

from repro.core.recovery.durable import durable_write, fsync_dir
from repro.core.recovery.errors import (
    CheckpointConfigError,
    CheckpointWriteError,
    CorruptJournalError,
    CorruptSnapshotError,
    JournalExistsError,
    NoCheckpointError,
    RecoveryError,
    ResumeDivergenceError,
)

__all__ = [
    "RecoveryError",
    "CheckpointWriteError",
    "CorruptSnapshotError",
    "CorruptJournalError",
    "NoCheckpointError",
    "CheckpointConfigError",
    "JournalExistsError",
    "ResumeDivergenceError",
    "durable_write",
    "fsync_dir",
    "CheckpointStore",
    "DiskFaultInjector",
    "CRASH_EXIT_CODE",
    "VerdictJournal",
    "RecoverySession",
    "iter_chunks",
    "drive_engine",
    "capture_engine_state",
    "restore_engine_state",
    "capture_sharded_state",
    "restore_sharded_state",
    "encode_value",
    "decode_value",
]

_LAZY = {
    "CheckpointStore": "repro.core.recovery.snapshot",
    "DiskFaultInjector": "repro.core.recovery.snapshot",
    "CRASH_EXIT_CODE": "repro.core.recovery.snapshot",
    "VerdictJournal": "repro.core.recovery.journal",
    "RecoverySession": "repro.core.recovery.session",
    "iter_chunks": "repro.core.recovery.session",
    "drive_engine": "repro.core.recovery.session",
    "capture_engine_state": "repro.core.recovery.state_codec",
    "restore_engine_state": "repro.core.recovery.state_codec",
    "capture_sharded_state": "repro.core.recovery.state_codec",
    "restore_sharded_state": "repro.core.recovery.state_codec",
    "encode_value": "repro.core.recovery.state_codec",
    "decode_value": "repro.core.recovery.state_codec",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(name)
    import importlib

    return getattr(importlib.import_module(module_name), name)
