"""Flat-array tree kernels: compiled forest inference and histogram growing.

Fitted trees in this repository used to live as Python object graphs
(``_Node`` / ``_BoostNode``) walked node-by-node with recursive
``_apply`` calls — O(nodes) Python frames per batch. This module is the
struct-of-arrays replacement, the layout histogram GBDT implementations
(XGBoost [23], LightGBM) use for speed:

* :class:`TreeKernel` — one tree as parallel arrays ``feature[]``,
  ``threshold[]``/``split_bin[]``, ``left[]``, ``right[]``, ``value[]``
  (plus ``n[]``/``impurity[]`` for CART trees, so the node graph is
  fully reconstructible). Prediction is iterative node-index
  propagation: O(depth) vectorised numpy ops per batch, no recursion.
* :class:`ForestKernel` — an ensemble as the same arrays stacked with a
  per-tree ``offsets`` table. Stacking renumbers every tree level-order
  so each split's children are adjacent (``right == left + 1``) and
  makes leaves self-loop with a ``+inf`` routing threshold; propagation
  then needs no masking and no ``right`` gather — a fixed ``max_depth``
  iterations of ``node = left[node] + (x > threshold[node])`` settle
  every sample in every tree simultaneously through one
  (samples × trees) node-state matrix, processed in row blocks sized to
  stay cache-resident. The margin is accumulated tree-by-tree in
  ensemble order afterwards, so results stay bit-identical to the
  sequential recursive reference.
* :class:`HistogramScratch` — the shared histogram machinery of the
  training hot paths: per-(node, feature, bin) histograms from the
  *transposed* bin-code matrix (one contiguous ``bincount`` per
  feature, accumulating rows in ascending order exactly like the
  original per-node scan), staged once per fit and reused across every
  node, level and boosting round. Sibling histograms are derived by
  subtraction (``child = parent − other child``), so only the smaller
  child of every split is ever scanned.
* :func:`reference_cart_values` / :func:`reference_forest_margin` — the
  recursive traversals kept as the *verification oracle*: the property
  suite asserts the compiled kernels reproduce them bit-for-bit, and
  the model-kernel benchmark uses them as the pre-compilation baseline.

Compiled kernels are also the wire format: pickling a fitted tree model
ships these compact arrays (a few contiguous numpy buffers) instead of
thousands of node objects, which is what the sharded engine's model
re-broadcast sends to workers, and what ``persistence.py`` serialises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.models.boosting import _BoostNode
    from repro.core.models.tree import _Node

__all__ = [
    "TreeKernel",
    "ForestKernel",
    "HistogramScratch",
    "reference_cart_values",
    "reference_forest_margin",
]

#: Sentinel in ``feature[]`` / ``split_bin[]`` marking a leaf node.
LEAF = -1

#: Rows per propagation block: temporaries stay ~MBs so the node-state
#: matrix and gather targets remain cache-resident.
_BLOCK_ROWS = 4096


# ----------------------------------------------------------------------
# Flat tree / forest containers
# ----------------------------------------------------------------------
@dataclass
class TreeKernel:
    """One decision tree as parallel flat arrays (node 0 is the root).

    ``feature[i] == LEAF`` marks node *i* as a leaf; ``value[i]`` is its
    output (P(y=1) for CART, the additive leaf weight for boosting).
    Internal nodes route ``x[feature] <= threshold`` to ``left`` and the
    rest to ``right``; ``split_bin`` carries the equivalent binned-code
    threshold (``bin <= split_bin``) when the tree was grown on binned
    data, or ``LEAF`` when unknown (e.g. compiled from a node graph).
    Children always carry larger indices than their parent.
    """

    feature: np.ndarray  # int32, LEAF for leaves
    threshold: np.ndarray  # float64 raw-value threshold
    split_bin: np.ndarray  # int32 binned-code threshold, LEAF if unknown
    left: np.ndarray  # int32 child index, LEAF for leaves
    right: np.ndarray  # int32 child index, LEAF for leaves
    value: np.ndarray  # float64 node output
    #: CART bookkeeping (None for boosting trees): per-node sample count
    #: and gini impurity, enough to rebuild the full ``_Node`` graph.
    n: Optional[np.ndarray] = None
    impurity: Optional[np.ndarray] = None

    @property
    def n_nodes(self) -> int:
        return int(self.feature.shape[0])

    @property
    def n_leaves(self) -> int:
        return int((self.feature == LEAF).sum())

    def max_depth(self) -> int:
        """Depth of the deepest leaf (root = depth 0)."""
        depth = np.zeros(self.n_nodes, dtype=np.int32)
        internal = np.flatnonzero(self.feature != LEAF)
        # Children always carry larger indices than their parent, so one
        # ascending pass settles every node's depth.
        for i in internal:
            depth[self.left[i]] = depth[i] + 1
            depth[self.right[i]] = depth[i] + 1
        return int(depth.max()) if self.n_nodes else 0

    # ------------------------------------------------------------------
    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf value per row of ``X`` via iterative index propagation."""
        X = np.asarray(X, dtype=np.float64)
        n = X.shape[0]
        if n == 0:
            return np.zeros(0, dtype=np.float64)
        # Same leaf trick as the forest path: +inf thresholds make every
        # leaf comparison False, and a self-loop keeps the index put.
        thr = np.where(self.feature == LEAF, np.inf, self.threshold)
        own = np.arange(self.n_nodes, dtype=np.int32)
        is_leaf = self.feature == LEAF
        left = np.where(is_leaf, own, self.left).astype(np.int32)
        step = np.where(is_leaf, own, self.right).astype(np.int32) - left
        Xf = X.ravel()
        n_features = X.shape[1]
        value = self.value
        depth = self.max_depth()
        out = np.empty(n, dtype=np.float64)
        for lo in range(0, n, _BLOCK_ROWS):
            hi = min(n, lo + _BLOCK_ROWS)
            node = np.zeros(hi - lo, dtype=np.int32)
            base = np.arange(lo, hi, dtype=np.int64) * n_features
            for _ in range(depth):
                feat = self.feature.take(node)
                xv = Xf.take(base + feat)
                node = left.take(node) + step.take(node) * (xv > thr.take(node))
            out[lo:hi] = value.take(node)
        return out

    # ------------------------------------------------------------------
    @classmethod
    def from_cart_root(cls, root: "_Node") -> "TreeKernel":
        """Flatten a fitted CART node graph (preorder numbering)."""
        feature, threshold, split_bin = [], [], []
        left, right, value, n, impurity = [], [], [], [], []

        def visit(node: "_Node") -> int:
            idx = len(feature)
            is_leaf = node.is_leaf
            feature.append(LEAF if is_leaf else int(node.feature))
            threshold.append(0.0 if is_leaf else float(node.threshold))
            split_bin.append(LEAF)
            left.append(LEAF)
            right.append(LEAF)
            value.append(float(node.value))
            n.append(int(node.n))
            impurity.append(float(node.impurity))
            if not is_leaf:
                left[idx] = visit(node.left)
                right[idx] = visit(node.right)
            return idx

        visit(root)
        return cls(
            feature=np.asarray(feature, dtype=np.int32),
            threshold=np.asarray(threshold, dtype=np.float64),
            split_bin=np.asarray(split_bin, dtype=np.int32),
            left=np.asarray(left, dtype=np.int32),
            right=np.asarray(right, dtype=np.int32),
            value=np.asarray(value, dtype=np.float64),
            n=np.asarray(n, dtype=np.int64),
            impurity=np.asarray(impurity, dtype=np.float64),
        )

    def to_cart_nodes(self) -> "_Node":
        """Rebuild the ``_Node`` graph (for pruning walks and tooling)."""
        from repro.core.models.tree import _Node

        if self.n is None or self.impurity is None:
            raise ValueError("kernel carries no CART node statistics")

        def build(idx: int) -> "_Node":
            node = _Node(
                n=int(self.n[idx]),
                value=float(self.value[idx]),
                impurity=float(self.impurity[idx]),
            )
            if self.feature[idx] != LEAF:
                node.feature = int(self.feature[idx])
                node.threshold = float(self.threshold[idx])
                node.left = build(int(self.left[idx]))
                node.right = build(int(self.right[idx]))
            return node

        return build(0)

    @classmethod
    def from_boost_node(cls, root: "_BoostNode") -> "TreeKernel":
        """Flatten one boosting tree's node graph."""
        feature, threshold, split_bin = [], [], []
        left, right, value = [], [], []

        def visit(node: "_BoostNode") -> int:
            idx = len(feature)
            is_leaf = node.is_leaf
            feature.append(LEAF if is_leaf else int(node.feature))
            threshold.append(0.0 if is_leaf else float(node.threshold))
            split_bin.append(LEAF)
            left.append(LEAF)
            right.append(LEAF)
            value.append(float(node.weight))
            if not is_leaf:
                left[idx] = visit(node.left)
                right[idx] = visit(node.right)
            return idx

        visit(root)
        return cls(
            feature=np.asarray(feature, dtype=np.int32),
            threshold=np.asarray(threshold, dtype=np.float64),
            split_bin=np.asarray(split_bin, dtype=np.int32),
            left=np.asarray(left, dtype=np.int32),
            right=np.asarray(right, dtype=np.int32),
            value=np.asarray(value, dtype=np.float64),
        )

    def to_boost_node(self) -> "_BoostNode":
        """Rebuild the ``_BoostNode`` graph of one boosting tree."""
        from repro.core.models.boosting import _BoostNode

        def build(idx: int) -> "_BoostNode":
            node = _BoostNode(weight=float(self.value[idx]))
            if self.feature[idx] != LEAF:
                node.feature = int(self.feature[idx])
                node.threshold = float(self.threshold[idx])
                node.left = build(int(self.left[idx]))
                node.right = build(int(self.right[idx]))
            return node

        return build(0)

    def level_order(self) -> "TreeKernel":
        """Renumber nodes breadth-first so split children are adjacent.

        Level order guarantees ``right == left + 1`` for every internal
        node, the invariant the forest propagation's branchless
        ``left[node] + (x > threshold)`` step relies on.
        """
        n = self.n_nodes
        order = np.empty(n, dtype=np.int64)  # order[new] = old
        order[0] = 0
        tail = 1
        for head in range(n):
            old = int(order[head])
            if self.feature[old] != LEAF:
                order[tail] = self.left[old]
                order[tail + 1] = self.right[old]
                tail += 2
        pos = np.empty(n, dtype=np.int64)  # pos[old] = new
        pos[order] = np.arange(n)
        feature = self.feature[order]
        is_leaf = feature == LEAF
        return TreeKernel(
            feature=feature,
            threshold=self.threshold[order],
            split_bin=self.split_bin[order],
            left=np.where(is_leaf, LEAF, pos[self.left[order]]).astype(np.int32),
            right=np.where(is_leaf, LEAF, pos[self.right[order]]).astype(np.int32),
            value=self.value[order],
            n=None if self.n is None else self.n[order],
            impurity=None if self.impurity is None else self.impurity[order],
        )


@dataclass
class ForestKernel:
    """A tree ensemble as stacked flat arrays plus per-tree offsets.

    ``offsets`` has ``n_trees + 1`` entries; tree *t* owns global node
    indices ``offsets[t]:offsets[t + 1]`` and its root is node
    ``offsets[t]``. Child indices in ``left``/``right`` are global, so
    propagation needs no per-tree re-basing. Invariants established by
    :meth:`from_trees` (and expected of any hand-built instance): trees
    are numbered level-order with ``right == left + 1`` at every split,
    and leaves self-loop (``left == right == own index``).
    """

    feature: np.ndarray  # int32, LEAF for leaves
    threshold: np.ndarray  # float64
    split_bin: np.ndarray  # int32
    left: np.ndarray  # int32, global node index; leaves self-loop
    right: np.ndarray  # int32, global node index; leaves self-loop
    value: np.ndarray  # float64
    offsets: np.ndarray  # int64, shape (n_trees + 1,)
    _depth: Optional[int] = field(default=None, repr=False, compare=False)
    _route: Optional[tuple] = field(default=None, repr=False, compare=False)

    @property
    def n_trees(self) -> int:
        return int(self.offsets.shape[0]) - 1

    @property
    def n_nodes(self) -> int:
        return int(self.feature.shape[0])

    def max_depth(self) -> int:
        """Depth of the deepest leaf across all trees (cached)."""
        if self._depth is None:
            depth = np.zeros(self.n_nodes, dtype=np.int32)
            # Children always carry larger global indices than their
            # parent, so one ascending pass settles every node.
            for i in np.flatnonzero(self.feature != LEAF):
                depth[self.left[i]] = depth[i] + 1
                depth[self.right[i]] = depth[i] + 1
            self._depth = int(depth.max()) if self.n_nodes else 0
        return self._depth

    def tree(self, index: int) -> TreeKernel:
        """Re-based copy of one tree (self-loops back to LEAF sentinels)."""
        lo, hi = int(self.offsets[index]), int(self.offsets[index + 1])
        is_leaf = self.feature[lo:hi] == LEAF
        return TreeKernel(
            feature=self.feature[lo:hi].copy(),
            threshold=self.threshold[lo:hi].copy(),
            split_bin=self.split_bin[lo:hi].copy(),
            left=np.where(is_leaf, LEAF, self.left[lo:hi] - lo).astype(np.int32),
            right=np.where(is_leaf, LEAF, self.right[lo:hi] - lo).astype(np.int32),
            value=self.value[lo:hi].copy(),
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_trees(cls, trees: Sequence[TreeKernel]) -> "ForestKernel":
        """Stack per-tree kernels into the propagation-ready layout."""
        trees = [t.level_order() for t in trees]
        offsets = np.zeros(len(trees) + 1, dtype=np.int64)
        for t, tree in enumerate(trees):
            offsets[t + 1] = offsets[t] + tree.n_nodes

        def stacked(parts, dtype):
            if not parts:
                return np.zeros(0, dtype=dtype)
            return np.ascontiguousarray(np.concatenate(parts), dtype=dtype)

        # Leaves self-loop in the stacked layout so propagation can run
        # unconditionally for max_depth iterations with no masking.
        left_parts, right_parts = [], []
        for i, t in enumerate(trees):
            own = np.arange(t.n_nodes, dtype=np.int64)
            is_leaf = t.feature == LEAF
            left_parts.append(np.where(is_leaf, own, t.left) + offsets[i])
            right_parts.append(np.where(is_leaf, own, t.right) + offsets[i])
        return cls(
            feature=stacked([t.feature for t in trees], np.int32),
            threshold=stacked([t.threshold for t in trees], np.float64),
            split_bin=stacked([t.split_bin for t in trees], np.int32),
            left=stacked(left_parts, np.int32),
            right=stacked(right_parts, np.int32),
            value=stacked([t.value for t in trees], np.float64),
            offsets=offsets,
        )

    @classmethod
    def from_boost_nodes(cls, roots: Sequence["_BoostNode"]) -> "ForestKernel":
        return cls.from_trees([TreeKernel.from_boost_node(r) for r in roots])

    def to_boost_nodes(self) -> list["_BoostNode"]:
        return [self.tree(t).to_boost_node() for t in range(self.n_trees)]

    # ------------------------------------------------------------------
    def _routing(self) -> tuple:
        """Cached (threshold-with-inf-leaves, roots) propagation tables.

        Leaves get a ``+inf`` routing threshold: their comparison is
        always False, and with the self-loop child the node index stays
        put — so the step needs neither masking nor a ``right`` gather
        (``right == left + 1`` at every split).
        """
        if self._route is None:
            thr = np.where(self.feature == LEAF, np.inf, self.threshold)
            # int64 copies of the int32 structure arrays: ``take`` casts
            # index arrays to the platform int anyway, so propagating in
            # int64 skips one cast per gather per level.
            feature = self.feature.astype(np.int64)
            left = self.left.astype(np.int64)
            roots = self.offsets[:-1].copy()
            self._route = (thr, feature, left, roots)
        return self._route

    def leaf_values(self, X: np.ndarray) -> np.ndarray:
        """(n_samples, n_trees) leaf outputs via simultaneous propagation.

        All trees advance one level per iteration through a shared
        (samples × trees) node-state matrix — O(max_depth) numpy ops for
        the whole ensemble instead of O(nodes) Python calls.
        """
        X = np.asarray(X, dtype=np.float64)
        n = X.shape[0]
        out = np.empty((n, self.n_trees), dtype=np.float64)
        for lo in range(0, n, _BLOCK_ROWS):
            hi = min(n, lo + _BLOCK_ROWS)
            out[lo:hi] = self.value.take(self._propagate(X, lo, hi))
        return out

    def _propagate(self, X: np.ndarray, lo: int, hi: int) -> np.ndarray:
        """Final (rows, trees) node indices for one row block."""
        thr, feature, left, roots = self._routing()
        node = np.broadcast_to(roots, (hi - lo, self.n_trees)).copy()
        Xf = X.ravel()
        base = (np.arange(lo, hi, dtype=np.int64) * X.shape[1])[:, None]
        for _ in range(self.max_depth()):
            feat = feature.take(node)
            # Leaves carry feature -1: a valid (last-column) gather whose
            # result is discarded by the always-False +inf comparison.
            xv = Xf.take(base + feat)
            node = left.take(node) + (xv > thr.take(node))
        return node

    def margin(
        self, X: np.ndarray, base_score: float, learning_rate: float
    ) -> np.ndarray:
        """Raw ensemble margin, bit-identical to the recursive reference.

        Per-tree leaf values come from the blocked propagation; the
        shrinkage accumulation then runs tree-by-tree in ensemble order,
        exactly like ``margin += lr * tree_output(t)`` over recursive
        traversals, so no floating-point reassociation can creep in.
        """
        X = np.asarray(X, dtype=np.float64)
        n = X.shape[0]
        margin = np.full(n, base_score, dtype=np.float64)
        if self.n_trees == 0 or n == 0:
            return margin
        for lo in range(0, n, _BLOCK_ROWS):
            hi = min(n, lo + _BLOCK_ROWS)
            values = self.value.take(self._propagate(X, lo, hi))
            acc = margin[lo:hi]
            for t in range(self.n_trees):
                acc += learning_rate * values[:, t]
        return margin


# ----------------------------------------------------------------------
# Histogram machinery for the training hot paths
# ----------------------------------------------------------------------
class HistogramScratch:
    """Per-(node, feature, bin) histograms from transposed bin codes.

    Staged once per fit: the (features × samples) transpose of the bin
    code matrix, so each feature's codes are contiguous and one
    ``bincount`` per feature builds its histogram — row subsets arrive
    as ``take`` gathers, weights are gathered once per call instead of
    being broadcast per feature. Multiple tree nodes are histogrammed
    together by folding a per-row node slot into the bincount key
    (``slot * n_bins + code``). Accumulation order per (feature, bin)
    cell is ascending row order — the same order as a per-node
    ``bincount`` scan, keeping every histogram bit-identical to the
    original per-feature implementation.
    """

    def __init__(self, binned: np.ndarray, max_bins: int):
        self.codes_t = np.ascontiguousarray(binned.T)
        self.n_features = binned.shape[1]
        self.max_bins = max_bins
        n = binned.shape[0]
        # Reusable per-call buffers: gathered codes and slotted keys.
        self._codes_buf = np.empty(n, dtype=self.codes_t.dtype)
        self._key_buf = np.empty(n, dtype=np.int64)

    def pair(
        self,
        rows: Optional[np.ndarray],
        first: Optional[np.ndarray],
        second: np.ndarray,
        slots: Optional[np.ndarray] = None,
        n_slots: int = 1,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Two (n_slots, F, B) histograms over one row subset.

        Both training hot paths need a pair per node — (count, positive)
        for CART, (gradient, hessian) for boosting. ``rows=None`` means
        all samples; ``first``/``second`` are weight vectors already
        aligned with ``rows`` (``first=None`` counts samples instead);
        ``slots`` assigns each row to one of ``n_slots`` nodes.
        """
        F, B = self.n_features, self.max_bins
        size = n_slots * B
        h1 = np.empty((n_slots, F, B), dtype=np.float64)
        h2 = np.empty((n_slots, F, B), dtype=np.float64)
        base = None if slots is None else slots.astype(np.int64) * B
        m = self.codes_t.shape[1] if rows is None else rows.shape[0]
        codes_buf = self._codes_buf[:m]
        key_buf = self._key_buf[:m]
        for j in range(F):
            if rows is None:
                codes = self.codes_t[j]
            else:
                codes = self.codes_t[j].take(rows, out=codes_buf)
            key = codes if base is None else np.add(base, codes, out=key_buf)
            if first is None:
                h1[:, j, :] = (
                    np.bincount(key, minlength=size).astype(np.float64).reshape(n_slots, B)
                )
            else:
                h1[:, j, :] = np.bincount(key, weights=first, minlength=size).reshape(
                    n_slots, B
                )
            h2[:, j, :] = np.bincount(key, weights=second, minlength=size).reshape(
                n_slots, B
            )
        return h1, h2


# ----------------------------------------------------------------------
# Recursive reference traversals (verification oracle + benchmarks)
# ----------------------------------------------------------------------
def _apply_recursive(node, X, index, out, leaf_attr: str) -> None:
    if index.shape[0] == 0:
        return
    if node.is_leaf:
        out[index] = getattr(node, leaf_attr)
        return
    go_left = X[index, node.feature] <= node.threshold
    _apply_recursive(node.left, X, index[go_left], out, leaf_attr)
    _apply_recursive(node.right, X, index[~go_left], out, leaf_attr)


def reference_cart_values(root: "_Node", X: np.ndarray) -> np.ndarray:
    """Pre-kernel recursive CART traversal (the verification oracle)."""
    X = np.asarray(X, dtype=np.float64)
    out = np.empty(X.shape[0], dtype=np.float64)
    _apply_recursive(root, X, np.arange(X.shape[0]), out, "value")
    return out


def reference_forest_margin(
    trees: Sequence["_BoostNode"],
    base_score: float,
    learning_rate: float,
    X: np.ndarray,
) -> np.ndarray:
    """Pre-kernel recursive boosting margin (the verification oracle)."""
    X = np.asarray(X, dtype=np.float64)
    margin = np.full(X.shape[0], base_score, dtype=np.float64)
    for tree in trees:
        out = np.empty(X.shape[0], dtype=np.float64)
        _apply_recursive(tree, X, np.arange(X.shape[0]), out, "weight")
        margin += learning_rate * out
    return margin
