"""Project-aware static analysis for the scrubber codebase.

``repro.analysis`` turns the repository's implicit contracts into
machine-checked ones. Four passes run over the AST of ``src/``:

* **determinism** (RS101–RS104) — no wall-clock reads outside
  ``repro.obs``, no process-global RNG, no salted ``hash()``, no
  unordered-set iteration in the serialization-adjacent layers. These
  protect the bit-identical-verdicts guarantee the parallel and
  resilience layers are built on.
* **shard safety** (RS201–RS203) — a call-graph race detector over the
  code reachable from the shard-worker entry points: writes to module
  globals, class-level attributes, or captured closures there diverge
  per worker process without ever crashing.
* **layering** (RS301–RS302) — the ARCHITECTURE.md import DAG and the
  stdlib+numpy dependency rule.
* **obs-names** (RS401–RS404) — the catalogue / emission / METRICS.md
  triangle stays closed in both directions.
* **durability** (RS501–RS502) — recovery-critical files go through the
  one sanctioned temp+fsync+rename writer.
* **resource lifecycle** (RS601–RS604) — CFG dataflow proof that every
  acquired OS resource (shm segments, rings, journals, file handles)
  reaches a release on every path out of the function, including the
  exception edges.
* **hot-path discipline** (RS701–RS703) — no per-flow Python loops or
  loop-level numpy reallocation in the modules declared hot.

The RS6xx/RS7xx families run on the shared intraprocedural CFG and
worklist dataflow solver in :mod:`repro.analysis.cfg`.

Violations can be suppressed inline with a reason
(``# repro: lint-ignore[RS101] why``) or grandfathered in the
checked-in baseline (``lint-baseline.json``); unexplained ignores are
themselves findings. Entry points: ``repro lint`` (CLI) and
:func:`run_lint` (used by the test suite). Repeat runs go through the
content-hash-keyed incremental cache (:mod:`repro.analysis.cache`);
``repro lint --changed`` scopes the report to the git diff. The rule
catalogue is documented in ``docs/ANALYSIS.md``.

The package deliberately depends on nothing but the stdlib — it sits
at the bottom of the layer DAG it enforces.
"""

from repro.analysis.baseline import Baseline, load_baseline, write_baseline
from repro.analysis.cache import (
    CACHE_VERSION,
    analyzer_fingerprint,
    load_cache,
    save_cache,
)
from repro.analysis.cfg import CFG, DataflowAnalysis, solve
from repro.analysis.changed import changed_paths, git_changed_files
from repro.analysis.config import LintConfig, default_config
from repro.analysis.findings import RULES, Finding, rule_exists
from repro.analysis.passes import ALL_PASSES, MODULE_PASSES, PROJECT_PASSES
from repro.analysis.project import Module, Project
from repro.analysis.runner import (
    LintResult,
    format_human,
    format_json,
    run_lint,
)
from repro.analysis.suppressions import Suppression, scan_suppressions

__all__ = [
    "ALL_PASSES",
    "Baseline",
    "CACHE_VERSION",
    "CFG",
    "DataflowAnalysis",
    "Finding",
    "LintConfig",
    "LintResult",
    "MODULE_PASSES",
    "Module",
    "PROJECT_PASSES",
    "Project",
    "RULES",
    "Suppression",
    "analyzer_fingerprint",
    "changed_paths",
    "default_config",
    "format_human",
    "format_json",
    "git_changed_files",
    "load_baseline",
    "load_cache",
    "rule_exists",
    "run_lint",
    "save_cache",
    "scan_suppressions",
    "solve",
    "write_baseline",
]
