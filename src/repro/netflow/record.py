"""Scalar flow record model.

A :class:`FlowRecord` is the row-level view of a sampled flow, as exported
by an sFlow/IPFIX-style collector at the IXP: L2-L4 headers plus byte and
packet counters, no payload (see paper §4.3 on data minimisation).

The columnar :class:`~repro.netflow.dataset.FlowDataset` is the container
used for any bulk processing; ``FlowRecord`` exists for ergonomic
construction in tests, examples and generators.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field

from repro.netflow.fields import PROTOCOL_NAMES


def ip_to_int(address: str | int) -> int:
    """Convert a dotted-quad IPv4 address (or an int) to a uint32 value."""
    if isinstance(address, int):
        if not 0 <= address <= 0xFFFFFFFF:
            raise ValueError(f"IPv4 integer out of range: {address}")
        return address
    return int(ipaddress.IPv4Address(address))


def int_to_ip(value: int) -> str:
    """Convert a uint32 value back to a dotted-quad IPv4 string."""
    return str(ipaddress.IPv4Address(int(value)))


def mac_to_int(mac: str | int) -> int:
    """Convert a colon-separated MAC address (or an int) to a uint64 value."""
    if isinstance(mac, int):
        if not 0 <= mac <= 0xFFFFFFFFFFFF:
            raise ValueError(f"MAC integer out of range: {mac}")
        return mac
    parts = mac.split(":")
    if len(parts) != 6:
        raise ValueError(f"malformed MAC address: {mac!r}")
    return int("".join(parts), 16)


def int_to_mac(value: int) -> str:
    """Convert a uint64 value back to a colon-separated MAC string."""
    raw = f"{int(value):012x}"
    return ":".join(raw[i : i + 2] for i in range(0, 12, 2))


@dataclass(frozen=True)
class FlowRecord:
    """One sampled flow observed at the IXP fabric.

    Attributes mirror the columns of
    :class:`~repro.netflow.dataset.FlowDataset`. ``bytes_`` is the total
    byte count of the flow sample (trailing underscore avoids shadowing
    the builtin), ``packets`` the packet count; the mean packet size is
    derived, never stored.
    """

    time: int
    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    protocol: int
    packets: int
    bytes_: int
    src_mac: int = 0
    blackhole: bool = field(default=False)

    def __post_init__(self) -> None:
        if self.packets <= 0:
            raise ValueError("flow must contain at least one packet")
        if self.bytes_ <= 0:
            raise ValueError("flow must contain at least one byte")
        if not 0 <= self.src_port <= 0xFFFF or not 0 <= self.dst_port <= 0xFFFF:
            raise ValueError("transport port out of range")

    @property
    def packet_size(self) -> float:
        """Mean packet size of the flow in bytes."""
        return self.bytes_ / self.packets

    @property
    def protocol_name(self) -> str:
        """Human-readable protocol name (e.g. ``"UDP"``)."""
        return PROTOCOL_NAMES.get(self.protocol, str(self.protocol))

    def describe(self) -> str:
        """Render a one-line summary, mainly for logging and debugging."""
        return (
            f"{self.protocol_name} {int_to_ip(self.src_ip)}:{self.src_port} -> "
            f"{int_to_ip(self.dst_ip)}:{self.dst_port} "
            f"({self.packets} pkts, {self.bytes_} bytes"
            f"{', blackholed' if self.blackhole else ''})"
        )
