"""Quantile binning shared by the tree-based models.

Histogram-based tree growing (the strategy of LightGBM/XGBoost's hist
mode) first quantises every feature into at most ``max_bins`` quantile
bins; split search then scans bin boundaries instead of raw thresholds,
which makes split finding O(bins) per feature with vectorised gradient
histograms.
"""

from __future__ import annotations

import numpy as np

DEFAULT_MAX_BINS = 128


class QuantileBinner:
    """Maps float features to small integer bin indices."""

    def __init__(self, max_bins: int = DEFAULT_MAX_BINS):
        if not 2 <= max_bins <= 256:
            raise ValueError("max_bins must be in [2, 256]")
        self.max_bins = max_bins
        #: Per-feature ascending arrays of bin upper edges (exclusive of
        #: the last implicit +inf bin).
        self.edges_: list[np.ndarray] | None = None

    @property
    def is_fitted(self) -> bool:
        return self.edges_ is not None

    def fit(self, X: np.ndarray) -> "QuantileBinner":
        X = np.asarray(X, dtype=np.float64)
        edges = []
        quantiles = np.linspace(0.0, 1.0, self.max_bins + 1)[1:-1]
        for j in range(X.shape[1]):
            column_edges = np.unique(np.quantile(X[:, j], quantiles))
            # An edge at (or above) the column maximum can never separate
            # samples; dropping it also collapses constant columns to a
            # single bin.
            column_max = X[:, j].max()
            edges.append(column_edges[column_edges < column_max])
        self.edges_ = edges
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Return uint8 bin indices, shape like ``X``."""
        if self.edges_ is None:
            raise RuntimeError("QuantileBinner is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.shape[1] != len(self.edges_):
            raise ValueError("feature count mismatch")
        binned = np.empty(X.shape, dtype=np.uint8)
        for j, edges in enumerate(self.edges_):
            binned[:, j] = np.searchsorted(edges, X[:, j], side="left")
        return binned

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def n_bins(self, feature: int) -> int:
        """Number of distinct bins of one feature."""
        if self.edges_ is None:
            raise RuntimeError("QuantileBinner is not fitted")
        return len(self.edges_[feature]) + 1

    def threshold(self, feature: int, bin_index: int) -> float:
        """The raw-value threshold of splitting at ``bin <= bin_index``."""
        if self.edges_ is None:
            raise RuntimeError("QuantileBinner is not fitted")
        edges = self.edges_[feature]
        if not 0 <= bin_index < len(edges):
            raise IndexError("bin index has no upper edge")
        return float(edges[bin_index])
