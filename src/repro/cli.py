"""Command-line interface (installed as both ``repro`` and ``ixp-scrubber``).

* ``repro list`` shows the available experiments;
* ``repro run <id> [--scale small|paper]`` executes one (or ``all``)
  and prints its tables and headline notes;
* ``repro stats`` drives a short synthetic workload through the
  streaming engine and prints the live metrics snapshot (counters,
  histogram percentiles, per-phase span timings) — the operator view
  documented in ``docs/METRICS.md``;
* ``repro stream --shards N`` does the same through the sharded
  parallel engine (``repro.core.parallel``), printing the merged
  coordinator + per-shard snapshot; ``--check`` runs the serial
  equivalence shadow alongside. ``--backend supervised`` (or any
  fault/supervision flag, which upgrades ``process`` automatically)
  runs workers under the fault-tolerant supervisor of
  ``repro.core.resilience``; ``--faults`` / the ``REPRO_FAULTS``
  environment variable inject a deterministic chaos plan.
  ``--agg sketch`` switches the counting path to mergeable sketches
  (``repro.core.features.sketches``; tune with ``--sketch-eps`` /
  ``--sketch-delta``, contract in ``docs/SKETCHES.md``) — mutually
  exclusive with ``--check``, whose shadow expects exact verdicts;
* ``repro scenarios list`` / ``repro scenarios run --scenario NAME``
  drive the seeded operational scenarios of ``repro.scenarios``
  end-to-end and print (or ``--json``-dump) the oracle scorecard;
  exit status 1 means the oracle checks failed.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.experiments import EXPERIMENTS, SCALES


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError("must be > 0")
    return value


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return value


def _unit_interval(text: str) -> float:
    value = float(text)
    if not 0.0 < value < 1.0:
        raise argparse.ArgumentTypeError("must be in (0, 1)")
    return value


def _fault_plan(text: str):
    """argparse type for ``--faults`` (ValueError -> usage error)."""
    from repro.core.resilience import FaultPlan

    try:
        return FaultPlan.parse(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _cmd_list(_: argparse.Namespace) -> int:
    for name, module in EXPERIMENTS.items():
        doc = (module.__doc__ or "").strip().splitlines()[0]
        print(f"{name:10s} {doc}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    targets = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [t for t in targets if t not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; try 'ixp-scrubber list'", file=sys.stderr)
        return 2
    for target in targets:
        start = time.perf_counter()  # repro: lint-ignore[RS101] operator-facing wall time; never reaches results
        result = EXPERIMENTS[target].run(scale=args.scale)
        elapsed = time.perf_counter() - start  # repro: lint-ignore[RS101] operator-facing wall time; never reaches results
        print(result.summary())
        if args.plots and result.series:
            from repro.experiments.plots import render_series

            print(render_series(result.series))
        print(f"[{target} completed in {elapsed:.1f}s]\n")
    return 0


def _stream_workload(days: int, seed: int):
    """Generate the synthetic capture the stats/stream commands drive."""
    from repro.ixp.fabric import IXPFabric
    from repro.ixp.profiles import IXPProfile
    from repro.traffic.workload import WorkloadGenerator

    profile = IXPProfile(
        name="IXP-STATS", region=11, n_members=8, traffic_scale=0.01,
        attacks_per_day=14.0, attack_intensity=25.0,
        benign_flows_per_target=5.0, benign_targets_per_minute=24,
        bins_per_day=48, seed=seed,
    )
    print(
        f"generating {days} synthetic day(s) at {profile.name} "
        f"(seed {seed})...",
        file=sys.stderr,
    )
    return profile, WorkloadGenerator(IXPFabric(profile)).generate(0, days)


def _drive_engine(engine, capture, chunk_bins: int = 8, session=None) -> tuple[int, float]:
    """Stream a capture through an engine; return (verdicts, seconds).

    The chunking rule lives in :func:`repro.core.recovery.session.
    drive_engine` so the CLI, the scenario conductor, and crash/resume
    tests all tick through a capture identically — the precondition for
    byte-exact replay verification.
    """
    from repro.core.recovery.session import drive_engine

    start = time.perf_counter()  # repro: lint-ignore[RS101] throughput readout for the operator, not part of any verdict
    verdicts = drive_engine(
        engine,
        capture.flows,
        capture.updates,
        chunk_bins=chunk_bins,
        session=session,
    )
    return len(verdicts), time.perf_counter() - start  # repro: lint-ignore[RS101] throughput readout for the operator, not part of any verdict


def _print_snapshot(snap, fmt: str, footer: str) -> None:
    from repro import obs

    if fmt == "json":
        print(json.dumps(snap, sort_keys=True, indent=2))
    elif fmt == "prometheus":
        print(obs.prometheus_text(snap), end="")
    else:
        print(obs.format_snapshot(snap))
        print(footer)


def _cmd_stats(args: argparse.Namespace) -> int:
    """Run a short synthetic streaming workload; print live metrics."""
    from repro import obs
    from repro.core.scrubber import ScrubberConfig
    from repro.core.streaming import StreamingScrubber

    profile, capture = _stream_workload(args.days, args.seed)
    engine = StreamingScrubber(
        config=ScrubberConfig(model="XGB", model_params={"n_estimators": 10}),
        window_days=2,
        bins_per_day=profile.bins_per_day,
        seed=1,
    )
    n_verdicts, elapsed = _drive_engine(engine, capture)
    _print_snapshot(
        obs.snapshot(engine.registry),
        args.format,
        f"\n[streamed {len(capture.flows):,} flows -> {n_verdicts} verdicts "
        f"in {elapsed:.1f}s; model ready: {engine.is_ready}]",
    )
    if args.jsonl:
        obs.JsonLinesExporter(args.jsonl).export(
            engine.registry, workload=profile.name, days=args.days
        )
        print(f"[snapshot appended to {args.jsonl}]", file=sys.stderr)
    return 0


def _resolve_stream_backend(args: argparse.Namespace) -> tuple[str, dict]:
    """Pick the backend + options for ``repro stream``.

    Supervision knobs (``--faults``, ``--shard-timeout``,
    ``--max-restarts``) and a ``REPRO_FAULTS`` environment plan only
    make sense with worker supervision, so any of them upgrades
    ``--backend process`` to ``supervised`` (with a stderr note); on
    the serial backend they are rejected as a usage error.
    """
    from repro.core.resilience import FAULTS_ENV, FaultPlan

    backend = args.backend
    plan = args.faults if args.faults is not None else FaultPlan.from_env()
    # Disk faults are the checkpoint store's business, not the workers':
    # a plan with only disk specs must not force worker supervision.
    worker_faults = bool(plan.worker_specs())
    wants_supervision = worker_faults or args.shard_timeout is not None \
        or args.max_restarts is not None
    if backend == "serial":
        if (args.faults is not None and args.faults.worker_specs()) \
                or args.shard_timeout is not None \
                or args.max_restarts is not None:
            print(
                "error: worker --faults/--shard-timeout/--max-restarts "
                "require --backend process or supervised",
                file=sys.stderr,
            )
            raise SystemExit(2)
        return backend, {}
    if backend == "process":
        if not wants_supervision:
            return backend, {}
        source = "--faults" if args.faults is not None else (
            f"{FAULTS_ENV} set" if worker_faults else "supervision flags given"
        )
        print(
            f"[{source}: upgrading process backend to supervised]",
            file=sys.stderr,
        )
        backend = "supervised"
    options: dict = {"fault_plan": plan}
    if args.shard_timeout is not None:
        options["shard_timeout"] = args.shard_timeout
    if args.max_restarts is not None:
        options["max_restarts"] = args.max_restarts
    return backend, options


def _resolve_stream_agg(args: argparse.Namespace):
    """Pick the aggregation mode + sketch parameters for ``repro stream``.

    ``--sketch-eps`` / ``--sketch-delta`` only make sense with
    ``--agg sketch``, and the ``--check`` equivalence shadow only with
    exact aggregation (sketch verdicts are approximate by design), so
    either combination is a usage error — including the shadow being
    switched on implicitly through ``REPRO_ENGINE_EQUIVALENCE``.
    """
    import os

    from repro.core.features.sketches import SketchParams
    from repro.core.parallel.engine import EQUIVALENCE_ENV

    if args.agg != "sketch":
        if args.sketch_eps is not None or args.sketch_delta is not None:
            print(
                "error: --sketch-eps/--sketch-delta require --agg sketch",
                file=sys.stderr,
            )
            raise SystemExit(2)
        return None
    if args.check or os.environ.get(EQUIVALENCE_ENV, "") not in ("", "0"):
        source = "--check" if args.check else f"{EQUIVALENCE_ENV}=1"
        print(
            f"error: {source} requires exact aggregation; sketch-mode "
            "verdicts are approximate and cannot match the serial shadow",
            file=sys.stderr,
        )
        raise SystemExit(2)
    overrides: dict = {}
    if args.sketch_eps is not None:
        overrides["epsilon"] = args.sketch_eps
    if args.sketch_delta is not None:
        overrides["delta"] = args.sketch_delta
    return SketchParams(**overrides)


def _resolve_stream_recovery(args: argparse.Namespace, engine):
    """Build the ``RecoverySession`` for ``repro stream``, if requested.

    ``--checkpoint-every``/``--resume`` without ``--checkpoint-dir`` are
    usage errors; recovery-layer failures (corrupt journal, refusing to
    overwrite history, incompatible snapshot) exit 3 with the typed
    error's message rather than a traceback.
    """
    from pathlib import Path

    from repro.core.recovery import RecoveryError, RecoverySession
    from repro.core.resilience import FaultPlan

    if args.checkpoint_dir is None:
        if args.resume or args.checkpoint_every is not None:
            print(
                "error: --resume/--checkpoint-every require --checkpoint-dir",
                file=sys.stderr,
            )
            raise SystemExit(2)
        return None
    plan = args.faults if args.faults is not None else FaultPlan.from_env()
    try:
        return RecoverySession(
            engine,
            Path(args.checkpoint_dir),
            every=8 if args.checkpoint_every is None else args.checkpoint_every,
            resume=args.resume,
            fault_specs=plan.disk_specs(),
        )
    except RecoveryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(3) from exc


def _cmd_stream(args: argparse.Namespace) -> int:
    """Drive the sharded parallel engine; print the merged snapshot."""
    from repro.core.parallel import ShardedStreamingScrubber
    from repro.core.recovery import RecoveryError
    from repro.core.scrubber import ScrubberConfig

    backend, backend_options = _resolve_stream_backend(args)
    if args.ipc != "pipe":
        # Shared-memory transport needs worker processes to share with.
        if backend == "serial":
            print(
                "error: --ipc shm requires --backend process or supervised",
                file=sys.stderr,
            )
            raise SystemExit(2)
        backend_options["ipc"] = args.ipc
    sketch_params = _resolve_stream_agg(args)
    profile, capture = _stream_workload(args.days, args.seed)
    engine = ShardedStreamingScrubber(
        config=ScrubberConfig(model="XGB", model_params={"n_estimators": 10}),
        n_shards=args.shards,
        backend=backend,
        backend_options=backend_options,
        equivalence_check=True if args.check else None,
        agg=args.agg,
        sketch_params=sketch_params,
        window_days=2,
        bins_per_day=profile.bins_per_day,
        seed=1,
    )
    session = _resolve_stream_recovery(args, engine)
    try:
        try:
            n_verdicts, elapsed = _drive_engine(engine, capture, session=session)
        except RecoveryError as exc:
            print(f"error: {exc}", file=sys.stderr)
            raise SystemExit(3) from exc
        snap = engine.merged_snapshot()
    finally:
        if session is not None:
            session.close()
        engine.close()
    rate = len(capture.flows) / elapsed if elapsed > 0 else float("inf")
    resilience_note = ""
    if backend == "supervised":
        counters = {c["name"]: int(c["value"]) for c in snap["counters"]}
        resilience_note = (
            f"; resilience: {counters.get('resilience.worker_restarts', 0)} "
            f"restarts, {counters.get('resilience.batches_quarantined', 0)} "
            f"quarantined, {counters.get('resilience.deadline_misses', 0)} "
            "deadline misses"
        )
    sketch_note = ""
    if sketch_params is not None:
        gauges = {g["name"]: g["value"] for g in snap["gauges"]}
        sketch_note = (
            f"; sketch: eps={sketch_params.epsilon:g} "
            f"delta={sketch_params.delta:g}, "
            f"{gauges.get('sketch.memory_bytes', 0) / 1e6:.1f} MB state, "
            f"flow overcount <= {gauges.get('sketch.error_bound', 0):,.0f}"
        )
    ipc_note = ""
    if args.ipc == "shm":
        counters = {c["name"]: int(c["value"]) for c in snap["counters"]}
        ipc_note = (
            f"; ipc: shm, {counters.get('parallel.ipc_ring_bytes', 0) / 1e6:.1f}"
            f" MB ring traffic, {counters.get('parallel.ipc_fallbacks', 0)} "
            f"pipe fallbacks, {counters.get('parallel.broadcast_skipped', 0)} "
            "broadcasts skipped"
        )
    recovery_note = ""
    if session is not None:
        counters = {c["name"]: int(c["value"]) for c in snap["counters"]}
        recovery_note = (
            f"; recovery: {counters.get('checkpoint.saves', 0)} snapshots, "
            f"{counters.get('checkpoint.failures', 0)} write failures, "
            f"{counters.get('checkpoint.journal_appends', 0)} journal appends"
            + (", resumed" if args.resume else "")
        )
    _print_snapshot(
        snap,
        args.format,
        f"\n[streamed {len(capture.flows):,} flows -> {n_verdicts} verdicts "
        f"in {elapsed:.1f}s ({rate:,.0f} flows/s) across {args.shards} "
        f"{backend} shard(s); model ready: {engine.is_ready}"
        f"{'; equivalence checked' if args.check else ''}"
        f"{resilience_note}{ipc_note}{sketch_note}{recovery_note}]",
    )
    return 0


def _cmd_scenarios_list(_: argparse.Namespace) -> int:
    from repro.scenarios import all_scenarios

    for scenario in all_scenarios():
        print(f"{scenario.name:18s} {scenario.summary}")
    return 0


def _cmd_scenarios_run(args: argparse.Namespace) -> int:
    """Conduct one scenario; print its scorecard. Exit 1 on oracle fail."""
    from repro.core.resilience import FaultPlan
    from repro.scenarios import get_scenario, run_scenario, scorecard_json

    try:
        get_scenario(args.scenario)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    backend_options: dict = {}
    if args.backend == "supervised":
        backend_options["fault_plan"] = FaultPlan.from_env()
    result = run_scenario(
        args.scenario,
        seed=args.seed,
        scale=args.scale,
        shards=args.shards,
        backend=args.backend,
        agg=args.agg,
        backend_options=backend_options,
    )
    scorecard = result.scorecard
    rendered = scorecard_json(scorecard)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"[scorecard written to {args.out}]", file=sys.stderr)
    if args.json:
        print(rendered)
    else:
        metrics = scorecard["metrics"]
        print(
            f"scenario {scorecard['scenario']} (seed {scorecard['seed']}, "
            f"scale {scorecard['scale']:g}) — "
            f"{scorecard['stream']['flows']:,} flows, "
            f"{scorecard['stream']['bins']} bins, "
            f"{scorecard['truth']['attacks']} attack(s) injected"
        )
        for check in scorecard["checks"]:
            mark = "ok " if check["passed"] else "FAIL"
            print(
                f"  [{mark}] {check['name']}: {check['metric']}="
                f"{check['value']} (want {check['op']} {check['threshold']})"
            )
        latency = metrics["detection_latency_max_bins"]
        print(
            f"  recall {metrics['detection_recall']:.2f}, "
            f"precision {metrics['localization_precision']:.2f}, "
            f"max latency "
            f"{'-' if latency is None else f'{latency:g} bins'}, "
            f"collateral {metrics['benign_collateral_rate']:.3f} "
            f"({result.execution['shards']} {result.execution['backend']} "
            f"shard(s))"
        )
        print("PASSED" if scorecard["passed"] else "FAILED")
    return 0 if scorecard["passed"] else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the repro.analysis passes over src/ and report findings."""
    import dataclasses
    from pathlib import Path

    from repro.analysis import (
        Baseline,
        default_config,
        format_human,
        format_json,
        rule_exists,
        run_lint,
        write_baseline,
    )

    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in rules if not rule_exists(r)]
        if unknown:
            print(f"unknown rule id(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
    root = Path(__file__).resolve().parents[2]
    config = default_config(root)
    if args.baseline is not None:
        config = dataclasses.replace(
            config, baseline_path=Path(args.baseline)
        )
    baseline = Baseline() if args.no_baseline else None
    result = run_lint(
        config,
        paths=tuple(args.paths),
        rules=rules,
        baseline=baseline,
        cache_path=None if args.no_cache else config.cache_path,
        changed_only=args.changed,
    )
    if args.write_baseline:
        write_baseline(config.baseline_path, result.findings)
        print(
            f"wrote {len(result.findings)} entry(ies) to "
            f"{config.baseline_path} — fill in each justification or the "
            "next run reports RS003"
        )
        return 0
    print(format_json(result) if args.format == "json" else format_human(result))
    return result.exit_code


def main(argv: list[str] | None = None) -> int:
    # No prefix abbreviation anywhere: a typo like `--ag sketch` must be
    # a usage error, not a silent match for `--agg`.
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IXP Scrubber reproduction (SIGCOMM 2022) experiment runner",
        allow_abbrev=False,
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser(
        "list", help="list available experiments", allow_abbrev=False
    ).set_defaults(func=_cmd_list)
    run_parser = sub.add_parser(
        "run", help="run one experiment (or 'all')", allow_abbrev=False
    )
    run_parser.add_argument("experiment", help="experiment id or 'all'")
    run_parser.add_argument(
        "--scale", choices=SCALES, default="small", help="corpus scale"
    )
    run_parser.add_argument(
        "--plots", action="store_true", help="render series as ASCII sparklines"
    )
    run_parser.set_defaults(func=_cmd_run)
    stats_parser = sub.add_parser(
        "stats",
        help="run a short synthetic streaming workload and print live metrics",
        allow_abbrev=False,
    )
    stats_parser.add_argument(
        "--days",
        type=_positive_int,
        default=2,
        help="simulated days to stream (default 2)",
    )
    stats_parser.add_argument(
        "--seed", type=int, default=55, help="workload generator seed"
    )
    stats_parser.add_argument(
        "--format",
        choices=("text", "json", "prometheus"),
        default="text",
        help="snapshot output format",
    )
    stats_parser.add_argument(
        "--jsonl",
        metavar="PATH",
        help="also append the snapshot to this JSON-lines file",
    )
    stats_parser.set_defaults(func=_cmd_stats)
    stream_parser = sub.add_parser(
        "stream",
        help="run the synthetic workload through the sharded parallel engine",
        allow_abbrev=False,
    )
    stream_parser.add_argument(
        "--days",
        type=_positive_int,
        default=2,
        help="simulated days to stream (default 2)",
    )
    stream_parser.add_argument(
        "--seed", type=int, default=55, help="workload generator seed"
    )
    stream_parser.add_argument(
        "--shards",
        type=_positive_int,
        default=4,
        help="number of worker shards (default 4)",
    )
    stream_parser.add_argument(
        "--backend",
        choices=("serial", "process", "supervised"),
        default="serial",
        help="shard execution backend (supervised = fault-tolerant workers)",
    )
    stream_parser.add_argument(
        "--ipc",
        choices=("pipe", "shm"),
        default="pipe",
        help="worker transport for process backends: pickled pipe "
        "messages (default) or zero-copy shared-memory rings with a "
        "map-once model plane (docs/IPC.md)",
    )
    stream_parser.add_argument(
        "--check",
        action="store_true",
        help="assert verdict equivalence against a shadow serial engine",
    )
    stream_parser.add_argument(
        "--shard-timeout",
        type=_positive_float,
        metavar="SECONDS",
        help="supervised backend: deadline for any single shard reply",
    )
    stream_parser.add_argument(
        "--max-restarts",
        type=_nonnegative_int,
        metavar="N",
        help="supervised backend: per-shard restart budget before the "
        "shard degrades to serial execution",
    )
    stream_parser.add_argument(
        "--faults",
        type=_fault_plan,
        metavar="PLAN",
        help="deterministic fault-injection plan, e.g. "
        "'crash@0:batch=3;slow@*:secs=0.05' (default: $REPRO_FAULTS)",
    )
    stream_parser.add_argument(
        "--agg",
        choices=("exact", "sketch"),
        default="exact",
        help="aggregation mode: exact per-bin buffering (default) or "
        "mergeable count-min sketches (docs/SKETCHES.md)",
    )
    stream_parser.add_argument(
        "--sketch-eps",
        type=_unit_interval,
        metavar="EPS",
        help="sketch mode: relative error bound epsilon (default 0.005)",
    )
    stream_parser.add_argument(
        "--sketch-delta",
        type=_unit_interval,
        metavar="DELTA",
        help="sketch mode: error-bound failure probability (default 0.01)",
    )
    stream_parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="enable crash-safe checkpointing into this directory "
        "(snapshots + verdict journal; see docs/RECOVERY.md)",
    )
    stream_parser.add_argument(
        "--checkpoint-every",
        type=_positive_int,
        metavar="TICKS",
        help="snapshot cadence in ingest ticks (default 8; journal "
        "appends happen every tick regardless)",
    )
    stream_parser.add_argument(
        "--resume",
        action="store_true",
        help="continue the run recorded in --checkpoint-dir: restore the "
        "newest valid snapshot, replay-verify up to the journal head, "
        "then emit only verdicts the dead run never emitted",
    )
    stream_parser.add_argument(
        "--format",
        choices=("text", "json", "prometheus"),
        default="text",
        help="snapshot output format",
    )
    stream_parser.set_defaults(func=_cmd_stream)
    scen_parser = sub.add_parser(
        "scenarios",
        help="list or run the seeded operational scenarios (repro.scenarios)",
        allow_abbrev=False,
    )
    scen_sub = scen_parser.add_subparsers(dest="scenarios_command", required=True)
    scen_sub.add_parser(
        "list",
        help="list the registered scenarios",
        allow_abbrev=False,
    ).set_defaults(func=_cmd_scenarios_list)
    scen_run = scen_sub.add_parser(
        "run",
        help="conduct one scenario end-to-end and score it",
        allow_abbrev=False,
    )
    scen_run.add_argument(
        "--scenario",
        required=True,
        metavar="NAME",
        help="scenario name (see 'repro scenarios list')",
    )
    scen_run.add_argument(
        "--seed", type=int, default=7, help="scenario seed (default 7)"
    )
    scen_run.add_argument(
        "--scale",
        type=_positive_float,
        default=1.0,
        help="workload scale multiplier (default 1.0)",
    )
    scen_run.add_argument(
        "--shards",
        type=_positive_int,
        default=1,
        help="number of worker shards (default 1; scorecard is invariant)",
    )
    scen_run.add_argument(
        "--backend",
        choices=("serial", "process", "supervised"),
        default="serial",
        help="shard execution backend (supervised reads $REPRO_FAULTS)",
    )
    scen_run.add_argument(
        "--agg",
        choices=("exact", "sketch"),
        default="exact",
        help="aggregation mode (exact keeps scorecards shard-invariant)",
    )
    scen_run.add_argument(
        "--json",
        action="store_true",
        help="print the scorecard as canonical JSON instead of a summary",
    )
    scen_run.add_argument(
        "--out",
        metavar="PATH",
        help="also write the scorecard JSON to this file",
    )
    scen_run.set_defaults(func=_cmd_scenarios_run)
    lint_parser = sub.add_parser(
        "lint",
        help="run the project-aware static analysis (repro.analysis)",
        allow_abbrev=False,
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="restrict the report to these repo-relative paths "
        "(analysis always sees the whole tree)",
    )
    lint_parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format",
    )
    lint_parser.add_argument(
        "--rules",
        metavar="RSnnn[,RSnnn...]",
        help="restrict the report to these rule ids",
    )
    lint_parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="baseline file (default: lint-baseline.json at the repo root)",
    )
    lint_parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report baselined findings too",
    )
    lint_parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="grandfather the current findings into the baseline file",
    )
    lint_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write .repro-lint-cache.json (CI runs "
        "cold; results are identical either way)",
    )
    lint_parser.add_argument(
        "--changed",
        action="store_true",
        help="report only modules reachable from the git diff "
        "(falls back to a full report outside a git checkout)",
    )
    lint_parser.set_defaults(func=_cmd_lint)
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
