"""Unit tests for experiment-module helpers that need no corpus."""

import numpy as np
import pytest

from repro.experiments.security import _ATTACKER_VICTIMS, _poison_flows
from repro.experiments.table4_hyperparams import GRIDS
from repro.netflow import fields
from repro.traffic.workload import _site_popularity


class TestPoisonFlows:
    def test_shape_and_labels(self, rng):
        flows = _poison_flows(500, 0, 3600, rng)
        assert len(flows) == 500
        assert flows.blackhole.all()

    def test_https_mimicry(self, rng):
        flows = _poison_flows(200, 0, 3600, rng)
        assert (flows.src_port == fields.PORT_HTTPS).all()
        assert (flows.protocol == fields.PROTO_TCP).all()

    def test_targets_attacker_space(self, rng):
        flows = _poison_flows(200, 0, 3600, rng)
        assert (flows.dst_ip >= np.uint32(_ATTACKER_VICTIMS)).all()

    def test_window_respected(self, rng):
        flows = _poison_flows(200, 100, 200, rng)
        assert (flows.time >= 100).all() and (flows.time < 200).all()


class TestTable4Grids:
    def test_every_model_has_a_grid(self):
        from repro.core.models.pipeline import TABLE5_MODELS

        assert set(GRIDS) == set(TABLE5_MODELS)

    def test_grid_values_nonempty(self):
        for name, grid in GRIDS.items():
            assert grid, name
            for parameter, values in grid.items():
                assert len(values) >= 2, (name, parameter)


class TestSitePopularityProperties:
    def test_weights_positive(self):
        for seed in (101, 102, 103, 104, 105):
            assert all(w > 0 for w in _site_popularity(seed).values())

    def test_pinned_vector_never_boosted(self):
        """WS-Discovery stays at its tiny base weight at every site."""
        from repro.traffic.workload import DEFAULT_VECTOR_POPULARITY

        base = DEFAULT_VECTOR_POPULARITY["WS-Discovery"]
        for seed in (101, 102, 103, 104, 105):
            popularity = _site_popularity(seed)
            if "WS-Discovery" in popularity:
                assert popularity["WS-Discovery"] == pytest.approx(base)
