"""Tests for the decision tree and gradient-boosted trees."""

import numpy as np
import pytest

from repro.core.models.boosting import GradientBoostedTrees
from repro.core.models.tree import DecisionTree


def linear_data(n=2000, seed=0, noise=0.0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 6))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int)
    if noise:
        flip = rng.random(n) < noise
        y = np.where(flip, 1 - y, y)
    return X, y


def xor_data(n=2000, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 4))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    return X, y


class TestDecisionTree:
    def test_learns_threshold(self):
        X, y = linear_data()
        model = DecisionTree(max_depth=6).fit(X[:1500], y[:1500])
        acc = (model.predict(X[1500:]) == y[1500:]).mean()
        assert acc > 0.9

    def test_learns_xor(self):
        """XOR requires interactions — a depth-2+ tree handles it."""
        X, y = xor_data()
        model = DecisionTree(max_depth=4, min_samples_leaf=1).fit(X[:1500], y[:1500])
        acc = (model.predict(X[1500:]) == y[1500:]).mean()
        assert acc > 0.9

    def test_max_depth_respected(self):
        X, y = xor_data()
        model = DecisionTree(max_depth=3).fit(X, y)
        assert model.depth() <= 3

    def test_min_samples_leaf(self):
        X, y = linear_data(n=200)
        model = DecisionTree(min_samples_leaf=50).fit(X, y)

        def leaf_sizes(node):
            if node.is_leaf:
                return [node.n]
            return leaf_sizes(node.left) + leaf_sizes(node.right)

        assert min(leaf_sizes(model.root_)) >= 50

    def test_pure_node_stops(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        y = np.ones(10, dtype=int)
        model = DecisionTree().fit(X, y)
        assert model.n_leaves == 1
        assert (model.predict(X) == 1).all()

    def test_pruning_shrinks_tree(self):
        X, y = linear_data(noise=0.15)
        full = DecisionTree(max_depth=10, ccp_alpha=0.0).fit(X, y)
        pruned = DecisionTree(max_depth=10, ccp_alpha=0.01).fit(X, y)
        assert pruned.n_leaves < full.n_leaves

    def test_predict_proba_in_unit_interval(self):
        X, y = linear_data(n=500)
        model = DecisionTree(max_depth=4).fit(X, y)
        proba = model.predict_proba(X)
        assert ((proba >= 0) & (proba <= 1)).all()

    def test_params_validation(self):
        with pytest.raises(ValueError):
            DecisionTree(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTree(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTree(ccp_alpha=-1)

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            DecisionTree().predict(np.zeros((1, 2)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            DecisionTree().fit(np.array([[np.nan]]), np.array([1]))

    def test_get_params(self):
        params = DecisionTree(max_depth=7).get_params()
        assert params["max_depth"] == 7


class TestGradientBoostedTrees:
    def test_learns_threshold(self):
        X, y = linear_data()
        model = GradientBoostedTrees(n_estimators=20, max_depth=3).fit(X[:1500], y[:1500])
        acc = (model.predict(X[1500:]) == y[1500:]).mean()
        assert acc > 0.93

    def test_learns_xor(self):
        X, y = xor_data()
        model = GradientBoostedTrees(
            n_estimators=30, max_depth=3, learning_rate=0.3,
            min_child_weight=1.0, reg_lambda=1.0,
        ).fit(X[:1500], y[:1500])
        acc = (model.predict(X[1500:]) == y[1500:]).mean()
        assert acc > 0.93

    def test_more_estimators_fit_train_better(self):
        X, y = linear_data(n=800, noise=0.05)
        weak = GradientBoostedTrees(n_estimators=2, max_depth=2, learning_rate=0.1)
        strong = GradientBoostedTrees(n_estimators=60, max_depth=4, learning_rate=0.1,
                                      min_child_weight=1.0, reg_lambda=1.0)
        weak_acc = (weak.fit(X, y).predict(X) == y).mean()
        strong_acc = (strong.fit(X, y).predict(X) == y).mean()
        assert strong_acc >= weak_acc

    def test_feature_gain_identifies_informative(self):
        X, y = linear_data()
        model = GradientBoostedTrees(n_estimators=10, max_depth=3).fit(X, y)
        gains = model.average_gain()
        assert gains[0] == gains.max()  # feature 0 dominates the labels
        assert gains.shape == (X.shape[1],)

    def test_proba_is_sigmoid_of_margin(self):
        X, y = linear_data(n=500)
        model = GradientBoostedTrees(n_estimators=5, max_depth=3).fit(X, y)
        margin = model.decision_function(X)
        proba = model.predict_proba(X)
        np.testing.assert_allclose(proba, 1.0 / (1.0 + np.exp(-margin)))

    def test_base_score_is_prior_logodds(self):
        X = np.zeros((100, 2))
        X[:, 0] = np.arange(100)
        y = (np.arange(100) < 25).astype(int)
        model = GradientBoostedTrees(n_estimators=1).fit(X, y)
        assert model.base_score_ == pytest.approx(np.log(0.25 / 0.75))

    def test_params_validation(self):
        with pytest.raises(ValueError):
            GradientBoostedTrees(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostedTrees(learning_rate=0)
        with pytest.raises(ValueError):
            GradientBoostedTrees(reg_lambda=-1)

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            GradientBoostedTrees().predict(np.zeros((1, 2)))

    def test_deterministic(self):
        X, y = linear_data(n=300)
        a = GradientBoostedTrees(n_estimators=5).fit(X, y).predict_proba(X)
        b = GradientBoostedTrees(n_estimators=5).fit(X, y).predict_proba(X)
        np.testing.assert_array_equal(a, b)
