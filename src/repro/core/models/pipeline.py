"""Model pipelines: preprocessing chain + classifier (Fig. 8).

Each of the paper's models runs behind its own preprocessing pipeline:

* XGB / DT:    FR -> I -> WoE -> C        (trees need no scaling)
* LSVM:        FR -> I -> WoE -> S -> C
* NB-G:        FR -> I -> WoE -> S -> C
* NB-M/C/B:    FR -> I -> WoE -> N -> C   (non-negative features)
* NN:          FR -> I -> WoE -> S -> PCA -> C

The WoE stage lives *outside* these pipelines (it consumes aggregated
records, not matrices; see :class:`repro.core.scrubber.IXPScrubber`), so
the pipeline here is the numeric chain after WoE assembly.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.encoding.pca import PCA
from repro.core.encoding.transforms import (
    FeatureReducer,
    Imputer,
    MinMaxNormalizer,
    Standardizer,
    Transformer,
)
from repro.core.models.base import Classifier
from repro.core.models.bayes import BernoulliNB, ComplementNB, GaussianNB, MultinomialNB
from repro.core.models.boosting import GradientBoostedTrees
from repro.core.models.linear import LinearSVM
from repro.core.models.nn import NeuralNetwork
from repro.core.models.tree import DecisionTree


class ModelPipeline:
    """A fitted chain of transformers feeding a classifier."""

    def __init__(self, transformers: Sequence[Transformer], classifier: Classifier):
        self.transformers = list(transformers)
        self.classifier = classifier

    @property
    def name(self) -> str:
        return self.classifier.name

    def fit(self, X: np.ndarray, y: np.ndarray) -> "ModelPipeline":
        for transformer in self.transformers:
            X = transformer.fit_transform(X)
        self.classifier.fit(X, y)
        return self

    def _transform(self, X: np.ndarray) -> np.ndarray:
        for transformer in self.transformers:
            X = transformer.transform(X)
        return X

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.classifier.predict(self._transform(X))

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return self.classifier.predict_proba(self._transform(X))

    def with_classifier(self, classifier: Classifier) -> "ModelPipeline":
        """Same fitted preprocessing, different (fitted) classifier.

        Used by classifier-only model transfer (§6.4): the local
        preprocessing (incl. local WoE upstream) stays, the classifier
        comes from another vantage point.
        """
        return ModelPipeline(self.transformers, classifier)


#: Factories for each Table 3/5 model name. Keyword arguments override
#: the tuned defaults (Appendix C's bold grid picks, scaled to this
#: reproduction where noted).
def _xgb_pipeline(**params: object) -> ModelPipeline:
    return ModelPipeline(
        [FeatureReducer(), Imputer()], GradientBoostedTrees(**params)  # type: ignore[arg-type]
    )


def _dt_pipeline(**params: object) -> ModelPipeline:
    return ModelPipeline([FeatureReducer(), Imputer()], DecisionTree(**params))  # type: ignore[arg-type]


def _lsvm_pipeline(**params: object) -> ModelPipeline:
    return ModelPipeline(
        [FeatureReducer(), Imputer(), Standardizer()], LinearSVM(**params)  # type: ignore[arg-type]
    )


def _nbg_pipeline(**params: object) -> ModelPipeline:
    return ModelPipeline(
        [FeatureReducer(), Imputer(), Standardizer()], GaussianNB(**params)  # type: ignore[arg-type]
    )


def _nbm_pipeline(**params: object) -> ModelPipeline:
    return ModelPipeline(
        [FeatureReducer(), Imputer(), MinMaxNormalizer()], MultinomialNB(**params)  # type: ignore[arg-type]
    )


def _nbc_pipeline(**params: object) -> ModelPipeline:
    return ModelPipeline(
        [FeatureReducer(), Imputer(), MinMaxNormalizer()], ComplementNB(**params)  # type: ignore[arg-type]
    )


def _nbb_pipeline(**params: object) -> ModelPipeline:
    return ModelPipeline(
        [FeatureReducer(), Imputer(), MinMaxNormalizer()], BernoulliNB(**params)  # type: ignore[arg-type]
    )


def _nn_pipeline(n_pca_components: int = 50, **params: object) -> ModelPipeline:
    return ModelPipeline(
        [FeatureReducer(), Imputer(), Standardizer(), PCA(n_pca_components)],
        NeuralNetwork(**params),  # type: ignore[arg-type]
    )


PIPELINE_FACTORIES: dict[str, Callable[..., ModelPipeline]] = {
    "XGB": _xgb_pipeline,
    "NN": _nn_pipeline,
    "LSVM": _lsvm_pipeline,
    "NB-G": _nbg_pipeline,
    "DT": _dt_pipeline,
    "NB-C": _nbc_pipeline,
    "NB-M": _nbm_pipeline,
    "NB-B": _nbb_pipeline,
}

#: Table 3 model order (the reduced table, without the weak NB variants).
TABLE3_MODELS = ("XGB", "NN", "LSVM", "NB-G", "DT")

#: Table 5 model order (all models).
TABLE5_MODELS = ("XGB", "NN", "LSVM", "NB-G", "DT", "NB-C", "NB-M", "NB-B")


def make_pipeline(name: str, **params: object) -> ModelPipeline:
    """Build the Fig. 8 pipeline for a model name."""
    try:
        factory = PIPELINE_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(PIPELINE_FACTORIES)}"
        ) from None
    return factory(**params)
