"""Layering pass: RS301 layer-contract imports, RS302 external deps.

The ARCHITECTURE.md import DAG is a load-bearing design decision — the
obs layer must stay embeddable anywhere (so it imports nothing from the
project), the substrate layers must not reach up into ``core``, and
``core`` must never depend on ``experiments``/``cli``. Until now the
DAG only lived in prose; this pass turns it into a checked contract.

* **RS301** — a runtime import crossing the DAG: module in layer A
  imports layer B with B not in A's allowed set. Imports under
  ``if TYPE_CHECKING:`` are exempt (annotation-only coupling). A
  subpackage absent from the contract table is flagged too — adding a
  layer means *declaring* it, in ``analysis/config.py`` and
  ARCHITECTURE.md.
* **RS302** — an import of a third-party distribution outside the
  allowlist (numpy, scipy). The repo runs on a frozen toolchain; a new
  dependency should fail loudly at lint time, not at a collaborator's
  first ``import`` error.
"""

from __future__ import annotations

import sys
from typing import Optional

from repro.analysis.config import LintConfig
from repro.analysis.findings import Finding
from repro.analysis.project import Module, Project, runtime_imports

__all__ = ["LayeringPass"]

_STDLIB = frozenset(getattr(sys, "stdlib_module_names", ())) | {
    "__future__",
}


class LayeringPass:
    name = "layering"
    scope = "module"
    rule_ids = ("RS301", "RS302")

    def run(self, project: Project, config: LintConfig) -> list[Finding]:
        findings: list[Finding] = []
        for module in project.modules:
            findings.extend(self.run_module(module, config))
        return findings

    def run_module(self, module: Module, config: LintConfig) -> list[Finding]:
        if module.name.split(".")[0] != config.package:
            return []
        findings: list[Finding] = []
        own_layer = self._layer_of(module.name, config)
        for node, target in runtime_imports(module):
            finding = self._check(module, node, target, own_layer, config)
            if finding is not None:
                findings.append(finding)
        return findings

    @staticmethod
    def _layer_of(dotted: str, config: LintConfig) -> Optional[str]:
        """Layer name of a project module; None for the package root."""
        parts = dotted.split(".")
        if parts[0] != config.package or len(parts) < 2:
            return None
        head = parts[1]
        if head in ("__init__", "__main__"):
            return None
        return head

    def _check(
        self,
        module: Module,
        node,
        target: str,
        own_layer: Optional[str],
        config: LintConfig,
    ) -> Optional[Finding]:
        top = target.split(".")[0]
        if top == config.package:
            target_layer = self._layer_of(target, config)
            if target_layer is None or target_layer == own_layer:
                return None
            if own_layer is None:
                # The package root (__init__, __main__) re-exports the
                # public API; it may import anything.
                return None
            allowed = config.layers.get(own_layer)
            if allowed is None:
                return Finding(
                    rule="RS301",
                    path=module.rel,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    message=(
                        f"layer {own_layer!r} is not declared in the layer "
                        "contract — register it in repro/analysis/config.py "
                        "and docs/ARCHITECTURE.md before importing "
                        f"{target!r}"
                    ),
                    key=f"undeclared-layer:{own_layer}",
                )
            if target_layer not in allowed:
                may = ", ".join(sorted(allowed)) or "stdlib/numpy only"
                return Finding(
                    rule="RS301",
                    path=module.rel,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    message=(
                        f"layer {own_layer!r} must not import layer "
                        f"{target_layer!r} ({target}) — allowed: {may}"
                    ),
                    key=f"layer:{own_layer}->{target_layer}",
                )
            return None
        if top in _STDLIB or top in config.external_allow:
            return None
        return Finding(
            rule="RS302",
            path=module.rel,
            line=node.lineno,
            col=node.col_offset + 1,
            message=(
                f"third-party import {top!r} outside the dependency "
                f"allowlist ({', '.join(sorted(config.external_allow))}) — "
                "the toolchain is frozen by design; gate or stub it"
            ),
            key=f"external:{top}",
        )
