"""Tests for tagging rules, port matches and the curated rule set."""

import pytest

from repro.core.rules.items import LABEL_BENIGN, LABEL_BLACKHOLE, OTHER, ItemEncoder
from repro.core.rules.mining import AssociationRule
from repro.core.rules.model import (
    PortMatch,
    RuleSet,
    RuleStatus,
    TaggingRule,
    tagging_rule_from_association,
)


class TestPortMatch:
    def test_plain_match(self):
        match = PortMatch(values=frozenset({123}))
        assert match.matches(123)
        assert not match.matches(124)

    def test_negated_match(self):
        match = PortMatch(values=frozenset({0, 53}), negated=True)
        assert match.matches(9999)
        assert not match.matches(53)

    def test_render_parse_roundtrip(self):
        match = PortMatch(values=frozenset({0, 17, 19}), negated=True)
        assert PortMatch.parse(match.render()) == match

    def test_render_sorted(self):
        assert PortMatch(values=frozenset({19, 0, 17})).render() == "{0,17,19}"

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PortMatch(values=frozenset())

    def test_rejects_bad_port(self):
        with pytest.raises(ValueError):
            PortMatch(values=frozenset({70000}))

    def test_parse_malformed(self):
        with pytest.raises(ValueError):
            PortMatch.parse("0,17,19")


class TestTaggingRule:
    def make_rule(self, **overrides):
        defaults = dict(
            rule_id="abc123",
            confidence=0.97,
            support=0.02,
            protocol=17,
            port_src=PortMatch(values=frozenset({123})),
            packet_size=(400, 500),
        )
        defaults.update(overrides)
        return TaggingRule(**defaults)

    def test_matches_record(self):
        rule = self.make_rule()
        assert rule.matches_record(17, 123, 9999, 468.0)
        assert not rule.matches_record(6, 123, 9999, 468.0)  # wrong protocol
        assert not rule.matches_record(17, 53, 9999, 468.0)  # wrong port
        assert not rule.matches_record(17, 123, 9999, 600.0)  # wrong size

    def test_packet_size_half_open(self):
        rule = self.make_rule()
        assert rule.matches_record(17, 123, 1, 500.0)  # upper inclusive
        assert not rule.matches_record(17, 123, 1, 400.0)  # lower exclusive

    def test_wildcards(self):
        rule = self.make_rule(protocol=None, packet_size=None)
        assert rule.matches_record(6, 123, 9999, 1400.0)

    def test_rejects_all_wildcards(self):
        with pytest.raises(ValueError):
            TaggingRule(rule_id="x", confidence=0.9, support=0.1)

    def test_with_status(self):
        rule = self.make_rule()
        accepted = rule.with_status(RuleStatus.ACCEPT, notes="looks fine")
        assert accepted.status == RuleStatus.ACCEPT
        assert accepted.notes == "looks fine"
        assert rule.status == RuleStatus.STAGING  # original untouched

    def test_describe(self):
        assert "port_src={123}" in self.make_rule().describe()


class TestFromAssociation:
    def encoder(self):
        return ItemEncoder(src_ports=frozenset({123, 53}), dst_ports=frozenset({80, 443}))

    def test_specific_ports(self):
        rule = AssociationRule(
            antecedent=frozenset({("protocol", 17), ("port_src", 123), ("packet_size", "(400,500]")}),
            consequent=LABEL_BLACKHOLE,
            confidence=0.98,
            support=0.02,
            joint_support=0.019,
        )
        tagging = tagging_rule_from_association(rule, self.encoder())
        assert tagging.protocol == 17
        assert tagging.port_src == PortMatch(values=frozenset({123}))
        assert tagging.packet_size == (400, 500)

    def test_other_becomes_negated_set(self):
        rule = AssociationRule(
            antecedent=frozenset({("port_dst", OTHER)}),
            consequent=LABEL_BLACKHOLE,
            confidence=0.9,
            support=0.1,
            joint_support=0.09,
        )
        tagging = tagging_rule_from_association(rule, self.encoder())
        assert tagging.port_dst.negated
        assert tagging.port_dst.values == frozenset({80, 443})

    def test_rejects_non_blackhole_rule(self):
        rule = AssociationRule(
            antecedent=frozenset({("protocol", 17)}),
            consequent=LABEL_BENIGN,
            confidence=0.9,
            support=0.1,
            joint_support=0.09,
        )
        with pytest.raises(ValueError):
            tagging_rule_from_association(rule, self.encoder())

    def test_stable_rule_ids(self):
        rule = AssociationRule(
            antecedent=frozenset({("protocol", 17), ("port_src", 123)}),
            consequent=LABEL_BLACKHOLE,
            confidence=0.9,
            support=0.1,
            joint_support=0.09,
        )
        a = tagging_rule_from_association(rule, self.encoder())
        b = tagging_rule_from_association(rule, self.encoder())
        assert a.rule_id == b.rule_id


class TestRuleSet:
    def make_rule(self, rule_id: str, confidence: float = 0.95) -> TaggingRule:
        return TaggingRule(
            rule_id=rule_id, confidence=confidence, support=0.01, protocol=17
        )

    def test_lifecycle(self):
        rules = RuleSet([self.make_rule("r1"), self.make_rule("r2")])
        rules.set_status("r1", RuleStatus.ACCEPT)
        rules.set_status("r2", RuleStatus.DECLINE)
        assert [r.rule_id for r in rules.accepted()] == ["r1"]
        assert [r.rule_id for r in rules.declined()] == ["r2"]
        assert rules.staged() == []

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            RuleSet().set_status("nope", RuleStatus.ACCEPT)

    def test_merge_keeps_curation(self):
        """Declined rules never show up again (paper §5.1.2)."""
        curated = RuleSet([self.make_rule("r1")])
        curated.set_status("r1", RuleStatus.DECLINE)
        fresh = RuleSet([self.make_rule("r1"), self.make_rule("r2")])
        merged = curated.merge(fresh)
        assert merged.get("r1").status == RuleStatus.DECLINE
        assert merged.get("r2").status == RuleStatus.STAGING
        assert len(merged) == 2

    def test_contains(self):
        rules = RuleSet([self.make_rule("r1")])
        assert "r1" in rules and "r2" not in rules

    def test_add_replaces(self):
        rules = RuleSet([self.make_rule("r1", confidence=0.9)])
        rules.add(self.make_rule("r1", confidence=0.99))
        assert len(rules) == 1
        assert rules.get("r1").confidence == 0.99
