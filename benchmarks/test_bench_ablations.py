"""E-ABL: ablations of the pipeline's design choices.

Expected shapes: WoE encoding beats raw categorical codes; the
rare-value guard (min_count) prevents train-only leakage; richer rank
features (r=5) do not hurt relative to r=1.
"""

from repro.experiments import ablations


def test_ablations(run_experiment):
    result = run_experiment(ablations)
    print()
    print(result.summary())

    by_key = {(r["ablation"], r["variant"]): r["fbeta"] for r in result.rows}

    # WoE costs nothing in-distribution ...
    assert result.notes["woe_vs_raw_delta"] > -0.02
    assert by_key[("encoding", "WoE (paper)")] > 0.9
    # ... and is the load-bearing encoding under geographic transfer
    # (raw categorical codes have no re-localisation mechanism).
    assert result.notes["woe_vs_raw_transfer_delta"] > 0.01
    assert by_key[("encoding-transfer", "WoE, re-localised (paper)")] > 0.9

    # The min_count guard never hurts and usually helps.
    assert result.notes["min_count_guard_delta"] > -0.01

    # Rank resolution: the paper's r=5 is at least as good as r=1.
    assert result.notes["r5_vs_r1_delta"] > -0.01
    assert by_key[("rank-resolution", "r=5 (paper)")] > 0.9
