#!/usr/bin/env python
"""Geographic model transfer (paper §6.4, Fig. 12).

Trains a scrubber at the large IXP-CE1 and deploys it at the southern-
European IXP-SE in two ways:

* **full transfer** — ship the whole fitted model, including the WoE
  tables that encode IXP-CE1's local knowledge (reflector IPs, member
  ports, locally popular vectors);
* **classifier-only transfer** — re-fit the Weight-of-Evidence encoding
  on IXP-SE's own data and adopt only the classifier.

The paper's headline: WoE encapsulates local knowledge, so the second
variant retains near-local performance while the first degrades.

Run:  python examples/model_transfer.py
"""

import numpy as np

from repro import (
    IXP_CE1,
    IXP_SE,
    IXPFabric,
    IXPScrubber,
    WorkloadGenerator,
    balance,
    fbeta_score,
)


def build_site(profile, days=4):
    fabric = IXPFabric(profile)
    capture = WorkloadGenerator(fabric).generate(0, days)
    balanced = balance(capture.labeled_flows(), np.random.default_rng(profile.seed))
    scrubber = IXPScrubber()
    scrubber.mine_tagging_rules(balanced.flows)
    data = scrubber.aggregate_flows(balanced.flows)
    # Temporal split: first 3/4 to train, final 1/4 to test.
    boundary = int(np.quantile(data.bins, 0.75))
    train, test = data.time_split(boundary)
    scrubber.fit_aggregated(train)
    return scrubber, train, test


def main() -> None:
    print("=== Fitting source (IXP-CE1) and destination (IXP-SE) ===")
    source, _, source_test = build_site(IXP_CE1)
    destination, _, destination_test = build_site(IXP_SE)

    labels = destination_test.labels.astype(int)

    local = fbeta_score(labels, destination.predict_aggregated(destination_test))
    full = fbeta_score(labels, source.predict_aggregated(destination_test))
    transferred = destination.transfer_classifier_from(source)
    classifier_only = fbeta_score(
        labels, transferred.predict_aggregated(destination_test)
    )
    source_home = fbeta_score(
        source_test.labels.astype(int), source.predict_aggregated(source_test)
    )

    print("\nF(beta=0.5) on IXP-SE's test period:")
    print(f"  IXP-CE1 model at home (reference):     {source_home:.3f}")
    print(f"  locally trained IXP-SE model:          {local:.3f}")
    print(f"  full transfer (CE1 model + CE1 WoE):   {full:.3f}")
    print(f"  classifier-only (CE1 model + SE WoE):  {classifier_only:.3f}")

    overlap = _reflector_overlap(source, destination)
    print(f"\nreflector overlap between the sites (WoE > 1 src IPs): {overlap:.1%}")
    print(
        "\nTakeaway: the classifier travels; the local knowledge (WoE) "
        "must be re-learned at the destination — exactly the paper's "
        "Fig. 12 result."
    )


def _reflector_overlap(a: IXPScrubber, b: IXPScrubber) -> float:
    reflectors_a = a.woe.table("src_ip").high_evidence_values(1.0)
    reflectors_b = b.woe.table("src_ip").high_evidence_values(1.0)
    if not reflectors_a:
        return 0.0
    return len(reflectors_a & reflectors_b) / len(reflectors_a)


if __name__ == "__main__":
    main()
