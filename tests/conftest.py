"""Shared fixtures: small deterministic datasets and captures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.labeling import balance, label_capture
from repro.ixp.fabric import IXPFabric
from repro.ixp.profiles import IXPProfile
from repro.netflow.dataset import FlowDataset
from repro.netflow.record import FlowRecord
from repro.traffic.workload import WorkloadGenerator


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0xDECAF)


@pytest.fixture
def tiny_profile() -> IXPProfile:
    """A miniature vantage point for fast end-to-end tests."""
    return IXPProfile(
        name="IXP-TEST",
        region=7,
        n_members=8,
        traffic_scale=0.01,
        attacks_per_day=12.0,
        attack_intensity=25.0,
        benign_flows_per_target=5.0,
        benign_targets_per_minute=24,
        bins_per_day=48,
        seed=42,
    )


@pytest.fixture
def tiny_fabric(tiny_profile) -> IXPFabric:
    return IXPFabric(tiny_profile)


@pytest.fixture
def tiny_capture(tiny_fabric):
    return WorkloadGenerator(tiny_fabric).generate(0, 2)


@pytest.fixture
def labeled_flows(tiny_capture) -> FlowDataset:
    return label_capture(tiny_capture)


@pytest.fixture
def balanced_flows(labeled_flows) -> FlowDataset:
    return balance(labeled_flows, np.random.default_rng(1)).flows


def make_flow(
    time=0,
    src_ip=0x0A000001,
    dst_ip=0x0A000002,
    src_port=123,
    dst_port=4444,
    protocol=17,
    packets=10,
    bytes_=4680,
    src_mac=1,
    blackhole=False,
) -> FlowRecord:
    """Convenience constructor with sensible defaults."""
    return FlowRecord(
        time=time,
        src_ip=src_ip,
        dst_ip=dst_ip,
        src_port=src_port,
        dst_port=dst_port,
        protocol=protocol,
        packets=packets,
        bytes_=bytes_,
        src_mac=src_mac,
        blackhole=blackhole,
    )


@pytest.fixture
def handmade_flows() -> FlowDataset:
    """Twelve hand-written flows across two bins and three targets."""
    records = [
        # Bin 0, target A: NTP attack + one benign flow.
        make_flow(time=10, src_ip=1, dst_ip=100, src_port=123, packets=50, bytes_=23400, blackhole=True),
        make_flow(time=20, src_ip=2, dst_ip=100, src_port=123, packets=40, bytes_=18720, blackhole=True),
        make_flow(time=30, src_ip=3, dst_ip=100, src_port=443, dst_port=5555, protocol=6, packets=4, bytes_=4800),
        # Bin 0, target B: benign web.
        make_flow(time=15, src_ip=4, dst_ip=200, src_port=443, dst_port=6666, protocol=6, packets=8, bytes_=9600),
        make_flow(time=45, src_ip=5, dst_ip=200, src_port=80, dst_port=7777, protocol=6, packets=2, bytes_=1800),
        # Bin 1, target A: DNS attack.
        make_flow(time=70, src_ip=6, dst_ip=100, src_port=53, packets=30, bytes_=33000, blackhole=True),
        make_flow(time=80, src_ip=7, dst_ip=100, src_port=53, packets=20, bytes_=22000, blackhole=True),
        make_flow(time=90, src_ip=8, dst_ip=100, src_port=0, dst_port=0, packets=25, bytes_=37000, blackhole=True),
        # Bin 1, target C: benign QUIC.
        make_flow(time=75, src_ip=9, dst_ip=300, src_port=443, dst_port=8888, packets=6, bytes_=7500),
        make_flow(time=85, src_ip=10, dst_ip=300, src_port=443, dst_port=9999, packets=3, bytes_=3750),
        make_flow(time=95, src_ip=11, dst_ip=300, src_port=53, dst_port=1111, packets=1, bytes_=120),
        make_flow(time=99, src_ip=12, dst_ip=300, src_port=22, dst_port=2222, protocol=6, packets=5, bytes_=1500),
    ]
    return FlowDataset.from_records(records)
