"""Rule-set minimisation — Algorithm 1 of the paper (§5.1.1).

Two rules whose antecedents are in a proper-subset relation (and share
the blackhole consequent) are largely redundant. Algorithm 1 compares
each such pair: the more general rule ``i`` (``A_i ⊂ A_j``) is removed
when its confidence and support advantage over the more specific rule
``j`` stays below the loss thresholds ``L_c`` / ``L_s`` — deleting it
loses almost nothing, and the surviving specific rule makes the more
precise ACL.

The paper sets ``L_c = L_s = 0.01`` after the sensitivity analysis of
Appendix A (reproduced in ``repro.experiments.fig15_sensitivity``).

One liberty is taken with the paper's pseudocode: line 9 reads
``D ← {i}`` (assignment), which would only ever delete one rule per
round; we accumulate ``D ← D ∪ {i}`` as the surrounding text clearly
intends ("remove rules from R" iterates over all of D).
"""

from __future__ import annotations

from repro.core.rules.mining import AssociationRule


def minimize_rules(
    rules: list[AssociationRule],
    confidence_loss: float = 0.01,
    support_loss: float = 0.01,
) -> list[AssociationRule]:
    """Apply Algorithm 1 to a list of association rules.

    Pairwise subset tests between antecedents: rule ``i`` is marked for
    deletion when some rule ``j`` exists with ``A_i ⊂ A_j`` and
    ``c_i - c_j < L_c`` and ``s_i - s_j < L_s``. The loop repeats until
    a fixed point is reached.

    Complexity is O(n^2) per round, matching the paper ("execution time
    never exceeded 60 seconds" on a consumer laptop).
    """
    if confidence_loss < 0 or support_loss < 0:
        raise ValueError("loss thresholds must be non-negative")
    remaining = list(rules)
    while True:
        to_delete: set[int] = set()
        n = len(remaining)
        for i in range(n):
            if i in to_delete:
                continue
            rule_i = remaining[i]
            for j in range(n):
                if i == j or j in to_delete:
                    continue
                rule_j = remaining[j]
                if rule_i.antecedent < rule_j.antecedent:
                    if (
                        rule_i.confidence - rule_j.confidence < confidence_loss
                        and rule_i.support - rule_j.support < support_loss
                    ):
                        to_delete.add(i)
                        break
        if not to_delete:
            break
        remaining = [r for k, r in enumerate(remaining) if k not in to_delete]
    return remaining
