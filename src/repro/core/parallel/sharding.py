"""Partitioning flow records across worker shards by target prefix.

The unit of parallelism is the *target*: every per-minute aggregate,
verdict and ACL the scrubber produces is keyed by destination IP, so
routing all flows of one target prefix to the same shard makes shards
fully independent — the union of per-shard aggregations equals the
global aggregation, which is what makes sharded verdicts bit-identical
to serial ones (see ``docs/ARCHITECTURE.md``).

Assignment hashes the target's /24 prefix (configurable) through a
SplitMix64 finisher, a platform-stable avalanche mix — ``hash()`` would
vary per process (PYTHONHASHSEED) and break cross-run determinism.
Operators can pin prefixes to specific shards (e.g. to isolate a
customer under sustained attack); pins are kept in a
:class:`~repro.bgp.prefix.PrefixTrie` with longest-prefix-match
semantics, mirroring how the blackhole registry resolves coverage.
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from repro.bgp.prefix import Prefix, PrefixTrie
from repro.netflow.dataset import FlowDataset

__all__ = ["ShardPlan"]


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """SplitMix64 finisher: stable 64-bit avalanche mix (vectorised)."""
    x = x + np.uint64(0x9E3779B97F4A7C15)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


class ShardPlan:
    """Deterministic mapping from target address to shard index.

    Parameters
    ----------
    n_shards:
        Number of worker shards.
    prefix_bits:
        Sharding granularity: addresses sharing their top ``prefix_bits``
        bits always land on the same shard. /24 matches the granularity
        at which the paper's IXPs blackhole and mitigate.
    pinned:
        Optional explicit ``{prefix: shard}`` overrides, applied with
        longest-prefix-match precedence over the hash assignment.
    """

    def __init__(
        self,
        n_shards: int,
        prefix_bits: int = 24,
        pinned: Optional[Mapping[Prefix, int]] = None,
    ):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if not 0 <= prefix_bits <= 32:
            raise ValueError("prefix_bits must be in [0, 32]")
        self.n_shards = n_shards
        self.prefix_bits = prefix_bits
        self._trie: PrefixTrie[int] = PrefixTrie()
        # Pins ordered shortest prefix first, so vectorised application
        # lets longer (more specific) prefixes overwrite shorter ones —
        # the same precedence longest_match gives scalar lookups.
        self._pins: list[tuple[Prefix, int]] = []
        for prefix, shard in sorted(
            (pinned or {}).items(), key=lambda item: item[0].length
        ):
            if not 0 <= shard < n_shards:
                raise ValueError(f"pinned shard {shard} out of range")
            self._trie.insert(prefix, shard)
            self._pins.append((prefix, shard))

    def assign(self, addresses: np.ndarray) -> np.ndarray:
        """Shard index (int64) for each target address."""
        prefixes = addresses.astype(np.uint64)
        if self.prefix_bits < 32:
            prefixes = prefixes >> np.uint64(32 - self.prefix_bits)
        shards = (_splitmix64(prefixes) % np.uint64(self.n_shards)).astype(np.int64)
        for prefix, shard in self._pins:
            mask = (addresses.astype(np.uint64) & np.uint64(prefix.mask)) == np.uint64(
                prefix.network
            )
            shards[mask] = shard
        return shards

    def shard_of(self, address: int) -> int:
        """Shard index of one target address (pin-aware scalar lookup)."""
        match = self._trie.longest_match(int(address))
        if match is not None:
            return match[1]
        return int(self.assign(np.array([address], dtype=np.uint64))[0])

    def split(self, flows: FlowDataset) -> list[FlowDataset]:
        """Partition flows into per-shard datasets by target address."""
        ids = self.assign(flows.dst_ip)
        return [flows.select(ids == s) for s in range(self.n_shards)]
