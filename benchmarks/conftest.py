"""Benchmark configuration.

Each benchmark regenerates one table/figure of the paper at the
``small`` scale, timing the experiment end to end (corpus building is
cached across benchmarks in the user cache directory) and asserting the
paper's qualitative shape — who wins, what rises, what degrades.

Run:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_experiment(benchmark):
    """Run an experiment module once under the benchmark timer."""

    def runner(module, **kwargs):
        return benchmark.pedantic(
            lambda: module.run(scale="small", **kwargs), rounds=1, iterations=1
        )

    return runner
