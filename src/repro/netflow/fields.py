"""Field constants for flow records.

Protocol numbers, well-known service ports, and the DDoS vector port
catalogue used throughout the paper (Fig. 4a lists the well-known DDoS
ports observed in blackholing traffic).
"""

from __future__ import annotations

# IANA protocol numbers.
PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17
PROTO_GRE = 47

PROTOCOL_NAMES = {
    PROTO_ICMP: "ICMP",
    PROTO_TCP: "TCP",
    PROTO_UDP: "UDP",
    PROTO_GRE: "GRE",
}

# Sentinel source port for UDP fragments: non-first fragments carry no
# L4 header, flow exporters report port 0.
PORT_FRAGMENT = 0

# Well-known service ports of DDoS reflection/amplification vectors
# (protocol, source port on the reflector side).
PORT_DNS = 53
PORT_NTP = 123
PORT_SNMP = 161
PORT_LDAP = 389  # CLDAP reflection uses UDP/389
PORT_SSDP = 1900
PORT_MEMCACHED = 11211
PORT_CHARGEN = 19
PORT_WSD = 3702  # WS-Discovery
PORT_APPLE_RD = 3283  # Apple Remote Desktop (ARMS)
PORT_MSSQL = 1434
PORT_RPCBIND = 111
PORT_NETBIOS = 137
PORT_RIP = 520
PORT_OPENVPN = 1194
PORT_TFTP = 69
PORT_UBIQUITI = 10001  # Ubiquiti Service Discovery
PORT_WCCP = 2048
PORT_DHCPDISC = 67
PORT_MICROSOFT_TS = 3389

# Common benign service ports.
PORT_HTTP = 80
PORT_HTTPS = 443
PORT_QUIC = 443
PORT_SSH = 22
PORT_SMTP = 25
PORT_IMAPS = 993
PORT_RTMP = 1935

#: Ports considered "well-known DDoS ports" for the Fig. 4a breakdown,
#: keyed by (protocol, source port).
WELL_KNOWN_DDOS_PORTS = {
    (PROTO_UDP, PORT_DNS): "DNS",
    (PROTO_UDP, PORT_NTP): "NTP",
    (PROTO_UDP, PORT_SNMP): "SNMP",
    (PROTO_UDP, PORT_LDAP): "LDAP",
    (PROTO_UDP, PORT_SSDP): "SSDP",
    (PROTO_UDP, PORT_MEMCACHED): "memcached",
    (PROTO_UDP, PORT_CHARGEN): "chargen",
    (PROTO_UDP, PORT_WSD): "WS-Discovery",
    (PROTO_UDP, PORT_APPLE_RD): "Apple RD",
    (PROTO_UDP, PORT_MSSQL): "MSSQL",
    (PROTO_UDP, PORT_RPCBIND): "rpcbind",
    (PROTO_TCP, PORT_RPCBIND): "rpcbind (TCP)",
    (PROTO_TCP, PORT_DNS): "DNS (TCP)",
    (PROTO_UDP, PORT_NETBIOS): "NetBios",
    (PROTO_UDP, PORT_RIP): "RIP",
    (PROTO_UDP, PORT_OPENVPN): "OpenVPN",
    (PROTO_UDP, PORT_TFTP): "TFTP",
    (PROTO_UDP, PORT_UBIQUITI): "Ubiq. SD",
    (PROTO_UDP, PORT_WCCP): "WCCP",
    (PROTO_UDP, PORT_DHCPDISC): "DHCPDisc.",
    (PROTO_GRE, 0): "GRE",
    (PROTO_UDP, PORT_MICROSOFT_TS): "Micr. TS",
}


def ddos_port_label(protocol: int, src_port: int) -> str | None:
    """Return the DDoS vector label for a (protocol, source port) pair.

    Returns ``None`` when the pair is not a well-known DDoS port.
    UDP fragments (source port 0) are labelled ``"UDP Fragm."``, matching
    the paper's Fig. 4a category.
    """
    if protocol == PROTO_UDP and src_port == PORT_FRAGMENT:
        return "UDP Fragm."
    return WELL_KNOWN_DDOS_PORTS.get((protocol, src_port))
