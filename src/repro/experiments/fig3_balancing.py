"""Experiment E-F3: blackholing share and balancing validation (Fig. 3).

* Fig. 3a — CDF of the per-minute blackholing traffic share per IXP.
  Expected shape: share never exceeds ~0.8 % and stays below 0.1 % in
  ~90 % of the bins.
* Fig. 3c — per-bin flows-per-unique-IP, blackhole vs benign class, and
  their Pearson correlation. Expected shape: clearly positive
  correlation (paper: r = 0.77, p < 0.01).
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.experiments.common import ExperimentResult, check_scale
from repro.experiments.datasets import DAYS_BY_SCALE, balanced_corpus, build_capture
from repro.ixp.profiles import ALL_PROFILES


def run(scale: str = "small") -> ExperimentResult:
    check_scale(scale)
    n_days = DAYS_BY_SCALE[scale]
    result = ExperimentResult(experiment="fig3-balancing")

    bh_per_ip_all: list[np.ndarray] = []
    benign_per_ip_all: list[np.ndarray] = []
    for profile in ALL_PROFILES:
        capture = build_capture(profile, n_days)
        share = capture.bin_stats.blackhole_share()
        sorted_share = np.sort(share)
        cdf_y = np.arange(1, sorted_share.size + 1) / sorted_share.size
        result.series[f"fig3a/{profile.name}"] = (sorted_share.tolist(), cdf_y.tolist())

        balanced = balanced_corpus(profile, n_days)
        bh, benign = balanced.report.flows_per_ip()
        bh_per_ip_all.append(bh)
        benign_per_ip_all.append(benign)
        result.series[f"fig3c/{profile.name}"] = (bh.tolist(), benign.tolist())

        result.rows.append(
            {
                "ixp": profile.name,
                "max_share": float(share.max()),
                "median_share": float(np.median(share)),
                "p90_share": float(np.percentile(share, 90)),
                "share_below_0.1pct": float((share < 0.001).mean()),
                "pearson_r": balanced.report.pearson_r(),
            }
        )

    bh_all = np.concatenate(bh_per_ip_all)
    benign_all = np.concatenate(benign_per_ip_all)
    r, p = stats.pearsonr(bh_all, benign_all)
    result.notes["pearson_r_all"] = float(r)
    result.notes["pearson_p_all"] = float(p)
    result.notes["max_share_any_ixp"] = max(row["max_share"] for row in result.rows)
    return result
