"""E-R1: rule-mining funnel (§5.1.1: 7859 -> 1469 -> 367 shape)."""

from repro.experiments import rule_mining


def test_rule_mining_funnel(run_experiment):
    result = run_experiment(rule_mining)
    print()
    print(result.summary())

    counts = [row["rules"] for row in result.rows]
    all_rules, blackhole_rules, minimized = counts

    # Funnel shape: each stage is a significant reduction; the final set
    # is small enough for manual curation.
    assert all_rules > blackhole_rules > minimized
    assert result.notes["stage1_reduction"] > 0.5   # paper: 0.81
    assert result.notes["stage2_reduction"] > 0.5   # paper: 0.75
    assert minimized < 500
    assert minimized > 10
