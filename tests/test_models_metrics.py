"""Tests for classification metrics (Table 3 columns)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.models.metrics import (
    ConfusionMatrix,
    ModelScore,
    f1_score,
    fbeta_score,
    prediction_cost_mcc,
)


class TestConfusionMatrix:
    def test_from_predictions(self):
        y_true = np.array([1, 1, 0, 0, 1])
        y_pred = np.array([1, 0, 0, 1, 1])
        cm = ConfusionMatrix.from_predictions(y_true, y_pred)
        assert (cm.tp, cm.fn, cm.tn, cm.fp) == (2, 1, 1, 1)

    def test_rates(self):
        cm = ConfusionMatrix(tp=8, tn=6, fp=2, fn=4)
        assert cm.tpr == pytest.approx(8 / 12)
        assert cm.tnr == pytest.approx(6 / 8)
        assert cm.fpr == pytest.approx(2 / 8)
        assert cm.fnr == pytest.approx(4 / 12)
        assert cm.tpr + cm.fnr == pytest.approx(1.0)
        assert cm.tnr + cm.fpr == pytest.approx(1.0)

    def test_f1_matches_paper_formula(self):
        """F1 = tp / (tp + (fp + fn)/2), §6.1."""
        cm = ConfusionMatrix(tp=90, tn=80, fp=10, fn=20)
        assert cm.f1() == pytest.approx(90 / (90 + 0.5 * (10 + 20)))

    def test_fbeta_matches_paper_formula(self):
        """F_beta = (1+b^2) tp / ((1+b^2) tp + b^2 fn + fp), §6.1."""
        cm = ConfusionMatrix(tp=90, tn=80, fp=10, fn=20)
        b2 = 0.25
        expected = (1 + b2) * 90 / ((1 + b2) * 90 + b2 * 20 + 10)
        assert cm.fbeta(0.5) == pytest.approx(expected)

    def test_fbeta_half_penalises_fp_more(self):
        many_fp = ConfusionMatrix(tp=90, tn=90, fp=10, fn=0)
        many_fn = ConfusionMatrix(tp=90, tn=90, fp=0, fn=10)
        assert many_fp.fbeta(0.5) < many_fn.fbeta(0.5)

    def test_perfect_classifier(self):
        cm = ConfusionMatrix(tp=50, tn=50, fp=0, fn=0)
        assert cm.f1() == 1.0 and cm.fbeta() == 1.0 and cm.accuracy == 1.0

    def test_degenerate_empty(self):
        cm = ConfusionMatrix(tp=0, tn=0, fp=0, fn=0)
        assert cm.f1() == 0.0 and cm.fbeta() == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            ConfusionMatrix.from_predictions(np.array([1]), np.array([1, 0]))

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            ConfusionMatrix(1, 1, 1, 1).fbeta(0)

    def test_precision_recall(self):
        cm = ConfusionMatrix(tp=8, tn=6, fp=2, fn=4)
        assert cm.precision == pytest.approx(0.8)
        assert cm.recall == cm.tpr


class TestHelpers:
    def test_f1_score_helper(self):
        y = np.array([1, 0, 1, 0])
        assert f1_score(y, y) == 1.0

    def test_fbeta_score_helper(self):
        y_true = np.array([1, 0, 1, 0])
        y_pred = np.array([1, 1, 1, 0])
        cm = ConfusionMatrix.from_predictions(y_true, y_pred)
        assert fbeta_score(y_true, y_pred) == pytest.approx(cm.fbeta())

    def test_model_score_from_confusion(self):
        cm = ConfusionMatrix(tp=9, tn=9, fp=1, fn=1)
        score = ModelScore.from_confusion("XGB", cm, mcc=0.5)
        assert score.model == "XGB"
        assert score.fbeta == pytest.approx(cm.fbeta())
        assert score.mcc == 0.5


class TestPredictionCost:
    def test_positive_cost(self):
        X = np.zeros((100, 3))
        cost = prediction_cost_mcc(lambda X: X.sum(axis=1), X, runs=3)
        assert cost > 0.0

    def test_rejects_zero_runs(self):
        with pytest.raises(ValueError):
            prediction_cost_mcc(lambda X: X, np.zeros((1, 1)), runs=0)

    def test_slower_predictor_costs_more(self):
        X = np.zeros((50, 3))

        def slow(X):
            for _ in range(200):
                X = X + 0.0
            return X

        fast_cost = prediction_cost_mcc(lambda X: X, X, runs=3)
        slow_cost = prediction_cost_mcc(slow, X, runs=3)
        assert slow_cost > fast_cost


@settings(max_examples=30, deadline=None)
@given(
    y_true=st.lists(st.integers(0, 1), min_size=2, max_size=100),
    seed=st.integers(0, 10),
)
def test_confusion_counts_partition(y_true, seed):
    y_true = np.array(y_true)
    y_pred = np.random.default_rng(seed).integers(0, 2, size=y_true.shape[0])
    cm = ConfusionMatrix.from_predictions(y_true, y_pred)
    assert cm.total == y_true.shape[0]
    assert cm.tp + cm.fn == int(y_true.sum())
    assert cm.tn + cm.fp == int((1 - y_true).sum())
