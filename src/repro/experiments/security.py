"""Experiment E-SEC: data poisoning and the WoE-override defense
(paper Appendix E).

The paper argues that poisoning IXP Scrubber is expensive: to flip a
feature's Weight of Evidence the attacker must inject traffic volumes
comparable to what legitimately carries that feature, and the operator
can always pin a feature's WoE to a constant (§6.6).

This experiment simulates scenario (ii) of Appendix E: the attacker
rents a port, sends HTTPS-looking traffic to his own address space and
blackholes that space, trying to drive WoE(source port 443) positive so
the classifier starts flagging real web traffic. We sweep the poison
volume (as a fraction of the training corpus), measure the poisoned
WoE and the false-positive rate on clean data, and then apply the
operator defense — pinning WoE(443/80) negative — to show recovery.
"""

from __future__ import annotations

import numpy as np

from repro.core.encoding.matrix import assemble
from repro.core.encoding.woe import WoEEncoder
from repro.core.features.aggregation import aggregate
from repro.core.models.metrics import ConfusionMatrix
from repro.core.models.pipeline import make_pipeline
from repro.core.models.selection import train_test_split
from repro.experiments.common import ExperimentResult, check_scale
from repro.experiments.datasets import DAYS_BY_SCALE, balanced_corpus
from repro.ixp.profiles import IXP_US1
from repro.netflow import fields
from repro.netflow.dataset import FlowDataset

#: Poison volume sweep, as a fraction of the clean training flows.
POISON_FRACTIONS = (0.0, 0.02, 0.05, 0.1, 0.2)

#: Attacker-controlled address space (outside all legitimate blocks).
_ATTACKER_SOURCES = 0xDE000000
_ATTACKER_VICTIMS = 0xDF000000


def _poison_flows(n: int, start: int, end: int, rng: np.random.Generator) -> FlowDataset:
    """HTTPS-mimicking flows to attacker-blackholed space."""
    n_victims = max(4, n // 200)
    victims = _ATTACKER_VICTIMS + rng.integers(0, 4096, size=n_victims).astype(np.uint32)
    return FlowDataset(
        {
            "time": rng.integers(start, end, size=n).astype(np.int64),
            "src_ip": (_ATTACKER_SOURCES + rng.integers(0, 1024, size=n)).astype(
                np.uint32
            ),
            "dst_ip": rng.choice(victims, size=n),
            "src_port": np.full(n, fields.PORT_HTTPS, dtype=np.uint16),
            "dst_port": rng.integers(1024, 65536, size=n).astype(np.uint16),
            "protocol": np.full(n, fields.PROTO_TCP, dtype=np.uint8),
            "packets": rng.geometric(0.2, size=n).astype(np.int64),
            "bytes": rng.integers(4000, 20000, size=n).astype(np.int64),
            # The attacker blackholes his own space: flows arrive labeled.
            "src_mac": np.full(n, 0xA77AC4E2, dtype=np.uint64),
            "blackhole": np.ones(n, dtype=bool),
        }
    )


def run(scale: str = "small", seed: int = 13) -> ExperimentResult:
    check_scale(scale)
    n_days = DAYS_BY_SCALE[scale]
    clean = balanced_corpus(IXP_US1, n_days).flows

    rng = np.random.default_rng(seed)
    clean_agg = aggregate(clean)
    train_idx, test_idx = train_test_split(
        len(clean_agg), 1.0 / 3.0, rng, stratify=clean_agg.labels
    )
    test = clean_agg.select(test_idx)
    test_labels = test.labels.astype(int)
    train_records = clean_agg.select(train_idx)

    result = ExperimentResult(experiment="appendix-e-security")
    start, end = int(clean.time.min()), int(clean.time.max()) + 1

    for fraction in POISON_FRACTIONS:
        n_poison = int(fraction * len(clean))
        if n_poison:
            poison = _poison_flows(n_poison, start, end, rng)
            poisoned_flows = FlowDataset.concat([clean, poison]).sort_by_time()
            poisoned_agg = aggregate(poisoned_flows)
            # Rebuild the training set: original training records plus
            # every attacker record (they are all "new targets").
            attacker_mask = poisoned_agg.targets >= np.uint32(_ATTACKER_VICTIMS)
            keep = attacker_mask.copy()
            # Map original train rows into the re-aggregated corpus by
            # (bin, target) key membership.
            train_keys = set(
                zip(train_records.bins.tolist(), train_records.targets.tolist())
            )
            for i in np.flatnonzero(~attacker_mask):
                if (int(poisoned_agg.bins[i]), int(poisoned_agg.targets[i])) in train_keys:
                    keep[i] = True
            train = poisoned_agg.select(keep)
        else:
            train = train_records

        woe = WoEEncoder().fit(train)
        woe_https = woe.table("src_port").encode_value(fields.PORT_HTTPS)

        pipeline = make_pipeline("XGB")
        matrix_train = assemble(train, woe)
        pipeline.fit(matrix_train.X, matrix_train.y)
        cm = ConfusionMatrix.from_predictions(
            test_labels, pipeline.predict(assemble(test, woe).X)
        )
        row = {
            "poison_fraction": fraction,
            "defense": "none",
            "woe_https": woe_https,
            "fpr_clean_test": cm.fpr,
            "fbeta_clean_test": cm.fbeta(),
        }
        result.rows.append(row)

        if n_poison:
            # Operator defense: pin the well-known web ports negative.
            woe.table("src_port").set_override(fields.PORT_HTTPS, -2.0)
            woe.table("src_port").set_override(fields.PORT_HTTP, -2.0)
            defended = make_pipeline("XGB")
            matrix_defended = assemble(train, woe)
            defended.fit(matrix_defended.X, matrix_defended.y)
            cm_def = ConfusionMatrix.from_predictions(
                test_labels, defended.predict(assemble(test, woe).X)
            )
            result.rows.append(
                {
                    "poison_fraction": fraction,
                    "defense": "woe-override",
                    "woe_https": -2.0,
                    "fpr_clean_test": cm_def.fpr,
                    "fbeta_clean_test": cm_def.fbeta(),
                }
            )

    baseline = result.rows[0]
    worst = max(
        (r for r in result.rows if r["defense"] == "none"),
        key=lambda r: r["fpr_clean_test"],
    )
    defended_rows = [r for r in result.rows if r["defense"] == "woe-override"]
    result.notes["baseline_fpr"] = baseline["fpr_clean_test"]
    result.notes["worst_poisoned_fpr"] = worst["fpr_clean_test"]
    result.notes["worst_poison_fraction"] = worst["poison_fraction"]
    if defended_rows:
        result.notes["defended_fpr_at_worst"] = min(
            r["fpr_clean_test"] for r in defended_rows
        )
    result.notes["baseline_woe_https"] = baseline["woe_https"]
    result.notes["max_woe_https"] = max(
        r["woe_https"] for r in result.rows if r["defense"] == "none"
    )
    return result
