"""Item encoding: flows -> transactions for association rule mining.

Association rule mining operates on *transactions* (sets of categorical
items). A sampled flow becomes a transaction of header items::

    {protocol=17, port_src=123, port_dst=OTHER, packet_size=(400,500]}
    + the class item (blackhole / benign)

Transport ports are high-cardinality, so only ports that are *popular*
in the mining data keep their identity; everything else collapses into
an ``OTHER`` category. When a rule's antecedent contains ``OTHER``, its
ACL rendering is the negation of the popular port set — which is exactly
the ``~{0,17,19,21,...}`` notation of the paper's released rules
(Fig. 6, Appendix F).

Packet sizes are binned into 100-byte intervals, rendered ``(400,500]``.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.netflow.dataset import FlowDataset

#: Attribute names, in canonical order.
ATTRIBUTES = ("protocol", "port_src", "port_dst", "packet_size")

#: Class-label attribute.
LABEL_ATTRIBUTE = "label"
LABEL_BLACKHOLE = (LABEL_ATTRIBUTE, "blackhole")
LABEL_BENIGN = (LABEL_ATTRIBUTE, "benign")

#: Sentinel value for the collapsed port category.
OTHER = "OTHER"

#: Width of packet-size bins in bytes.
PACKET_SIZE_BIN = 100

#: An item is an (attribute, value) pair; values are ints, bin labels or
#: the ``OTHER`` sentinel.
Item = tuple[str, object]


def packet_size_bin_label(size: float) -> str:
    """Map a mean packet size to its bin label, e.g. ``"(400,500]"``."""
    if size <= 0:
        raise ValueError("packet size must be positive")
    upper = int(np.ceil(size / PACKET_SIZE_BIN)) * PACKET_SIZE_BIN
    return f"({upper - PACKET_SIZE_BIN},{upper}]"


def parse_packet_size_bin(label: str) -> tuple[int, int]:
    """Inverse of :func:`packet_size_bin_label`: ``"(400,500]"`` -> (400, 500)."""
    if not (label.startswith("(") and label.endswith("]")):
        raise ValueError(f"malformed packet size bin: {label!r}")
    low_text, _, high_text = label[1:-1].partition(",")
    return int(low_text), int(high_text)


@dataclass(frozen=True)
class ItemEncoder:
    """Holds the popular-port vocabularies learned from mining data.

    ``src_ports`` / ``dst_ports`` are the ports that keep their identity;
    all other ports map to ``OTHER``. The sets are needed again at
    matching time to give ``OTHER`` its negated-set ACL semantics.
    """

    src_ports: frozenset[int]
    dst_ports: frozenset[int]

    @classmethod
    def fit(
        cls,
        flows: FlowDataset,
        top_k: int = 40,
        min_share: float = 0.001,
    ) -> "ItemEncoder":
        """Learn popular port vocabularies from ``flows``.

        A port is popular when it is among the ``top_k`` most frequent
        ports of its direction *and* carries at least ``min_share`` of
        flows.
        """
        if len(flows) == 0:
            return cls(src_ports=frozenset(), dst_ports=frozenset())

        def popular(ports: np.ndarray) -> frozenset[int]:
            values, counts = np.unique(ports, return_counts=True)
            order = np.argsort(counts)[::-1][:top_k]
            threshold = max(1, int(min_share * ports.shape[0]))
            return frozenset(int(v) for v, c in zip(values[order], counts[order]) if c >= threshold)

        return cls(popular(flows.src_port), popular(flows.dst_port))

    def encode(self, flows: FlowDataset) -> list[tuple[Item, ...]]:
        """Encode each flow as a transaction (without the class item)."""
        protocols = flows.protocol
        src_ports = flows.src_port
        dst_ports = flows.dst_port
        sizes = flows.packet_size
        out: list[tuple[Item, ...]] = []
        for i in range(len(flows)):
            src: object = int(src_ports[i]) if int(src_ports[i]) in self.src_ports else OTHER
            dst: object = int(dst_ports[i]) if int(dst_ports[i]) in self.dst_ports else OTHER
            out.append(
                (
                    ("protocol", int(protocols[i])),
                    ("port_src", src),
                    ("port_dst", dst),
                    ("packet_size", packet_size_bin_label(float(sizes[i]))),
                )
            )
        return out

    def encode_labeled(self, flows: FlowDataset) -> list[tuple[Item, ...]]:
        """Encode flows including the class item from the blackhole label."""
        transactions = self.encode(flows)
        labels = flows.blackhole
        return [
            t + (LABEL_BLACKHOLE if labels[i] else LABEL_BENIGN,)
            for i, t in enumerate(transactions)
        ]


def deduplicate(
    transactions: list[tuple[Item, ...]],
) -> list[tuple[tuple[Item, ...], int]]:
    """Collapse identical transactions into (transaction, weight) pairs.

    Flow header combinations repeat massively; weighting makes FP-Growth
    run on the distinct combinations only.
    """
    counts: dict[tuple[Item, ...], int] = {}
    for t in transactions:
        key = tuple(sorted(t))
        counts[key] = counts.get(key, 0) + 1
    return list(counts.items())
