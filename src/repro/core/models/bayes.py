"""Naive Bayes classifiers: Gaussian, multinomial, complement, Bernoulli.

The four variants of the paper (NB-G / NB-M / NB-C / NB-B, Table 5).
The non-Gaussian variants assume non-negative features; their pipelines
(Fig. 8) put a MinMax normalizer in front.
"""

from __future__ import annotations

import numpy as np

from repro.core.models.base import Classifier, check_fit_inputs


class GaussianNB(Classifier):
    """Gaussian naive Bayes with variance smoothing."""

    name = "NB-G"

    def __init__(self, var_smoothing: float = 1e-9):
        if var_smoothing < 0:
            raise ValueError("var_smoothing must be non-negative")
        self.var_smoothing = var_smoothing
        self.theta_: np.ndarray | None = None  # (2, d) means
        self.var_: np.ndarray | None = None  # (2, d) variances
        self.class_log_prior_: np.ndarray | None = None

    def get_params(self) -> dict[str, object]:
        return {"var_smoothing": self.var_smoothing}

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianNB":
        X, y = check_fit_inputs(X, y)
        d = X.shape[1]
        self.theta_ = np.zeros((2, d))
        self.var_ = np.zeros((2, d))
        priors = np.zeros(2)
        global_var = X.var(axis=0).max()
        epsilon = self.var_smoothing * max(global_var, 1e-12)
        for c in (0, 1):
            mask = y == c
            if not mask.any():
                # Missing class: flat prior mass epsilon, neutral stats.
                self.theta_[c] = X.mean(axis=0)
                self.var_[c] = X.var(axis=0) + epsilon
                priors[c] = 1e-12
                continue
            self.theta_[c] = X[mask].mean(axis=0)
            self.var_[c] = X[mask].var(axis=0) + epsilon
            priors[c] = mask.mean()
        self.class_log_prior_ = np.log(np.maximum(priors, 1e-12))
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        assert self.theta_ is not None and self.var_ is not None
        assert self.class_log_prior_ is not None
        X = np.asarray(X, dtype=np.float64)
        jll = np.empty((X.shape[0], 2))
        for c in (0, 1):
            log_det = np.log(2.0 * np.pi * self.var_[c]).sum()
            quad = ((X - self.theta_[c]) ** 2 / self.var_[c]).sum(axis=1)
            jll[:, c] = self.class_log_prior_[c] - 0.5 * (log_det + quad)
        return jll

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.argmax(self._joint_log_likelihood(X), axis=1).astype(np.int64)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        jll = self._joint_log_likelihood(X)
        jll -= jll.max(axis=1, keepdims=True)
        probs = np.exp(jll)
        return probs[:, 1] / probs.sum(axis=1)


class _DiscreteNB(Classifier):
    """Common machinery of multinomial-family naive Bayes."""

    def __init__(self, alpha: float = 1.0):
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha
        self.feature_log_prob_: np.ndarray | None = None  # (2, d)
        self.class_log_prior_: np.ndarray | None = None

    def get_params(self) -> dict[str, object]:
        return {"alpha": self.alpha}

    @staticmethod
    def _check_non_negative(X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if (X < 0).any():
            raise ValueError(
                "multinomial-family naive Bayes requires non-negative "
                "features; normalise first (Fig. 8 pipelines)"
            )
        return X

    def _class_counts(self, X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        counts = np.zeros((2, X.shape[1]))
        priors = np.zeros(2)
        for c in (0, 1):
            mask = y == c
            counts[c] = X[mask].sum(axis=0)
            priors[c] = max(mask.mean(), 1e-12)
        return counts, np.log(priors)

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.argmax(self._joint_log_likelihood(X), axis=1).astype(np.int64)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        jll = self._joint_log_likelihood(X)
        jll -= jll.max(axis=1, keepdims=True)
        probs = np.exp(jll)
        return probs[:, 1] / probs.sum(axis=1)


class MultinomialNB(_DiscreteNB):
    """Multinomial naive Bayes with additive smoothing."""

    name = "NB-M"

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MultinomialNB":
        X, y = check_fit_inputs(X, y)
        X = self._check_non_negative(X)
        counts, self.class_log_prior_ = self._class_counts(X, y)
        smoothed = counts + self.alpha
        self.feature_log_prob_ = np.log(smoothed) - np.log(
            smoothed.sum(axis=1, keepdims=True)
        )
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        assert self.feature_log_prob_ is not None and self.class_log_prior_ is not None
        X = self._check_non_negative(X)
        return X @ self.feature_log_prob_.T + self.class_log_prior_


class ComplementNB(_DiscreteNB):
    """Complement naive Bayes (weights from the complement class)."""

    name = "NB-C"

    def fit(self, X: np.ndarray, y: np.ndarray) -> "ComplementNB":
        X, y = check_fit_inputs(X, y)
        X = self._check_non_negative(X)
        counts, self.class_log_prior_ = self._class_counts(X, y)
        # Complement counts: everything not in class c.
        total = counts.sum(axis=0, keepdims=True)
        comp = total - counts + self.alpha
        logged = np.log(comp / comp.sum(axis=1, keepdims=True))
        # CNB weights are the *negated* complement log-probabilities.
        self.feature_log_prob_ = -logged
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        assert self.feature_log_prob_ is not None and self.class_log_prior_ is not None
        X = self._check_non_negative(X)
        return X @ self.feature_log_prob_.T + self.class_log_prior_


class BernoulliNB(_DiscreteNB):
    """Bernoulli naive Bayes; features binarised at ``binarize``.

    The default ``binarize=0.0`` mirrors sklearn's default, which the
    paper evidently used: on min-max-normalised input almost every
    feature exceeds 0, so features collapse to near-constant indicators
    and NB-B degrades to the bottom of Table 5 — the behaviour we
    reproduce.
    """

    name = "NB-B"

    def __init__(self, alpha: float = 1.0, binarize: float = 0.0):
        super().__init__(alpha=alpha)
        self.binarize = binarize
        self.class_count_: np.ndarray | None = None

    def get_params(self) -> dict[str, object]:
        return {"alpha": self.alpha, "binarize": self.binarize}

    def _binarize(self, X: np.ndarray) -> np.ndarray:
        return (np.asarray(X, dtype=np.float64) > self.binarize).astype(np.float64)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "BernoulliNB":
        X, y = check_fit_inputs(X, y)
        Xb = self._binarize(X)
        counts = np.zeros((2, X.shape[1]))
        class_count = np.zeros(2)
        priors = np.zeros(2)
        for c in (0, 1):
            mask = y == c
            counts[c] = Xb[mask].sum(axis=0)
            class_count[c] = mask.sum()
            priors[c] = max(mask.mean(), 1e-12)
        smoothed = (counts + self.alpha) / (class_count[:, None] + 2.0 * self.alpha)
        self.feature_log_prob_ = np.log(smoothed)
        self.class_count_ = class_count
        self.class_log_prior_ = np.log(priors)
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        assert self.feature_log_prob_ is not None and self.class_log_prior_ is not None
        Xb = self._binarize(X)
        log_p = self.feature_log_prob_
        log_1mp = np.log1p(-np.exp(log_p))
        return Xb @ (log_p - log_1mp).T + log_1mp.sum(axis=1) + self.class_log_prior_
