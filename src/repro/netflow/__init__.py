"""Flow-record substrate: data model, columnar datasets, IO, anonymisation."""

from repro.netflow.anonymize import Anonymizer
from repro.netflow.dataset import BIN_SECONDS, SCHEMA, FlowDataset
from repro.netflow.fields import (
    PROTO_GRE,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    PROTOCOL_NAMES,
    WELL_KNOWN_DDOS_PORTS,
    ddos_port_label,
)
from repro.netflow.io import load_csv, load_npz, save_csv, save_npz
from repro.netflow.record import (
    FlowRecord,
    int_to_ip,
    int_to_mac,
    ip_to_int,
    mac_to_int,
)

__all__ = [
    "Anonymizer",
    "BIN_SECONDS",
    "SCHEMA",
    "FlowDataset",
    "FlowRecord",
    "PROTO_GRE",
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
    "PROTOCOL_NAMES",
    "WELL_KNOWN_DDOS_PORTS",
    "ddos_port_label",
    "int_to_ip",
    "int_to_mac",
    "ip_to_int",
    "mac_to_int",
    "load_csv",
    "load_npz",
    "save_csv",
    "save_npz",
]
