"""The scenario catalogue: named operational situations with oracles.

Each scenario is a seeded builder producing a :class:`ScenarioSpec`
(see :mod:`repro.scenarios.conductor`). The catalogue covers the
operational claims the paper makes but static figures cannot check:

* ``volumetric_flood`` — the baseline: one loud amplification attack.
* ``flash_crowd`` — benign load spike that must *not* be flagged.
* ``carpet_bombing`` — one campaign spread thin across a /16.
* ``retrain_storm`` — attack waves across day boundaries driving
  repeated online retrains.
* ``blackhole_churn`` — mass spurious blackhole announcements (label
  noise) around real attacks.
* ``slow_drift`` — an attack ramping from noise-floor to flood.
* ``novel_vector`` — a vector absent from the warm-start corpus
  appears mid-stream (the fig. 13 situation, run through the online
  engine instead of an offline matrix).
* ``collateral_spike`` — an attack on an already-popular destination,
  where overreaction shows up as benign collateral.

Victim addresses live in dedicated /16 blocks disjoint from every
benign pool, except where a scenario deliberately overlaps them.
Attack intensities are *not* scaled by ``scale``: the knob sweeps the
benign population (users), so detectability thresholds stay comparable
across scales while the collateral denominator grows.
"""

from __future__ import annotations

import tempfile
from collections import Counter
from pathlib import Path

import numpy as np

from repro import obs
from repro.bgp.community import BLACKHOLE
from repro.bgp.messages import Announcement, Withdrawal
from repro.bgp.prefix import Prefix
from repro.netflow.dataset import FlowDataset
from repro.obs import names
from repro.scenarios.conductor import (
    Scenario,
    ScenarioSpec,
    derive_seed,
    register,
)
from repro.scenarios.oracle import Check, GroundTruth, InjectedAttack
from repro.scenarios.workload import BIN_SECONDS, PoissonWorkloadManager
from repro.traffic.attacks import AttackEvent, AttackGenerator
from repro.traffic.reflectors import ReflectorPool
from repro.traffic.vectors import vector_by_name

__all__ = ["BINS_PER_DAY"]

#: Streaming-day resolution every scenario uses (30-minute bins keep
#: runs fast while spanning multiple retrain days).
BINS_PER_DAY = 48

_SEED_TAG = 0x5CEB


class _SceneBuilder:
    """Accumulates one scenario's traffic, updates and ground truth."""

    def __init__(
        self,
        name: str,
        seed: int,
        scale: float,
        n_bins: int,
        active_users: float = 240.0,
        rate_per_user: float = 0.6,
        n_targets: int = 192,
        user_window_bins: int = 8,
    ):
        self.name = name
        self.seed = seed
        self.scale = float(scale)
        self.n_bins = int(n_bins)
        self.manager = PoissonWorkloadManager(
            seed=derive_seed(seed, 1),
            active_users=active_users,
            rate_per_user=rate_per_user,
            scale=scale,
            n_targets=n_targets,
            user_window_bins=user_window_bins,
        )
        self._rng = np.random.default_rng(
            np.random.SeedSequence([_SEED_TAG, seed, 2])
        )
        self._generator = AttackGenerator(
            ReflectorPool(region=7, seed=derive_seed(seed, 3))
        )
        self._parts: list[FlowDataset] = []
        self._updates: list = []
        self._attacks: list[InjectedAttack] = []
        self._extra_pools: list[np.ndarray] = []
        self.benign_flows = 0
        self.attack_flows = 0
        self._asn = 64500

    def run_benign(self) -> None:
        """Stream the base load across the whole scenario window."""
        self.manager.start()
        flows = self.manager.collect(self.n_bins)
        self.manager.stop()
        self._parts.append(flows)
        self.benign_flows += len(flows)

    def surge(
        self,
        start_bin: int,
        end_bin: int,
        active_users: float,
        rate_per_user: float = 0.6,
        targets: np.ndarray | None = None,
        n_targets: int = 4,
    ) -> None:
        """Add a second open-loop source over ``[start_bin, end_bin)``."""
        manager = PoissonWorkloadManager(
            seed=derive_seed(self.seed, 40 + len(self._extra_pools)),
            active_users=active_users,
            rate_per_user=rate_per_user,
            scale=self.scale,
            targets=targets,
            n_targets=n_targets,
            target_block=0x0AC90000,  # 10.201.0.0/16: crowd pool
        )
        manager.start(start_bin)
        flows = manager.collect(end_bin - start_bin)
        manager.stop()
        self._parts.append(flows)
        self.benign_flows += len(flows)
        self._extra_pools.append(manager.targets)

    def attack(
        self,
        attack_id: str,
        victims,
        start_bin: int,
        end_bin: int,
        vectors: tuple[str, ...],
        flows_per_minute: float,
        blackholed: bool = True,
        detectable_from: int | None = None,
        reaction_bins: int = 1,
    ) -> None:
        """Inject one campaign (possibly many victims) + its updates."""
        victims = tuple(int(v) for v in victims)
        vector_objs = tuple(vector_by_name(v) for v in vectors)
        for victim in victims:
            event = AttackEvent(
                victim=victim,
                vectors=vector_objs,
                start=start_bin * BIN_SECONDS,
                end=end_bin * BIN_SECONDS,
                flows_per_minute=float(flows_per_minute),
                blackholed=blackholed,
            )
            flows = self._generator.generate(self._rng, event)
            self._parts.append(flows)
            self.attack_flows += len(flows)
            obs.counter(names.C_SCENARIO_ATTACK_FLOWS).inc(len(flows))
            if blackholed:
                self._blackhole(
                    victim, (start_bin + reaction_bins) * BIN_SECONDS,
                    end_bin * BIN_SECONDS + BIN_SECONDS,
                )
        self._attacks.append(
            InjectedAttack(
                attack_id=attack_id,
                victims=victims,
                start_bin=start_bin,
                end_bin=end_bin,
                vectors=tuple(vectors),
                detectable_from=detectable_from,
            )
        )
        obs.counter(names.C_SCENARIO_ATTACKS_INJECTED).inc()

    def churn(self, n_events: int, start_bin: int, end_bin: int,
              hold_bins: int = 2) -> None:
        """Spurious blackhole announce/withdraw cycles on benign targets.

        No attack traffic accompanies them — pure label noise for the
        online labeling/retraining path.
        """
        # Churn the *unpopular* half of the pool: precautionary
        # blackholing covers quiet prefixes, so the registry sees mass
        # churn while label poisoning stays a minority of the labeled
        # records (the realistic regime; a pipeline fed majority-wrong
        # labels has no defense).
        pool = self.manager.targets
        quiet = pool[pool.size // 2:]
        span = max(1, end_bin - start_bin - hold_bins)
        for i in range(n_events):
            target = int(quiet[i % quiet.size])
            at = start_bin + (i * span) // max(1, n_events)
            self._blackhole(
                target, at * BIN_SECONDS, (at + hold_bins) * BIN_SECONDS
            )

    def _blackhole(self, address: int, announce_time: int,
                   withdraw_time: int) -> None:
        self._asn += 1
        prefix = Prefix.host(address)
        self._updates.append(
            Announcement(
                prefix=prefix,
                origin_asn=self._asn,
                time=int(announce_time),
                as_path=(65010, self._asn),
                communities=frozenset({BLACKHOLE}),
            )
        )
        self._updates.append(
            Withdrawal(prefix=prefix, origin_asn=self._asn, time=int(withdraw_time))
        )

    def finish(
        self,
        checks: tuple[Check, ...],
        window_days: int = 2,
        label_grace_bins: int = 10**6,
        min_flows_per_verdict: int = 5,
        bootstrap: dict | None = None,
    ) -> ScenarioSpec:
        flows = FlowDataset.concat(self._parts).sort_by_time()
        updates = tuple(sorted(self._updates, key=lambda u: (u.time, u.origin_asn)))
        attacked = sorted({v for a in self._attacks for v in a.victims})
        attacked_arr = np.array(attacked, dtype=np.uint32)
        pools = [self.manager.targets, *self._extra_pools]
        benign_pool = np.unique(np.concatenate(pools))
        benign = benign_pool[~np.isin(benign_pool, attacked_arr)]
        truth = GroundTruth(
            attacks=tuple(self._attacks),
            benign_targets=tuple(int(t) for t in benign),
            horizon_bin=self.n_bins,
        )
        workload = {
            "active_users": self.manager.active_users,
            "rate_per_user": self.manager.rate_per_user,
            "scale": self.scale,
            "mean_active_users": self.manager.mean_active_users(),
            "benign_flows": int(self.benign_flows),
            "attack_flows": int(self.attack_flows),
        }
        return ScenarioSpec(
            name=self.name,
            bins_per_day=BINS_PER_DAY,
            n_bins=self.n_bins,
            flows=flows,
            updates=updates,
            truth=truth,
            checks=checks,
            engine={
                "window_days": window_days,
                "label_grace_bins": label_grace_bins,
                "min_flows_per_verdict": min_flows_per_verdict,
            },
            workload=workload,
            bootstrap=dict(bootstrap or {}),
        )


# ----------------------------------------------------------------------
# Shared check shorthands.
# ----------------------------------------------------------------------


def _detects_all(latency_bins: float) -> tuple[Check, ...]:
    return (
        Check("every attack detected", "detection_recall", ">=", 1.0),
        Check("detection within budget", "detection_latency_max_bins", "<=",
              latency_bins),
    )


_LOW_COLLATERAL = Check(
    "benign collateral under 5%", "benign_collateral_rate", "<=", 0.05
)


# ----------------------------------------------------------------------
# The scenarios.
# ----------------------------------------------------------------------


def _build_volumetric_flood(seed: int, scale: float) -> ScenarioSpec:
    builder = _SceneBuilder("volumetric_flood", seed, scale, n_bins=64)
    builder.run_benign()
    builder.attack(
        "flood", [0x0A630107], start_bin=20, end_bin=40,
        vectors=("DNS", "NTP"), flows_per_minute=90.0,
    )
    return builder.finish(
        checks=(
            *_detects_all(latency_bins=3.0),
            Check("victim localized", "localization_recall", ">=", 1.0),
            _LOW_COLLATERAL,
        )
    )


def _build_flash_crowd(seed: int, scale: float) -> ScenarioSpec:
    builder = _SceneBuilder("flash_crowd", seed, scale, n_bins=64)
    builder.run_benign()
    # A 6x user surge onto 32 crowd destinations for 16 bins: loud,
    # concentrated, and entirely legitimate.
    builder.surge(start_bin=24, end_bin=40,
                  active_users=6 * builder.manager.active_users, n_targets=32)
    return builder.finish(
        checks=(
            _LOW_COLLATERAL,
            # A flagged crowd target is one phantom attack however many
            # bins it stays flagged, so bound targets, not verdicts.
            Check("no phantom attacks", "benign_targets_flagged", "<=", 2.0),
        )
    )


def _build_carpet_bombing(seed: int, scale: float) -> ScenarioSpec:
    builder = _SceneBuilder("carpet_bombing", seed, scale, n_bins=72)
    builder.run_benign()
    # 24 victims, one per /24 of 10.138.0.0/16 — each individually
    # quiet (12 flows/min), together one campaign.
    rng = np.random.default_rng(np.random.SeedSequence([_SEED_TAG, seed, 4]))
    hosts = rng.integers(1, 255, size=24)
    victims = [0x0A8A0000 + (i << 8) + int(hosts[i]) for i in range(24)]
    builder.attack(
        "carpet", victims, start_bin=20, end_bin=48,
        vectors=("NTP", "LDAP"), flows_per_minute=12.0,
    )
    return builder.finish(
        checks=(
            Check("campaign detected", "detection_recall", ">=", 1.0),
            Check("detection within budget", "detection_latency_max_bins",
                  "<=", 4.0),
            Check("most /24 victims localized", "localization_recall", ">=", 0.8),
            Check("flagged set mostly victims", "localization_precision",
                  ">=", 0.6),
            _LOW_COLLATERAL,
        )
    )


def _build_retrain_storm(seed: int, scale: float) -> ScenarioSpec:
    builder = _SceneBuilder(
        "retrain_storm", seed, scale, n_bins=3 * BINS_PER_DAY,
        active_users=180.0,
    )
    builder.run_benign()
    vectors = (("DNS",), ("NTP",), ("LDAP",), ("SSDP",), ("chargen",))
    for day in range(3):
        for k in range(4 if day < 2 else 2):
            start = day * BINS_PER_DAY + 4 + k * 11
            builder.attack(
                f"wave_d{day}_{k}",
                [0x0A8C0000 + day * 256 + k + 1],
                start_bin=start,
                end_bin=start + 10,
                vectors=vectors[(day * 4 + k) % len(vectors)],
                flows_per_minute=50.0,
            )
    return builder.finish(
        checks=(
            Check("most waves detected", "detection_recall", ">=", 0.8),
            Check("online retraining kept up", "retrainings", ">=", 2.0),
            # Count-based: at small scales only a handful of benign
            # targets clear min_flows_per_verdict, so a rate bound
            # would let one unlucky target swing the score by 20%.
            Check("at most one benign target flagged",
                  "benign_targets_flagged", "<=", 1.0),
        ),
        label_grace_bins=6,
    )


def _build_blackhole_churn(seed: int, scale: float) -> ScenarioSpec:
    builder = _SceneBuilder("blackhole_churn", seed, scale, n_bins=2 * BINS_PER_DAY)
    builder.run_benign()
    # 48 spurious blackhole cycles on benign destinations: the mass
    # churn of operators blackholing preventively (paper §3 label
    # noise), with three real attacks buried in it.
    builder.churn(48, start_bin=2, end_bin=builder.n_bins - 4)
    for k, start in enumerate((10, 40, 70)):
        builder.attack(
            f"real_{k}", [0x0A8D0000 + k + 1], start_bin=start,
            end_bin=start + 12, vectors=("NTP",) if k % 2 else ("DNS", "SNMP"),
            flows_per_minute=60.0,
        )
    return builder.finish(
        checks=(
            Check("real attacks still detected", "detection_recall", ">=", 1.0),
            Check("retrained despite label noise", "retrainings", ">=", 1.0),
            # Label noise makes a little collateral unavoidable; bound
            # it by count so small-scale denominators stay robust.
            Check("at most two benign targets flagged",
                  "benign_targets_flagged", "<=", 2.0),
        ),
        label_grace_bins=6,
    )


def _build_slow_drift(seed: int, scale: float) -> ScenarioSpec:
    builder = _SceneBuilder("slow_drift", seed, scale, n_bins=80)
    builder.run_benign()
    victim = 0x0A8E0009
    # Intensity ramps 4 -> 80 flows/min in 13 four-bin segments; the
    # latency clock starts where the ramp crosses 30 flows/min.
    segments = 13
    ramp_start, seg_bins = 12, 4
    detectable_from = None
    for i in range(segments):
        fpm = 4.0 + (80.0 - 4.0) * i / (segments - 1)
        if detectable_from is None and fpm >= 30.0:
            detectable_from = ramp_start + i * seg_bins
        builder.attack(
            "drift" if i == 0 else f"drift_seg{i}",
            [victim],
            start_bin=ramp_start + i * seg_bins,
            end_bin=ramp_start + (i + 1) * seg_bins,
            vectors=("memcached",),
            flows_per_minute=fpm,
            blackholed=(i == segments - 1),
        )
    # The oracle sees one logical attack spanning the whole ramp.
    attacks = builder._attacks
    merged = InjectedAttack(
        attack_id="drift",
        victims=(victim,),
        start_bin=ramp_start,
        end_bin=ramp_start + segments * seg_bins,
        vectors=("memcached",),
        detectable_from=detectable_from,
    )
    attacks.clear()
    attacks.append(merged)
    return builder.finish(
        checks=(
            Check("ramp detected", "detection_recall", ">=", 1.0),
            Check("detected within 8 bins of threshold",
                  "detection_latency_max_bins", "<=", 8.0),
            Check("drift detector tripped on the ramp",
                  "drift_trips", ">=", 1.0),
            _LOW_COLLATERAL,
        )
    )


def _build_novel_vector(seed: int, scale: float) -> ScenarioSpec:
    builder = _SceneBuilder("novel_vector", seed, scale, n_bins=2 * BINS_PER_DAY)
    builder.run_benign()
    # Day 0: the vectors the warm-start model knows.
    for k, vecs in enumerate((("DNS",), ("NTP",), ("LDAP",), ("SSDP",))):
        start = 4 + k * 11
        builder.attack(
            f"known_{k}", [0x0A8F0000 + k + 1], start_bin=start,
            end_bin=start + 10, vectors=vecs, flows_per_minute=60.0,
        )
    # Day 1: memcached, which the bootstrap corpus never contained —
    # the fig. 13 "new vector" situation hitting the online engine.
    for k, start in enumerate((BINS_PER_DAY + 8, BINS_PER_DAY + 28)):
        builder.attack(
            f"novel_{k}", [0x0A8F0100 + k + 1], start_bin=start,
            end_bin=start + 12, vectors=("memcached",), flows_per_minute=60.0,
        )
    return builder.finish(
        checks=(
            Check("most attacks detected", "detection_recall", ">=", 0.8),
            Check("retrained on day boundary", "retrainings", ">=", 1.0),
            Check("at most one benign target flagged",
                  "benign_targets_flagged", "<=", 1.0),
        ),
        label_grace_bins=6,
        bootstrap={"exclude_vectors": ("memcached",)},
    )


def _build_collateral_spike(seed: int, scale: float) -> ScenarioSpec:
    builder = _SceneBuilder("collateral_spike", seed, scale, n_bins=64)
    builder.run_benign()
    victim = 0x0A900005
    # The victim is *also* a popular destination: a 4x user crowd keeps
    # hitting it before, during and after the attack, so overreaction
    # (flagging its benign neighbours, or the crowd pool) is measurable.
    builder.surge(
        start_bin=8, end_bin=56,
        active_users=4 * builder.manager.active_users,
        targets=np.array([victim], dtype=np.uint32),
    )
    builder.attack(
        "spike", [victim], start_bin=24, end_bin=44,
        vectors=("NTP", "DNS"), flows_per_minute=80.0,
    )
    return builder.finish(
        checks=(
            *_detects_all(latency_bins=4.0),
            Check("victim localized", "localization_recall", ">=", 1.0),
            _LOW_COLLATERAL,
        )
    )


def _build_coordinator_crash(seed: int, scale: float) -> ScenarioSpec:
    builder = _SceneBuilder("coordinator_crash", seed, scale, n_bins=64)
    builder.run_benign()
    # One attack fully classified before the crash tick, one spanning
    # it: the resumed engine must carry the open buffers, blackhole
    # registry and pending labels across the restart to score both.
    builder.attack(
        "pre_crash", [0x0A910001], start_bin=10, end_bin=22,
        vectors=("DNS", "NTP"), flows_per_minute=70.0,
    )
    builder.attack(
        "spans_crash", [0x0A910002], start_bin=30, end_bin=56,
        vectors=("SSDP",), flows_per_minute=70.0,
    )
    return builder.finish(
        checks=(
            *_detects_all(latency_bins=4.0),
            Check("no verdicts lost across the crash",
                  "verdicts_lost", "<=", 0.0),
            Check("no verdicts duplicated across the crash",
                  "verdicts_duplicated", "<=", 0.0),
            Check("resumed stream bit-identical to uninterrupted",
                  "resume_exact", ">=", 1.0),
            Check("resume replayed at most one checkpoint period",
                  "resume_lag_ticks", "<=", float(_CRASH_EVERY)),
        ),
        label_grace_bins=6,
    )


#: Conduction constants for ``coordinator_crash``: 8-bin ticks, a
#: snapshot every 3 ticks, SIGKILL-equivalent abandonment at ~60% of
#: the stream (between checkpoints, so resume must replay the journal).
_CRASH_CHUNK_BINS = 8
_CRASH_EVERY = 3


def _conduct_coordinator_crash(spec, make_engine):
    """Crash the coordinator mid-stream, resume, score the splice.

    Runs the uninterrupted reference first, then a checkpointed run
    abandoned at a deterministic tick (no flush, no close — the moral
    equivalent of ``kill -9``), then a fresh engine resuming from disk.
    The concatenated verdict stream is scored; the extra metrics let
    the scenario's checks pin zero loss, zero duplication and bounded
    replay.
    """
    from repro.core.recovery import RecoverySession, drive_engine

    engine = make_engine()
    try:
        reference = drive_engine(
            engine, spec.flows, spec.updates,
            chunk_bins=_CRASH_CHUNK_BINS, start_bin=0, end_bin=spec.n_bins,
        )
    finally:
        engine.close()

    n_ticks = -(-spec.n_bins // _CRASH_CHUNK_BINS)
    crash_tick = max(0, (n_ticks * 3) // 5)
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        crashed = make_engine()
        try:
            session = RecoverySession(
                crashed, directory, every=_CRASH_EVERY,
            )
            first = drive_engine(
                crashed, spec.flows, spec.updates,
                chunk_bins=_CRASH_CHUNK_BINS, session=session,
                start_bin=0, end_bin=spec.n_bins,
                stop_after_tick=crash_tick,
            )
            # Abandoned, not closed: every journal append is already
            # fsynced, so stopping here is equivalent to SIGKILL.
        finally:
            crashed.close()

        resumed = make_engine()
        try:
            session = RecoverySession(
                resumed, directory, every=_CRASH_EVERY, resume=True,
            )
            lag = session.journaled_tick - session.restored_tick
            rest = drive_engine(
                resumed, spec.flows, spec.updates,
                chunk_bins=_CRASH_CHUNK_BINS, session=session,
                start_bin=0, end_bin=spec.n_bins,
            )
            session.close()
        finally:
            resumed.close()

    combined = first + rest
    ref_keys = Counter((v.bin, v.target_ip) for v in reference)
    got_keys = Counter((v.bin, v.target_ip) for v in combined)
    lost = sum((ref_keys - got_keys).values())
    duplicated = sum((got_keys - ref_keys).values())
    exact = len(combined) == len(reference) and all(
        a.bin == b.bin
        and a.target_ip == b.target_ip
        and a.is_ddos == b.is_ddos
        and a.score == b.score
        and tuple(a.matched_rules) == tuple(b.matched_rules)
        for a, b in zip(combined, reference)
    )
    metrics = {
        "verdicts_lost": float(lost),
        "verdicts_duplicated": float(duplicated),
        "resume_exact": float(exact),
        "resume_lag_ticks": float(lag),
    }
    return combined, metrics


register(Scenario(
    "volumetric_flood",
    "one loud DNS+NTP amplification flood against a single victim",
    _build_volumetric_flood,
))
register(Scenario(
    "flash_crowd",
    "6x benign user surge onto 32 crowd targets; benign, stays unflagged",
    _build_flash_crowd,
))
register(Scenario(
    "carpet_bombing",
    "one campaign spread over 24 /24s of a /16, each victim quiet",
    _build_carpet_bombing,
))
register(Scenario(
    "retrain_storm",
    "attack waves across three days driving repeated online retrains",
    _build_retrain_storm,
))
register(Scenario(
    "blackhole_churn",
    "mass spurious blackhole announcements around three real attacks",
    _build_blackhole_churn,
))
register(Scenario(
    "slow_drift",
    "attack ramping from noise floor to flood over 52 bins",
    _build_slow_drift,
))
register(Scenario(
    "novel_vector",
    "memcached appears mid-stream, absent from the warm-start corpus",
    _build_novel_vector,
))
register(Scenario(
    "collateral_spike",
    "attack on an already-popular destination under a benign crowd",
    _build_collateral_spike,
))
register(Scenario(
    "coordinator_crash",
    "coordinator killed mid-stream; checkpointed resume loses nothing",
    _build_coordinator_crash,
    conduct=_conduct_coordinator_crash,
))
