"""Property tests for ``repro.core.features.sketches``.

Three layers of guarantees, each asserted over seeded strategy draws:

* **Accuracy contract** — count-min estimates are one-sided
  (``est >= true`` always) and the overshoot exceeds
  ``epsilon * N`` with empirical frequency at most ``delta``; the
  cardinality estimator lands within HLL tolerance. These are the
  formulas ``docs/SKETCHES.md`` documents.
* **Merge algebra** — merges are associative, commutative and *bitwise*
  partition-independent: any target-disjoint sharding of a stream folds
  back to the identical tables, candidate sets and built records.
* **Engine integration** — sketch-mode verdicts are identical across
  shard counts and backends, survive supervised worker crashes, and
  exact mode stays the bit-identical default.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from tests import strategies
from repro.core.features.aggregation import aggregate_batch
from repro.core.features.sketches import (
    CardinalitySketch,
    CountMinSketch,
    SketchAggregator,
    SketchParams,
    sketch_aggregate,
)
from repro.core.features import schema
from repro.core.labeling.balancer import balance
from repro.core.parallel import ShardPlan, ShardedStreamingScrubber
from repro.core.resilience import FaultPlan
from repro.core.scrubber import IXPScrubber, ScrubberConfig

ENGINE_KWARGS = dict(
    window_days=2,
    bins_per_day=48,
    min_flows_per_verdict=3,
    label_grace_bins=10**6,
    seed=1,
)


def assert_records_equal(a, b):
    """Bitwise equality of two AggregatedDatasets (NaN == NaN)."""
    assert np.array_equal(a.bins, b.bins)
    assert np.array_equal(a.targets, b.targets)
    assert np.array_equal(a.labels, b.labels)
    assert np.array_equal(a.n_flows, b.n_flows)
    for name in schema.key_columns():
        assert np.array_equal(a.categorical[name], b.categorical[name]), name
    for name in schema.value_columns():
        assert np.array_equal(
            a.metrics[name], b.metrics[name], equal_nan=True
        ), name


def _key_stream(rng, n_keys=300, max_count=40):
    """(keys, counts, shuffled update stream) for count-min tests."""
    keys = rng.choice(2**32, size=n_keys, replace=False).astype(np.uint64)
    counts = rng.integers(1, max_count, size=n_keys)
    stream = np.repeat(keys, counts)
    rng.shuffle(stream)
    return keys, counts.astype(np.int64), stream


class TestSketchParams:
    def test_width_depth_follow_textbook_formulas(self):
        params = SketchParams(epsilon=0.01, delta=0.01)
        assert params.width == int(np.ceil(np.e / 0.01))
        assert params.depth == int(np.ceil(np.log(1.0 / 0.01)))
        assert params.error_bound(1000) == pytest.approx(10.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epsilon": 0.0},
            {"epsilon": 1.0},
            {"delta": 0.0},
            {"delta": 1.5},
            {"hh_capacity": 0},
            {"key_capacity": schema.RANKS - 1},
            {"cardinality_registers": 48},
            {"cardinality_registers": 8},
            {"cardinality_depth": 0},
        ],
    )
    def test_validation_rejects(self, kwargs):
        with pytest.raises(ValueError):
            SketchParams(**kwargs)


class TestCountMinSketch:
    def test_one_sided_and_epsilon_delta_bound(self):
        """The documented contract: est >= true always, and
        P[est - true > epsilon * N] <= delta (empirically per seed)."""
        params = SketchParams(epsilon=0.01, delta=0.01)
        for seed in range(5):
            rng = strategies.rng_for(seed)
            keys, counts, stream = _key_stream(rng)
            cms = CountMinSketch(params.width, params.depth, seed=seed)
            cms.update(stream)
            assert cms.total == stream.shape[0]
            est = cms.query(keys)
            overshoot = est - counts
            assert (overshoot >= 0).all(), "count-min must never undercount"
            bound = params.error_bound(cms.total)
            assert np.mean(overshoot > bound) <= params.delta, seed

    def test_weighted_queries_are_one_sided_too(self):
        rng = strategies.rng_for(11)
        keys, _, stream = _key_stream(rng)
        weights = rng.integers(1, 1500, size=stream.shape[0])
        cms = CountMinSketch(512, 4, seed=3)
        cms.update(stream, weights)
        true = np.zeros(keys.shape[0], dtype=np.int64)
        for i, k in enumerate(keys.tolist()):
            true[i] = int(weights[stream == k].sum())
        assert (cms.query(keys) >= true).all()
        assert cms.total == int(weights.sum())

    def test_merge_is_bitwise_partition_independent(self):
        for seed in range(4):
            rng = strategies.rng_for(100 + seed)
            _, _, stream = _key_stream(rng)
            whole = CountMinSketch(256, 4, seed=seed)
            whole.update(stream)
            cut1, cut2 = len(stream) // 3, 2 * len(stream) // 3
            parts = []
            for chunk in (stream[:cut1], stream[cut1:cut2], stream[cut2:]):
                part = CountMinSketch(256, 4, seed=seed)
                part.update(chunk)
                parts.append(part)
            a, b, c = parts
            # (a + b) + c, folded left to right.
            left = CountMinSketch(256, 4, seed=seed)
            for p in (a, b, c):
                left.merge(p)
            assert np.array_equal(left.table, whole.table)
            assert left.total == whole.total
            # c + (b + a): a different order, the same bits.
            right = CountMinSketch(256, 4, seed=seed)
            for p in (c, b, a):
                right.merge(p)
            assert np.array_equal(right.table, whole.table)

    def test_merge_rejects_geometry_and_seed_mismatch(self):
        base = CountMinSketch(128, 4, seed=1)
        for other in (
            CountMinSketch(64, 4, seed=1),
            CountMinSketch(128, 3, seed=1),
            CountMinSketch(128, 4, seed=2),
        ):
            with pytest.raises(ValueError):
                base.merge(other)

    def test_state_round_trip_through_pickle(self):
        rng = strategies.rng_for(5)
        _, _, stream = _key_stream(rng)
        cms = CountMinSketch(128, 4, seed=9)
        cms.update(stream)
        clone = CountMinSketch.from_state(pickle.loads(pickle.dumps(cms.to_state())))
        assert np.array_equal(clone.table, cms.table)
        assert (clone.width, clone.depth, clone.seed, clone.total) == (
            cms.width, cms.depth, cms.seed, cms.total
        )


class TestCardinalitySketch:
    def test_estimates_track_distinct_counts(self):
        rng = strategies.rng_for(21)
        sketch = CardinalitySketch(width=256, depth=2, registers=256, seed=4)
        truths = {1: 2000, 2: 400, 3: 50}
        for key, n in truths.items():
            items = rng.choice(2**48, size=n, replace=False).astype(np.uint64)
            sketch.update(np.full(n, key, dtype=np.uint64), items)
        keys = np.array(sorted(truths), dtype=np.uint64)
        est = sketch.query(keys)
        for value, true in zip(est, (truths[k] for k in sorted(truths))):
            assert value == pytest.approx(true, rel=0.3)

    def test_merge_is_register_max_and_commutative(self):
        rng = strategies.rng_for(22)
        items = rng.choice(2**48, size=1500, replace=False).astype(np.uint64)
        key = np.full(1000, 7, dtype=np.uint64)

        def build(chunk):
            s = CardinalitySketch(width=64, depth=2, registers=128, seed=4)
            s.update(key, chunk)
            return s

        a, b = build(items[:1000]), build(items[500:])  # overlapping halves
        ab = build(items[:1000]).merge(b)
        ba = build(items[500:]).merge(a)
        assert np.array_equal(ab.table, ba.table)
        assert np.array_equal(ab.table, np.maximum(a.table, b.table))
        # The union (1500 distinct) dominates either half's estimate.
        est = ab.query(np.array([7], dtype=np.uint64))[0]
        assert est == pytest.approx(1500, rel=0.3)

    def test_merge_rejects_mismatch(self):
        base = CardinalitySketch(64, 2, 64, seed=1)
        with pytest.raises(ValueError):
            base.merge(CardinalitySketch(64, 2, 128, seed=1))
        with pytest.raises(ValueError):
            base.merge(CardinalitySketch(64, 2, 64, seed=2))


class TestSketchAggregator:
    PARAMS = SketchParams(epsilon=0.002)

    def test_build_matches_exact_aggregation_schema(self):
        for seed in range(3):
            flows = strategies.flows(
                strategies.rng_for(seed), n_flows=1500, n_targets=16, n_bins=3
            )
            exact = aggregate_batch(flows)
            sketch = sketch_aggregate(flows, self.PARAMS)
            # Identical record identity: same (bin, target) rows in the
            # same order, the same blackhole labels.
            assert np.array_equal(sketch.bins, exact.bins)
            assert np.array_equal(sketch.targets, exact.targets)
            assert np.array_equal(sketch.labels, exact.labels)
            assert sketch.rule_tags is None

    def test_flow_estimates_bound_the_truth(self):
        for seed in range(3):
            flows = strategies.flows(
                strategies.rng_for(30 + seed), n_flows=2000, n_targets=12, n_bins=2
            )
            exact = aggregate_batch(flows)
            agg = SketchAggregator(self.PARAMS).absorb(flows)
            sketch = agg.build_records()
            overshoot = sketch.n_flows - exact.n_flows
            assert (overshoot >= 0).all()
            assert overshoot.max() <= max(1.0, agg.error_bound())

    def test_partition_invariance_bitwise(self):
        """The tentpole property: any target-disjoint sharding folds
        back to bit-identical records, in any merge order."""
        flows = strategies.flows(
            strategies.rng_for(40), n_flows=2500, n_targets=24, n_bins=3
        )
        whole = SketchAggregator(self.PARAMS).absorb(flows).build_records()
        for n_shards in (2, 3, 5):
            parts = ShardPlan(n_shards).split(flows)
            shards = [
                SketchAggregator(self.PARAMS).absorb(p) for p in parts if len(p)
            ]
            folded = SketchAggregator(self.PARAMS)
            for s in shards:
                folded.merge(s)
            assert_records_equal(folded.build_records(), whole)
            reverse = SketchAggregator(self.PARAMS)
            for s in [
                SketchAggregator(self.PARAMS).absorb(p)
                for p in reversed(ShardPlan(n_shards).split(flows))
                if len(p)
            ]:
                reverse.merge(s)
            assert_records_equal(reverse.build_records(), whole)

    def test_chunked_ingest_equals_one_shot(self):
        flows = strategies.flows(
            strategies.rng_for(41), n_flows=1800, n_targets=20, n_bins=2
        )
        whole = SketchAggregator(self.PARAMS).absorb(flows).build_records()
        chunked = SketchAggregator(self.PARAMS)
        idx = np.arange(len(flows))
        for lo in range(0, len(flows), 257):
            chunked.absorb(flows.select((idx >= lo) & (idx < lo + 257)))
        assert_records_equal(chunked.build_records(), whole)

    def test_state_round_trip_preserves_records(self):
        flows = strategies.flows(
            strategies.rng_for(42), n_flows=1200, n_targets=10, n_bins=2
        )
        agg = SketchAggregator(self.PARAMS).absorb(flows)
        clone = SketchAggregator.from_state(pickle.loads(pickle.dumps(agg.to_state())))
        assert_records_equal(clone.build_records(), agg.build_records())

    def test_min_flows_filters_records(self):
        flows = strategies.flows(
            strategies.rng_for(43), n_flows=800, n_targets=12, n_bins=2
        )
        agg = SketchAggregator(self.PARAMS).absorb(flows)
        assert (agg.build_records(min_flows=20).n_flows >= 20).all()
        assert len(agg.build_records(min_flows=10**9)) == 0

    def test_hh_capacity_keeps_heaviest_targets(self):
        flows = strategies.wide_flows(
            strategies.rng_for(44), n_targets=200, flows_per_target=3
        )
        capped = SketchParams(hh_capacity=50)
        data = SketchAggregator(capped).absorb(flows).build_records()
        assert len(data) <= 50

    def test_merge_rejects_parameter_mismatch(self):
        with pytest.raises(ValueError):
            SketchAggregator(SketchParams(epsilon=0.01)).merge(
                SketchAggregator(SketchParams(epsilon=0.02))
            )

    def test_memory_is_sublinear_in_targets(self):
        """10x the distinct targets must not 10x the sketch state."""
        small = strategies.wide_flows(
            strategies.rng_for(45), n_targets=300, flows_per_target=2
        )
        large = strategies.wide_flows(
            strategies.rng_for(46), n_targets=3000, flows_per_target=2
        )
        params = SketchParams(hh_capacity=300)
        mem_small = SketchAggregator(params).absorb(small).memory_bytes()
        mem_large = SketchAggregator(params).absorb(large).memory_bytes()
        assert mem_large < 2 * mem_small


@pytest.fixture(scope="module")
def fitted_scrubber() -> IXPScrubber:
    rng = strategies.rng_for(999)
    labeled = strategies.labeled_flows(rng, n_flows=6000, n_targets=12, n_bins=20)
    balanced = balance(labeled, np.random.default_rng(7)).flows
    config = ScrubberConfig(model="XGB", model_params={"n_estimators": 10})
    return IXPScrubber(config).fit(balanced)


@pytest.fixture()
def workload():
    return strategies.labeled_flows(
        strategies.rng_for(7), n_flows=400, n_targets=10, n_bins=4
    )


def _run_engine(fitted, workload, **kwargs):
    engine = ShardedStreamingScrubber(**{**ENGINE_KWARGS, **kwargs}).warm_start(
        fitted
    )
    try:
        verdicts = engine.ingest(workload) + engine.flush()
        snap = engine.merged_snapshot()
    finally:
        engine.close()
    return verdicts, snap


class TestSketchEngine:
    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="agg mode"):
            ShardedStreamingScrubber(agg="hll", **ENGINE_KWARGS)
        with pytest.raises(ValueError, match="sketch_params"):
            ShardedStreamingScrubber(
                sketch_params=SketchParams(), **ENGINE_KWARGS
            )
        with pytest.raises(ValueError, match="equivalence_check"):
            ShardedStreamingScrubber(
                agg="sketch", equivalence_check=True, **ENGINE_KWARGS
            )

    def test_verdicts_identical_across_shard_counts(self, fitted_scrubber, workload):
        runs = {
            n: _run_engine(
                fitted_scrubber, workload, n_shards=n, agg="sketch"
            )[0]
            for n in (1, 2, 4)
        }
        assert runs[1], "sketch mode produced no verdicts"
        assert runs[2] == runs[1]
        assert runs[4] == runs[1]
        # Verdicts are about the same records the exact engine scores.
        exact, _ = _run_engine(fitted_scrubber, workload, n_shards=2)
        assert [(v.bin, v.target_ip) for v in runs[1]] == [
            (v.bin, v.target_ip) for v in exact
        ]

    def test_process_backend_matches_serial(self, fitted_scrubber, workload):
        serial, _ = _run_engine(fitted_scrubber, workload, n_shards=2, agg="sketch")
        process, _ = _run_engine(
            fitted_scrubber, workload, n_shards=2, agg="sketch", backend="process"
        )
        assert process == serial

    def test_sketch_state_survives_worker_crash(self, fitted_scrubber, workload):
        """Supervised restart + re-dispatch reproduces the identical
        sketch state: verdicts match the fault-free run, with restarts."""
        serial, _ = _run_engine(fitted_scrubber, workload, n_shards=2, agg="sketch")
        chaos, snap = _run_engine(
            fitted_scrubber,
            workload,
            n_shards=2,
            agg="sketch",
            backend="supervised",
            backend_options={
                "fault_plan": FaultPlan.parse("crash@0:batch=1:count=1"),
                "shard_timeout": 30.0,
                "retry_backoff": 0.0,
            },
        )
        assert chaos == serial
        counters = {c["name"]: c["value"] for c in snap["counters"]}
        assert counters.get("resilience.worker_restarts", 0) >= 1

    def test_sketch_metrics_appear_in_snapshot(self, fitted_scrubber, workload):
        _, snap = _run_engine(fitted_scrubber, workload, n_shards=2, agg="sketch")
        counters = {c["name"]: c["value"] for c in snap["counters"]}
        gauges = {g["name"] for g in snap["gauges"]}
        assert counters.get("sketch.flows_absorbed", 0) > 0
        assert counters.get("sketch.merges", 0) >= 1
        assert counters.get("sketch.records_built", 0) > 0
        assert {"sketch.memory_bytes", "sketch.error_bound"} <= gauges

    def test_rule_tags_empty_in_sketch_mode(self, fitted_scrubber, workload):
        verdicts, _ = _run_engine(
            fitted_scrubber, workload, n_shards=2, agg="sketch"
        )
        assert all(v.matched_rules == () for v in verdicts)
