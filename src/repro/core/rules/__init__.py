"""Step 1: rule tagging — ARM mining, minimisation, curation, matching."""

from repro.core.rules.export import (
    FlowSpecRule,
    export_acl,
    export_flowspec,
    to_acl_line,
    to_flowspec,
)
from repro.core.rules.curation import (
    DEFAULT_COHORT,
    OperatorProfile,
    StudyResult,
    curate,
    run_study,
)
from repro.core.rules.items import (
    ATTRIBUTES,
    LABEL_BENIGN,
    LABEL_BLACKHOLE,
    OTHER,
    ItemEncoder,
    deduplicate,
    packet_size_bin_label,
    parse_packet_size_bin,
)
from repro.core.rules.itemsets import fp_growth, total_weight
from repro.core.rules.matcher import (
    coverage,
    match_any,
    match_matrix,
    matched_rule_ids,
    rule_mask,
)
from repro.core.rules.minimize import minimize_rules
from repro.core.rules.mining import (
    AssociationRule,
    MiningResult,
    filter_blackhole_rules,
    generate_rules,
    mine_rules,
)
from repro.core.rules.model import (
    PortMatch,
    RuleSet,
    RuleStatus,
    TaggingRule,
    tagging_rule_from_association,
)
from repro.core.rules.serialization import (
    dump_rules,
    load_rules,
    rule_from_dict,
    rule_to_dict,
)

__all__ = [
    "ATTRIBUTES",
    "FlowSpecRule",
    "export_acl",
    "export_flowspec",
    "to_acl_line",
    "to_flowspec",
    "AssociationRule",
    "DEFAULT_COHORT",
    "ItemEncoder",
    "LABEL_BENIGN",
    "LABEL_BLACKHOLE",
    "MiningResult",
    "OTHER",
    "OperatorProfile",
    "PortMatch",
    "RuleSet",
    "RuleStatus",
    "StudyResult",
    "TaggingRule",
    "coverage",
    "curate",
    "deduplicate",
    "dump_rules",
    "filter_blackhole_rules",
    "fp_growth",
    "generate_rules",
    "load_rules",
    "match_any",
    "match_matrix",
    "matched_rule_ids",
    "mine_rules",
    "minimize_rules",
    "packet_size_bin_label",
    "parse_packet_size_bin",
    "rule_from_dict",
    "rule_mask",
    "rule_to_dict",
    "run_study",
    "tagging_rule_from_association",
    "total_weight",
]
