"""Tests for the numeric transformers and PCA."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.encoding.pca import PCA, explained_variance_curve
from repro.core.encoding.transforms import (
    FeatureReducer,
    Imputer,
    MinMaxNormalizer,
    Standardizer,
)

matrices = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(3, 30), st.integers(1, 8)),
    elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
)


class TestImputer:
    def test_fills_nan(self):
        X = np.array([[1.0, np.nan], [np.nan, 4.0]])
        out = Imputer().fit_transform(X)
        np.testing.assert_array_equal(out, [[1.0, -1.0], [-1.0, 4.0]])

    def test_custom_fill(self):
        X = np.array([[np.nan]])
        assert Imputer(fill_value=0.0).fit_transform(X)[0, 0] == 0.0

    def test_no_nan_returns_same_values(self):
        X = np.array([[1.0, 2.0]])
        np.testing.assert_array_equal(Imputer().fit_transform(X), X)


class TestStandardizer:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5.0, 3.0, size=(500, 4))
        out = Standardizer().fit_transform(X)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_safe(self):
        X = np.ones((10, 2))
        out = Standardizer().fit_transform(X)
        assert np.isfinite(out).all()

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            Standardizer().transform(np.ones((2, 2)))

    @settings(max_examples=25, deadline=None)
    @given(X=matrices)
    def test_transform_invertible_stats(self, X):
        s = Standardizer().fit(X)
        out = s.transform(X)
        restored = out * s.scale_ + s.mean_
        np.testing.assert_allclose(restored, X, rtol=1e-6, atol=1e-6)


class TestMinMaxNormalizer:
    def test_range(self):
        X = np.array([[0.0, -5.0], [10.0, 5.0], [5.0, 0.0]])
        out = MinMaxNormalizer().fit_transform(X)
        assert out.min() == 0.0 and out.max() == 1.0

    def test_clips_out_of_range_at_transform(self):
        n = MinMaxNormalizer().fit(np.array([[0.0], [10.0]]))
        out = n.transform(np.array([[-5.0], [20.0]]))
        np.testing.assert_array_equal(out.ravel(), [0.0, 1.0])

    def test_constant_column_safe(self):
        out = MinMaxNormalizer().fit_transform(np.full((5, 1), 3.0))
        assert np.isfinite(out).all()

    @settings(max_examples=25, deadline=None)
    @given(X=matrices)
    def test_output_in_unit_interval(self, X):
        out = MinMaxNormalizer().fit_transform(X)
        assert (out >= 0.0).all() and (out <= 1.0).all()


class TestFeatureReducer:
    def test_drops_constant_columns(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        reducer = FeatureReducer()
        out = reducer.fit_transform(X)
        assert out.shape == (10, 1)
        assert reducer.n_kept == 1

    def test_keeps_everything_when_all_constant(self):
        X = np.ones((10, 3))
        out = FeatureReducer().fit_transform(X)
        assert out.shape == (10, 3)

    def test_nan_columns_dropped(self):
        X = np.column_stack([np.full(10, np.nan), np.arange(10.0)])
        assert FeatureReducer().fit_transform(X).shape == (10, 1)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            FeatureReducer(threshold=-1.0)


class TestPCA:
    def test_explained_variance_sums(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 6))
        pca = PCA(n_components=6).fit(X)
        assert pca.explained_variance_ratio_.sum() == pytest.approx(1.0, abs=1e-9)

    def test_components_orthonormal(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 5))
        pca = PCA(n_components=5).fit(X)
        gram = pca.components_ @ pca.components_.T
        np.testing.assert_allclose(gram, np.eye(5), atol=1e-8)

    def test_projection_shape(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(50, 10))
        out = PCA(n_components=3).fit_transform(X)
        assert out.shape == (50, 3)

    def test_captures_dominant_direction(self):
        rng = np.random.default_rng(0)
        t = rng.normal(size=500)
        X = np.column_stack([t, 2 * t + rng.normal(scale=0.01, size=500), rng.normal(scale=0.01, size=500)])
        pca = PCA(n_components=1).fit(X)
        assert pca.explained_variance_ratio_[0] > 0.95

    def test_rejects_single_sample(self):
        with pytest.raises(ValueError):
            PCA(n_components=1).fit(np.ones((1, 3)))

    def test_explained_variance_curve_monotone(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 8))
        curve = explained_variance_curve(X)
        assert (np.diff(curve) >= -1e-12).all()
        assert curve[-1] == pytest.approx(1.0, abs=1e-8)
