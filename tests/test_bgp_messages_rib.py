"""Tests for BGP update messages and the RIB."""

import pytest

from repro.bgp.community import BLACKHOLE, Community
from repro.bgp.messages import Announcement, Withdrawal
from repro.bgp.prefix import Prefix
from repro.bgp.rib import RoutingInformationBase


def ann(prefix="10.0.0.1/32", origin=64512, time=0, blackhole=True):
    communities = frozenset({BLACKHOLE}) if blackhole else frozenset()
    return Announcement(
        prefix=Prefix.parse(prefix),
        origin_asn=origin,
        time=time,
        as_path=(origin,),
        communities=communities,
    )


class TestAnnouncement:
    def test_is_blackhole(self):
        assert ann(blackhole=True).is_blackhole
        assert not ann(blackhole=False).is_blackhole

    def test_operator_community_is_blackhole(self):
        update = Announcement(
            prefix=Prefix.parse("10.0.0.1/32"),
            origin_asn=64512,
            time=0,
            communities=frozenset({Community(64512, 666)}),
        )
        assert update.is_blackhole

    def test_rejects_bad_origin(self):
        with pytest.raises(ValueError):
            ann(origin=0)

    def test_rejects_inconsistent_as_path(self):
        with pytest.raises(ValueError):
            Announcement(
                prefix=Prefix.parse("10.0.0.1/32"),
                origin_asn=64512,
                time=0,
                as_path=(64512, 64513),
            )


class TestRib:
    def test_announce_then_withdraw(self):
        rib = RoutingInformationBase()
        rib.apply(ann(time=0))
        assert len(rib) == 1
        rib.apply(Withdrawal(prefix=Prefix.parse("10.0.0.1/32"), origin_asn=64512, time=5))
        assert len(rib) == 0

    def test_reannouncement_replaces(self):
        rib = RoutingInformationBase()
        rib.apply(ann(time=0, blackhole=True))
        rib.apply(ann(time=5, blackhole=False))
        assert len(rib) == 1
        assert not rib.routes()[0].is_blackhole

    def test_multiple_origins_coexist(self):
        rib = RoutingInformationBase()
        rib.apply(ann(time=0, origin=64512))
        rib.apply(ann(time=1, origin=64513))
        assert len(rib) == 2
        assert len(rib.routes_for_prefix(Prefix.parse("10.0.0.1/32"))) == 2

    def test_out_of_order_rejected(self):
        rib = RoutingInformationBase()
        rib.apply(ann(time=10))
        with pytest.raises(ValueError, match="out-of-order"):
            rib.apply(ann(time=5))

    def test_withdraw_unknown_is_noop(self):
        rib = RoutingInformationBase()
        rib.apply(Withdrawal(prefix=Prefix.parse("10.0.0.1/32"), origin_asn=1, time=0))
        assert len(rib) == 0

    def test_blackhole_routes_filter(self):
        rib = RoutingInformationBase()
        rib.apply(ann(time=0, origin=64512, blackhole=True))
        rib.apply(ann(prefix="10.0.0.2/32", time=1, origin=64513, blackhole=False))
        blackholes = rib.blackhole_routes()
        assert len(blackholes) == 1
        assert blackholes[0].origin_asn == 64512

    def test_apply_all(self):
        rib = RoutingInformationBase()
        rib.apply_all([ann(time=0), ann(prefix="10.0.0.2/32", time=1)])
        assert len(rib) == 2
