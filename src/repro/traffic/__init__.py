"""Traffic substrate: benign models, DDoS vectors, attacks, workloads."""

from repro.traffic.address_space import (
    CLIENTS,
    REFLECTORS,
    SERVERS,
    SPOOFED,
    VICTIMS,
    AddressBlock,
    region_reflector_block,
)
from repro.traffic.attacks import AttackEvent, AttackGenerator
from repro.traffic.benign import (
    DEFAULT_SERVICES,
    BenignService,
    BenignTrafficGenerator,
)
from repro.traffic.booter import BOOTER_MENU, BooterSimulator, SelfAttackCapture
from repro.traffic.reflectors import ReflectorPool
from repro.traffic.vectors import (
    ALL_VECTORS,
    OTHER_VECTORS,
    TOP_VECTORS,
    DDoSVector,
    vector_by_name,
)
from repro.traffic.workload import (
    DEFAULT_VECTOR_POPULARITY,
    BinStatistics,
    WorkloadCapture,
    WorkloadGenerator,
)

__all__ = [
    "ALL_VECTORS",
    "AddressBlock",
    "AttackEvent",
    "AttackGenerator",
    "BOOTER_MENU",
    "BenignService",
    "BenignTrafficGenerator",
    "BinStatistics",
    "BooterSimulator",
    "CLIENTS",
    "DDoSVector",
    "DEFAULT_SERVICES",
    "DEFAULT_VECTOR_POPULARITY",
    "OTHER_VECTORS",
    "REFLECTORS",
    "ReflectorPool",
    "SERVERS",
    "SPOOFED",
    "SelfAttackCapture",
    "TOP_VECTORS",
    "VICTIMS",
    "WorkloadCapture",
    "WorkloadGenerator",
    "region_reflector_block",
    "vector_by_name",
]
