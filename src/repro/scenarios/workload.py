"""Open-loop workload managers driving scenario traffic.

A :class:`WorkloadManager` owns the benign side of an operational
scenario: it is *started*, asked to *collect* flows bin by bin, and
*stopped* — the start/stop/collect contract SRE-style scenario
harnesses use, so a conductor can compose several managers (a steady
base load plus a flash crowd, say) into one stream.

:class:`PoissonWorkloadManager` is the open-loop model: a population of
``active_users`` (re-sampled every ``user_window_bins`` bins, so load
breathes instead of being a flat line) each emitting ``rate_per_user``
flows per bin, giving Poisson arrivals with mean
``active_users x rate_per_user x scale`` per bin. ``scale`` is the
explicit "how many million users" knob: everything else in a scenario
stays fixed while ``scale`` sweeps the offered load.

Flow counts are exact, not approximate: each drawn arrival becomes
exactly one rendered flow (``flows_per_target_mean=1.0`` makes the
benign generator's geometric per-target count degenerate to one), so
the arrival process *is* the flow process.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro import obs
from repro.netflow.dataset import FlowDataset
from repro.obs import names
from repro.traffic.benign import BenignTrafficGenerator

__all__ = ["WorkloadManager", "PoissonWorkloadManager", "BIN_SECONDS"]

#: Seconds per streaming bin, matching ``repro.core.streaming``.
BIN_SECONDS = 60

#: SeedSequence domain tag decorrelating workload streams from every
#: other seeded component.
_SEED_TAG = 0x5CE4


class WorkloadManager(ABC):
    """Start/stop/collect lifecycle for one scenario traffic source."""

    @abstractmethod
    def start(self, start_bin: int = 0) -> None:
        """Begin generating; the next collected bin is ``start_bin``."""

    @abstractmethod
    def stop(self) -> None:
        """Stop generating; further :meth:`collect` calls are an error."""

    @abstractmethod
    def collect(self, n_bins: int) -> FlowDataset:
        """Generate and return the flows of the next ``n_bins`` bins."""

    @abstractmethod
    def recent_entries(self, duration_bins: int) -> FlowDataset:
        """Flows generated within the trailing ``duration_bins`` bins."""


class PoissonWorkloadManager(WorkloadManager):
    """Open-loop Poisson benign load: ``active_users x rate_per_user``.

    Parameters
    ----------
    seed:
        Master seed; two managers with equal parameters and seeds emit
        bit-identical flow streams.
    active_users:
        Mean size of the active-user population at ``scale=1.0``.
    rate_per_user:
        Benign flows each active user contributes per bin.
    scale:
        Load multiplier applied to ``active_users`` — the scenario
        conductor's ``--scale`` knob.
    targets:
        Explicit destination pool. When omitted, ``n_targets`` addresses
        are drawn from a dedicated /16 with a heavy-tailed popularity
        profile (a few destinations receive most flows, like real
        eyeball traffic).
    user_window_bins:
        How often the active-user population is re-sampled.
    """

    def __init__(
        self,
        seed: int,
        active_users: float,
        rate_per_user: float,
        scale: float = 1.0,
        targets: np.ndarray | None = None,
        n_targets: int = 192,
        user_window_bins: int = 8,
        target_block: int = 0x0AC80000,  # 10.200.0.0/16
    ):
        if active_users <= 0 or rate_per_user <= 0 or scale <= 0:
            raise ValueError("active_users, rate_per_user and scale must be > 0")
        if user_window_bins < 1:
            raise ValueError("user_window_bins must be >= 1")
        self.seed = seed
        self.active_users = float(active_users)
        self.rate_per_user = float(rate_per_user)
        self.scale = float(scale)
        self.user_window_bins = int(user_window_bins)
        self._rng = np.random.default_rng(
            np.random.SeedSequence([_SEED_TAG, seed, 1])
        )
        if targets is None:
            if n_targets < 1 or n_targets > 0xFFFF:
                raise ValueError("n_targets must be in [1, 65535]")
            offsets = self._rng.choice(0x10000, size=n_targets, replace=False)
            targets = (target_block + offsets).astype(np.uint32)
        self._targets = np.asarray(targets, dtype=np.uint32)
        # Zipf-ish popularity over the pool: rank r gets weight r^-1.1.
        ranks = np.arange(1, self._targets.size + 1, dtype=np.float64)
        weights = ranks ** -1.1
        self._target_p = weights / weights.sum()
        self._benign = BenignTrafficGenerator(
            seed=int(np.random.SeedSequence([_SEED_TAG, seed, 2]).generate_state(1)[0])
        )
        self._running = False
        self._cursor = 0
        self._window_users: int | None = None
        self._user_samples: list[int] = []
        self._history: list[FlowDataset] = []

    @property
    def targets(self) -> np.ndarray:
        """The benign destination pool (copy)."""
        return self._targets.copy()

    @property
    def cursor(self) -> int:
        """The next bin :meth:`collect` will generate."""
        return self._cursor

    @property
    def flows_generated(self) -> int:
        return sum(len(part) for part in self._history)

    @property
    def user_samples(self) -> tuple[int, ...]:
        """Every active-user population draw so far, in order."""
        return tuple(self._user_samples)

    def mean_active_users(self) -> float:
        """Mean of the population draws (0.0 before any collection)."""
        if not self._user_samples:
            return 0.0
        return float(sum(self._user_samples)) / len(self._user_samples)

    def start(self, start_bin: int = 0) -> None:
        if self._running:
            raise RuntimeError("workload manager already started")
        self._running = True
        self._cursor = int(start_bin)
        self._window_users = None

    def stop(self) -> None:
        self._running = False

    def collect(self, n_bins: int) -> FlowDataset:
        if not self._running:
            raise RuntimeError("collect() before start() (or after stop())")
        if n_bins < 1:
            raise ValueError("n_bins must be >= 1")
        parts: list[FlowDataset] = []
        for _ in range(n_bins):
            b = self._cursor
            if self._window_users is None or b % self.user_window_bins == 0:
                self._window_users = int(
                    self._rng.poisson(self.active_users * self.scale)
                )
                self._user_samples.append(self._window_users)
                obs.gauge(names.G_SCENARIO_ACTIVE_USERS).set(self._window_users)
            n_flows = int(self._rng.poisson(self._window_users * self.rate_per_user))
            if n_flows:
                flow_targets = self._rng.choice(
                    self._targets, size=n_flows, p=self._target_p
                )
                parts.append(
                    self._benign.generate(
                        self._rng,
                        flow_targets,
                        b * BIN_SECONDS,
                        (b + 1) * BIN_SECONDS,
                        flows_per_target_mean=1.0,
                    )
                )
            self._cursor += 1
        out = FlowDataset.concat(parts) if parts else FlowDataset.empty()
        self._history.append(out)
        obs.counter(names.C_SCENARIO_WORKLOAD_FLOWS).inc(len(out))
        return out

    def collected(self) -> FlowDataset:
        """Every flow generated since :meth:`start`."""
        if not self._history:
            return FlowDataset.empty()
        return FlowDataset.concat(self._history)

    def recent_entries(self, duration_bins: int) -> FlowDataset:
        """Flows of the trailing ``duration_bins`` bins before the cursor."""
        if duration_bins < 1:
            raise ValueError("duration_bins must be >= 1")
        everything = self.collected()
        if len(everything) == 0:
            return everything
        cutoff = (self._cursor - duration_bins) * BIN_SECONDS
        return everything.select(everything.time >= cutoff)
