"""Dependency-free metrics registry: counters, gauges, histograms.

The registry is the in-process store behind every number the pipeline
emits. Three instrument types cover the needs of the scrubber's
operating mode (per-minute classification, daily retraining):

* :class:`Counter` — monotonically increasing event counts
  (flows ingested, bins closed, retrainings);
* :class:`Gauge` — point-in-time levels that move both ways
  (open bins, training-set size);
* :class:`Histogram` — fixed-bucket distributions with percentile
  estimates (span durations, batch sizes).

Instruments are keyed by ``(name, labels)`` and created lazily on first
use, so instrumented code never has to pre-declare anything::

    from repro import obs

    obs.get_registry().counter("streaming.flows_ingested").inc(128)

Which registry is "active" is a :mod:`contextvars` decision — see
:func:`get_registry` / :func:`use_registry`. A process-wide kill switch
(:func:`disable`) turns every instrument call into a no-op for
overhead-sensitive runs; ``benchmarks/test_bench_obs_overhead.py``
guards the cost of leaving it on.

Everything here is plain stdlib + threading.Lock; no third-party
dependency and no background threads.
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Mapping, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "DEFAULT_BUCKETS",
    "LabelSet",
    "get_registry",
    "default_registry",
    "use_registry",
    "enable",
    "disable",
    "is_enabled",
    "counter",
    "gauge",
    "histogram",
]

#: Canonical label representation: a sorted tuple of (key, value) pairs.
LabelSet = tuple[tuple[str, str], ...]

#: Default histogram bucket upper edges, in seconds — tuned for span
#: durations from sub-millisecond numpy ops up to multi-minute retrains.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
    120.0,
    300.0,
)


def _labelset(labels: Optional[Mapping[str, str]]) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count of events."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelSet = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Increase the counter. ``amount`` must be >= 0 (monotonicity)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "type": "counter",
            "labels": dict(self.labels),
            "value": self._value,
        }


class Gauge:
    """A level that can go up and down (open bins, buffer sizes)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelSet = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "type": "gauge",
            "labels": dict(self.labels),
            "value": self._value,
        }


class Histogram:
    """Fixed-bucket histogram with percentile estimation.

    Buckets are defined by their upper edges (inclusive), with an
    implicit final ``+Inf`` bucket. Percentiles are estimated by linear
    interpolation inside the bucket containing the requested rank —
    the standard Prometheus ``histogram_quantile`` approach, so the
    estimate is exact at bucket edges and conservative in between.
    """

    __slots__ = ("name", "labels", "buckets", "_counts", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(
        self,
        name: str,
        labels: LabelSet = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        edges = tuple(float(b) for b in buckets)
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        if list(edges) != sorted(edges):
            raise ValueError("bucket edges must be sorted ascending")
        if len(set(edges)) != len(edges):
            raise ValueError("bucket edges must be distinct")
        self.name = name
        self.labels = labels
        self.buckets = edges
        self._counts = [0] * (len(edges) + 1)  # +1 for the +Inf bucket
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        # Binary search over the (short, fixed) edge list.
        lo, hi = 0, len(self.buckets)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.buckets[mid]:
                hi = mid
            else:
                lo = mid + 1
        with self._lock:
            self._counts[lo] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else float("nan")

    @property
    def min(self) -> float:
        return self._min if self._count else float("nan")

    @property
    def max(self) -> float:
        return self._max if self._count else float("nan")

    def bucket_counts(self) -> dict[float, int]:
        """Cumulative counts per upper edge (Prometheus ``le`` style)."""
        out: dict[float, int] = {}
        running = 0
        for edge, c in zip(self.buckets, self._counts[:-1]):
            running += c
            out[edge] = running
        out[math.inf] = running + self._counts[-1]
        return out

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (``q`` in [0, 100])."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if self._count == 0:
            return float("nan")
        rank = (q / 100.0) * self._count
        running = 0.0
        prev_edge = 0.0 if self.buckets[0] > 0 else self.buckets[0]
        for edge, c in zip(self.buckets, self._counts[:-1]):
            if c:
                if running + c >= rank:
                    # Linear interpolation within this bucket, clamped to
                    # the observed extremes so estimates never leave the
                    # data's actual range.
                    frac = (rank - running) / c
                    est = prev_edge + frac * (edge - prev_edge)
                    return float(min(max(est, self._min), self._max))
                running += c
            prev_edge = edge
        # Landed in the +Inf bucket: the best point estimate is the max.
        return float(self._max)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "type": "histogram",
            "labels": dict(self.labels),
            "count": self._count,
            "sum": self._sum,
            "min": self.min if self._count else None,
            "max": self.max if self._count else None,
            "buckets": {str(k): v for k, v in self.bucket_counts().items()},
            "p50": self.percentile(50) if self._count else None,
            "p90": self.percentile(90) if self._count else None,
            "p99": self.percentile(99) if self._count else None,
        }


class MetricRegistry:
    """Lazily creates and stores instruments keyed by (name, labels)."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelSet], object] = {}
        self._lock = threading.Lock()
        # Imported lazily to avoid a module cycle (spans needs registry).
        from repro.obs.spans import SpanTracker

        self.spans = SpanTracker(self)

    # -- instrument accessors ------------------------------------------
    def _get_or_create(self, cls, name: str, labels: Optional[Mapping[str, str]], **kwargs):
        key = (name, _labelset(labels))
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = cls(name, key[1], **kwargs)
                    self._metrics[key] = metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str, labels: Optional[Mapping[str, str]] = None) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, labels: Optional[Mapping[str, str]] = None) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, labels, buckets=buckets)

    # -- inspection ----------------------------------------------------
    def metrics(self) -> list:
        """All registered instruments, sorted by (name, labels)."""
        return [self._metrics[k] for k in sorted(self._metrics)]

    def get(self, name: str, labels: Optional[Mapping[str, str]] = None):
        """Look up an instrument without creating it (None if absent)."""
        return self._metrics.get((name, _labelset(labels)))

    def names(self) -> set[str]:
        return {name for name, _ in self._metrics}

    def reset(self) -> None:
        """Drop all instruments and span state (tests, CLI reruns)."""
        with self._lock:
            self._metrics.clear()
        self.spans.reset()

    def __len__(self) -> int:
        return len(self._metrics)


# ----------------------------------------------------------------------
# Active-registry plumbing
# ----------------------------------------------------------------------
#: Process-wide kill switch; when False every instrumentation helper in
#: :mod:`repro.obs` short-circuits to a no-op.
_enabled = True

_default_registry = MetricRegistry()
_active_registry: ContextVar[Optional[MetricRegistry]] = ContextVar(
    "repro_obs_registry", default=None
)


def get_registry() -> MetricRegistry:
    """The active registry: context-local if set, else the process default.

    Components that own their metrics (e.g. ``StreamingScrubber``)
    activate a private registry with :func:`use_registry` around their
    work; library code lower in the stack then records into it without
    having to thread a registry argument through every call.
    """
    reg = _active_registry.get()
    return reg if reg is not None else _default_registry


def default_registry() -> MetricRegistry:
    """The process-wide default registry."""
    return _default_registry


@contextmanager
def use_registry(registry: MetricRegistry) -> Iterator[MetricRegistry]:
    """Make ``registry`` the active one within the ``with`` block."""
    token = _active_registry.set(registry)
    try:
        yield registry
    finally:
        _active_registry.reset(token)


def enable() -> None:
    """Turn instrumentation on (the default)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn every obs helper into a no-op (overhead-sensitive runs)."""
    global _enabled
    _enabled = False


def is_enabled() -> bool:
    return _enabled


# ----------------------------------------------------------------------
# Null instruments + convenience accessors
# ----------------------------------------------------------------------
class _NullInstrument:
    """Shared no-op stand-in returned while instrumentation is disabled."""

    __slots__ = ()
    name = "<disabled>"
    labels: LabelSet = ()
    value = 0.0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL = _NullInstrument()


def counter(name: str, labels: Optional[Mapping[str, str]] = None):
    """Counter on the active registry (no-op instrument when disabled)."""
    if not _enabled:
        return _NULL
    return get_registry().counter(name, labels)


def gauge(name: str, labels: Optional[Mapping[str, str]] = None):
    """Gauge on the active registry (no-op instrument when disabled)."""
    if not _enabled:
        return _NULL
    return get_registry().gauge(name, labels)


def histogram(
    name: str,
    labels: Optional[Mapping[str, str]] = None,
    buckets: Sequence[float] = DEFAULT_BUCKETS,
):
    """Histogram on the active registry (no-op instrument when disabled)."""
    if not _enabled:
        return _NULL
    return get_registry().histogram(name, labels, buckets=buckets)
