"""IPv4 prefixes and longest-prefix matching.

Blackholing announcements carry IP prefixes (usually host routes, /32,
but covering prefixes occur in practice); matching sampled flows against
the set of currently blackholed prefixes is a longest-prefix-match (LPM)
problem. :class:`PrefixTrie` implements a binary trie with vectorised
batch lookup for flow datasets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, Optional, TypeVar

import numpy as np

from repro.netflow.record import int_to_ip, ip_to_int

V = TypeVar("V")


@dataclass(frozen=True, order=True)
class Prefix:
    """An IPv4 prefix, stored as (network uint32, length)."""

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError(f"prefix length out of range: {self.length}")
        if not 0 <= self.network <= 0xFFFFFFFF:
            raise ValueError(f"network out of range: {self.network}")
        if self.network & ~self.mask:
            raise ValueError(
                f"host bits set in {int_to_ip(self.network)}/{self.length}"
            )

    @property
    def mask(self) -> int:
        """The network mask as a uint32 value."""
        if self.length == 0:
            return 0
        return (0xFFFFFFFF << (32 - self.length)) & 0xFFFFFFFF

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"a.b.c.d/len"`` (or a bare address, implying /32)."""
        if "/" in text:
            address, _, length_text = text.partition("/")
            length = int(length_text)
        else:
            address, length = text, 32
        return cls(network=ip_to_int(address) & cls._mask_for(length), length=length)

    @staticmethod
    def _mask_for(length: int) -> int:
        if not 0 <= length <= 32:
            raise ValueError(f"prefix length out of range: {length}")
        if length == 0:
            return 0
        return (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF

    @classmethod
    def host(cls, address: int | str) -> "Prefix":
        """The /32 host route for ``address``."""
        return cls(network=ip_to_int(address), length=32)

    def contains(self, address: int) -> bool:
        """True if ``address`` falls inside this prefix."""
        return (address & self.mask) == self.network

    def covers(self, other: "Prefix") -> bool:
        """True if this prefix covers ``other`` (equal or less specific)."""
        return self.length <= other.length and other.network & self.mask == self.network

    def __str__(self) -> str:
        return f"{int_to_ip(self.network)}/{self.length}"


class _TrieNode(Generic[V]):
    __slots__ = ("children", "value", "terminal")

    def __init__(self) -> None:
        self.children: list[Optional[_TrieNode[V]]] = [None, None]
        self.value: Optional[V] = None
        self.terminal = False


class PrefixTrie(Generic[V]):
    """A binary trie mapping IPv4 prefixes to values, with LPM lookup."""

    def __init__(self) -> None:
        self._root: _TrieNode[V] = _TrieNode()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, prefix: Prefix, value: V) -> None:
        """Insert ``prefix`` (replacing any existing value)."""
        node = self._root
        for depth in range(prefix.length):
            bit = (prefix.network >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                child = _TrieNode()
                node.children[bit] = child
            node = child
        if not node.terminal:
            self._size += 1
        node.terminal = True
        node.value = value

    def remove(self, prefix: Prefix) -> bool:
        """Remove ``prefix``; returns True if it was present."""
        path: list[tuple[_TrieNode[V], int]] = []
        node = self._root
        for depth in range(prefix.length):
            bit = (prefix.network >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                return False
            path.append((node, bit))
            node = child
        if not node.terminal:
            return False
        node.terminal = False
        node.value = None
        self._size -= 1
        # Prune now-empty branches.
        for parent, bit in reversed(path):
            child = parent.children[bit]
            if child is not None and not child.terminal and child.children == [None, None]:
                parent.children[bit] = None
            else:
                break
        return True

    def longest_match(self, address: int) -> Optional[tuple[Prefix, V]]:
        """Return the most specific (prefix, value) covering ``address``."""
        node = self._root
        best: Optional[tuple[int, V]] = None
        network = 0
        if node.terminal:
            best = (0, node.value)  # type: ignore[arg-type]
        for depth in range(32):
            bit = (address >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                break
            network |= bit << (31 - depth)
            node = child
            if node.terminal:
                best = (depth + 1, node.value)  # type: ignore[arg-type]
        if best is None:
            return None
        length, value = best
        mask = Prefix._mask_for(length)
        return Prefix(network=network & mask, length=length), value

    def covers(self, address: int) -> bool:
        """True if any stored prefix contains ``address``."""
        return self.longest_match(address) is not None

    def covers_batch(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorised membership test for an array of uint32 addresses.

        Hashes distinct addresses once, so cost scales with the number of
        unique addresses rather than the number of flows.
        """
        addresses = np.asarray(addresses, dtype=np.uint32)
        if addresses.size == 0:
            return np.zeros(0, dtype=bool)
        unique, inverse = np.unique(addresses, return_inverse=True)
        hits = np.fromiter(
            (self.covers(int(a)) for a in unique), dtype=bool, count=unique.shape[0]
        )
        return hits[inverse]

    def items(self) -> list[tuple[Prefix, V]]:
        """All stored (prefix, value) pairs in network order."""
        out: list[tuple[Prefix, V]] = []

        def walk(node: _TrieNode[V], network: int, depth: int) -> None:
            if node.terminal:
                mask = Prefix._mask_for(depth)
                out.append((Prefix(network=network & mask, length=depth), node.value))  # type: ignore[arg-type]
            for bit in (0, 1):
                child = node.children[bit]
                if child is not None:
                    walk(child, network | (bit << (31 - depth)), depth + 1)

        walk(self._root, 0, 0)
        return out
