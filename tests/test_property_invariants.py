"""Property-based invariants over seeded random workloads.

Each test draws many random cases from ``tests/strategies.py`` (plain
seeded numpy generators — no third-party property-testing dependency)
and asserts an invariant the pipeline's correctness argument rests on:

* the vectorised batch aggregation path is bit-identical to the
  per-bin path;
* WoE encoding is order-consistent with the empirical class odds, and
  the frozen (cached) encoder matches the live one bitwise;
* the §3 balancer keeps every blackholed flow and never lets benign
  traffic outnumber blackholed traffic in any bin;
* rule matching is deterministic, subset-consistent and idempotent;
* compiled flat-array tree kernels predict bit-identically to the
  recursive reference traversals for DT and GBT, including empty and
  single-row inputs;
* sharded execution merges to exactly the serial verdict stream for
  shards ∈ {1, 2, 4} across 50 seeded workloads.

A failure always prints the offending seed; reproduce with
``strategies.rng_for(seed)``.
"""

from __future__ import annotations

import numpy as np
import pytest

from tests import strategies
from repro.core.encoding.woe import UNKNOWN_WOE, WoEEncoder
from repro.core.features import schema
from repro.core.features.aggregation import aggregate, aggregate_batch
from repro.core.labeling.balancer import balance
from repro.core.models.boosting import GradientBoostedTrees
from repro.core.models.kernels import (
    ForestKernel,
    reference_cart_values,
    reference_forest_margin,
)
from repro.core.models.tree import DecisionTree
from repro.core.parallel import ShardedStreamingScrubber
from repro.core.rules.matcher import match_matrix, matched_rule_ids, rule_mask
from repro.core.scrubber import IXPScrubber, ScrubberConfig
from repro.core.streaming import StreamingScrubber


@pytest.fixture(scope="module")
def fitted_scrubber() -> IXPScrubber:
    """One XGB scrubber fitted on a balanced random workload."""
    rng = strategies.rng_for(999)
    labeled = strategies.labeled_flows(rng, n_flows=6000, n_targets=12, n_bins=20)
    balanced = balance(labeled, np.random.default_rng(7)).flows
    config = ScrubberConfig(model="XGB", model_params={"n_estimators": 10})
    return IXPScrubber(config).fit(balanced)


def _assert_aggregates_equal(a, b, seed):
    assert np.array_equal(a.bins, b.bins), f"seed {seed}: bins differ"
    assert np.array_equal(a.targets, b.targets), f"seed {seed}: targets differ"
    assert np.array_equal(a.labels, b.labels), f"seed {seed}: labels differ"
    assert np.array_equal(a.n_flows, b.n_flows), f"seed {seed}: n_flows differ"
    assert a.rule_tags == b.rule_tags, f"seed {seed}: rule tags differ"
    for name in a.categorical:
        assert np.array_equal(a.categorical[name], b.categorical[name]), (
            f"seed {seed}: categorical {name} differs"
        )
    for name in a.metrics:
        assert np.array_equal(
            a.metrics[name], b.metrics[name], equal_nan=True
        ), f"seed {seed}: metric {name} differs"


class TestBatchAggregation:
    def test_batch_path_bit_identical(self):
        for seed in range(8):
            rng = strategies.rng_for(seed)
            flows = strategies.labeled_flows(rng, n_flows=500, n_bins=4)
            rules = strategies.tagging_rules(rng) if seed % 2 else ()
            _assert_aggregates_equal(
                aggregate(flows, rules=rules),
                aggregate_batch(flows, rules=rules),
                seed,
            )

    def test_batch_rejects_empty_like_loop_path(self):
        from repro.netflow.dataset import FlowDataset

        with pytest.raises(ValueError):
            aggregate_batch(FlowDataset.empty())


class TestWoEInvariants:
    def test_woe_order_matches_empirical_odds(self):
        """Pooled WoE must rank values exactly like their class odds.

        With shared per-domain denominators, WoE(u) > WoE(v) iff the
        smoothed odds (pos+1)/(neg+1) of u exceed v's — monotonicity of
        the encoding in the evidence.
        """
        for seed in range(5):
            rng = strategies.rng_for(seed)
            data = aggregate(strategies.labeled_flows(rng, n_flows=800))
            encoder = WoEEncoder(min_count=1).fit(data)
            for domain in schema.CATEGORICALS:
                counts: dict[int, list[float]] = {}
                for metric in schema.METRICS:
                    for rank in range(schema.RANKS):
                        column = data.categorical[
                            schema.key_column(domain, metric, rank)
                        ]
                        for value, label in zip(column, data.labels):
                            pair = counts.setdefault(int(value), [0.0, 0.0])
                            pair[0 if label else 1] += 1.0
                table = encoder.table(domain)
                values = sorted(table.mapping)
                odds = {
                    v: (counts[v][0] + 1.0) / (counts[v][1] + 1.0) for v in values
                }
                for u, v in zip(values, values[1:]):
                    assert (table.mapping[u] > table.mapping[v]) == (
                        odds[u] > odds[v]
                    ), f"seed {seed}: WoE not monotone in odds for {domain}"

    def test_scalar_vector_and_frozen_encodes_agree(self):
        for seed in range(5):
            rng = strategies.rng_for(seed)
            data = aggregate(strategies.labeled_flows(rng, n_flows=600))
            encoder = WoEEncoder().fit(data)
            frozen = encoder.freeze()
            live = encoder.transform(data)
            cold = frozen.transform(data)
            for name, values in data.categorical.items():
                scalar = np.array(
                    [
                        encoder.table(schema.parse_column(name)[0]).encode_value(v)
                        for v in values
                    ]
                )
                assert np.array_equal(live[name], scalar)
                assert np.array_equal(cold[name], live[name]), (
                    f"seed {seed}: frozen encode differs on {name}"
                )

    def test_frozen_unknowns_and_staleness(self):
        rng = strategies.rng_for(0)
        data = aggregate(strategies.labeled_flows(rng, n_flows=400))
        encoder = WoEEncoder().fit(data)
        frozen = encoder.freeze()
        unseen = np.array([-(10**9)], dtype=np.int64)
        for domain in schema.CATEGORICALS:
            assert frozen.encode_domain(domain, unseen)[0] == UNKNOWN_WOE
        assert not frozen.is_stale()
        encoder.update(data)
        assert frozen.is_stale()


class TestBalancerBounds:
    def test_ratio_bounds_hold_on_random_workloads(self):
        for seed in range(10):
            rng = strategies.rng_for(seed)
            labeled = strategies.labeled_flows(rng, n_flows=700, n_bins=5)
            result = balance(labeled, np.random.default_rng(seed))
            report = result.report
            # Every blackholed flow is kept, nothing is invented.
            assert (
                int(result.flows.blackhole.sum()) == int(labeled.blackhole.sum())
            ), f"seed {seed}: blackholed flows dropped"
            assert report.flows_after <= report.flows_before
            assert 0.0 <= report.reduction <= 1.0
            # Per bin, benign never outnumbers blackholed (IPs or flows),
            # hence the blackhole share is >= 0.5 overall.
            assert (report.benign_flows <= report.blackhole_flows).all(), (
                f"seed {seed}: benign flows exceed blackholed in a bin"
            )
            assert (report.benign_ips <= report.blackhole_ips).all(), (
                f"seed {seed}: benign IPs exceed blackholed in a bin"
            )
            assert result.blackhole_share >= 0.5, f"seed {seed}: share < 0.5"


class TestRuleMatcherIdempotence:
    def test_matching_is_deterministic_and_idempotent(self):
        for seed in range(10):
            rng = strategies.rng_for(seed)
            flows = strategies.labeled_flows(rng, n_flows=500)
            rules = strategies.tagging_rules(rng, n_rules=5)
            first = match_matrix(rules, flows)
            again = match_matrix(rules, flows)
            assert np.array_equal(first, again), f"seed {seed}: non-deterministic"
            for j, rule in enumerate(rules):
                mask = rule_mask(rule, flows)
                assert np.array_equal(mask, first[:, j])
                matched = flows.select(mask)
                # Idempotence: re-matching the already-matched subset
                # matches everything again.
                assert rule_mask(rule, matched).all(), (
                    f"seed {seed}: rule {rule.rule_id} not idempotent"
                )
                # Subset consistency: masks restrict like the data.
                subset = np.flatnonzero(flows.dst_ip % 2 == 0)
                assert np.array_equal(
                    rule_mask(rule, flows.select(subset)), mask[subset]
                )


class TestShardMergeDeterminism:
    def test_verdicts_identical_for_1_2_4_shards_on_50_workloads(
        self, fitted_scrubber
    ):
        """The tentpole determinism guarantee, on 50 seeded workloads."""
        engine_kwargs = dict(
            window_days=2,
            bins_per_day=48,
            min_flows_per_verdict=3,
            # Pure-classification runs: the grace period never elapses,
            # so no retrain perturbs the comparison across seeds.
            label_grace_bins=10**6,
            seed=1,
        )
        for seed in range(50):
            rng = strategies.rng_for(seed)
            workload = strategies.labeled_flows(
                rng,
                n_flows=300,
                n_targets=10,
                n_bins=int(rng.integers(2, 5)),
            )
            serial = StreamingScrubber(**engine_kwargs).warm_start(fitted_scrubber)
            expected = serial.ingest(workload) + serial.flush()
            assert expected, f"seed {seed}: workload produced no verdicts"
            for n_shards in (1, 2, 4):
                sharded = ShardedStreamingScrubber(
                    n_shards=n_shards, backend="serial", **engine_kwargs
                ).warm_start(fitted_scrubber)
                actual = sharded.ingest(workload) + sharded.flush()
                assert actual == expected, (
                    f"seed {seed}: shards={n_shards} diverged from serial"
                )


class TestKernelEquivalence:
    """Compiled flat-array kernels are bit-identical to recursion.

    The model-kernel layer replaces every recursive ``_apply`` walk with
    iterative node-index propagation; these properties pin the compiled
    path to the recursive oracle bit-for-bit across random datasets and
    hyperparameters, including empty and single-row prediction inputs.
    """

    @staticmethod
    def _dataset(rng, n, n_features):
        X = rng.normal(size=(n, n_features))
        # A low-cardinality column keeps the binner's short-bin paths hot.
        X[:, 0] = rng.integers(0, 3, size=n)
        y = (X[:, 0] + X[:, 1] > rng.normal(size=n)).astype(np.int64)
        if y.min() == y.max():
            y[: n // 2] = 1 - y[0]
        return X, y

    def test_gbt_margin_matches_recursive_reference(self):
        for seed in range(10):
            rng = strategies.rng_for(seed)
            n = int(rng.integers(50, 400))
            n_features = int(rng.integers(2, 8))
            X, y = self._dataset(rng, n, n_features)
            model = GradientBoostedTrees(
                n_estimators=int(rng.integers(1, 12)),
                max_depth=int(rng.integers(1, 6)),
                learning_rate=float(rng.uniform(0.05, 0.5)),
                reg_lambda=float(rng.choice([0.0, 1.0, 5.0])),
                min_child_weight=float(rng.choice([0.0, 1.0, 10.0])),
            ).fit(X, y)
            for n_test in (0, 1, int(rng.integers(2, 200))):
                Xt = rng.normal(size=(n_test, n_features))
                kernel = model.decision_function(Xt)
                recursive = reference_forest_margin(
                    model.trees_, model.base_score_, model.learning_rate, Xt
                )
                assert np.array_equal(kernel, recursive), (
                    f"seed {seed}: GBT kernel drifted on n_test={n_test}"
                )

    def test_gbt_forest_recompiles_identically_from_node_graphs(self):
        """trees_ -> from_boost_nodes round-trips the BFS stacking."""
        for seed in range(5):
            rng = strategies.rng_for(seed)
            X, y = self._dataset(rng, 200, 5)
            model = GradientBoostedTrees(n_estimators=6, max_depth=4).fit(X, y)
            recompiled = ForestKernel.from_boost_nodes(model.trees_)
            Xt = rng.normal(size=(100, 5))
            assert model.forest_ is not None
            assert np.array_equal(
                recompiled.margin(Xt, model.base_score_, model.learning_rate),
                model.forest_.margin(Xt, model.base_score_, model.learning_rate),
            ), f"seed {seed}: recompiled forest diverged"

    def test_cart_kernel_matches_recursive_reference(self):
        for seed in range(10):
            rng = strategies.rng_for(seed)
            n = int(rng.integers(60, 400))
            n_features = int(rng.integers(2, 8))
            X, y = self._dataset(rng, n, n_features)
            model = DecisionTree(
                max_depth=int(rng.integers(1, 10)),
                min_samples_leaf=int(rng.integers(1, 10)),
                min_samples_split=int(rng.integers(2, 10)),
                ccp_alpha=float(rng.choice([0.0, 0.001, 0.01])),
            ).fit(X, y)
            assert model.root_ is not None
            for n_test in (0, 1, int(rng.integers(2, 200))):
                Xt = rng.normal(size=(n_test, n_features))
                kernel = model.predict_proba(Xt)
                recursive = reference_cart_values(model.root_, Xt)
                assert np.array_equal(kernel, recursive), (
                    f"seed {seed}: CART kernel drifted on n_test={n_test}"
                )

    def test_matched_rule_ids_matches_per_row_scan(self):
        for seed in range(10):
            rng = strategies.rng_for(seed)
            flows = strategies.labeled_flows(rng, n_flows=300)
            rules = strategies.tagging_rules(rng, n_rules=5)
            matrix = match_matrix(rules, flows)
            ids = [rule.rule_id for rule in rules]
            expected = [
                tuple(ids[k] for k in np.flatnonzero(row)) for row in matrix
            ]
            assert matched_rule_ids(rules, flows) == expected, (
                f"seed {seed}: vectorised matched_rule_ids diverged"
            )


class TestWideFlowsStrategy:
    """The wide_flows size hint actually bounds the dataset."""

    def test_max_flows_clamps_dataset_size(self):
        for seed in range(10):
            rng = strategies.rng_for(seed)
            hint = int(rng.integers(1, 200))
            per_target = int(rng.integers(1, 5))
            data = strategies.wide_flows(
                strategies.rng_for(seed),
                n_targets=5000,
                flows_per_target=per_target,
                max_flows=hint,
            )
            assert len(data) <= hint, (
                f"seed {seed}: size hint {hint} ignored ({len(data)} flows)"
            )
            assert len(data) >= 1

    def test_small_hint_beats_large_default_fanout(self):
        # The regression: small-scale property runs passed a hint but
        # still got the full n_targets * flows_per_target fan-out.
        small = strategies.wide_flows(strategies.rng_for(3), max_flows=50)
        full = strategies.wide_flows(strategies.rng_for(3))
        assert len(small) <= 50
        assert len(full) == 10000

    def test_targets_stay_one_per_slash24_inside_10_8(self):
        data = strategies.wide_flows(
            strategies.rng_for(1), n_targets=80000, flows_per_target=1
        )
        dst = np.unique(data.dst_ip)
        assert len(data) == 65536  # capped at one target per /24 of 10/8
        assert ((dst & 0xFF000000) == 0x0A000000).all()
        assert len(np.unique(dst >> 8)) == len(dst)

    def test_rejects_nonpositive_hint(self):
        with pytest.raises(ValueError):
            strategies.wide_flows(strategies.rng_for(0), max_flows=0)
