"""Tagging rules and the curated rule set (paper §5.1.2, Fig. 6).

A :class:`TaggingRule` is the operator-facing form of a mined blackhole
rule: a firewall-style match on protocol / source port / destination
port / packet-size bin, carrying its ARM quality metrics and a curation
status. The :class:`RuleSet` models the UI lifecycle — ``accept``,
``staging``, ``decline`` — plus export/import-and-merge, which is how a
rule set grows over time.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Optional

import numpy as np

from repro.core.rules.items import (
    ATTRIBUTES,
    Item,
    ItemEncoder,
    OTHER,
    parse_packet_size_bin,
)
from repro.core.rules.mining import AssociationRule


class RuleStatus(enum.Enum):
    """Curation status of a tagging rule (Fig. 6)."""

    ACCEPT = "accept"
    STAGING = "staging"
    DECLINE = "decline"


@dataclass(frozen=True)
class PortMatch:
    """Match on a transport port: a value set, possibly negated.

    ``PortMatch({123}, negated=False)`` matches port 123;
    ``PortMatch({0, 17, 19}, negated=True)`` matches any port *except*
    those — the ``~{0,17,19,...}`` notation of the paper's released
    rules.
    """

    values: frozenset[int]
    negated: bool = False

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("port match needs at least one value")
        for v in self.values:
            if not 0 <= v <= 0xFFFF:
                raise ValueError(f"port out of range: {v}")

    def matches(self, port: int) -> bool:
        inside = port in self.values
        return not inside if self.negated else inside

    def values_array(self) -> np.ndarray:
        """Sorted port values as a cached uint32 array.

        The vectorised matcher probes this set against whole flow
        columns; building the array once per rule instead of per
        ``rule_mask`` call keeps repeated matching allocation-free.
        """
        cached = self.__dict__.get("_values_array")
        if cached is None:
            cached = np.fromiter(sorted(self.values), dtype=np.uint32)
            # Frozen dataclass: bypass the frozen setattr for the cache.
            object.__setattr__(self, "_values_array", cached)
        return cached

    def render(self) -> str:
        body = "{" + ",".join(str(v) for v in sorted(self.values)) + "}"
        return f"~{body}" if self.negated else body

    @classmethod
    def parse(cls, text: str) -> "PortMatch":
        negated = text.startswith("~")
        if negated:
            text = text[1:]
        if not (text.startswith("{") and text.endswith("}")):
            raise ValueError(f"malformed port match: {text!r}")
        values = frozenset(int(p) for p in text[1:-1].split(",") if p.strip())
        return cls(values=values, negated=negated)


@dataclass(frozen=True)
class TaggingRule:
    """One curated flow-tagging rule. ``None`` fields are wildcards."""

    rule_id: str
    confidence: float
    support: float
    protocol: Optional[int] = None
    port_src: Optional[PortMatch] = None
    port_dst: Optional[PortMatch] = None
    #: Packet-size bin as (low, high], or None for wildcard.
    packet_size: Optional[tuple[int, int]] = None
    status: RuleStatus = RuleStatus.STAGING
    notes: str = ""

    def __post_init__(self) -> None:
        if self.protocol is None and self.port_src is None and self.port_dst is None and self.packet_size is None:
            raise ValueError("rule must constrain at least one header field")

    def with_status(self, status: RuleStatus, notes: Optional[str] = None) -> "TaggingRule":
        """Return a copy with a new curation status (and optional notes)."""
        return replace(self, status=status, notes=self.notes if notes is None else notes)

    def matches_record(
        self, protocol: int, src_port: int, dst_port: int, packet_size: float
    ) -> bool:
        """Scalar match against one flow's header fields."""
        if self.protocol is not None and protocol != self.protocol:
            return False
        if self.port_src is not None and not self.port_src.matches(src_port):
            return False
        if self.port_dst is not None and not self.port_dst.matches(dst_port):
            return False
        if self.packet_size is not None:
            low, high = self.packet_size
            if not (low < packet_size <= high):
                return False
        return True

    def describe(self) -> str:
        parts = []
        if self.protocol is not None:
            parts.append(f"protocol={self.protocol}")
        if self.port_src is not None:
            parts.append(f"port_src={self.port_src.render()}")
        if self.port_dst is not None:
            parts.append(f"port_dst={self.port_dst.render()}")
        if self.packet_size is not None:
            parts.append(f"packet_size=({self.packet_size[0]},{self.packet_size[1]}]")
        return f"[{self.rule_id}] " + " ".join(parts) + f" c={self.confidence:.4f} s={self.support:.5f}"


def _rule_id(antecedent_repr: str) -> str:
    return hashlib.sha1(antecedent_repr.encode()).hexdigest()[:8]


def tagging_rule_from_association(
    rule: AssociationRule, encoder: ItemEncoder
) -> TaggingRule:
    """Translate a mined blackhole rule into its ACL form.

    The encoder supplies the popular-port vocabularies so the ``OTHER``
    category becomes a negated port set.
    """
    if not rule.is_blackhole_rule:
        raise ValueError("only blackhole-consequent rules become tagging rules")
    protocol: Optional[int] = None
    port_src: Optional[PortMatch] = None
    port_dst: Optional[PortMatch] = None
    packet_size: Optional[tuple[int, int]] = None
    for attribute, value in rule.antecedent:
        if attribute == "protocol":
            protocol = int(value)  # type: ignore[arg-type]
        elif attribute == "port_src":
            if value == OTHER:
                port_src = PortMatch(values=frozenset(encoder.src_ports) or frozenset({0}), negated=True)
            else:
                port_src = PortMatch(values=frozenset({int(value)}))  # type: ignore[arg-type]
        elif attribute == "port_dst":
            if value == OTHER:
                port_dst = PortMatch(values=frozenset(encoder.dst_ports) or frozenset({0}), negated=True)
            else:
                port_dst = PortMatch(values=frozenset({int(value)}))  # type: ignore[arg-type]
        elif attribute == "packet_size":
            packet_size = parse_packet_size_bin(str(value))
        else:
            raise ValueError(f"unknown antecedent attribute: {attribute!r}")
    antecedent_repr = repr(sorted(rule.antecedent, key=repr))
    return TaggingRule(
        rule_id=_rule_id(antecedent_repr),
        confidence=rule.confidence,
        support=rule.support,
        protocol=protocol,
        port_src=port_src,
        port_dst=port_dst,
        packet_size=packet_size,
    )


class RuleSet:
    """An ordered, curatable collection of tagging rules."""

    def __init__(self, rules: Iterable[TaggingRule] = ()):
        self._rules: dict[str, TaggingRule] = {}
        for rule in rules:
            self.add(rule)

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[TaggingRule]:
        return iter(self._rules.values())

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def add(self, rule: TaggingRule) -> None:
        """Add or replace a rule (keyed by ``rule_id``)."""
        self._rules[rule.rule_id] = rule

    def get(self, rule_id: str) -> TaggingRule:
        return self._rules[rule_id]

    def set_status(self, rule_id: str, status: RuleStatus, notes: Optional[str] = None) -> None:
        """Curate one rule; unknown ids raise ``KeyError``."""
        self._rules[rule_id] = self._rules[rule_id].with_status(status, notes)

    def accepted(self) -> list[TaggingRule]:
        """Rules curated as ``accept`` — the active ACL set."""
        return [r for r in self if r.status == RuleStatus.ACCEPT]

    def staged(self) -> list[TaggingRule]:
        return [r for r in self if r.status == RuleStatus.STAGING]

    def declined(self) -> list[TaggingRule]:
        return [r for r in self if r.status == RuleStatus.DECLINE]

    def merge(self, other: "RuleSet") -> "RuleSet":
        """Merge freshly mined rules into this set (paper §5.1.2).

        Rules already curated here keep their status — in particular,
        declined rules "never show up again". New rules arrive in
        staging.
        """
        merged = RuleSet(self)
        for rule in other:
            if rule.rule_id in merged:
                continue  # keep the existing curation decision
            merged.add(rule)
        return merged

    @classmethod
    def from_mining(
        cls, rules: Iterable[AssociationRule], encoder: ItemEncoder
    ) -> "RuleSet":
        """Build a staged rule set from mined blackhole rules."""
        return cls(tagging_rule_from_association(r, encoder) for r in rules)


#: Attribute order for UIs/tables, mirroring Fig. 6 columns.
UI_COLUMNS = ("id", *ATTRIBUTES, "confidence", "support", "status", "notes")
