"""Tests for the streaming (online deployment) engine."""

import numpy as np
import pytest

from repro.core.scrubber import ScrubberConfig
from repro.core.streaming import StreamingScrubber
from repro.ixp.fabric import IXPFabric
from repro.ixp.profiles import IXPProfile
from repro.traffic.workload import WorkloadGenerator


@pytest.fixture(scope="module")
def stream_capture():
    profile = IXPProfile(
        name="IXP-STREAM", region=11, n_members=8, traffic_scale=0.01,
        attacks_per_day=14.0, attack_intensity=25.0,
        benign_flows_per_target=5.0, benign_targets_per_minute=24,
        bins_per_day=48, seed=55,
    )
    fabric = IXPFabric(profile)
    capture = WorkloadGenerator(fabric).generate(0, 3)
    return profile, capture


def drive(engine, capture, chunk_bins=8):
    """Feed a capture through the engine in time-ordered chunks."""
    flows = capture.flows
    updates = sorted(capture.updates, key=lambda u: u.time)
    verdicts = []
    bins = flows.time // 60
    u = 0
    for start in range(int(bins.min()), int(bins.max()) + 1, chunk_bins):
        end = start + chunk_bins
        mask = (bins >= start) & (bins < end)
        chunk = flows.select(mask)
        chunk_updates = []
        limit = end * 60
        while u < len(updates) and updates[u].time < limit:
            chunk_updates.append(updates[u])
            u += 1
        verdicts.extend(engine.ingest(chunk, chunk_updates))
    verdicts.extend(engine.flush())
    return verdicts


class TestStreamingScrubber:
    def test_validation(self):
        with pytest.raises(ValueError):
            StreamingScrubber(window_days=0)
        with pytest.raises(ValueError):
            StreamingScrubber(bins_per_day=0)

    def test_not_ready_before_data(self):
        engine = StreamingScrubber()
        assert not engine.is_ready
        assert engine.model is None

    def test_end_to_end_detection(self, stream_capture):
        profile, capture = stream_capture
        engine = StreamingScrubber(
            config=ScrubberConfig(model="XGB", model_params={"n_estimators": 15}),
            window_days=2,
            bins_per_day=profile.bins_per_day,
            seed=1,
        )
        verdicts = drive(engine, capture)

        assert engine.is_ready
        assert engine.stats.retrainings >= 2  # daily retraining happened
        assert engine.stats.bins_closed > 100
        assert engine.stats.flows_ingested == len(capture.flows)

        # After warm-up, real victims are detected.
        victims = {e.victim for e in capture.events}
        warmup_end = profile.seconds_per_day  # first day is bootstrap
        detected = {
            v.target_ip for v in verdicts if v.is_ddos and v.bin * 60 >= warmup_end
        }
        late_victims = {e.victim for e in capture.events if e.start >= warmup_end}
        recall = len(detected & late_victims) / max(len(late_victims), 1)
        assert recall > 0.7

        # False-alarm targets stay bounded.
        false_alarms = detected - victims
        assert len(false_alarms) <= len(detected & victims)

    def test_no_verdicts_before_first_model(self, stream_capture):
        profile, capture = stream_capture
        engine = StreamingScrubber(bins_per_day=profile.bins_per_day)
        # Feed only the first few bins: not enough for a daily retrain.
        flows = capture.flows.time_slice(0, 5 * 60)
        verdicts = engine.ingest(flows)
        assert verdicts == []
        assert not engine.is_ready

    def test_small_aggregates_skipped(self, stream_capture):
        profile, capture = stream_capture
        engine = StreamingScrubber(
            config=ScrubberConfig(model="XGB", model_params={"n_estimators": 10}),
            window_days=2,
            bins_per_day=profile.bins_per_day,
            min_flows_per_verdict=10**6,  # nothing qualifies
        )
        verdicts = drive(engine, capture)
        assert verdicts == []
        assert engine.stats.verdicts_emitted == 0

    def test_stats_consistency(self, stream_capture):
        profile, capture = stream_capture
        engine = StreamingScrubber(
            config=ScrubberConfig(model="XGB", model_params={"n_estimators": 10}),
            window_days=2,
            bins_per_day=profile.bins_per_day,
        )
        verdicts = drive(engine, capture)
        assert engine.stats.verdicts_emitted == len(verdicts)
        assert engine.stats.ddos_verdicts == sum(1 for v in verdicts if v.is_ddos)
        assert engine.stats.training_flows > 0
