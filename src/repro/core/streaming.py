"""Online deployment engine: continuous learning, per-bin detection.

The paper's recommended operating mode (§6.3) is daily retraining on a
sliding one-month window of balanced blackholing data while classifying
live traffic per minute. :class:`StreamingScrubber` operationalises
exactly that loop:

* **ingest(flows, updates)** — feed captured flows and the BGP feed as
  they arrive (any chunking, in time order);
* per closed one-minute bin, the engine classifies all significant
  target aggregates with the current model and emits
  :class:`~repro.core.scrubber.TargetVerdict`s;
* labeled + balanced training data accumulates in a ring of daily
  buffers; once per (simulated) day the model retrains on the trailing
  window — entirely from the blackholing signal, no operator input.

The engine is deterministic given its seed and the input streams.
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from typing import Iterable, Optional

import numpy as np

from repro import obs
from repro.bgp.blackhole import BlackholeRegistry
from repro.bgp.messages import Update
from repro.core.drift import DriftTracker
from repro.core.labeling.balancer import balance
from repro.core.scrubber import (
    IXPScrubber,
    ScrubberConfig,
    TargetVerdict,
    build_verdicts,
)
from repro.netflow.dataset import BIN_SECONDS, FlowDataset
from repro.obs import names


class StreamingStats:
    """Compatibility view over the engine's metric registry.

    Historically a mutable dataclass of ad-hoc counters; the counts now
    live in a :class:`repro.obs.MetricRegistry` (see ``docs/METRICS.md``)
    and this view preserves the old read API — ``engine.stats.bins_closed``
    keeps working for dashboards and tests.
    """

    _COUNTERS = {
        "flows_ingested": names.C_STREAMING_FLOWS_INGESTED,
        "bins_closed": names.C_STREAMING_BINS_CLOSED,
        "verdicts_emitted": names.C_STREAMING_VERDICTS_EMITTED,
        "ddos_verdicts": names.C_STREAMING_DDOS_VERDICTS,
        "retrainings": names.C_STREAMING_RETRAININGS,
    }
    _GAUGES = {
        "training_flows": names.G_STREAMING_TRAINING_FLOWS,
    }

    def __init__(self, registry: obs.MetricRegistry):
        self._registry = registry

    def __getattr__(self, attr: str) -> int:
        name = self._COUNTERS.get(attr) or self._GAUGES.get(attr)
        if name is None:
            raise AttributeError(attr)
        metric = self._registry.get(name)
        return int(metric.value) if metric is not None else 0

    def as_dict(self) -> dict[str, int]:
        """All legacy counter names and their current values."""
        return {
            attr: getattr(self, attr)
            for attr in (*self._COUNTERS, *self._GAUGES)
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"StreamingStats({body})"


class ShardableEngine(abc.ABC):
    """The contract a streaming detection engine exposes to callers.

    Both the single-threaded :class:`StreamingScrubber` and the sharded
    coordinator in :mod:`repro.core.parallel` implement it, so drivers
    (CLI, benchmarks, tests) can swap execution strategies without
    caring which one they hold. Implementations also expose ``stats``
    (a :class:`StreamingStats` view) and ``registry``.
    """

    registry: obs.MetricRegistry
    stats: StreamingStats

    @abc.abstractmethod
    def ingest(
        self, flows: FlowDataset, updates: Iterable[Update] = ()
    ) -> list[TargetVerdict]:
        """Feed a chunk of flows + BGP updates; return closed-bin verdicts."""

    @abc.abstractmethod
    def flush(self) -> list[TargetVerdict]:
        """Close all open bins (end of stream); return their verdicts."""

    @property
    @abc.abstractmethod
    def is_ready(self) -> bool:
        """True once a model is available for classification."""

    @property
    @abc.abstractmethod
    def model(self) -> Optional[IXPScrubber]:
        """The currently deployed scrubber, if any."""

    @abc.abstractmethod
    def warm_start(self, scrubber: IXPScrubber) -> "ShardableEngine":
        """Deploy a pre-fitted scrubber as the current model."""

    @property
    def ipc_mode(self) -> str:
        """Transport moving shard batches: ``"inline"`` when in-process.

        The sharded coordinator reports its backend's transport
        (``"pipe"`` or ``"shm"`` — see ``docs/IPC.md``); engines that
        never cross a process boundary report ``"inline"``.
        """
        return "inline"

    def close(self) -> None:
        """Release execution resources (idempotent).

        No-op for in-process engines; the sharded coordinator overrides
        it to stop its worker processes. Part of the interface so
        drivers can manage any engine with the same ``with`` block.
        """

    def __enter__(self) -> "ShardableEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class StreamingScrubber(ShardableEngine):
    """Continuously learning, per-bin detecting scrubber."""

    def __init__(
        self,
        config: Optional[ScrubberConfig] = None,
        window_days: int = 7,
        bins_per_day: int = 96,
        min_flows_per_verdict: int = 5,
        seed: int = 0,
        label_grace_bins: int = 10,
        registry: Optional[obs.MetricRegistry] = None,
    ):
        """
        Parameters
        ----------
        config:
            Scrubber configuration (model, mining thresholds).
        window_days:
            Length of the sliding training window in (simulated) days.
        bins_per_day:
            One-minute bins per simulated day (matches the workload's
            time compression).
        min_flows_per_verdict:
            Aggregates below this flow count are not classified —
            they are below any mitigation concern.
        label_grace_bins:
            A bin's flows only enter the training buffer after this many
            further bins have closed, so late blackhole announcements
            (reaction delay) can still label them.
        registry:
            Metric registry this engine records into. Defaults to a
            private registry per engine so independent engines never mix
            counters; pass a shared one to aggregate across engines.
            The registry is *activated* for the duration of every
            ``ingest``/``flush`` call, so nested pipeline stages
            (balancing, mining, encoding) record into it too.
        """
        if window_days < 1:
            raise ValueError("window_days must be >= 1")
        if bins_per_day < 1:
            raise ValueError("bins_per_day must be >= 1")
        self.config = config or ScrubberConfig()
        self.window_days = window_days
        self.bins_per_day = bins_per_day
        self.min_flows_per_verdict = min_flows_per_verdict
        self.label_grace_bins = label_grace_bins
        self.registry = registry if registry is not None else obs.MetricRegistry()
        self.stats = StreamingStats(self.registry)

        self._rng = np.random.default_rng(seed)
        self._blackholes = BlackholeRegistry()
        self._scrubber: Optional[IXPScrubber] = None
        #: Open per-bin flow buffers, keyed by bin index (time // 60).
        self._open_bins: "OrderedDict[int, list[FlowDataset]]" = OrderedDict()
        #: Closed-but-unlabeled bins awaiting the grace period.
        self._pending_label: "OrderedDict[int, FlowDataset]" = OrderedDict()
        #: Balanced training flows per day index.
        self._day_buffers: "OrderedDict[int, list[FlowDataset]]" = OrderedDict()
        self._last_trained_day: Optional[int] = None
        self._horizon = 0
        #: Observational drift detector over the per-bin verdict mix.
        self._drift = DriftTracker()
        # Metric dedupe state: a bin can close more than once when late
        # flows re-open it at a bin boundary; the counters below must
        # count each bin / (bin, target) verdict once. One int / small
        # tuple per unit over the engine lifetime — negligible here.
        self._counted_bins: set[int] = set()
        self._counted_verdicts: set[tuple[int, int]] = set()

    # ------------------------------------------------------------------
    @property
    def is_ready(self) -> bool:
        """True once a model has been trained."""
        return self._scrubber is not None

    @property
    def model(self) -> Optional[IXPScrubber]:
        return self._scrubber

    def warm_start(self, scrubber: IXPScrubber) -> "StreamingScrubber":
        """Deploy a pre-fitted scrubber as the current model.

        The operator's deploy-with-model path (and the harness's way to
        skip the bootstrap day): classification starts immediately while
        the daily retrain loop continues unchanged.
        """
        scrubber._require_fitted()
        self._scrubber = scrubber
        return self

    # ------------------------------------------------------------------
    def capture_state(self) -> dict:
        """JSON-safe snapshot of all mutable state (see ``core.recovery``)."""
        from repro.core.recovery.state_codec import capture_engine_state

        return capture_engine_state(self)

    def restore_state(self, state: dict) -> "StreamingScrubber":
        """Restore a :meth:`capture_state` snapshot onto this engine.

        The engine must be freshly constructed with the same parameters
        the snapshot was taken under; raises
        :class:`~repro.core.recovery.errors.CheckpointConfigError`
        otherwise.
        """
        from repro.core.recovery.state_codec import restore_engine_state

        restore_engine_state(self, state)
        return self

    # ------------------------------------------------------------------
    def ingest(
        self,
        flows: FlowDataset,
        updates: Iterable[Update] = (),
    ) -> list[TargetVerdict]:
        """Feed a chunk of captured traffic and BGP updates.

        Flows and updates must arrive in (approximately) time order
        across calls: a bin closes when a strictly later bin receives
        traffic. Returns the verdicts for all bins closed by this chunk.
        """
        with obs.use_registry(self.registry), obs.span(names.SPAN_STREAMING_INGEST):
            for update in updates:
                self._blackholes.apply(update)
            verdicts: list[TargetVerdict] = []
            if len(flows):
                obs.counter(names.C_STREAMING_FLOWS_INGESTED).inc(len(flows))
                self._horizon = max(self._horizon, int(flows.time.max()) + 1)
                bins = flows.time // BIN_SECONDS
                for bin_id in np.unique(bins):
                    chunk = flows.select(bins == bin_id)
                    self._open_bins.setdefault(int(bin_id), []).append(chunk)
                verdicts.extend(self._close_bins(int(bins.max())))
            self._update_level_gauges()
        return verdicts

    def flush(self) -> list[TargetVerdict]:
        """Close all open bins (end of stream)."""
        with obs.use_registry(self.registry), obs.span(names.SPAN_STREAMING_INGEST):
            verdicts = self._close_bins(None)
            self._label_pending(force=True)
            self._update_level_gauges()
        return verdicts

    def _update_level_gauges(self) -> None:
        obs.gauge(names.G_STREAMING_OPEN_BINS).set(len(self._open_bins))
        obs.gauge(names.G_STREAMING_PENDING_LABEL_BINS).set(len(self._pending_label))
        obs.gauge(names.G_STREAMING_DAY_BUFFERS).set(len(self._day_buffers))

    # ------------------------------------------------------------------
    def _close_bins(self, current_bin: Optional[int]) -> list[TargetVerdict]:
        closed = self._pop_closeable(current_bin)
        verdicts = self._classify_closed(closed)
        self._observe_drift(verdicts)
        self._label_pending(force=False, current_bin=current_bin)
        return verdicts

    @property
    def drift_trips(self) -> int:
        """Times the verdict-mix drift detector has tripped so far."""
        return self._drift.trips

    def _observe_drift(self, verdicts: list[TargetVerdict]) -> None:
        """Feed the drift tracker one DDoS-share sample per scored bin."""
        if not verdicts:
            return
        by_bin: dict[int, list[TargetVerdict]] = {}
        for v in verdicts:
            by_bin.setdefault(v.bin, []).append(v)
        for bin_id in sorted(by_bin):
            group = by_bin[bin_id]
            share = sum(1 for v in group if v.is_ddos) / len(group)
            if self._drift.observe(share):
                obs.counter(names.C_STREAMING_DRIFT_TRIPS).inc()

    def _pop_closeable(
        self, current_bin: Optional[int]
    ) -> list[tuple[int, FlowDataset]]:
        """Pop every bin older than ``current_bin`` and enqueue for labeling."""
        closed: list[tuple[int, FlowDataset]] = []
        closeable = [
            b
            for b in self._open_bins
            if current_bin is None or b < current_bin
        ]
        for bin_id in sorted(closeable):
            with obs.span(names.SPAN_STREAMING_CLOSE_BIN):
                parts = self._open_bins.pop(bin_id)
                bin_flows = FlowDataset.concat(parts)
                if bin_id not in self._counted_bins:
                    self._counted_bins.add(bin_id)
                    obs.counter(names.C_STREAMING_BINS_CLOSED).inc()
                self._pending_label[bin_id] = bin_flows
                closed.append((bin_id, bin_flows))
        return closed

    def _classify_closed(
        self, closed: list[tuple[int, FlowDataset]]
    ) -> list[TargetVerdict]:
        """Classify the freshly closed bins (overridden by the sharded engine)."""
        verdicts: list[TargetVerdict] = []
        for _, bin_flows in closed:
            verdicts.extend(self._classify_bin(bin_flows))
        return verdicts

    def _classify_bin(self, bin_flows: FlowDataset) -> list[TargetVerdict]:
        if self._scrubber is None or len(bin_flows) == 0:
            return []
        with obs.span(names.SPAN_STREAMING_CLASSIFY_BIN):
            records = self._scrubber.aggregate_flows(bin_flows)
            significant = records.select(
                records.n_flows >= self.min_flows_per_verdict
            )
            if len(significant) == 0:
                return []
            scores = self._scrubber.score_aggregated(significant)
            out = build_verdicts(significant, scores)
            self._count_verdicts(out)
        return out

    def _count_verdicts(self, verdicts: list[TargetVerdict]) -> None:
        """Bump verdict counters, once per (bin, target) ever seen.

        A re-opened bin is re-classified on its late flows and the
        revised verdicts are still *returned*, but the counters must not
        count the same (bin, target) record twice.
        """
        if not verdicts:
            return
        fresh = [
            v for v in verdicts if (v.bin, v.target_ip) not in self._counted_verdicts
        ]
        self._counted_verdicts.update((v.bin, v.target_ip) for v in fresh)
        obs.counter(names.C_STREAMING_VERDICTS_EMITTED).inc(len(fresh))
        obs.counter(names.C_STREAMING_DDOS_VERDICTS).inc(
            sum(1 for v in fresh if v.is_ddos)
        )

    # ------------------------------------------------------------------
    def _label_pending(
        self, force: bool, current_bin: Optional[int] = None
    ) -> None:
        ready = [
            b
            for b in self._pending_label
            if force
            or (current_bin is not None and b + self.label_grace_bins <= current_bin)
        ]
        for bin_id in sorted(ready):
            with obs.span(names.SPAN_STREAMING_LABEL_BIN):
                bin_flows = self._pending_label.pop(bin_id)
                labeled = self._blackholes.label_flows(bin_flows, horizon=self._horizon)
                balanced = balance(labeled, self._rng)
            if len(balanced.flows) == 0:
                continue
            day = bin_id // self.bins_per_day
            self._day_buffers.setdefault(day, []).append(balanced.flows)
            self._maybe_retrain(day)

    def _maybe_retrain(self, day: int) -> None:
        """Retrain once per day on the trailing window."""
        if self._last_trained_day is not None and day <= self._last_trained_day:
            return
        window_days = [
            d for d in self._day_buffers if day - self.window_days <= d < day
        ]
        if not window_days and self._scrubber is not None:
            return
        parts = [f for d in window_days for f in self._day_buffers[d]]
        if self._scrubber is None:
            # Bootstrap: include the current day's data so the first
            # model appears as early as possible.
            parts = parts + self._day_buffers.get(day, [])
        if not parts:
            return
        training = FlowDataset.concat(parts)
        labels = training.blackhole
        if len(training) < 50 or labels.all() or not labels.any():
            return
        with obs.span(names.SPAN_STREAMING_RETRAIN):
            scrubber = IXPScrubber(self.config)
            scrubber.fit(training)
        self._scrubber = scrubber
        self._last_trained_day = day
        self._drift.rebaseline()
        obs.counter(names.C_STREAMING_RETRAININGS).inc()
        obs.gauge(names.G_STREAMING_TRAINING_FLOWS).set(len(training))
        # Evict buffers that can never be in a future window.
        for d in list(self._day_buffers):
            if d < day - self.window_days:
                del self._day_buffers[d]
