"""Tests for the benign background traffic model."""

import numpy as np
import pytest

from repro.netflow import fields
from repro.netflow.dataset import FlowDataset
from repro.netflow.fields import ddos_port_label
from repro.traffic.benign import DEFAULT_SERVICES, BenignService, BenignTrafficGenerator


@pytest.fixture
def generator():
    return BenignTrafficGenerator(seed=1)


class TestGenerate:
    def test_empty_targets(self, generator, rng):
        flows = generator.generate(rng, np.empty(0, dtype=np.uint32), 0, 60)
        assert len(flows) == 0

    def test_empty_window(self, generator, rng):
        flows = generator.generate(rng, np.array([1, 2], dtype=np.uint32), 60, 60)
        assert len(flows) == 0

    def test_flows_to_requested_targets(self, generator, rng):
        targets = np.array([100, 200, 300], dtype=np.uint32)
        flows = generator.generate(rng, targets, 0, 600)
        assert np.isin(flows.dst_ip, targets).all()

    def test_times_inside_window(self, generator, rng):
        targets = np.full(50, 7, dtype=np.uint32)
        flows = generator.generate(rng, targets, 120, 180)
        assert (flows.time >= 120).all() and (flows.time < 180).all()

    def test_not_blackholed(self, generator, rng):
        flows = generator.generate(rng, np.full(50, 7, dtype=np.uint32), 0, 60)
        assert not flows.blackhole.any()

    def test_multiplicity_scales_volume(self, generator, rng):
        few = generator.generate(np.random.default_rng(0), np.full(10, 7, dtype=np.uint32), 0, 600)
        many = generator.generate(np.random.default_rng(0), np.full(100, 7, dtype=np.uint32), 0, 600)
        assert len(many) > len(few)

    def test_ddos_port_share_minor(self, generator, rng):
        """Benign traffic has a small but non-zero well-known-DDoS-port
        share (Fig. 4a: ~7.5 %)."""
        targets = np.arange(1, 400, dtype=np.uint32)
        flows = generator.generate(rng, targets, 0, 3600, flows_per_target_mean=5)
        labels = [
            ddos_port_label(int(flows.protocol[i]), int(flows.src_port[i]))
            for i in range(len(flows))
        ]
        share = sum(1 for l in labels if l is not None) / len(labels)
        assert 0.01 < share < 0.2

    def test_https_dominates(self, generator, rng):
        targets = np.arange(1, 400, dtype=np.uint32)
        flows = generator.generate(rng, targets, 0, 3600, flows_per_target_mean=5)
        https = (flows.src_port == fields.PORT_HTTPS).mean()
        assert https > 0.4

    def test_benign_ntp_is_small_packets(self, generator, rng):
        """Legitimate NTP responses are ~76 bytes — unlike monlist floods."""
        targets = np.arange(1, 500, dtype=np.uint32)
        flows = generator.generate(rng, targets, 0, 3600, flows_per_target_mean=8)
        ntp = flows.select(
            (flows.src_port == fields.PORT_NTP) & (flows.protocol == fields.PROTO_UDP)
        )
        assert len(ntp) > 0
        assert np.median(ntp.packet_size) < 120

    def test_server_pools_stable(self):
        a = BenignTrafficGenerator(seed=5)
        b = BenignTrafficGenerator(seed=5)
        np.testing.assert_array_equal(a.server_pool("HTTPS"), b.server_pool("HTTPS"))

    def test_macs_from_member_set(self, rng):
        macs = np.array([11, 22, 33], dtype=np.uint64)
        generator = BenignTrafficGenerator(seed=1, member_macs=macs)
        flows = generator.generate(rng, np.full(50, 7, dtype=np.uint32), 0, 600)
        assert np.isin(flows.src_mac, macs).all()
