"""Execution backends for shard classification.

A backend owns the N per-shard classification contexts: the deployed
model (re-broadcast after every retrain), a per-shard
:class:`~repro.obs.MetricRegistry`, and the frozen-WoE
:class:`~repro.core.encoding.matrix.MatrixAssembler` reused across bins
of one retrain epoch. Two implementations:

* :class:`SerialBackend` — runs shards sequentially in-process. The
  default: zero IPC cost, same results, and on a single-core host the
  batched execution alone carries the speedup.
* :class:`ProcessBackend` — persistent worker processes (``fork`` start
  method when available, ``spawn`` otherwise) fed over pipes with one
  chunked message per closed-bin batch; models travel as pickle blobs,
  flow columns as raw numpy arrays, verdicts come back as plain
  dataclass lists.

Both produce verdicts through the same
:meth:`~repro.core.scrubber.IXPScrubber.classify_flows_batch` call, so
backend choice can never change results — only where the work runs.
"""

from __future__ import annotations

import multiprocessing
import pickle
from typing import Optional, Sequence

from repro import obs
from repro.core.scrubber import IXPScrubber, TargetVerdict
from repro.netflow.dataset import FlowDataset
from repro.obs import names

__all__ = ["SerialBackend", "ProcessBackend", "make_backend", "BACKENDS"]


class SerialBackend:
    """Run every shard sequentially in the coordinator process."""

    name = "serial"

    def __init__(self, n_shards: int):
        self.n_shards = n_shards
        self.registries = [obs.MetricRegistry() for _ in range(n_shards)]
        self._scrubber: Optional[IXPScrubber] = None
        self._assembler = None

    def broadcast(self, scrubber: IXPScrubber) -> None:
        """Deploy a newly trained model to all shards."""
        self._scrubber = scrubber
        self._assembler = scrubber.make_assembler()

    def classify(
        self, shard_flows: Sequence[Optional[FlowDataset]], min_flows: int
    ) -> list[list[TargetVerdict]]:
        """Classify each shard's flow batch; one verdict list per shard."""
        if self._scrubber is None:
            raise RuntimeError("no model broadcast to shards yet")
        out: list[list[TargetVerdict]] = []
        for shard, flows in enumerate(shard_flows):
            if flows is None or len(flows) == 0:
                out.append([])
                continue
            with obs.use_registry(self.registries[shard]):
                with obs.span(names.SPAN_PARALLEL_SHARD_CLASSIFY):
                    obs.counter(names.C_PARALLEL_SHARD_FLOWS).inc(len(flows))
                    out.append(
                        self._scrubber.classify_flows_batch(
                            flows, min_flows=min_flows, assembler=self._assembler
                        )
                    )
        return out

    def snapshots(self) -> list[dict]:
        """One metrics snapshot per shard registry."""
        return [obs.snapshot(registry) for registry in self.registries]

    def close(self) -> None:
        """Release backend resources (no-op for in-process shards)."""


def _worker_main(conn, shard_index: int) -> None:
    """Worker loop: react to model / classify / snapshot / stop messages."""
    registry = obs.MetricRegistry()
    scrubber: Optional[IXPScrubber] = None
    assembler = None
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        kind = message[0]
        if kind == "stop":
            break
        if kind == "model":
            scrubber = pickle.loads(message[1])
            assembler = scrubber.make_assembler()
        elif kind == "classify":
            columns, min_flows = message[1], message[2]
            flows = FlowDataset(columns)
            with obs.use_registry(registry):
                with obs.span(names.SPAN_PARALLEL_SHARD_CLASSIFY):
                    obs.counter(names.C_PARALLEL_SHARD_FLOWS).inc(len(flows))
                    verdicts = scrubber.classify_flows_batch(
                        flows, min_flows=min_flows, assembler=assembler
                    )
            conn.send(verdicts)
        elif kind == "snapshot":
            conn.send(obs.snapshot(registry))
    conn.close()


class ProcessBackend:
    """Persistent worker processes, one per shard, fed over pipes.

    Workers stay alive across bins so the model and its frozen-WoE
    assembler are deserialised once per retrain, not once per bin. All
    requests are answered in shard order, keeping the reduce step
    deterministic regardless of worker scheduling.
    """

    name = "process"

    def __init__(self, n_shards: int, start_method: Optional[str] = None):
        self.n_shards = n_shards
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else "spawn"
        ctx = multiprocessing.get_context(start_method)
        self._conns = []
        self._procs = []
        for shard in range(n_shards):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main, args=(child_conn, shard), daemon=True
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)

    def broadcast(self, scrubber: IXPScrubber) -> None:
        """Ship the pickled model to every worker."""
        blob = pickle.dumps(scrubber)
        for conn in self._conns:
            conn.send(("model", blob))

    def classify(
        self, shard_flows: Sequence[Optional[FlowDataset]], min_flows: int
    ) -> list[list[TargetVerdict]]:
        """Dispatch per-shard batches, then collect in shard order."""
        active = []
        for shard, flows in enumerate(shard_flows):
            if flows is None or len(flows) == 0:
                continue
            self._conns[shard].send(("classify", flows.to_columns(), min_flows))
            active.append(shard)
        out: list[list[TargetVerdict]] = [[] for _ in shard_flows]
        for shard in active:
            out[shard] = self._conns[shard].recv()
        return out

    def snapshots(self) -> list[dict]:
        """One metrics snapshot per worker, fetched over the pipe."""
        for conn in self._conns:
            conn.send(("snapshot",))
        return [conn.recv() for conn in self._conns]

    def close(self) -> None:
        """Stop all workers and reap them."""
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
        for conn in self._conns:
            conn.close()
        self._conns = []
        self._procs = []


BACKENDS = {
    SerialBackend.name: SerialBackend,
    ProcessBackend.name: ProcessBackend,
}


def make_backend(name: str, n_shards: int):
    """Instantiate a backend by name (``serial`` or ``process``)."""
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {sorted(BACKENDS)}"
        ) from None
    return cls(n_shards)
