"""Columnar container for sampled flow records.

All bulk processing in this repository (balancing, rule mining, feature
aggregation) operates on :class:`FlowDataset`, a struct-of-arrays container
over numpy. This keeps per-flow operations vectorised, which matters: the
paper processes billions of flow records online, and even our scaled-down
corpora run into millions.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

import numpy as np

from repro.netflow.record import FlowRecord

#: Canonical column schema: name -> dtype.
SCHEMA: dict[str, np.dtype] = {
    "time": np.dtype(np.int64),
    "src_ip": np.dtype(np.uint32),
    "dst_ip": np.dtype(np.uint32),
    "src_port": np.dtype(np.uint16),
    "dst_port": np.dtype(np.uint16),
    "protocol": np.dtype(np.uint8),
    "packets": np.dtype(np.int64),
    "bytes": np.dtype(np.int64),
    "src_mac": np.dtype(np.uint64),
    "blackhole": np.dtype(np.bool_),
}

#: Default time-bin width used throughout the paper (one minute, §3).
BIN_SECONDS = 60


class FlowDataset:
    """A fixed-schema, columnar collection of sampled flows.

    Columns are numpy arrays of equal length; see
    :data:`SCHEMA` for names and dtypes. Instances are conceptually
    immutable: all transformations (`select`, `concat`, `sort_by_time`)
    return new datasets sharing no mutable state with their inputs other
    than numpy views where safe.
    """

    __slots__ = ("_columns",)

    def __init__(self, columns: Mapping[str, np.ndarray]):
        missing = set(SCHEMA) - set(columns)
        if missing:
            raise ValueError(f"missing flow columns: {sorted(missing)}")
        unknown = set(columns) - set(SCHEMA)
        if unknown:
            raise ValueError(f"unknown flow columns: {sorted(unknown)}")
        converted: dict[str, np.ndarray] = {}
        length = None
        for name, dtype in SCHEMA.items():
            array = np.asarray(columns[name], dtype=dtype)
            if array.ndim != 1:
                raise ValueError(f"column {name!r} must be one-dimensional")
            if length is None:
                length = array.shape[0]
            elif array.shape[0] != length:
                raise ValueError(
                    f"column {name!r} has length {array.shape[0]}, expected {length}"
                )
            converted[name] = array
        self._columns = converted

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "FlowDataset":
        """Create a dataset with zero flows."""
        return cls({name: np.empty(0, dtype=dtype) for name, dtype in SCHEMA.items()})

    #: Record attribute backing each schema column.
    _RECORD_FIELDS: dict[str, str] = {
        "time": "time",
        "src_ip": "src_ip",
        "dst_ip": "dst_ip",
        "src_port": "src_port",
        "dst_port": "dst_port",
        "protocol": "protocol",
        "packets": "packets",
        "bytes": "bytes_",
        "src_mac": "src_mac",
        "blackhole": "blackhole",
    }

    #: Row dtype for the single-pass ``from_records`` fill.
    _ROW_DTYPE = np.dtype([(name, dtype) for name, dtype in SCHEMA.items()])

    @classmethod
    def from_records(cls, records: Iterable[FlowRecord]) -> "FlowDataset":
        """Build a dataset from an iterable of :class:`FlowRecord`.

        One ``np.fromiter`` pass fills a preallocated structured buffer
        (one row per record), then each column is sliced out contiguously.
        A single pass with inline attribute access beats both a per-column
        append loop and per-column generator passes, which matters on
        million-flow corpora.
        """
        records = records if isinstance(records, list) else list(records)
        rows = np.fromiter(
            (
                (
                    r.time,
                    r.src_ip,
                    r.dst_ip,
                    r.src_port,
                    r.dst_port,
                    r.protocol,
                    r.packets,
                    r.bytes_,
                    r.src_mac,
                    r.blackhole,
                )
                for r in records
            ),
            dtype=cls._ROW_DTYPE,
            count=len(records),
        )
        return cls({name: np.ascontiguousarray(rows[name]) for name in SCHEMA})

    @classmethod
    def concat(cls, datasets: Iterable["FlowDataset"]) -> "FlowDataset":
        """Concatenate several datasets, preserving order."""
        datasets = [d for d in datasets if len(d) > 0]
        if not datasets:
            return cls.empty()
        if len(datasets) == 1:
            return datasets[0]
        return cls(
            {
                name: np.concatenate([d._columns[name] for d in datasets])
                for name in SCHEMA
            }
        )

    # ------------------------------------------------------------------
    # Column access
    # ------------------------------------------------------------------
    def column(self, name: str) -> np.ndarray:
        """Return the raw column array for ``name`` (read-only view)."""
        array = self._columns[name]
        view = array.view()
        view.flags.writeable = False
        return view

    @property
    def time(self) -> np.ndarray:
        return self.column("time")

    @property
    def src_ip(self) -> np.ndarray:
        return self.column("src_ip")

    @property
    def dst_ip(self) -> np.ndarray:
        return self.column("dst_ip")

    @property
    def src_port(self) -> np.ndarray:
        return self.column("src_port")

    @property
    def dst_port(self) -> np.ndarray:
        return self.column("dst_port")

    @property
    def protocol(self) -> np.ndarray:
        return self.column("protocol")

    @property
    def packets(self) -> np.ndarray:
        return self.column("packets")

    @property
    def bytes(self) -> np.ndarray:
        return self.column("bytes")

    @property
    def src_mac(self) -> np.ndarray:
        return self.column("src_mac")

    @property
    def blackhole(self) -> np.ndarray:
        return self.column("blackhole")

    @property
    def packet_size(self) -> np.ndarray:
        """Mean packet size per flow (float64)."""
        return self._columns["bytes"] / self._columns["packets"]

    def time_bin(self, bin_seconds: int = BIN_SECONDS) -> np.ndarray:
        """Return the integer time-bin index of each flow."""
        if bin_seconds <= 0:
            raise ValueError("bin_seconds must be positive")
        return self._columns["time"] // bin_seconds

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def select(self, mask_or_index: np.ndarray) -> "FlowDataset":
        """Return the subset selected by a boolean mask or index array."""
        index = np.asarray(mask_or_index)
        return FlowDataset({name: array[index] for name, array in self._columns.items()})

    def with_blackhole(self, blackhole: np.ndarray) -> "FlowDataset":
        """Return a copy with the ``blackhole`` column replaced."""
        flags = np.asarray(blackhole, dtype=np.bool_)
        if flags.shape[0] != len(self):
            raise ValueError("blackhole mask length mismatch")
        columns = dict(self._columns)
        columns["blackhole"] = flags
        return FlowDataset(columns)

    def sort_by_time(self) -> "FlowDataset":
        """Return a copy sorted by timestamp (stable)."""
        order = np.argsort(self._columns["time"], kind="stable")
        return self.select(order)

    def time_slice(self, start: int, end: int) -> "FlowDataset":
        """Return flows with ``start <= time < end``."""
        time = self._columns["time"]
        return self.select((time >= start) & (time < end))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self._columns["time"].shape[0])

    def __iter__(self) -> Iterator[FlowRecord]:
        for i in range(len(self)):
            yield self.record(i)

    def record(self, index: int) -> FlowRecord:
        """Materialise row ``index`` as a :class:`FlowRecord`."""
        c = self._columns
        return FlowRecord(
            time=int(c["time"][index]),
            src_ip=int(c["src_ip"][index]),
            dst_ip=int(c["dst_ip"][index]),
            src_port=int(c["src_port"][index]),
            dst_port=int(c["dst_port"][index]),
            protocol=int(c["protocol"][index]),
            packets=int(c["packets"][index]),
            bytes_=int(c["bytes"][index]),
            src_mac=int(c["src_mac"][index]),
            blackhole=bool(c["blackhole"][index]),
        )

    def to_columns(self) -> dict[str, np.ndarray]:
        """Return a shallow copy of the column mapping."""
        return dict(self._columns)

    @property
    def total_bytes(self) -> int:
        return int(self._columns["bytes"].sum())

    @property
    def total_packets(self) -> int:
        return int(self._columns["packets"].sum())

    @property
    def blackhole_share(self) -> float:
        """Fraction of flows carrying the blackhole label."""
        if len(self) == 0:
            return 0.0
        return float(self._columns["blackhole"].mean())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlowDataset(n={len(self)}, blackhole_share={self.blackhole_share:.3f}, "
            f"bytes={self.total_bytes})"
        )
