"""Recursive-vs-compiled model kernel benchmarks (BENCH_models.json).

Not a paper artifact — these guard the flat-array tree kernels against
performance regressions. Each benchmark times the pre-kernel recursive
implementation against the compiled path on the same workload, asserts
bit-identical predictions, and records the result in ``BENCH_models.json``
at the repo root (schema: op -> {n, seconds, speedup}) so future PRs have
a perf trajectory to compare against.

The CI guard thresholds are deliberately conservative (shared runners are
noisy); override with ``BENCH_MODELS_MIN_SPEEDUP`` / ``BENCH_DATASET_MIN_SPEEDUP``.

Run:  pytest benchmarks/test_bench_model_kernels.py -q
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.models.boosting import GradientBoostedTrees
from repro.core.models.kernels import reference_forest_margin
from repro.netflow.dataset import SCHEMA, FlowDataset
from repro.netflow.record import FlowRecord

BENCH_FILE = Path(__file__).resolve().parents[1] / "BENCH_models.json"

#: Boosting workload: large enough that histogram reuse and blocked
#: propagation dominate, small enough for a CI smoke job.
N_ROWS = 50_000
N_FEATURES = 60
N_TREES = 40
MAX_DEPTH = 6

N_RECORDS = 200_000


def _median_seconds(fn, repeats: int = 3):
    """Median wall-clock of ``repeats`` runs, plus the last result."""
    times = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return float(np.median(times)), result


def _record(op: str, n: int, seconds: float, speedup: float) -> None:
    """Merge one measurement into BENCH_models.json."""
    data = {}
    if BENCH_FILE.exists():
        data = json.loads(BENCH_FILE.read_text())
    data[op] = {
        "n": int(n),
        "seconds": round(float(seconds), 4),
        "speedup": round(float(speedup), 2),
    }
    BENCH_FILE.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(7)
    X = rng.normal(size=(N_ROWS, N_FEATURES))
    # Non-trivial decision surface so trees grow to full depth.
    margin = X[:, 0] + 0.5 * X[:, 1] * X[:, 2] - 0.8 * (X[:, 3] > 0.5)
    y = (margin + rng.normal(scale=0.5, size=N_ROWS) > 0).astype(np.float64)
    return X, y


def _model() -> GradientBoostedTrees:
    return GradientBoostedTrees(
        n_estimators=N_TREES, max_depth=MAX_DEPTH, learning_rate=0.1
    )


def test_bench_gbt_fit_and_predict(workload):
    X, y = workload

    ref_fit_s, ref_model = _median_seconds(lambda: _model().fit_reference(X, y))
    fit_s, model = _median_seconds(lambda: _model().fit(X, y))

    trees = model.trees_
    ref_pred_s, ref_margin = _median_seconds(
        lambda: reference_forest_margin(
            trees, model.base_score_, model.learning_rate, X
        )
    )
    pred_s, kernel_margin = _median_seconds(lambda: model.decision_function(X))

    # The compiled kernel must be a pure perf change: bit-identical margins.
    assert np.array_equal(kernel_margin, ref_margin)
    assert np.array_equal(
        ref_model.decision_function(X),
        reference_forest_margin(
            ref_model.trees_, ref_model.base_score_, ref_model.learning_rate, X
        ),
    )

    fit_speedup = ref_fit_s / fit_s
    pred_speedup = ref_pred_s / pred_s
    combined = (ref_fit_s + ref_pred_s) / (fit_s + pred_s)
    _record("gbt_fit", N_ROWS, fit_s, fit_speedup)
    _record("gbt_predict", N_ROWS, pred_s, pred_speedup)
    _record("gbt_fit_predict", N_ROWS, fit_s + pred_s, combined)

    floor = float(os.environ.get("BENCH_MODELS_MIN_SPEEDUP", "2.5"))
    assert combined >= floor, (
        f"compiled fit+predict speedup {combined:.2f}x below guard {floor}x "
        f"(fit {fit_speedup:.2f}x, predict {pred_speedup:.2f}x)"
    )


def _from_records_append_loop(records) -> FlowDataset:
    """Pre-kernel ``from_records``: per-column Python append loop."""
    lists: dict[str, list] = {name: [] for name in SCHEMA}
    for r in records:
        lists["time"].append(r.time)
        lists["src_ip"].append(r.src_ip)
        lists["dst_ip"].append(r.dst_ip)
        lists["src_port"].append(r.src_port)
        lists["dst_port"].append(r.dst_port)
        lists["protocol"].append(r.protocol)
        lists["packets"].append(r.packets)
        lists["bytes"].append(r.bytes_)
        lists["src_mac"].append(r.src_mac)
        lists["blackhole"].append(r.blackhole)
    return FlowDataset(
        {name: np.array(values, dtype=SCHEMA[name]) for name, values in lists.items()}
    )


def test_bench_dataset_from_records():
    rng = np.random.default_rng(11)
    records = [
        FlowRecord(
            time=int(t),
            src_ip=int(s),
            dst_ip=int(d),
            src_port=int(sp),
            dst_port=int(dp),
            protocol=int(p),
            packets=int(pk),
            bytes_=int(b),
            src_mac=int(m),
            blackhole=bool(bh),
        )
        for t, s, d, sp, dp, p, pk, b, m, bh in zip(
            rng.integers(0, 86_400, N_RECORDS),
            rng.integers(0, 2**32, N_RECORDS),
            rng.integers(0, 2**32, N_RECORDS),
            rng.integers(0, 2**16, N_RECORDS),
            rng.integers(0, 2**16, N_RECORDS),
            rng.integers(0, 256, N_RECORDS),
            rng.integers(1, 1000, N_RECORDS),
            rng.integers(40, 1_500_000, N_RECORDS),
            rng.integers(0, 2**48, N_RECORDS),
            rng.integers(0, 2, N_RECORDS),
        )
    ]

    loop_s, loop_ds = _median_seconds(lambda: _from_records_append_loop(records))
    fromiter_s, fast_ds = _median_seconds(lambda: FlowDataset.from_records(records))

    for name in SCHEMA:
        assert np.array_equal(loop_ds.column(name), fast_ds.column(name))

    speedup = loop_s / fromiter_s
    _record("dataset_from_records", N_RECORDS, fromiter_s, speedup)

    floor = float(os.environ.get("BENCH_DATASET_MIN_SPEEDUP", "1.0"))
    assert speedup >= floor, (
        f"from_records speedup {speedup:.2f}x below guard {floor}x"
    )
