"""Round-trip tests for model persistence."""

import numpy as np
import pytest

from repro.core.encoding.pca import PCA
from repro.core.encoding.transforms import (
    FeatureReducer,
    Imputer,
    MinMaxNormalizer,
    Standardizer,
)
from repro.core.models.bayes import BernoulliNB, ComplementNB, GaussianNB, MultinomialNB
from repro.core.models.boosting import GradientBoostedTrees
from repro.core.models.linear import LinearSVM
from repro.core.models.nn import NeuralNetwork
from repro.core.models.tree import DecisionTree
from repro.core.persistence import (
    _classifier_from_dict,
    _classifier_to_dict,
    _transformer_from_dict,
    _transformer_to_dict,
    load_scrubber,
    save_scrubber,
    scrubber_from_dict,
    scrubber_to_dict,
)
from repro.core.scrubber import IXPScrubber, ScrubberConfig


def small_data(seed=0, n=300):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 6))
    y = (X[:, 0] + 0.3 * X[:, 1] > 0).astype(int)
    return X, y


class TestTransformerRoundtrip:
    @pytest.mark.parametrize(
        "transformer",
        [Imputer(fill_value=-2.0), Standardizer(), MinMaxNormalizer(), FeatureReducer(), PCA(3)],
        ids=lambda t: type(t).__name__,
    )
    def test_roundtrip_preserves_transform(self, transformer):
        X, _ = small_data()
        transformer.fit(X)
        restored = _transformer_from_dict(_transformer_to_dict(transformer))
        np.testing.assert_allclose(restored.transform(X), transformer.transform(X))


class TestClassifierRoundtrip:
    @pytest.mark.parametrize(
        "classifier",
        [
            GradientBoostedTrees(n_estimators=6, max_depth=3),
            DecisionTree(max_depth=4),
            LinearSVM(),
            NeuralNetwork(n_hidden=8, epochs=5, seed=2),
            GaussianNB(),
        ],
        ids=lambda c: type(c).__name__,
    )
    def test_roundtrip_preserves_predictions(self, classifier):
        X, y = small_data()
        classifier.fit(X, y)
        restored = _classifier_from_dict(_classifier_to_dict(classifier))
        np.testing.assert_array_equal(restored.predict(X), classifier.predict(X))

    @pytest.mark.parametrize(
        "classifier",
        [MultinomialNB(), ComplementNB(), BernoulliNB(binarize=0.5)],
        ids=lambda c: type(c).__name__,
    )
    def test_discrete_nb_roundtrip(self, classifier):
        X, y = small_data()
        X = np.abs(X)  # non-negative features
        classifier.fit(X, y)
        restored = _classifier_from_dict(_classifier_to_dict(classifier))
        np.testing.assert_array_equal(restored.predict(X), classifier.predict(X))

    def test_gbt_importances_preserved(self):
        X, y = small_data()
        model = GradientBoostedTrees(n_estimators=4, max_depth=3).fit(X, y)
        restored = _classifier_from_dict(_classifier_to_dict(model))
        np.testing.assert_allclose(restored.average_gain(), model.average_gain())


class TestScrubberRoundtrip:
    @pytest.fixture(scope="class")
    def fitted(self):
        from repro.core.labeling import balance, label_capture
        from repro.ixp.fabric import IXPFabric
        from repro.ixp.profiles import IXPProfile
        from repro.traffic.workload import WorkloadGenerator

        profile = IXPProfile(
            name="IXP-PERSIST", region=9, n_members=8, traffic_scale=0.01,
            attacks_per_day=12.0, attack_intensity=25.0,
            benign_flows_per_target=5.0, benign_targets_per_minute=24,
            bins_per_day=48, seed=77,
        )
        fabric = IXPFabric(profile)
        capture = WorkloadGenerator(fabric).generate(0, 2)
        balanced = balance(label_capture(capture), np.random.default_rng(1))
        scrubber = IXPScrubber(
            ScrubberConfig(model="XGB", model_params={"n_estimators": 10})
        )
        scrubber.fit(balanced.flows)
        return scrubber, balanced.flows

    def test_dict_roundtrip_predictions(self, fitted):
        scrubber, flows = fitted
        restored = scrubber_from_dict(scrubber_to_dict(scrubber))
        data = scrubber.aggregate_flows(flows)
        np.testing.assert_array_equal(
            restored.predict_aggregated(data), scrubber.predict_aggregated(data)
        )

    def test_rules_preserved(self, fitted):
        scrubber, _ = fitted
        restored = scrubber_from_dict(scrubber_to_dict(scrubber))
        assert len(restored.rule_set) == len(scrubber.rule_set)
        assert {r.rule_id for r in restored.accepted_rules} == {
            r.rule_id for r in scrubber.accepted_rules
        }

    def test_woe_preserved(self, fitted):
        scrubber, _ = fitted
        restored = scrubber_from_dict(scrubber_to_dict(scrubber))
        for domain, table in scrubber.woe.tables.items():
            assert restored.woe.tables[domain].mapping == table.mapping

    def test_file_roundtrip(self, fitted, tmp_path):
        scrubber, flows = fitted
        path = tmp_path / "scrubber.json"
        save_scrubber(scrubber, path)
        restored = load_scrubber(path)
        data = scrubber.aggregate_flows(flows)
        np.testing.assert_array_equal(
            restored.predict_aggregated(data), scrubber.predict_aggregated(data)
        )

    def test_end_to_end_flow_prediction(self, fitted, tmp_path):
        scrubber, flows = fitted
        path = tmp_path / "scrubber.json"
        save_scrubber(scrubber, path)
        restored = load_scrubber(path)
        original = scrubber.predict_flows(flows)
        roundtripped = restored.predict_flows(flows)
        assert [v.is_ddos for v in original] == [v.is_ddos for v in roundtripped]

    def test_unfitted_scrubber_roundtrip(self):
        scrubber = IXPScrubber()
        restored = scrubber_from_dict(scrubber_to_dict(scrubber))
        assert restored.pipeline is None
        assert not restored.woe.is_fitted

    def test_rejects_unknown_version(self, fitted):
        scrubber, _ = fitted
        data = scrubber_to_dict(scrubber)
        data["format_version"] = 999
        with pytest.raises(ValueError, match="version"):
            scrubber_from_dict(data)

    def test_config_preserved(self, fitted):
        scrubber, _ = fitted
        restored = scrubber_from_dict(scrubber_to_dict(scrubber))
        assert restored.config == scrubber.config


class TestAllModelPipelinesRoundtrip:
    """Every Table 5 model type survives a scrubber save/load."""

    @pytest.fixture(scope="class")
    def tiny_aggregated(self):
        from repro.core.features.aggregation import aggregate
        from repro.netflow.dataset import FlowDataset
        from tests.conftest import make_flow

        rng = np.random.default_rng(3)
        records = []
        for b in range(60):
            t = b * 60
            for k in range(3):
                records.append(
                    make_flow(time=t + k, src_ip=int(rng.integers(100, 160)),
                              dst_ip=1, src_port=123, packets=40,
                              bytes_=18720, blackhole=True)
                )
            for k in range(3):
                records.append(
                    make_flow(time=t + 30 + k, src_ip=int(rng.integers(300, 360)),
                              dst_ip=2, src_port=443, protocol=6,
                              packets=10, bytes_=12000)
                )
        return aggregate(FlowDataset.from_records(records))

    @pytest.mark.parametrize(
        "model,params",
        [
            ("XGB", {"n_estimators": 5}),
            ("DT", {"max_depth": 4}),
            ("LSVM", {}),
            ("NB-G", {}),
            ("NB-M", {}),
            ("NB-C", {}),
            ("NB-B", {}),
            ("NN", {"n_pca_components": 10, "epochs": 3, "n_hidden": 4}),
        ],
    )
    def test_roundtrip(self, tiny_aggregated, model, params):
        scrubber = IXPScrubber(ScrubberConfig(model=model, model_params=params))
        scrubber.fit_aggregated(tiny_aggregated)
        restored = scrubber_from_dict(scrubber_to_dict(scrubber))
        np.testing.assert_array_equal(
            restored.predict_aggregated(tiny_aggregated),
            scrubber.predict_aggregated(tiny_aggregated),
        )
