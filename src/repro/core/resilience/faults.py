"""Deterministic fault injection for the sharded execution layer.

Chaos testing a multiprocess pipeline is only useful if a failing run
can be replayed exactly, so faults here are *planned*, not random: a
:class:`FaultPlan` is a list of :class:`FaultSpec` entries that name the
shard, the batch sequence number, and the attempt on which a fault
fires. The supervisor (:class:`~repro.core.resilience.supervisor.
SupervisedProcessBackend`) evaluates the plan — it is the only place
with the global view of epochs, per-shard batch counters, and retry
attempts — and ships the resulting *directive* to the worker inside the
classify message, where ``_worker_main`` executes it (crash, sleep,
corrupt the reply frame). Two runs with the same plan and workload fail
identically.

Plans come from code (tests build :class:`FaultSpec` objects directly)
or from the ``REPRO_FAULTS`` environment variable / ``repro stream
--faults`` flag, using a compact grammar::

    spec      := kind "@" position (":" key "=" value)*
    plan      := spec (";" spec)*
    kind      := "crash" | "hang" | "slow" | "corrupt"
               | "torn-write" | "enospc" | "crash-at-checkpoint"
    position  := integer | "*"
    key       := "batch" | "count" | "secs" | "scope"

Examples::

    crash@0:batch=3             # shard 0's 4th batch kills its worker once
    crash@0:batch=3:count=2     # ...twice: retry also dies -> quarantine
    crash@1:batch=0:scope=epoch # kill shard 1 on the first batch of every
                                # retrain epoch (restart + retry recovers)
    hang@2:batch=5              # worker sleeps past any deadline
    slow@*:secs=0.05            # every shard's first attempt is 50 ms late
    corrupt@3:batch=2           # shard 3 answers with an unpicklable frame
    torn-write@1                # 2nd checkpoint save leaves a torn payload
    enospc@*:count=2            # first two checkpoint saves hit a full disk
    crash-at-checkpoint@2       # process dies between payload and manifest
                                # of the 3rd checkpoint (exit code 70)

``batch`` is the 0-based sequence number of classify dispatches to that
shard (``scope=epoch`` restarts the count at every model broadcast);
omitted means *every* batch. ``count`` is how many attempts of a
matching batch receive the fault (default 1 — the first retry
succeeds). ``secs`` parameterises ``hang``/``slow`` sleeps.

*Worker* kinds target shards and are evaluated by the supervisor;
*disk* kinds (:data:`DISK_FAULT_KINDS`) target the checkpoint store of
:mod:`repro.core.recovery` instead — for them the ``@`` position is
the 0-based *checkpoint ordinal* (the N-th save attempt of the run,
``*`` = every attempt) and ``count`` caps total fires. Disk specs are
invisible to worker dispatch and vice versa, so one plan can mix both:
``crash@0:batch=3;torn-write@1``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Sequence

__all__ = [
    "FAULT_KINDS",
    "WORKER_FAULT_KINDS",
    "DISK_FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "FAULTS_ENV",
]

#: Environment variable holding the default fault plan.
FAULTS_ENV = "REPRO_FAULTS"

#: Faults executed by shard workers (dispatched by the supervisor).
WORKER_FAULT_KINDS = ("crash", "hang", "slow", "corrupt")

#: Faults executed by the checkpoint store (see ``core.recovery``).
DISK_FAULT_KINDS = ("torn-write", "enospc", "crash-at-checkpoint")

#: Every supported fault kind.
FAULT_KINDS = WORKER_FAULT_KINDS + DISK_FAULT_KINDS

#: Default sleep lengths: a hang must outlive any sane deadline, a slow
#: shard should only add jitter.
_DEFAULT_SECONDS = {"hang": 3600.0, "slow": 0.01}


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: what fires, where, and when.

    Attributes
    ----------
    kind:
        ``crash`` (worker exits before replying), ``hang`` / ``slow``
        (worker sleeps ``seconds`` before classifying), ``corrupt``
        (worker answers with bytes that cannot be unpickled).
    shard:
        Shard index the fault targets, or ``None`` for every shard.
    batch:
        0-based classify-dispatch sequence number on that shard, or
        ``None`` for every batch.
    count:
        Number of *attempts* of a matching batch that get the fault;
        attempt indices ``0 .. count-1`` fire, later retries pass.
    seconds:
        Sleep length for ``hang``/``slow`` (ignored otherwise).
    scope:
        ``"run"`` (default): ``batch`` counts dispatches over the whole
        run. ``"epoch"``: the counter resets at every model broadcast,
        so ``batch=0:scope=epoch`` hits the first batch of each epoch.
    """

    kind: str
    shard: Optional[int] = None
    batch: Optional[int] = None
    count: int = 1
    seconds: Optional[float] = None
    scope: str = "run"

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.shard is not None and self.shard < 0:
            raise ValueError("fault shard must be >= 0 (or None for any)")
        if self.batch is not None and self.batch < 0:
            raise ValueError("fault batch must be >= 0 (or None for every batch)")
        if self.count < 1:
            raise ValueError("fault count must be >= 1")
        if self.scope not in ("run", "epoch"):
            raise ValueError(f"fault scope must be 'run' or 'epoch', got {self.scope!r}")
        if self.seconds is not None and self.seconds < 0:
            raise ValueError("fault seconds must be >= 0")
        if self.is_disk:
            if self.batch is not None:
                raise ValueError(
                    f"disk fault {self.kind!r} takes no batch= option: the @ "
                    "position already selects the checkpoint ordinal"
                )
            if self.seconds is not None:
                raise ValueError(f"disk fault {self.kind!r} takes no secs= option")
            if self.scope != "run":
                raise ValueError(f"disk fault {self.kind!r} takes no scope= option")

    @property
    def is_disk(self) -> bool:
        """True for checkpoint-store faults (``@`` = checkpoint ordinal)."""
        return self.kind in DISK_FAULT_KINDS

    def matches(self, shard: int, run_seq: int, epoch_seq: int, attempt: int) -> bool:
        """True if this spec fires for the given dispatch coordinates."""
        if self.is_disk:
            return False
        if self.shard is not None and self.shard != shard:
            return False
        if attempt >= self.count:
            return False
        if self.batch is None:
            return True
        seq = epoch_seq if self.scope == "epoch" else run_seq
        return self.batch == seq

    def directive(self) -> tuple[str, float]:
        """The ``(kind, seconds)`` tuple shipped to the worker."""
        seconds = self.seconds
        if seconds is None:
            seconds = _DEFAULT_SECONDS.get(self.kind, 0.0)
        return (self.kind, float(seconds))


class FaultPlan:
    """An ordered collection of :class:`FaultSpec` entries.

    Truthiness reflects whether the plan contains any specs, so
    ``if plan:`` reads as "is fault injection active". The first
    matching spec wins when several could fire on the same dispatch.
    """

    def __init__(self, specs: Sequence[FaultSpec] = ()):
        self.specs: tuple[FaultSpec, ...] = tuple(specs)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __eq__(self, other) -> bool:
        return isinstance(other, FaultPlan) and self.specs == other.specs

    def __repr__(self) -> str:
        return f"FaultPlan({list(self.specs)!r})"

    def directive(
        self, shard: int, run_seq: int, epoch_seq: int, attempt: int
    ) -> Optional[tuple[str, float]]:
        """The fault directive for one dispatch attempt, if any fires.

        Disk specs never match a worker dispatch (``FaultSpec.matches``
        returns False for them); they are consumed by the checkpoint
        store via :meth:`disk_specs` instead.
        """
        for spec in self.specs:
            if spec.matches(shard, run_seq, epoch_seq, attempt):
                return spec.directive()
        return None

    def worker_specs(self) -> tuple[FaultSpec, ...]:
        """The specs the supervisor dispatches to shard workers."""
        return tuple(s for s in self.specs if not s.is_disk)

    def disk_specs(self) -> tuple[FaultSpec, ...]:
        """The specs the checkpoint store injects on save attempts."""
        return tuple(s for s in self.specs if s.is_disk)

    # -- construction ---------------------------------------------------
    @classmethod
    def parse(cls, text: Optional[str]) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` grammar (see module docstring).

        ``None``, the empty string, and pure whitespace all yield an
        empty (falsy) plan. Raises :class:`ValueError` with the
        offending fragment on malformed input.
        """
        if text is None or not text.strip():
            return cls()
        specs = []
        for raw in text.split(";"):
            raw = raw.strip()
            if not raw:
                continue
            specs.append(cls._parse_spec(raw))
        return cls(specs)

    @classmethod
    def from_env(cls, environ: Optional[dict] = None) -> "FaultPlan":
        """Plan from the ``REPRO_FAULTS`` environment variable."""
        environ = os.environ if environ is None else environ
        return cls.parse(environ.get(FAULTS_ENV))

    @staticmethod
    def _parse_spec(raw: str) -> FaultSpec:
        head, *options = raw.split(":")
        if "@" not in head:
            raise ValueError(
                f"bad fault spec {raw!r}: expected kind@shard (e.g. crash@0)"
            )
        kind, shard_text = head.split("@", 1)
        kind = kind.strip().lower()
        shard_text = shard_text.strip()
        shard = None if shard_text == "*" else _parse_int(shard_text, raw, "shard")
        fields: dict = {"kind": kind, "shard": shard}
        for option in options:
            if "=" not in option:
                raise ValueError(
                    f"bad fault option {option!r} in {raw!r}: expected key=value"
                )
            key, value = (part.strip() for part in option.split("=", 1))
            if key == "batch":
                fields["batch"] = None if value == "*" else _parse_int(value, raw, key)
            elif key == "count":
                fields["count"] = _parse_int(value, raw, key)
            elif key == "secs":
                try:
                    fields["seconds"] = float(value)
                except ValueError:
                    raise ValueError(f"bad secs value {value!r} in {raw!r}") from None
            elif key == "scope":
                fields["scope"] = value
            else:
                raise ValueError(
                    f"unknown fault option {key!r} in {raw!r}; "
                    "expected batch/count/secs/scope"
                )
        return FaultSpec(**fields)


def _parse_int(value: str, raw: str, field: str) -> int:
    try:
        return int(value)
    except ValueError:
        raise ValueError(f"bad {field} value {value!r} in fault spec {raw!r}") from None
