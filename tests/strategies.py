"""Seeded random strategies for the property-based test suite.

A minimal, dependency-free stand-in for hypothesis-style generators:
every strategy is a plain function taking a ``numpy.random.Generator``
(derive one per case with :func:`rng_for`) and returning a realistic
random artifact — flow datasets, labeled attack workloads, tagging
rules. Tests loop over seed ranges and assert invariants on every
draw, so a failing seed is directly reproducible::

    flows = strategies.labeled_flows(strategies.rng_for(17))

Strategies bias towards the structures the pipeline cares about (a few
hot targets, reflector-style source ports on attack flows, multi-bin
time ranges) while still randomising everything; uniform noise would
exercise almost none of the aggregation/balancing logic.
"""

from __future__ import annotations

import numpy as np

from repro.core.rules.model import PortMatch, RuleStatus, TaggingRule
from repro.netflow.dataset import FlowDataset

#: Reflector-style UDP source ports (NTP, DNS, chargen, SSDP, SNMP).
ATTACK_PORTS = (123, 53, 19, 1900, 161)

_SEED_SALT = 0x5CBB


def rng_for(seed: int) -> np.random.Generator:
    """Deterministic per-case generator, decorrelated across seeds."""
    return np.random.default_rng((_SEED_SALT, seed))


def flows(
    rng: np.random.Generator,
    n_flows: int = 400,
    n_targets: int = 8,
    n_bins: int = 3,
    start_bin: int = 0,
    attack_share: float = 0.4,
) -> FlowDataset:
    """Random multi-bin flow dataset with a blackholed attack blend.

    Roughly ``attack_share`` of flows form reflection-style attacks
    (fixed source ports, UDP, large packets) against a subset of the
    target pool and are marked blackholed; the rest is benign traffic
    with ephemeral ports. All targets live in 10.0.0.0/8 and spread
    across distinct /24s so prefix sharding has something to split.
    """
    if n_flows < 1 or n_targets < 1 or n_bins < 1:
        raise ValueError("n_flows, n_targets and n_bins must be >= 1")
    targets = (
        0x0A000000
        + (rng.choice(2**16, size=n_targets, replace=False).astype(np.uint32) << 8)
        + rng.integers(1, 255, size=n_targets, dtype=np.uint32)
    )
    n_attacked = max(1, int(round(n_targets * 0.4)))
    attacked = rng.choice(n_targets, size=n_attacked, replace=False)

    is_attack = rng.random(n_flows) < attack_share
    target_index = np.where(
        is_attack,
        rng.choice(attacked, size=n_flows),
        rng.integers(0, n_targets, size=n_flows),
    )
    dst_ip = targets[target_index]
    src_ip = rng.integers(1, 2**32 - 1, size=n_flows, dtype=np.uint32)
    src_port = np.where(
        is_attack,
        rng.choice(ATTACK_PORTS, size=n_flows),
        rng.integers(1024, 65535, size=n_flows),
    ).astype(np.uint16)
    dst_port = rng.integers(1, 65535, size=n_flows).astype(np.uint16)
    protocol = np.where(
        is_attack, 17, rng.choice((6, 17), size=n_flows, p=(0.7, 0.3))
    ).astype(np.uint8)
    packets = np.where(
        is_attack,
        rng.integers(20, 80, size=n_flows),
        rng.integers(1, 12, size=n_flows),
    ).astype(np.int64)
    packet_size = np.where(
        is_attack,
        rng.integers(400, 1400, size=n_flows),
        rng.integers(60, 1500, size=n_flows),
    )
    time = start_bin * 60 + rng.integers(0, n_bins * 60, size=n_flows)
    return FlowDataset(
        {
            "time": np.sort(time),
            "src_ip": src_ip,
            "dst_ip": dst_ip,
            "src_port": src_port,
            "dst_port": dst_port,
            "protocol": protocol,
            "packets": packets,
            "bytes": packets * packet_size,
            "src_mac": rng.integers(1, 64, size=n_flows, dtype=np.uint64),
            "blackhole": is_attack,
        }
    )


def labeled_flows(
    rng: np.random.Generator, n_flows: int = 400, **kwargs
) -> FlowDataset:
    """Like :func:`flows` but guaranteed to contain both classes."""
    data = flows(rng, n_flows=n_flows, **kwargs)
    labels = data.blackhole
    if labels.all() or not labels.any():  # pragma: no cover - rare draw
        flip = np.array(labels, copy=True)
        flip[: max(1, n_flows // 4)] = ~flip[: max(1, n_flows // 4)]
        data = data.with_blackhole(flip)
    return data


def wide_flows(
    rng: np.random.Generator,
    n_targets: int = 5000,
    flows_per_target: int = 2,
    n_bins: int = 1,
    start_bin: int = 0,
    max_flows: int | None = None,
) -> FlowDataset:
    """Carpet-bombing-shaped workload: a huge sparse target fan-out.

    Every target lives in its own /24 and receives about
    ``flows_per_target`` small flows — the distinct-target regime whose
    exact per-bin buffers grow linearly and whose sketch-mode state does
    not (the memory math in ``docs/SKETCHES.md``).

    ``max_flows`` is the size hint scaled-down property runs pass: the
    target fan-out is clamped so the dataset never exceeds it (it used
    to be ignored via ``n_targets`` alone, so "small" runs still built
    ``n_targets * flows_per_target`` flows). The fan-out is also capped
    at 65536 targets — one per /24 is all 10.0.0.0/8 holds, and beyond
    that the uint32 address arithmetic would silently leave the block.
    """
    if n_targets < 1 or flows_per_target < 1 or n_bins < 1:
        raise ValueError("n_targets, flows_per_target and n_bins must be >= 1")
    if max_flows is not None:
        if max_flows < 1:
            raise ValueError("max_flows must be >= 1")
        n_targets = max(1, min(n_targets, max_flows // max(1, flows_per_target)))
    n_targets = min(n_targets, 65536)
    hosts = rng.integers(1, 255, size=n_targets, dtype=np.uint32)
    targets = 0x0A000000 + (np.arange(n_targets, dtype=np.uint32) << 8) + hosts
    n_flows = n_targets * flows_per_target
    dst_ip = np.repeat(targets, flows_per_target)
    packets = rng.integers(1, 12, size=n_flows, dtype=np.int64)
    time = start_bin * 60 + rng.integers(0, n_bins * 60, size=n_flows)
    return FlowDataset(
        {
            "time": np.sort(time),
            "src_ip": rng.integers(1, 2**32 - 1, size=n_flows, dtype=np.uint32),
            "dst_ip": dst_ip,
            "src_port": rng.integers(1024, 65535, size=n_flows).astype(np.uint16),
            "dst_port": rng.integers(1, 65535, size=n_flows).astype(np.uint16),
            "protocol": rng.choice((6, 17), size=n_flows).astype(np.uint8),
            "packets": packets,
            "bytes": packets * rng.integers(60, 1500, size=n_flows),
            "src_mac": rng.integers(1, 64, size=n_flows, dtype=np.uint64),
            "blackhole": rng.random(n_flows) < 0.1,
        }
    )


def tagging_rules(
    rng: np.random.Generator, n_rules: int = 4
) -> list[TaggingRule]:
    """Random accepted tagging rules over the attack-port alphabet."""
    out = []
    for i in range(n_rules):
        n_ports = int(rng.integers(1, 3))
        ports = frozenset(
            int(p) for p in rng.choice(ATTACK_PORTS, size=n_ports, replace=False)
        )
        out.append(
            TaggingRule(
                rule_id=f"strat-{i}",
                confidence=float(rng.uniform(0.8, 1.0)),
                support=float(rng.uniform(0.001, 0.1)),
                protocol=17 if rng.random() < 0.7 else None,
                port_src=PortMatch(values=ports, negated=bool(rng.random() < 0.2)),
                status=RuleStatus.ACCEPT,
            )
        )
    return out
