"""Gradient-boosted decision trees (the paper's XGBoost stand-in).

Implements second-order (Newton) boosting on logistic loss with
histogram split search — the core algorithm of XGBoost [23] — including
L2 leaf regularisation, shrinkage, and per-feature *gain* accounting,
which drives the Fig. 10 feature-importance analysis ("average gain for
all splits").

The trainer is a level-wise histogram grower over the compiled-kernel
layer (:mod:`repro.core.models.kernels`): trees grow directly in flat
struct-of-arrays form, split search runs on binned codes against
per-(node, feature, bin) gradient/hessian histograms built with one
combined-key ``bincount`` per level, sibling histograms come from the
parent − child subtraction trick, and each round's margin update is a
single gather through the per-sample node-membership array — no
recursive traversal anywhere in the hot path. The pre-kernel recursive
trainer survives as :meth:`GradientBoostedTrees.fit_reference`, the
benchmark baseline and equivalence oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro import obs
from repro.core.models.base import Classifier, check_fit_inputs
from repro.core.models.binning import DEFAULT_MAX_BINS, QuantileBinner
from repro.core.models.kernels import (
    LEAF,
    ForestKernel,
    HistogramScratch,
    _apply_recursive,
)
from repro.obs import names

#: Minimum split gain (the gamma pruning threshold).
_MIN_SPLIT_GAIN = 1e-9


@dataclass
class _BoostNode:
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["_BoostNode"] = None
    right: Optional["_BoostNode"] = None
    weight: float = 0.0  # leaf output

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -30.0, 30.0)))


class GradientBoostedTrees(Classifier):
    """Newton-boosted tree ensemble for binary classification."""

    name = "XGB"

    def __init__(
        self,
        n_estimators: int = 60,
        max_depth: int = 6,
        learning_rate: float = 0.1,
        reg_lambda: float = 5.0,
        min_child_weight: float = 10.0,
        max_bins: int = DEFAULT_MAX_BINS,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if reg_lambda < 0:
            raise ValueError("reg_lambda must be non-negative")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.reg_lambda = reg_lambda
        self.min_child_weight = min_child_weight
        self.max_bins = max_bins
        self._binner = QuantileBinner(max_bins)
        #: Compiled flat-array ensemble — the primary fitted state.
        self.forest_: Optional[ForestKernel] = None
        self._trees_cache: Optional[list[_BoostNode]] = None
        self.base_score_ = 0.0
        #: Per-feature accumulated split gain and split count (Fig. 10).
        self.feature_gain_: Optional[np.ndarray] = None
        self.feature_splits_: Optional[np.ndarray] = None

    def get_params(self) -> dict[str, object]:
        return {
            "n_estimators": self.n_estimators,
            "max_depth": self.max_depth,
            "learning_rate": self.learning_rate,
            "reg_lambda": self.reg_lambda,
        }

    # ------------------------------------------------------------------
    # Fitted-tree views
    # ------------------------------------------------------------------
    @property
    def trees_(self) -> list[_BoostNode]:
        """Node-graph view of the ensemble (rebuilt from the kernel).

        Kept for tooling and the legacy persistence path; prediction
        never touches it. Assigning a list of roots recompiles the flat
        :attr:`forest_` kernel.
        """
        if self._trees_cache is None:
            if self.forest_ is None:
                return []
            self._trees_cache = self.forest_.to_boost_nodes()
        return self._trees_cache

    @trees_.setter
    def trees_(self, roots: Sequence[_BoostNode]) -> None:
        roots = list(roots)
        self._trees_cache = roots or None
        self.forest_ = ForestKernel.from_boost_nodes(roots) if roots else None

    def __getstate__(self) -> dict:
        # Ship only the compact arrays: the node-graph cache is derived
        # state and would dominate the broadcast payload.
        state = dict(self.__dict__)
        state["_trees_cache"] = None
        return state

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostedTrees":
        X, y = check_fit_inputs(X, y)
        with obs.span(names.SPAN_MODELS_FIT):
            self._fit(X, y)
        obs.counter(names.C_MODELS_TREES_BUILT).inc(self.n_estimators)
        obs.counter(names.C_MODELS_KERNEL_COMPILES).inc()
        assert self.forest_ is not None
        obs.gauge(names.G_MODELS_ENSEMBLE_NODES).set(self.forest_.n_nodes)
        return self

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        binned = self._binner.fit_transform(X)
        n, n_features = X.shape
        self.feature_gain_ = np.zeros(n_features, dtype=np.float64)
        self.feature_splits_ = np.zeros(n_features, dtype=np.int64)
        self._trees_cache = None

        pos_rate = float(np.clip(y.mean(), 1e-6, 1.0 - 1e-6))
        self.base_score_ = float(np.log(pos_rate / (1.0 - pos_rate)))
        margin = np.full(n, self.base_score_, dtype=np.float64)

        # Histograms only need bins that actually occur: sizing them to
        # the widest feature keeps the cumsum/gain algebra tight when
        # features have few distinct values (padding bins past a
        # feature's real count stay empty and can never win a split).
        B = max((self._binner.n_bins(j) for j in range(n_features)), default=2)
        scratch = HistogramScratch(binned, max(B, 2))
        yf = y.astype(np.float64)
        kernels = []
        for _ in range(self.n_estimators):
            p = _sigmoid(margin)
            grad = p - yf
            hess = np.maximum(p * (1.0 - p), 1e-12)
            kernel, node_of = self._grow_tree(binned, grad, hess, scratch)
            kernels.append(kernel)
            # The per-sample node-membership array makes the round's
            # margin update one gather — no re-traversal of the tree.
            margin += self.learning_rate * kernel.value[node_of]
        self.forest_ = ForestKernel.from_trees(kernels)

    # ------------------------------------------------------------------
    def _grow_tree(
        self,
        binned: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        scratch: HistogramScratch,
    ):
        """Grow one tree level-wise; returns (kernel, leaf id per sample).

        Per level, every active node's (feature × bin) gradient/hessian
        histograms sit in one stacked (nodes, features, bins) block and
        the best split of *all* nodes is found with one vectorised
        cumsum + argmax pass. Only the smaller child of each split is
        re-scanned (one slotted histogram pass over the level's rows);
        the sibling histogram is written by parent − small subtraction
        straight into the next level's preallocated block. Children are
        materialised at consecutive ids (right == left + 1), so routing
        a level down is the same branchless ``left + (code > bin)`` step
        the inference kernel uses.
        """
        n, n_features = binned.shape
        B = scratch.max_bins
        lam = self.reg_lambda
        mcw = self.min_child_weight
        # Per-node flat arrays, grown as the tree does (node 0 = root).
        feat_l = [LEAF]
        thr_l = [0.0]
        sbin_l = [LEAF]
        left_l = [LEAF]
        right_l = [LEAF]
        g_l = [float(grad.sum())]
        h_l = [float(hess.sum())]
        node_of = np.zeros(n, dtype=np.int32)

        ids: list[int] = []
        HG = HH = None  # (K, F, B) histograms of the frontier nodes
        if n_features > 0 and n >= 2:
            HG, HH = scratch.pair(None, grad, hess)
            ids = [0]

        for depth in range(self.max_depth):
            if not ids:
                break
            K = len(ids)
            assert HG is not None and HH is not None
            gsum = np.array([g_l[i] for i in ids])[:, None, None]
            hsum = np.array([h_l[i] for i in ids])[:, None, None]
            GL = np.cumsum(HG, axis=2)[:, :, :-1]
            HL = np.cumsum(HH, axis=2)[:, :, :-1]
            HR = hsum - HL
            valid = (HL >= mcw) & (HR >= mcw)
            # gain = 0.5 * (GL²/(HL+λ) + GR²/(HR+λ) − gsum²/(hsum+λ)),
            # evaluated with in-place ops to keep temporaries to two
            # (K, F, B-1) buffers. Same operation order as the naive
            # expression, so results are unchanged bit-for-bit.
            with np.errstate(divide="ignore", invalid="ignore"):
                gain = GL * GL
                den = HL + lam
                gain /= den
                GR = np.subtract(gsum, GL, out=den)
                np.multiply(GR, GR, out=GR)
                HR += lam  # validity already checked above
                GR /= HR
                gain += GR
                gain -= gsum * gsum / (hsum + lam)
                gain *= 0.5
            if lam == 0.0:
                # 0/0 only possible with no L2 term (hessians are >= 0).
                gain[np.isnan(gain)] = -np.inf
            np.copyto(gain, -np.inf, where=~valid)
            flat = gain.reshape(K, -1)
            best_pos = np.argmax(flat, axis=1)
            best_gain = flat[np.arange(K), best_pos]
            do_split = best_gain > _MIN_SPLIT_GAIN

            # Materialise the level's splits: routing tables + children.
            assert self.feature_gain_ is not None and self.feature_splits_ is not None
            route_feat = np.full(len(feat_l), -1, dtype=np.int64)
            route_bin = np.zeros(len(feat_l), dtype=np.int64)
            route_left = np.zeros(len(feat_l), dtype=np.int32)
            splits: list[tuple[int, int, int, int]] = []  # (i, nid, lid, rid)
            for i in range(K):
                if not do_split[i]:
                    continue
                nid = ids[i]
                f, kbin = divmod(int(best_pos[i]), B - 1)
                gl = float(GL[i, f, kbin])
                hl = float(HL[i, f, kbin])
                self.feature_gain_[f] += float(best_gain[i])
                self.feature_splits_[f] += 1
                lid = len(feat_l)
                rid = lid + 1
                feat_l[nid] = f
                sbin_l[nid] = kbin
                thr_l[nid] = self._binner.threshold(f, kbin)
                left_l[nid] = lid
                right_l[nid] = rid
                for child_g, child_h in ((gl, hl), (g_l[nid] - gl, h_l[nid] - hl)):
                    feat_l.append(LEAF)
                    thr_l.append(0.0)
                    sbin_l.append(LEAF)
                    left_l.append(LEAF)
                    right_l.append(LEAF)
                    g_l.append(child_g)
                    h_l.append(child_h)
                route_feat[nid] = f
                route_bin[nid] = kbin
                route_left[nid] = lid
                splits.append((i, nid, lid, rid))

            if not splits:
                break
            # Route samples of splitting nodes down one level (binned
            # codes, not raw values: bin(x) <= k  <=>  x <= edges[k];
            # children are consecutive, so right = left + 1).
            rows = np.flatnonzero(route_feat[node_of] >= 0)
            nid_r = node_of[rows]
            codes_r = binned.ravel().take(rows * n_features + route_feat[nid_r])
            child = route_left[nid_r] + (codes_r > route_bin[nid_r])
            node_of[rows] = child

            if depth + 1 >= self.max_depth:
                ids = []
                break
            counts = np.bincount(child, minlength=len(feat_l))

            # Histogram the smaller child of every split in one slotted
            # pass; siblings come from parent − small subtraction.
            slot_of = np.full(len(feat_l), -1, dtype=np.int64)
            pairs = []  # (parent frontier idx, small id, big id)
            for i, nid, lid, rid in splits:
                if counts[lid] < 2 and counts[rid] < 2:
                    continue  # both children terminal: no hists needed
                small, big = (lid, rid) if counts[lid] <= counts[rid] else (rid, lid)
                slot_of[small] = len(pairs)
                pairs.append((i, small, big))
            ids = []
            if not pairs:
                HG = HH = None
                continue
            n_small = len(pairs)
            slot_r = slot_of[child]
            keep = slot_r >= 0
            srows = rows[keep]
            slots = slot_r[keep]
            HG_small, HH_small = scratch.pair(
                srows, grad.take(srows), hess.take(srows), slots, n_small
            )
            # Assemble the next frontier directly into fresh stacked
            # blocks: small children copy in, siblings subtract in.
            sources = []  # (is_sibling, slot, parent frontier idx)
            for slot, (i, small, big) in enumerate(pairs):
                if counts[small] >= 2:
                    ids.append(small)
                    sources.append((False, slot, i))
                if counts[big] >= 2:
                    ids.append(big)
                    sources.append((True, slot, i))
            HG_next = np.empty((len(ids), n_features, B))
            HH_next = np.empty((len(ids), n_features, B))
            for pos, (is_sibling, slot, i) in enumerate(sources):
                if is_sibling:
                    np.subtract(HG[i], HG_small[slot], out=HG_next[pos])
                    np.subtract(HH[i], HH_small[slot], out=HH_next[pos])
                else:
                    HG_next[pos] = HG_small[slot]
                    HH_next[pos] = HH_small[slot]
            HG, HH = HG_next, HH_next

        g_arr = np.asarray(g_l)
        h_arr = np.asarray(h_l)
        from repro.core.models.kernels import TreeKernel

        kernel = TreeKernel(
            feature=np.asarray(feat_l, dtype=np.int32),
            threshold=np.asarray(thr_l, dtype=np.float64),
            split_bin=np.asarray(sbin_l, dtype=np.int32),
            left=np.asarray(left_l, dtype=np.int32),
            right=np.asarray(right_l, dtype=np.int32),
            value=-g_arr / (h_arr + lam),
        )
        return kernel, node_of

    # ------------------------------------------------------------------
    # Pre-kernel reference trainer (benchmark baseline + oracle)
    # ------------------------------------------------------------------
    def fit_reference(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostedTrees":
        """The original recursive trainer, kept verbatim.

        Grows node graphs one node at a time and re-traverses the tree
        for every margin update. Exists so benchmarks and equivalence
        tests can compare the compiled hot path against the original.
        """
        X, y = check_fit_inputs(X, y)
        binned = self._binner.fit_transform(X)
        n, n_features = X.shape
        self.feature_gain_ = np.zeros(n_features, dtype=np.float64)
        self.feature_splits_ = np.zeros(n_features, dtype=np.int64)

        pos_rate = float(np.clip(y.mean(), 1e-6, 1.0 - 1e-6))
        self.base_score_ = float(np.log(pos_rate / (1.0 - pos_rate)))
        margin = np.full(n, self.base_score_, dtype=np.float64)

        yf = y.astype(np.float64)
        roots = []
        for _ in range(self.n_estimators):
            p = _sigmoid(margin)
            grad = p - yf
            hess = np.maximum(p * (1.0 - p), 1e-12)
            tree = self._build_tree_reference(binned, grad, hess, np.arange(n), 0)
            roots.append(tree)
            out = np.empty(n, dtype=np.float64)
            _apply_recursive(tree, X, np.arange(n), out, "weight")
            margin += self.learning_rate * out
        self.trees_ = roots
        return self

    def _build_tree_reference(
        self,
        binned: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        index: np.ndarray,
        depth: int,
    ) -> _BoostNode:
        g_sum = float(grad[index].sum())
        h_sum = float(hess[index].sum())
        node = _BoostNode(weight=-g_sum / (h_sum + self.reg_lambda))
        if depth >= self.max_depth or index.shape[0] < 2:
            return node

        parent_score = g_sum * g_sum / (h_sum + self.reg_lambda)
        sub = binned[index]
        g_sub = grad[index]
        h_sub = hess[index]
        best_gain = _MIN_SPLIT_GAIN
        best: Optional[tuple[int, int]] = None
        for j in range(binned.shape[1]):
            n_bins = self._binner.n_bins(j)
            if n_bins < 2:
                continue
            bins = sub[:, j]
            g_hist = np.bincount(bins, weights=g_sub, minlength=n_bins)
            h_hist = np.bincount(bins, weights=h_sub, minlength=n_bins)
            g_left = np.cumsum(g_hist)[:-1]
            h_left = np.cumsum(h_hist)[:-1]
            g_right = g_sum - g_left
            h_right = h_sum - h_left
            valid = (h_left >= self.min_child_weight) & (h_right >= self.min_child_weight)
            if not valid.any():
                continue
            gain = 0.5 * (
                g_left**2 / (h_left + self.reg_lambda)
                + g_right**2 / (h_right + self.reg_lambda)
                - parent_score
            )
            gain[~valid] = -np.inf
            k = int(np.argmax(gain))
            if gain[k] > best_gain:
                best_gain = float(gain[k])
                best = (j, k)

        if best is None:
            return node
        feature, split_bin = best
        assert self.feature_gain_ is not None and self.feature_splits_ is not None
        self.feature_gain_[feature] += best_gain
        self.feature_splits_[feature] += 1
        go_left = sub[:, feature] <= split_bin
        node.feature = feature
        node.threshold = self._binner.threshold(feature, split_bin)
        node.left = self._build_tree_reference(binned, grad, hess, index[go_left], depth + 1)
        node.right = self._build_tree_reference(binned, grad, hess, index[~go_left], depth + 1)
        return node

    # ------------------------------------------------------------------
    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw margin before the sigmoid (compiled-kernel inference)."""
        if self.forest_ is None or self.forest_.n_trees == 0:
            raise RuntimeError("GradientBoostedTrees is not fitted")
        X = np.asarray(X, dtype=np.float64)
        with obs.span(names.SPAN_MODELS_PREDICT):
            return self.forest_.margin(X, self.base_score_, self.learning_rate)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return _sigmoid(self.decision_function(X))

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X) >= 0.5).astype(np.int64)

    def average_gain(self) -> np.ndarray:
        """Average split gain per feature (Fig. 10's importance measure)."""
        if self.feature_gain_ is None or self.feature_splits_ is None:
            raise RuntimeError("GradientBoostedTrees is not fitted")
        with np.errstate(divide="ignore", invalid="ignore"):
            avg = np.where(
                self.feature_splits_ > 0,
                self.feature_gain_ / np.maximum(self.feature_splits_, 1),
                0.0,
            )
        return avg
