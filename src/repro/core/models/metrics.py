"""Classification metrics (Table 3 / Table 5 columns).

Implements the paper's indicators: tp/tn/fp/fn and their rates, F1,
the false-positive-averse F_beta (beta = 0.5 in the paper), and the
prediction-cost measurement in mega clock cycles (mcc).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

#: The paper's beta: false positives weigh more than false negatives.
DEFAULT_BETA = 0.5

#: Nominal clock rate used to convert wall time to clock cycles. The
#: paper reads cycle counters directly; a fixed nominal rate preserves
#: the *relative* cost ranking of models, which is what Table 3 uses.
NOMINAL_GHZ = 3.0


@dataclass(frozen=True)
class ConfusionMatrix:
    """Binary confusion counts and derived rates."""

    tp: int
    tn: int
    fp: int
    fn: int

    @classmethod
    def from_predictions(cls, y_true: np.ndarray, y_pred: np.ndarray) -> "ConfusionMatrix":
        y_true = np.asarray(y_true).astype(bool).ravel()
        y_pred = np.asarray(y_pred).astype(bool).ravel()
        if y_true.shape != y_pred.shape:
            raise ValueError("shape mismatch between y_true and y_pred")
        return cls(
            tp=int((y_true & y_pred).sum()),
            tn=int((~y_true & ~y_pred).sum()),
            fp=int((~y_true & y_pred).sum()),
            fn=int((y_true & ~y_pred).sum()),
        )

    @property
    def total(self) -> int:
        return self.tp + self.tn + self.fp + self.fn

    @property
    def tpr(self) -> float:
        """True positive rate (recall)."""
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def tnr(self) -> float:
        denom = self.tn + self.fp
        return self.tn / denom if denom else 0.0

    @property
    def fpr(self) -> float:
        denom = self.fp + self.tn
        return self.fp / denom if denom else 0.0

    @property
    def fnr(self) -> float:
        denom = self.fn + self.tp
        return self.fn / denom if denom else 0.0

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def recall(self) -> float:
        return self.tpr

    @property
    def accuracy(self) -> float:
        return (self.tp + self.tn) / self.total if self.total else 0.0

    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        denom = self.tp + 0.5 * (self.fp + self.fn)
        return self.tp / denom if denom else 0.0

    def fbeta(self, beta: float = DEFAULT_BETA) -> float:
        """The paper's weighted F-score; beta < 1 penalises FPs more."""
        if beta <= 0:
            raise ValueError("beta must be positive")
        b2 = beta * beta
        denom = (1 + b2) * self.tp + b2 * self.fn + self.fp
        return (1 + b2) * self.tp / denom if denom else 0.0


def f1_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    return ConfusionMatrix.from_predictions(y_true, y_pred).f1()


def fbeta_score(
    y_true: np.ndarray, y_pred: np.ndarray, beta: float = DEFAULT_BETA
) -> float:
    return ConfusionMatrix.from_predictions(y_true, y_pred).fbeta(beta)


def prediction_cost_mcc(
    predict, X: np.ndarray, runs: int = 30
) -> float:
    """Mean prediction cost in mega clock cycles per record.

    Times ``predict(X)`` over ``runs`` repetitions (paper: averaged over
    30 runs) and converts wall time to cycles at the nominal clock rate.
    """
    if runs <= 0:
        raise ValueError("runs must be positive")
    n = max(X.shape[0], 1)
    # Warm-up run (JIT-less, but touches caches and lazy buffers).
    predict(X)
    start = time.perf_counter()  # repro: lint-ignore[RS101] measuring latency IS this function's job (MCC cost metric)
    for _ in range(runs):
        predict(X)
    elapsed = (time.perf_counter() - start) / runs  # repro: lint-ignore[RS101] measuring latency IS this function's job (MCC cost metric)
    cycles = elapsed * NOMINAL_GHZ * 1e9
    return cycles / n / 1e6


@dataclass(frozen=True)
class ModelScore:
    """One Table 3 row."""

    model: str
    fbeta: float
    f1: float
    mcc: float
    tnr: float
    fnr: float
    tpr: float
    fpr: float

    @classmethod
    def from_confusion(
        cls, model: str, cm: ConfusionMatrix, mcc: float = float("nan")
    ) -> "ModelScore":
        return cls(
            model=model,
            fbeta=cm.fbeta(),
            f1=cm.f1(),
            mcc=mcc,
            tnr=cm.tnr,
            fnr=cm.fnr,
            tpr=cm.tpr,
            fpr=cm.fpr,
        )
