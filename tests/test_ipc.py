"""Unit tests for ``repro.core.parallel.shm``: rings, plane, lifetimes.

The transport contract under test: framed batches round-trip through a
ring **bit-identically** as read-only zero-copy views, every validation
failure raises :class:`ShmProtocolError` (never a hang or a wrong
batch), reclaim makes an orphaned frame unreachable, and the model
plane hands workers array *views into the mapping* rather than copies.
Leak discipline — no ``resource_tracker`` warnings, no ``/dev/shm``
residue — is asserted in subprocesses so the tracker's atexit output is
observable.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from tests import strategies
from repro.core.parallel import shm
from repro.core.parallel.shm import (
    FrameRef,
    ModelPlane,
    ShmProtocolError,
    ShmRing,
    frame_bytes_for,
)
from repro.netflow.dataset import SCHEMA


@pytest.fixture()
def batch():
    return strategies.flows(strategies.rng_for(11), n_flows=300)


def _roundtrip(ring, consumer, seqno, flows):
    ref = ring.write_flows(seqno, flows)
    assert isinstance(ref, FrameRef) and ref.seqno == seqno
    return consumer.read_flows(ref.seqno, ref.offset, ref.nbytes)


class TestShmRing:
    def test_roundtrip_is_bit_identical_and_readonly(self, batch):
        ring = ShmRing(1 << 20)
        consumer = ShmRing.attach(ring.name)
        try:
            got = _roundtrip(ring, consumer, 1, batch)
            for name in SCHEMA:
                column = got.column(name)
                assert np.array_equal(column, batch.column(name))
                assert not column.flags.writeable
            # Zero-copy: the columns are views into the mapping, not
            # heap copies of it.
            assert got.column("time").base is not None
            # Drop the views before unmapping (the worker protocol's
            # del-before-ack, in miniature).
            del got, column
        finally:
            consumer.close()
            ring.destroy()

    def test_busy_ring_returns_none_until_acked(self, batch):
        ring = ShmRing(1 << 20)
        try:
            ref = ring.write_flows(1, batch)
            assert ref is not None and ring.in_flight
            assert ring.write_flows(2, batch) is None  # unacked frame
            ring.ack(1)
            assert not ring.in_flight
            assert ring.write_flows(3, batch) is not None
        finally:
            ring.destroy()

    def test_oversized_batch_returns_none(self, batch):
        ring = ShmRing(frame_bytes_for(len(batch)) // 2)
        try:
            assert ring.write_flows(1, batch) is None
        finally:
            ring.destroy()

    def test_frames_never_wrap_the_tail(self, batch):
        # Capacity fits one frame plus change: the second write must
        # restart at offset 0 instead of wrapping mid-frame.
        nbytes = frame_bytes_for(len(batch))
        ring = ShmRing(nbytes + nbytes // 2)
        consumer = ShmRing.attach(ring.name)
        try:
            first = _roundtrip(ring, consumer, 1, batch)
            ring.ack(1)
            ref = ring.write_flows(2, batch)
            assert ref is not None and ref.offset == 0
            again = consumer.read_flows(ref.seqno, ref.offset, ref.nbytes)
            assert np.array_equal(again.column("time"), first.column("time"))
            del first, again  # release views before unmapping
        finally:
            consumer.close()
            ring.destroy()

    def test_corrupted_payload_fails_crc(self, batch):
        ring = ShmRing(1 << 20)
        consumer = ShmRing.attach(ring.name)
        try:
            ref = ring.write_flows(1, batch)
            # Flip one payload byte through the protocol module's own
            # segment handle (writes outside it are linted: RS204).
            position = shm._CTRL_BYTES + ref.offset + shm._FRAME_HEADER_BYTES
            ring._shm.buf[position] ^= 0xFF
            with pytest.raises(ShmProtocolError, match="crc"):
                consumer.read_flows(ref.seqno, ref.offset, ref.nbytes)
        finally:
            consumer.close()
            ring.destroy()

    def test_seqno_mismatch_rejected(self, batch):
        ring = ShmRing(1 << 20)
        consumer = ShmRing.attach(ring.name)
        try:
            ref = ring.write_flows(7, batch)
            with pytest.raises(ShmProtocolError, match="seqno"):
                consumer.read_flows(8, ref.offset, ref.nbytes)
        finally:
            consumer.close()
            ring.destroy()

    def test_reclaim_abandons_orphan_and_rejects_stale_frame(self, batch):
        ring = ShmRing(1 << 20)
        consumer = ShmRing.attach(ring.name)
        try:
            ref = ring.write_flows(1, batch)  # never acked: "crash"
            assert ring.in_flight
            ring.reclaim()
            assert not ring.in_flight and ring.generation == 1
            # The orphaned frame is now from a dead generation.
            with pytest.raises(ShmProtocolError, match="generation"):
                consumer.read_flows(ref.seqno, ref.offset, ref.nbytes)
            # And the ring is immediately usable again.
            got = _roundtrip(ring, consumer, 2, batch)
            assert np.array_equal(got.column("dst_ip"), batch.column("dst_ip"))
            del got  # release views before unmapping
        finally:
            consumer.close()
            ring.destroy()

    def test_attach_validates_control_block(self):
        from multiprocessing import shared_memory

        raw = shared_memory.SharedMemory(create=True, size=1024)
        try:
            with pytest.raises(ShmProtocolError, match="control block"):
                ShmRing.attach(raw.name)
        finally:
            raw.close()
            raw.unlink()

    def test_destroy_unlinks_and_is_idempotent(self, batch):
        ring = ShmRing(1 << 20)
        name = ring.name
        ring.destroy()
        ring.destroy()
        with pytest.raises(FileNotFoundError):
            shm.attach_segment(name)


class TestModelPlane:
    def test_publish_load_roundtrip_shares_memory(self):
        plane = ModelPlane()
        payload = {
            "kernel": np.arange(4096, dtype=np.float64),
            "thresholds": np.linspace(0.0, 1.0, 257),
            "label": "scrubber",
        }
        try:
            ref = plane.publish(payload)
            assert ref.version == 1 and plane.version == 1
            loaded, segment = shm.load_model(ref.name, ref.version)
            try:
                assert loaded["label"] == "scrubber"
                for key in ("kernel", "thresholds"):
                    assert np.array_equal(loaded[key], payload[key])
                    # The map-once contract: arrays are read-only views
                    # into the shared segment, not per-worker copies.
                    assert not loaded[key].flags.writeable
                    assert np.shares_memory(
                        loaded[key],
                        np.frombuffer(segment.buf, dtype=np.uint8),
                    )
            finally:
                del loaded
                segment.close()
        finally:
            plane.destroy()

    def test_republish_bumps_version_and_unlinks_previous(self):
        plane = ModelPlane()
        try:
            first = plane.publish({"x": np.ones(16)})
            second = plane.publish({"x": np.zeros(16)})
            assert second.version == first.version + 1
            with pytest.raises(FileNotFoundError):
                shm.attach_segment(first.name)
            loaded, segment = shm.load_model(second.name, second.version)
            assert not loaded["x"].any()
            del loaded
            segment.close()
        finally:
            plane.destroy()

    def test_version_mismatch_rejected(self):
        plane = ModelPlane()
        try:
            ref = plane.publish({"x": np.ones(8)})
            with pytest.raises(ShmProtocolError, match="version"):
                shm.load_model(ref.name, ref.version + 1)
        finally:
            plane.destroy()

    def test_corrupted_stream_fails_crc(self):
        plane = ModelPlane()
        try:
            ref = plane.publish({"x": np.arange(64, dtype=np.int64)})
            segment = plane._segment
            # Corrupt one raw-buffer byte (again: only the protocol
            # module may write segment memory — this test pokes through
            # its own handle on purpose).
            segment.buf[ref.nbytes - 1] ^= 0xFF
            with pytest.raises(ShmProtocolError, match="crc"):
                shm.load_model(ref.name, ref.version)
        finally:
            plane.destroy()

    def test_objects_without_buffers_roundtrip(self):
        plane = ModelPlane()
        try:
            ref = plane.publish({"just": "strings", "and": [1, 2, 3]})
            loaded, segment = shm.load_model(ref.name, ref.version)
            assert loaded == {"just": "strings", "and": [1, 2, 3]}
            segment.close()
        finally:
            plane.destroy()


REPO_ROOT = Path(__file__).resolve().parents[1]


def _run_python(code: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(REPO_ROOT)]
    )
    return subprocess.run(
        [sys.executable, "-c", textwrap.dedent(code)],
        capture_output=True,
        text=True,
        timeout=120,
        cwd=REPO_ROOT,
        env=env,
    )


def _segment_linked(name: str) -> bool:
    return os.path.exists(f"/dev/shm/{name}")


class TestLeakDiscipline:
    """Tracker warnings surface at interpreter exit: use subprocesses."""

    def test_backend_lifecycle_leaves_no_residue(self):
        result = _run_python(
            """
            import numpy as np
            from tests import strategies
            from repro.core.parallel import ShardPlan
            from repro.core.parallel.backends import ProcessBackend
            from repro.core.labeling.balancer import balance
            from repro.core.scrubber import IXPScrubber, ScrubberConfig

            rng = strategies.rng_for(999)
            labeled = strategies.labeled_flows(
                rng, n_flows=3000, n_targets=10, n_bins=10
            )
            balanced = balance(labeled, np.random.default_rng(7)).flows
            scrubber = IXPScrubber(
                ScrubberConfig(model="XGB", model_params={"n_estimators": 4})
            ).fit(balanced)
            backend = ProcessBackend(2, ipc="shm")
            names = [r.name for r in backend._rings]
            backend.broadcast(scrubber)
            names.append(backend._plane_box[0].ref().name)
            shard_flows = ShardPlan(2).split(
                strategies.flows(strategies.rng_for(5), n_flows=200)
            )
            backend.classify(shard_flows, min_flows=3)
            backend.broadcast(scrubber)  # identity skip: no republish
            backend.close()
            import os
            for name in names:
                if os.path.exists(f"/dev/shm/{name}"):
                    raise SystemExit(f"segment {name} still linked")
            print("OK")
            """
        )
        assert result.returncode == 0, result.stderr
        assert "OK" in result.stdout
        assert "leaked" not in result.stderr
        assert "resource_tracker" not in result.stderr

    def test_unclosed_backend_is_reaped_without_leaks(self):
        # No close(): the weakref.finalize reaper must kill workers and
        # unlink rings + plane at interpreter exit, silently.
        result = _run_python(
            """
            from repro.core.parallel.backends import ProcessBackend

            backend = ProcessBackend(2, ipc="shm")
            names = [r.name for r in backend._rings]
            print("SPAWNED", *names)
            """
        )
        assert result.returncode == 0, result.stderr
        names = result.stdout.split()[1:]
        assert names
        assert "leaked" not in result.stderr
        assert "resource_tracker" not in result.stderr
        for name in names:
            assert not _segment_linked(name)

    def test_failed_init_cleans_partial_state(self, monkeypatch):
        # Worker spawn blows up after the rings exist: __init__ must
        # destroy them on the way out.
        created: list = []
        original = shm.ShmRing.__init__

        def tracking_init(self, *args, **kwargs):
            original(self, *args, **kwargs)
            created.append(self.name)

        monkeypatch.setattr(shm.ShmRing, "__init__", tracking_init)

        from repro.core.parallel import backends as backends_mod

        def boom(self, shard):
            raise RuntimeError("spawn failed")

        monkeypatch.setattr(
            backends_mod.ProcessBackend, "_start_worker", boom
        )
        with pytest.raises(RuntimeError, match="spawn failed"):
            backends_mod.ProcessBackend(2, ipc="shm")
        assert len(created) == 2
        for name in created:
            with pytest.raises(FileNotFoundError):
                shm.attach_segment(name)
