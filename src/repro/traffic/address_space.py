"""Synthetic IPv4 address-space allocation.

All generated traffic draws addresses from disjoint, documented blocks so
that datasets remain self-describing: victims, reflectors, benign servers
and benign clients can be told apart when debugging, and per-region
reflector pools are guaranteed (mostly) disjoint — mirroring the low
cross-IXP reflector overlap the paper measures in Fig. 12 (middle).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netflow.record import ip_to_int


#: Knuth's multiplicative constant: an odd number, hence a bijection on
#: uint32 under multiplication mod 2^32.
_SCATTER_MULTIPLIER = 2654435761
_SCATTER_INVERSE = pow(_SCATTER_MULTIPLIER, -1, 2**32)


def scatter_address(values: np.ndarray | int) -> np.ndarray | int:
    """Bijectively scatter uint32 addresses across the whole IPv4 space."""
    if isinstance(values, (int, np.integer)):
        return (int(values) * _SCATTER_MULTIPLIER) & 0xFFFFFFFF
    values = np.asarray(values, dtype=np.uint64)
    return ((values * _SCATTER_MULTIPLIER) & 0xFFFFFFFF).astype(np.uint32)


def unscatter_address(values: np.ndarray | int) -> np.ndarray | int:
    """Inverse of :func:`scatter_address`."""
    if isinstance(values, (int, np.integer)):
        return (int(values) * _SCATTER_INVERSE) & 0xFFFFFFFF
    values = np.asarray(values, dtype=np.uint64)
    return ((values * _SCATTER_INVERSE) & 0xFFFFFFFF).astype(np.uint32)


@dataclass(frozen=True)
class AddressBlock:
    """A block of IPv4 addresses, contiguous or scattered.

    With ``scattered=False`` the block is the contiguous range
    ``[base, base + size)`` — appropriate for *destination* space, where
    real prefixes are contiguous. With ``scattered=True`` the block's
    addresses are the bijective scatter of that range across the whole
    IPv4 space — appropriate for *source* populations (reflectors, CDN
    servers, clients, bots), whose members are interleaved in reality.
    Scattering keeps distinct blocks disjoint (the map is a bijection)
    while ensuring an address's numeric value does not encode its role —
    without this, interval-splitting models can read "is a reflector"
    straight off the raw address (see the E-ABL encoding ablation).
    """

    base: int
    size: int
    scattered: bool = False

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("block size must be positive")
        if self.base + self.size > 2**32:
            raise ValueError("block exceeds IPv4 space")

    def sample(self, rng: np.random.Generator, n: int, replace: bool = True) -> np.ndarray:
        """Draw ``n`` addresses uniformly from the block."""
        if not replace and n > self.size:
            raise ValueError("cannot sample more unique addresses than block size")
        if replace:
            offsets = rng.integers(0, self.size, size=n)
        else:
            offsets = rng.choice(self.size, size=n, replace=False)
        raw = (self.base + offsets).astype(np.uint32)
        return scatter_address(raw) if self.scattered else raw

    def contains(self, address: int) -> bool:
        if self.scattered:
            address = int(unscatter_address(int(address)))
        return self.base <= address < self.base + self.size

    def contains_batch(self, addresses: np.ndarray) -> np.ndarray:
        addresses = np.asarray(addresses, dtype=np.uint64)
        if self.scattered:
            addresses = np.asarray(unscatter_address(addresses), dtype=np.uint64)
        return (addresses >= self.base) & (addresses < self.base + self.size)


# Fixed synthetic allocation plan. Blocks are /12-sized unless noted.
_BLOCK = 1 << 20

#: Victim space: IXP member customer addresses that attacks target.
#: Contiguous — real member prefixes are, and blackhole covering
#: prefixes rely on that locality.
VICTIMS = AddressBlock(ip_to_int("10.0.0.0"), _BLOCK)

#: Benign server space (content, CDN caches, mail, DNS resolvers).
SERVERS = AddressBlock(ip_to_int("20.0.0.0"), _BLOCK, scattered=True)

#: Benign client space (eyeball networks).
CLIENTS = AddressBlock(ip_to_int("30.0.0.0"), 4 * _BLOCK, scattered=True)

#: Reflector space; carved into per-region sub-blocks by region index.
REFLECTORS = AddressBlock(ip_to_int("100.0.0.0"), 16 * _BLOCK, scattered=True)

#: Spoofed/unattributable source space (e.g. direct-path floods).
SPOOFED = AddressBlock(ip_to_int("200.0.0.0"), 4 * _BLOCK, scattered=True)


def region_reflector_block(region: int, n_regions: int = 16) -> AddressBlock:
    """The reflector sub-block for ``region`` (0-based, scattered)."""
    if not 0 <= region < n_regions:
        raise ValueError(f"region index out of range: {region}")
    size = REFLECTORS.size // n_regions
    return AddressBlock(REFLECTORS.base + region * size, size, scattered=True)
