"""Project model shared by every pass: parsed modules + name resolution.

A :class:`Project` is the set of parsed modules under one source root.
On top of it this module provides the alias/scope machinery the passes
share:

* :func:`import_table` — per-module map of local alias to the dotted
  path it denotes (``np`` -> ``numpy``, ``names`` -> ``repro.obs.names``),
  with relative imports resolved against the module's package;
* :func:`attr_chain` — flatten ``a.b.c`` into ``["a", "b", "c"]``;
* :func:`resolve_dotted` — resolve an attribute/name expression to the
  dotted path of the object it refers to, honouring local shadowing
  (a parameter named ``time`` hides the module);
* :class:`ScopeStack` / :func:`collect_bindings` — the function-scope
  binding sets that make the visitors alias-aware;
* :func:`runtime_imports` — the module's imports excluding
  ``if TYPE_CHECKING:`` blocks (annotation-only imports do not create
  runtime coupling and are exempt from the layer contract).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Sequence

__all__ = [
    "Module",
    "Project",
    "ScopeStack",
    "attr_chain",
    "collect_bindings",
    "import_table",
    "iter_source_files",
    "resolve_dotted",
    "runtime_imports",
]


def iter_source_files(
    src_root: Path, rel_to: Optional[Path] = None
) -> list[tuple[Path, str, str]]:
    """Every ``(path, dotted_name, rel)`` under one source root.

    The single source of truth for which files a lint run covers —
    :meth:`Project.load` parses exactly this list, and the incremental
    cache hashes exactly this list, so a warm run can verify coverage
    without parsing anything.
    """
    src_root = src_root.resolve()
    base = (rel_to or src_root.parent).resolve()
    out: list[tuple[Path, str, str]] = []
    for path in sorted(src_root.rglob("*.py")):
        relparts = path.relative_to(src_root).parts
        if relparts[-1] == "__init__.py":
            dotted = ".".join(relparts[:-1])
        else:
            dotted = ".".join(relparts)[: -len(".py")]
        if not dotted:  # a bare __init__.py directly in src_root
            continue
        out.append((path, dotted, path.relative_to(base).as_posix()))
    return out


@dataclass
class Module:
    """One parsed source file."""

    name: str  # dotted module name, e.g. "repro.core.scrubber"
    path: Path
    rel: str  # posix path relative to the lint root (finding paths)
    source: str
    tree: ast.Module

    @property
    def package(self) -> str:
        """The package containing this module (itself, for __init__)."""
        if self.path.name == "__init__.py":
            return self.name
        return self.name.rpartition(".")[0]


class Project:
    """All modules under a source root, indexed by dotted name."""

    def __init__(self, modules: Sequence[Module]):
        self.modules: tuple[Module, ...] = tuple(
            sorted(modules, key=lambda m: m.name)
        )
        self.by_name: dict[str, Module] = {m.name: m for m in self.modules}

    @classmethod
    def load(cls, src_root: Path, rel_to: Optional[Path] = None) -> "Project":
        """Parse every ``*.py`` under ``src_root``.

        ``src_root`` is the directory *containing* the top-level
        package(s) (the repo's ``src/``). ``rel_to`` controls the path
        prefix findings display (default: ``src_root``'s parent, so
        paths read ``src/repro/...`` from the repo root).
        """
        modules = []
        for path, dotted, rel in iter_source_files(src_root, rel_to):
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
            modules.append(
                Module(
                    name=dotted, path=path, rel=rel, source=source, tree=tree
                )
            )
        return cls(modules)


def attr_chain(node: ast.AST) -> Optional[list[str]]:
    """``a.b.c`` -> ``["a", "b", "c"]``; None if the base isn't a Name."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def _resolve_relative(module: Module, level: int, target: Optional[str]) -> str:
    """Absolute dotted path for a ``from ...x import y`` module part."""
    base_parts = module.package.split(".") if module.package else []
    if level > 1:
        base_parts = base_parts[: len(base_parts) - (level - 1)]
    if target:
        base_parts = base_parts + target.split(".")
    return ".".join(base_parts)


def import_table(module: Module) -> dict[str, str]:
    """Map each import-bound local name to the dotted path it denotes.

    Only module-level and function-level imports reachable by a plain
    walk are collected; the table is a *name* table, so ``import a.b``
    binds ``a`` -> ``a`` (attribute access continues the chain).
    """
    table: dict[str, str] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    table[alias.asname] = alias.name
                else:
                    table[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = _resolve_relative(module, node.level, node.module)
            else:
                base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                table[local] = f"{base}.{alias.name}" if base else alias.name
    return table


class ScopeStack:
    """A stack of local-binding sets; the module scope sits at index 0."""

    def __init__(self, module_bindings: set[str]):
        self._stack: list[set[str]] = [set(module_bindings)]

    def push(self, bindings: set[str]) -> None:
        self._stack.append(set(bindings))

    def pop(self) -> None:
        self._stack.pop()

    def is_local(self, name: str) -> bool:
        """Bound in any *function* scope (module scope doesn't count)."""
        return any(name in scope for scope in self._stack[1:])

    def is_bound(self, name: str) -> bool:
        return any(name in scope for scope in self._stack)


def collect_bindings(node: ast.AST, include_nested: bool = False) -> set[str]:
    """Names bound inside ``node``'s own scope.

    Covers parameters, assignment/for/with/except/match targets, local
    imports, and nested def/class statement names. ``global`` and
    ``nonlocal`` declarations *remove* the name (it is explicitly not
    local). Nested function/class bodies are skipped unless
    ``include_nested`` — they are their own scopes.
    """
    bound: set[str] = set()
    unbound: set[str] = set()

    def visit(n: ast.AST, top: bool) -> None:
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if not top:
                bound.add(n.name)
                if not include_nested:
                    return
            else:
                args = getattr(n, "args", None)
                if args is not None:
                    for a in (
                        list(args.posonlyargs)
                        + list(args.args)
                        + list(args.kwonlyargs)
                        + ([args.vararg] if args.vararg else [])
                        + ([args.kwarg] if args.kwarg else [])
                    ):
                        bound.add(a.arg)
        elif isinstance(n, ast.Name) and isinstance(n.ctx, (ast.Store, ast.Del)):
            bound.add(n.id)
        elif isinstance(n, (ast.Global, ast.Nonlocal)):
            unbound.update(n.names)
        elif isinstance(n, ast.ExceptHandler) and n.name:
            bound.add(n.name)
        elif isinstance(n, ast.Import):
            for alias in n.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(n, ast.ImportFrom):
            for alias in n.names:
                if alias.name != "*":
                    bound.add(alias.asname or alias.name)
        elif isinstance(n, (ast.Lambda,)) and not top:
            return
        for child in ast.iter_child_nodes(n):
            visit(child, False)

    visit(node, True)
    return bound - unbound


def resolve_dotted(
    node: ast.AST, scopes: ScopeStack, imports: dict[str, str]
) -> Optional[str]:
    """Dotted path of the object an expression refers to, or None.

    ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
    when ``np`` is the numpy import and not shadowed by a local binding.
    """
    parts = attr_chain(node)
    if parts is None:
        return None
    head = parts[0]
    if scopes.is_local(head):
        return None
    target = imports.get(head)
    if target is None:
        return None
    return ".".join([target] + parts[1:])


def runtime_imports(
    module: Module,
) -> Iterator[tuple[ast.stmt, str]]:
    """Yield ``(node, dotted_target)`` for every runtime import.

    Imports under ``if TYPE_CHECKING:`` are skipped — they exist for
    annotations only and create no runtime coupling. ``from pkg import
    name`` yields ``pkg.name`` per alias so submodule imports resolve.
    Function bodies are walked too: lazy imports are runtime imports.
    """
    seen: set[int] = set()
    results: list[tuple[ast.stmt, str]] = []

    def collect(nodes: Sequence[ast.stmt], type_checking: bool) -> None:
        for node in nodes:
            if id(node) in seen:
                continue
            seen.add(id(node))
            if isinstance(node, ast.If):
                test = node.test
                flag = getattr(test, "id", getattr(test, "attr", None))
                if flag == "TYPE_CHECKING":
                    collect(node.body, True)
                    collect(node.orelse, type_checking)
                    continue
            if isinstance(node, ast.Import):
                if not type_checking:
                    for alias in node.names:
                        results.append((node, alias.name))
            elif isinstance(node, ast.ImportFrom):
                if not type_checking:
                    if node.level:
                        base = _resolve_relative(module, node.level, node.module)
                    else:
                        base = node.module or ""
                    for alias in node.names:
                        if alias.name == "*":
                            results.append((node, base))
                        else:
                            results.append(
                                (node, f"{base}.{alias.name}" if base else alias.name)
                            )
            else:
                for block_name in (
                    "body", "orelse", "finalbody", "handlers",
                ):
                    block = getattr(node, block_name, None)
                    if isinstance(block, list):
                        stmts = []
                        for item in block:
                            if isinstance(item, ast.ExceptHandler):
                                stmts.extend(item.body)
                            elif isinstance(item, ast.stmt):
                                stmts.append(item)
                        collect(stmts, type_checking)

    collect(module.tree.body, False)
    yield from results
