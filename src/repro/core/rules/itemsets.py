"""FP-Growth frequent itemset mining (Han, Pei, Yin, SIGMOD 2000).

The paper mines tagging-rule candidates with FP-Growth ([33], §5.1.1).
This is a from-scratch implementation supporting weighted transactions
(so deduplicated flow transactions mine efficiently).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable, Iterable, Optional

Item = Hashable
Transaction = tuple[Item, ...]


class _FPNode:
    __slots__ = ("item", "count", "parent", "children", "link")

    def __init__(self, item: Optional[Item], parent: Optional["_FPNode"]):
        self.item = item
        self.count = 0
        self.parent = parent
        self.children: dict[Item, _FPNode] = {}
        self.link: Optional[_FPNode] = None


class _FPTree:
    """Prefix tree over frequency-ordered transactions."""

    def __init__(self) -> None:
        self.root = _FPNode(None, None)
        self.header: dict[Item, _FPNode] = {}
        self.counts: dict[Item, int] = defaultdict(int)

    def insert(self, items: Iterable[Item], weight: int) -> None:
        node = self.root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = _FPNode(item, node)
                node.children[item] = child
                # Prepend to the header link chain for this item.
                child.link = self.header.get(item)
                self.header[item] = child
            child.count += weight
            self.counts[item] += weight
            node = child

    def node_chain(self, item: Item) -> list[_FPNode]:
        nodes = []
        node = self.header.get(item)
        while node is not None:
            nodes.append(node)
            node = node.link
        return nodes

    def prefix_paths(self, item: Item) -> list[tuple[list[Item], int]]:
        """Conditional pattern base for ``item``: (path, count) pairs."""
        paths = []
        for node in self.node_chain(item):
            path: list[Item] = []
            parent = node.parent
            while parent is not None and parent.item is not None:
                path.append(parent.item)
                parent = parent.parent
            path.reverse()
            if path:
                paths.append((path, node.count))
        return paths

    @property
    def is_empty(self) -> bool:
        return not self.root.children


def _build_tree(
    weighted: list[tuple[Transaction, int]], min_count: int
) -> _FPTree:
    frequency: dict[Item, int] = defaultdict(int)
    for items, weight in weighted:
        # repro: lint-ignore[RS103] commutative integer accumulation; iteration order cannot affect the totals
        for item in set(items):
            frequency[item] += weight
    frequent = {i for i, c in frequency.items() if c >= min_count}

    tree = _FPTree()
    for items, weight in weighted:
        filtered = [i for i in set(items) if i in frequent]  # repro: lint-ignore[RS103] order erased by the deterministic sort on the next line
        # Order by global frequency desc, ties broken deterministically.
        filtered.sort(key=lambda i: (-frequency[i], repr(i)))
        if filtered:
            tree.insert(filtered, weight)
    return tree


def _mine(
    tree: _FPTree,
    suffix: frozenset[Item],
    min_count: int,
    out: dict[frozenset[Item], int],
    max_len: Optional[int],
) -> None:
    # Iterate items from least to most frequent (standard FP-Growth order).
    items = sorted(tree.counts, key=lambda i: (tree.counts[i], repr(i)))
    for item in items:
        support = tree.counts[item]
        if support < min_count:
            continue
        itemset = suffix | {item}
        out[frozenset(itemset)] = support
        if max_len is not None and len(itemset) >= max_len:
            continue
        conditional = _build_tree(
            [(tuple(path), count) for path, count in tree.prefix_paths(item)],
            min_count,
        )
        if not conditional.is_empty:
            _mine(conditional, frozenset(itemset), min_count, out, max_len)


def fp_growth(
    transactions: list[tuple[Transaction, int]],
    min_support: float,
    max_len: Optional[int] = None,
) -> dict[frozenset[Item], int]:
    """Mine frequent itemsets from weighted transactions.

    Parameters
    ----------
    transactions:
        (transaction, weight) pairs; see
        :func:`repro.core.rules.items.deduplicate`.
    min_support:
        Minimum support as a fraction of the total transaction weight.
    max_len:
        Optional cap on itemset size.

    Returns
    -------
    dict mapping each frequent itemset (frozenset) to its absolute
    support count.
    """
    if not 0.0 < min_support <= 1.0:
        raise ValueError("min_support must be in (0, 1]")
    total = sum(weight for _, weight in transactions)
    if total == 0:
        return {}
    min_count = max(1, int(min_support * total + 0.5))
    tree = _build_tree(transactions, min_count)
    out: dict[frozenset[Item], int] = {}
    if not tree.is_empty:
        _mine(tree, frozenset(), min_count, out, max_len)
    return out


def total_weight(transactions: list[tuple[Transaction, int]]) -> int:
    """Sum of transaction weights (the dataset size for support ratios)."""
    return sum(weight for _, weight in transactions)
