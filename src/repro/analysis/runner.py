"""Lint runner: passes -> suppressions -> baseline -> report.

:func:`run_lint` is the one entry point the CLI, CI and the test suite
share. The filtering order matters and is part of the contract:

1. every pass runs over the whole project (contracts like layering and
   obs-names need the global view even when only a few paths are
   reported);
2. inline suppressions are applied; malformed ones (RS001) and unused
   ones (RS002) are *added* as findings, so an ignore comment can never
   rot silently;
3. the baseline absorbs known fingerprints; entries without a
   justification surface as RS003 and stale entries are reported so the
   file shrinks back toward empty.

Exit semantics (used by ``repro lint`` and CI): findings outside the
baseline -> 1, otherwise 0.

With ``cache_path`` set, results are reused through the incremental
cache (:mod:`repro.analysis.cache`): a fully warm run hashes file bytes
and never parses; a partially warm run reruns the module-scoped passes
on changed files only. The reported findings are identical either way —
the JSON report of a warm run is byte-for-byte the cold report, which
CI asserts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.baseline import Baseline, load_baseline
from repro.analysis.cache import (
    analyzer_fingerprint,
    file_sha,
    load_cache,
    module_record,
    project_fingerprint,
    restore_findings,
    restore_suppressions,
    save_cache,
)
from repro.analysis.changed import changed_paths
from repro.analysis.config import LintConfig
from repro.analysis.findings import RULES, Finding
from repro.analysis.passes import MODULE_PASSES, PROJECT_PASSES
from repro.analysis.project import (
    Module,
    Project,
    iter_source_files,
    runtime_imports,
)
from repro.analysis.suppressions import Suppression, scan_suppressions

__all__ = ["LintResult", "run_lint", "format_human", "format_json"]

#: Schema version of the ``--format json`` payload; bump on breaking
#: changes (tests/test_cli.py pins the shape).
JSON_SCHEMA_VERSION = 1


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)  # actionable
    suppressed: list[tuple[Finding, Suppression]] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale_baseline: list = field(default_factory=list)
    modules_scanned: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0


def _under(finding: Finding, paths: Sequence[str]) -> bool:
    if not paths:
        return True
    return any(
        finding.path == p or finding.path.startswith(p.rstrip("/") + "/")
        for p in paths
    )


def _module_results(
    module: Module, config: LintConfig
) -> tuple[list[Finding], list[Suppression], list[str]]:
    """Everything derivable from one module's content alone."""
    findings: list[Finding] = []
    for pass_cls in MODULE_PASSES:
        findings.extend(pass_cls().run_module(module, config))
    suppressions: list[Suppression] = []
    if module.name.split(".")[0] == config.package:
        suppressions, malformed = scan_suppressions(module.rel, module.source)
        findings.extend(malformed)
    imports = sorted({target for _, target in runtime_imports(module)})
    return findings, suppressions, imports


def _analyze(
    config: LintConfig, cache_path: Optional[Path]
) -> tuple[list[Finding], list[Suppression], int, dict]:
    """All raw findings + suppressions, through the cache when enabled.

    Returns ``(raw_findings, suppressions, modules_scanned,
    module_meta)`` where ``module_meta`` maps each rel path to
    ``(dotted_name, import_targets)`` for ``--changed`` scoping.
    """
    entries = iter_source_files(config.src_root, rel_to=config.rel_to)

    if cache_path is None:
        # No caching: parse and run everything, skip all hashing.
        project = Project.load(config.src_root, rel_to=config.rel_to)
        raw: list[Finding] = []
        suppressions: list[Suppression] = []
        meta: dict = {}
        for module in project.modules:
            findings, sups, imports = _module_results(module, config)
            raw.extend(findings)
            suppressions.extend(sups)
            meta[module.rel] = (module.name, imports)
        for pass_cls in PROJECT_PASSES:
            raw.extend(pass_cls().run(project, config))
        return raw, suppressions, len(project.modules), meta

    analyzer = analyzer_fingerprint(config)
    cache = load_cache(cache_path, analyzer)
    shas = {rel: file_sha(path) for path, _, rel in entries}
    fingerprint = project_fingerprint(analyzer, shas, config.metrics_doc)

    if (
        cache is not None
        and set(cache["modules"]) == set(shas)
        and all(cache["modules"][rel]["sha256"] == shas[rel] for rel in shas)
        and cache["project"]["fingerprint"] == fingerprint
    ):
        # Fully warm: reconstruct without parsing a single file.
        raw = []
        suppressions = []
        meta = {}
        for _, _, rel in entries:
            record = cache["modules"][rel]
            raw.extend(restore_findings(record["findings"]))
            suppressions.extend(restore_suppressions(rel, record["suppressions"]))
            meta[rel] = (record["name"], record["imports"])
        raw.extend(restore_findings(cache["project"]["findings"]))
        return raw, suppressions, len(entries), meta

    # Cold or partially warm: parse everything, rerun module passes on
    # changed files only, reuse the rest from the cache.
    project = Project.load(config.src_root, rel_to=config.rel_to)
    raw = []
    suppressions = []
    meta = {}
    records: dict[str, dict] = {}
    cached_modules = cache["modules"] if cache is not None else {}
    for module in project.modules:
        sha = shas[module.rel]
        record = cached_modules.get(module.rel)
        if record is not None and record["sha256"] == sha:
            findings = restore_findings(record["findings"])
            sups = restore_suppressions(module.rel, record["suppressions"])
            imports = list(record["imports"])
        else:
            findings, sups, imports = _module_results(module, config)
        raw.extend(findings)
        suppressions.extend(sups)
        meta[module.rel] = (module.name, imports)
        records[module.rel] = module_record(
            module.name, sha, findings, sups, imports
        )
    if cache is not None and cache["project"]["fingerprint"] == fingerprint:
        project_findings = restore_findings(cache["project"]["findings"])
    else:
        project_findings = []
        for pass_cls in PROJECT_PASSES:
            project_findings.extend(pass_cls().run(project, config))
    raw.extend(project_findings)
    save_cache(cache_path, analyzer, records, fingerprint, project_findings)
    return raw, suppressions, len(project.modules), meta


def run_lint(
    config: LintConfig,
    paths: Sequence[str] = (),
    rules: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
    cache_path: Optional[Path] = None,
    changed_only: bool = False,
) -> LintResult:
    """Run every pass and fold in suppressions and the baseline.

    ``paths`` restricts which findings are *reported* (posix paths
    relative to the lint root); the analysis itself always sees the
    whole project. ``rules`` restricts to a subset of rule ids.
    ``baseline=None`` loads ``config.baseline_path``; pass an empty
    :class:`Baseline` to lint without one. ``cache_path`` enables the
    incremental cache (None keeps the runner stateless).
    ``changed_only`` further scopes the report to modules reachable
    from the git diff; outside a git checkout it degrades to a full
    report.
    """
    raw, suppressions, modules_scanned, module_meta = _analyze(
        config, cache_path
    )
    result = LintResult(modules_scanned=modules_scanned)

    scope: Optional[frozenset] = None
    if changed_only:
        root = config.rel_to if config.rel_to else config.src_root.parent
        scoped = changed_paths(root, module_meta)
        if scoped is not None:
            scope = frozenset(scoped)

    kept: list[Finding] = []
    for finding in raw:
        match = next(
            (s for s in suppressions if s.matches(finding)), None
        )
        if match is not None:
            match.used = True
            result.suppressed.append((finding, match))
        else:
            kept.append(finding)

    for suppression in suppressions:
        if not suppression.used:
            kept.append(
                Finding(
                    rule="RS002",
                    path=suppression.path,
                    line=suppression.line,
                    col=1,
                    message=(
                        "unused suppression for "
                        f"{', '.join(suppression.rules)} — no matching "
                        "finding on the suppressed line; delete the comment"
                    ),
                    key=f"unused-suppression:{','.join(suppression.rules)}",
                )
            )

    if baseline is None:
        baseline = (
            load_baseline(config.baseline_path)
            if config.baseline_path is not None
            else Baseline()
        )
    for entry in baseline.unjustified():
        kept.append(
            Finding(
                rule="RS003",
                path=str(baseline.path) if baseline.path else "baseline",
                line=1,
                col=1,
                message=(
                    f"baseline entry {entry.fingerprint} ({entry.rule} in "
                    f"{entry.path}) has no justification — explain why it "
                    "is accepted or fix it"
                ),
                key=f"unjustified:{entry.fingerprint}",
            )
        )
    result.stale_baseline = baseline.stale(kept)

    if rules:
        wanted = set(rules)
        kept = [f for f in kept if f.rule in wanted]

    for finding in sorted(kept, key=lambda f: f.sort_key):
        if not _under(finding, paths):
            continue
        if scope is not None and finding.path not in scope:
            continue
        if finding in baseline:
            result.baselined.append(finding)
        else:
            result.findings.append(finding)
    return result


def format_human(result: LintResult) -> str:
    """The terminal report."""
    lines = [f.render() for f in result.findings]
    summary = (
        f"{len(result.findings)} finding(s), "
        f"{len(result.suppressed)} suppressed, "
        f"{len(result.baselined)} baselined, "
        f"{result.modules_scanned} module(s) scanned"
    )
    if result.stale_baseline:
        summary += (
            f"; {len(result.stale_baseline)} stale baseline entr"
            f"{'y' if len(result.stale_baseline) == 1 else 'ies'} "
            "(safe to delete)"
        )
    lines.append(summary)
    return "\n".join(lines)


def format_json(result: LintResult) -> str:
    """Stable machine-readable report (schema pinned by tests)."""
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "findings": [f.as_dict() for f in result.findings],
        "counts": {
            "findings": len(result.findings),
            "suppressed": len(result.suppressed),
            "baselined": len(result.baselined),
            "stale_baseline": len(result.stale_baseline),
        },
        "modules_scanned": result.modules_scanned,
        "rules": RULES,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
