"""CART decision tree with histogram split search.

Supports the hyperparameters of the paper's grid (Appendix C, Table 4):
``ccp_alpha`` (minimal cost-complexity pruning), ``min_impurity_decrease``,
``min_samples_leaf`` and ``min_samples_split``, plus ``max_depth``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.models.base import Classifier, check_fit_inputs
from repro.core.models.binning import DEFAULT_MAX_BINS, QuantileBinner


@dataclass
class _Node:
    n: int
    value: float  # P(y=1) in this node
    impurity: float  # gini
    feature: Optional[int] = None
    threshold: float = 0.0  # raw-value threshold; left: x <= threshold
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    def leaves(self) -> int:
        if self.is_leaf:
            return 1
        assert self.left is not None and self.right is not None
        return self.left.leaves() + self.right.leaves()


def _gini(pos: float, total: float) -> float:
    if total <= 0:
        return 0.0
    p = pos / total
    return 2.0 * p * (1.0 - p)


class DecisionTree(Classifier):
    """Binary CART classifier (gini impurity, histogram splits)."""

    name = "DT"

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_split: int = 2,
        min_samples_leaf: int = 5,
        min_impurity_decrease: float = 0.0,
        ccp_alpha: float = 0.0,
        max_bins: int = DEFAULT_MAX_BINS,
    ):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        if ccp_alpha < 0:
            raise ValueError("ccp_alpha must be non-negative")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.min_impurity_decrease = min_impurity_decrease
        self.ccp_alpha = ccp_alpha
        self.max_bins = max_bins
        self._binner = QuantileBinner(max_bins)
        self.root_: Optional[_Node] = None
        self._n_train = 0

    def get_params(self) -> dict[str, object]:
        return {
            "max_depth": self.max_depth,
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "min_impurity_decrease": self.min_impurity_decrease,
            "ccp_alpha": self.ccp_alpha,
        }

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTree":
        X, y = check_fit_inputs(X, y)
        binned = self._binner.fit_transform(X)
        self._n_train = X.shape[0]
        index = np.arange(X.shape[0])
        self.root_ = self._build(binned, y.astype(np.float64), index, depth=0)
        if self.ccp_alpha > 0:
            self._prune(self.root_)
        return self

    def _build(
        self, binned: np.ndarray, y: np.ndarray, index: np.ndarray, depth: int
    ) -> _Node:
        n = index.shape[0]
        pos = float(y[index].sum())
        node = _Node(n=n, value=pos / n, impurity=_gini(pos, n))
        if (
            depth >= self.max_depth
            or n < self.min_samples_split
            or pos == 0.0
            or pos == n
        ):
            return node

        best_gain = 0.0
        best: Optional[tuple[int, int]] = None  # (feature, bin)
        parent_impurity = node.impurity
        sub = binned[index]
        y_sub = y[index]
        for j in range(binned.shape[1]):
            bins = sub[:, j]
            n_bins = self._binner.n_bins(j)
            if n_bins < 2:
                continue
            total_hist = np.bincount(bins, minlength=n_bins).astype(np.float64)
            pos_hist = np.bincount(bins, weights=y_sub, minlength=n_bins)
            left_n = np.cumsum(total_hist)[:-1]
            left_pos = np.cumsum(pos_hist)[:-1]
            right_n = n - left_n
            right_pos = pos - left_pos
            valid = (left_n >= self.min_samples_leaf) & (right_n >= self.min_samples_leaf)
            if not valid.any():
                continue
            with np.errstate(divide="ignore", invalid="ignore"):
                p_l = np.where(left_n > 0, left_pos / left_n, 0.0)
                p_r = np.where(right_n > 0, right_pos / right_n, 0.0)
            gini_l = 2.0 * p_l * (1.0 - p_l)
            gini_r = 2.0 * p_r * (1.0 - p_r)
            weighted = (left_n * gini_l + right_n * gini_r) / n
            # Impurity decrease weighted by node share of the training
            # set (sklearn's min_impurity_decrease convention).
            gain = (n / self._n_train) * (parent_impurity - weighted)
            gain[~valid] = -np.inf
            k = int(np.argmax(gain))
            if gain[k] > best_gain and gain[k] >= self.min_impurity_decrease:
                best_gain = float(gain[k])
                best = (j, k)

        if best is None:
            return node
        feature, split_bin = best
        go_left = sub[:, feature] <= split_bin
        node.feature = feature
        node.threshold = self._binner.threshold(feature, split_bin)
        node.left = self._build(binned, y, index[go_left], depth + 1)
        node.right = self._build(binned, y, index[~go_left], depth + 1)
        return node

    # ------------------------------------------------------------------
    def _prune(self, root: _Node) -> None:
        """Minimal cost-complexity pruning at ``ccp_alpha``."""

        def node_cost(node: _Node) -> float:
            # Misclassification cost share of this node acting as a leaf.
            err = min(node.value, 1.0 - node.value)
            return err * node.n / self._n_train

        def subtree_cost_leaves(node: _Node) -> tuple[float, int]:
            if node.is_leaf:
                return node_cost(node), 1
            assert node.left is not None and node.right is not None
            cl, ll = subtree_cost_leaves(node.left)
            cr, lr = subtree_cost_leaves(node.right)
            return cl + cr, ll + lr

        while True:
            weakest: Optional[tuple[float, _Node]] = None

            def visit(node: _Node) -> None:
                nonlocal weakest
                if node.is_leaf:
                    return
                subtree_cost, leaves = subtree_cost_leaves(node)
                if leaves > 1:
                    g = (node_cost(node) - subtree_cost) / (leaves - 1)
                    if weakest is None or g < weakest[0]:
                        weakest = (g, node)
                assert node.left is not None and node.right is not None
                visit(node.left)
                visit(node.right)

            visit(root)
            if weakest is None or weakest[0] > self.ccp_alpha:
                break
            _, node = weakest
            node.left = None
            node.right = None
            node.feature = None

    # ------------------------------------------------------------------
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.root_ is None:
            raise RuntimeError("DecisionTree is not fitted")
        X = np.asarray(X, dtype=np.float64)
        out = np.empty(X.shape[0], dtype=np.float64)
        index = np.arange(X.shape[0])
        self._apply(self.root_, X, index, out)
        return out

    def _apply(self, node: _Node, X: np.ndarray, index: np.ndarray, out: np.ndarray) -> None:
        if index.shape[0] == 0:
            return
        if node.is_leaf:
            out[index] = node.value
            return
        assert node.left is not None and node.right is not None and node.feature is not None
        go_left = X[index, node.feature] <= node.threshold
        self._apply(node.left, X, index[go_left], out)
        self._apply(node.right, X, index[~go_left], out)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X) >= 0.5).astype(np.int64)

    @property
    def n_leaves(self) -> int:
        if self.root_ is None:
            raise RuntimeError("DecisionTree is not fitted")
        return self.root_.leaves()

    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        if self.root_ is None:
            raise RuntimeError("DecisionTree is not fitted")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            assert node.left is not None and node.right is not None
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root_)
