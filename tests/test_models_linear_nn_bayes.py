"""Tests for the LSVM, the MLP and the naive Bayes family."""

import numpy as np
import pytest

from repro.core.models.bayes import BernoulliNB, ComplementNB, GaussianNB, MultinomialNB
from repro.core.models.linear import LinearSVM
from repro.core.models.nn import NeuralNetwork


def linear_data(n=1500, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 5))
    y = (X[:, 0] - X[:, 2] > 0).astype(int)
    return X, y


class TestLinearSVM:
    def test_learns_separable(self):
        X, y = linear_data()
        model = LinearSVM().fit(X[:1000], y[:1000])
        acc = (model.predict(X[1000:]) == y[1000:]).mean()
        assert acc > 0.95

    def test_hinge_variant(self):
        X, y = linear_data()
        model = LinearSVM(loss="hinge").fit(X[:1000], y[:1000])
        acc = (model.predict(X[1000:]) == y[1000:]).mean()
        assert acc > 0.9

    def test_balanced_class_weight_raises_minority_recall(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(2000, 3))
        y = (X[:, 0] > 1.5).astype(int)  # ~7 % positives
        plain = LinearSVM(C=0.01).fit(X, y)
        balanced = LinearSVM(C=0.01, class_weight="balanced").fit(X, y)
        recall_plain = (plain.predict(X)[y == 1] == 1).mean()
        recall_balanced = (balanced.predict(X)[y == 1] == 1).mean()
        assert recall_balanced >= recall_plain

    def test_decision_function_sign_matches_predict(self):
        X, y = linear_data(n=300)
        model = LinearSVM().fit(X, y)
        np.testing.assert_array_equal(
            model.predict(X), (model.decision_function(X) >= 0).astype(int)
        )

    def test_proba_monotone_in_margin(self):
        X, y = linear_data(n=300)
        model = LinearSVM().fit(X, y)
        margin = model.decision_function(X)
        proba = model.predict_proba(X)
        order = np.argsort(margin)
        assert (np.diff(proba[order]) >= -1e-12).all()

    def test_params_validation(self):
        with pytest.raises(ValueError):
            LinearSVM(C=0)
        with pytest.raises(ValueError):
            LinearSVM(loss="l2")
        with pytest.raises(ValueError):
            LinearSVM(class_weight="auto")

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            LinearSVM().predict(np.zeros((1, 2)))


class TestNeuralNetwork:
    def test_learns_separable(self):
        X, y = linear_data()
        model = NeuralNetwork(n_hidden=16, epochs=30, seed=1).fit(X[:1000], y[:1000])
        acc = (model.predict(X[1000:]) == y[1000:]).mean()
        assert acc > 0.93

    def test_learns_nonlinear(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, size=(2000, 2))
        y = ((X[:, 0] ** 2 + X[:, 1] ** 2) < 0.4).astype(int)
        model = NeuralNetwork(n_hidden=32, epochs=80, seed=1).fit(X[:1500], y[:1500])
        acc = (model.predict(X[1500:]) == y[1500:]).mean()
        assert acc > 0.9

    def test_dropout_still_learns(self):
        X, y = linear_data()
        model = NeuralNetwork(n_hidden=32, dropout=0.3, epochs=40, seed=1).fit(
            X[:1000], y[:1000]
        )
        acc = (model.predict(X[1000:]) == y[1000:]).mean()
        assert acc > 0.9

    def test_deterministic_given_seed(self):
        X, y = linear_data(n=300)
        a = NeuralNetwork(epochs=5, seed=7).fit(X, y).predict_proba(X)
        b = NeuralNetwork(epochs=5, seed=7).fit(X, y).predict_proba(X)
        np.testing.assert_array_equal(a, b)

    def test_params_validation(self):
        with pytest.raises(ValueError):
            NeuralNetwork(n_hidden=0)
        with pytest.raises(ValueError):
            NeuralNetwork(dropout=1.0)
        with pytest.raises(ValueError):
            NeuralNetwork(learning_rate=0)

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            NeuralNetwork().predict(np.zeros((1, 2)))


class TestGaussianNB:
    def test_learns_shifted_gaussians(self):
        rng = np.random.default_rng(0)
        X0 = rng.normal(0.0, 1.0, size=(500, 3))
        X1 = rng.normal(2.0, 1.0, size=(500, 3))
        X = np.vstack([X0, X1])
        y = np.array([0] * 500 + [1] * 500)
        model = GaussianNB().fit(X, y)
        assert (model.predict(X) == y).mean() > 0.9

    def test_hand_computed_means(self):
        X = np.array([[0.0], [2.0], [10.0], [12.0]])
        y = np.array([0, 0, 1, 1])
        model = GaussianNB().fit(X, y)
        np.testing.assert_allclose(model.theta_[:, 0], [1.0, 11.0])

    def test_proba_sums_to_one_ish(self):
        X, y = linear_data(n=200)
        model = GaussianNB().fit(X, y)
        proba = model.predict_proba(X)
        assert ((proba >= 0) & (proba <= 1)).all()

    def test_var_smoothing_validation(self):
        with pytest.raises(ValueError):
            GaussianNB(var_smoothing=-1)


class TestDiscreteNB:
    def non_negative_data(self, n=600, seed=0):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 2, size=n)
        # Class-dependent feature *composition* (multinomial NB models
        # proportions, so per-feature rates must differ between classes).
        lam = np.where(y[:, None] == 1, [6.0, 1.0, 1.0, 2.0], [1.0, 6.0, 2.0, 1.0])
        X = rng.poisson(lam=lam).astype(float)
        return X, y

    @pytest.mark.parametrize("cls", [MultinomialNB, ComplementNB])
    def test_learns_count_data(self, cls):
        X, y = self.non_negative_data()
        model = cls().fit(X, y)
        assert (model.predict(X) == y).mean() > 0.85

    def test_bernoulli_binarizes(self):
        X, y = self.non_negative_data()
        model = BernoulliNB(binarize=2.0).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.8

    def test_bernoulli_default_binarize_is_zero(self):
        assert BernoulliNB().binarize == 0.0

    @pytest.mark.parametrize("cls", [MultinomialNB, ComplementNB])
    def test_rejects_negative_features(self, cls):
        with pytest.raises(ValueError, match="non-negative"):
            cls().fit(np.array([[-1.0], [1.0]]), np.array([0, 1]))

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            MultinomialNB(alpha=-1)

    def test_multinomial_hand_computed(self):
        """Check smoothed feature log-probabilities on a tiny example."""
        X = np.array([[2.0, 0.0], [0.0, 2.0]])
        y = np.array([0, 1])
        model = MultinomialNB(alpha=1.0).fit(X, y)
        # Class 0 counts: [2, 0] -> smoothed [3, 1] / 4.
        np.testing.assert_allclose(
            np.exp(model.feature_log_prob_[0]), [0.75, 0.25]
        )
