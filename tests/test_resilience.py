"""Failure-path tests for ``repro.core.resilience`` and backend hardening.

Every chaos scenario here is *deterministic*: faults come from a seeded
:class:`FaultPlan` evaluated per dispatch attempt, so a failing run
replays identically. The invariant under test throughout is the
repository's tentpole guarantee — worker crashes, hangs, corrupted
pipes, quarantines and degradation must never change a verdict.
"""

from __future__ import annotations

import multiprocessing
import numpy as np
import pytest

from tests import strategies
from repro import obs
from repro.core.labeling.balancer import balance
from repro.core.parallel import (
    BACKENDS,
    ProcessBackend,
    ShardFailure,
    ShardPlan,
    ShardedStreamingScrubber,
    make_backend,
)
from repro.core.resilience import (
    FAULTS_ENV,
    FaultPlan,
    FaultSpec,
    SupervisedProcessBackend,
)
from repro.core.scrubber import IXPScrubber, ScrubberConfig
from repro.core.streaming import StreamingScrubber
from repro.netflow.dataset import BIN_SECONDS
from repro.obs import names

ENGINE_KWARGS = dict(
    window_days=2,
    bins_per_day=48,
    min_flows_per_verdict=3,
    label_grace_bins=10**6,
    seed=1,
)

#: Generous deadline for tests where nothing is meant to time out.
SAFE_TIMEOUT = 30.0


@pytest.fixture(scope="module")
def fitted_scrubber() -> IXPScrubber:
    rng = strategies.rng_for(999)
    labeled = strategies.labeled_flows(rng, n_flows=6000, n_targets=12, n_bins=20)
    balanced = balance(labeled, np.random.default_rng(7)).flows
    config = ScrubberConfig(model="XGB", model_params={"n_estimators": 10})
    return IXPScrubber(config).fit(balanced)


@pytest.fixture(scope="module")
def second_scrubber(fitted_scrubber) -> IXPScrubber:
    """A distinct model: deploying it mid-stream starts a new epoch."""
    rng = strategies.rng_for(998)
    labeled = strategies.labeled_flows(rng, n_flows=6000, n_targets=12, n_bins=20)
    balanced = balance(labeled, np.random.default_rng(8)).flows
    config = ScrubberConfig(model="XGB", model_params={"n_estimators": 12})
    return IXPScrubber(config).fit(balanced)


@pytest.fixture()
def workload():
    return strategies.labeled_flows(
        strategies.rng_for(7), n_flows=400, n_targets=10, n_bins=4
    )


@pytest.fixture()
def expected(fitted_scrubber, workload):
    """The serial-backend verdicts every chaos run must reproduce."""
    shard_flows = ShardPlan(2).split(workload)
    backend = make_backend("serial", 2)
    backend.broadcast(fitted_scrubber)
    verdicts = backend.classify(shard_flows, min_flows=3)
    assert any(v for v in verdicts)
    return verdicts


def _supervised(plan=None, **kwargs):
    kwargs.setdefault("shard_timeout", SAFE_TIMEOUT)
    kwargs.setdefault("retry_backoff", 0.0)
    return SupervisedProcessBackend(
        2, fault_plan=plan if plan is not None else FaultPlan(), **kwargs
    )


def _counter(registry, name):
    metric = registry.get(name)
    return 0 if metric is None else metric.value


class TestFaultPlanParsing:
    def test_empty_inputs_yield_falsy_plan(self):
        assert not FaultPlan.parse(None)
        assert not FaultPlan.parse("")
        assert not FaultPlan.parse("  ;  ")
        assert not FaultPlan()

    def test_single_spec_fields(self):
        plan = FaultPlan.parse("crash@0:batch=3:count=2")
        assert plan and len(plan) == 1
        assert plan.specs[0] == FaultSpec(kind="crash", shard=0, batch=3, count=2)

    def test_multi_spec_with_wildcards_and_params(self):
        plan = FaultPlan.parse(
            "hang@1:batch=5:secs=30; slow@*:secs=0.05; corrupt@2:batch=*"
        )
        hang, slow, corrupt = plan.specs
        assert hang == FaultSpec(kind="hang", shard=1, batch=5, seconds=30.0)
        assert slow.shard is None and slow.batch is None and slow.seconds == 0.05
        assert corrupt.kind == "corrupt" and corrupt.batch is None

    @pytest.mark.parametrize(
        "bad",
        [
            "explode@0",            # unknown kind
            "crash0:batch=1",       # missing @
            "crash@x",              # non-int shard
            "crash@0:batch=",       # empty value
            "crash@0:nope=1",       # unknown key
            "crash@0:count=0",      # count < 1
            "crash@0:scope=weekly", # unknown scope
            "hang@0:secs=soon",     # non-float secs
        ],
    )
    def test_malformed_specs_raise_value_error(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "crash@1:batch=2")
        assert FaultPlan.from_env() == FaultPlan.parse("crash@1:batch=2")
        monkeypatch.delenv(FAULTS_ENV)
        assert not FaultPlan.from_env()

    def test_directive_matching(self):
        plan = FaultPlan.parse("crash@0:batch=3:count=2")
        assert plan.directive(0, 3, 0, 0) == ("crash", 0.0)
        assert plan.directive(0, 3, 0, 1) == ("crash", 0.0)  # retry dies too
        assert plan.directive(0, 3, 0, 2) is None  # third attempt passes
        assert plan.directive(1, 3, 0, 0) is None  # other shard untouched
        assert plan.directive(0, 2, 0, 0) is None  # other batch untouched

    def test_epoch_scope_uses_epoch_counter(self):
        plan = FaultPlan.parse("crash@0:batch=0:scope=epoch")
        # Lifetime batch 7, but first of its epoch: fires.
        assert plan.directive(0, 7, 0, 0) is not None
        # First lifetime batch but not first of the epoch: does not.
        assert plan.directive(0, 0, 3, 0) is None

    def test_hang_and_slow_default_seconds(self):
        hang = FaultPlan.parse("hang@0").directive(0, 0, 0, 0)
        slow = FaultPlan.parse("slow@0").directive(0, 0, 0, 0)
        assert hang[1] >= 3600
        assert 0 < slow[1] < 1


class TestProcessBackendHardening:
    """The satellite fixes on the unsupervised process backend."""

    def test_broadcast_to_dead_worker_raises_shard_failure(self, fitted_scrubber):
        backend = ProcessBackend(2)
        try:
            backend._procs[1].terminate()
            backend._procs[1].join(timeout=5)
            with pytest.raises(ShardFailure) as exc:
                backend.broadcast(fitted_scrubber)
            assert exc.value.shard == 1
        finally:
            backend.close()

    def test_classify_on_dead_worker_raises_shard_failure(
        self, fitted_scrubber, workload
    ):
        backend = ProcessBackend(2)
        try:
            backend.broadcast(fitted_scrubber)
            backend._procs[0].terminate()
            backend._procs[0].join(timeout=5)
            with pytest.raises(ShardFailure):
                backend.classify(ShardPlan(2).split(workload), min_flows=3)
        finally:
            backend.close()

    def test_make_backend_forwards_start_method(self):
        backend = make_backend("process", 1, start_method="spawn")
        try:
            spawn_cls = multiprocessing.get_context("spawn").Process
            assert isinstance(backend._procs[0], spawn_cls)
        finally:
            backend.close()

    def test_make_backend_knows_supervised(self):
        assert set(BACKENDS) == {"serial", "process", "supervised"}
        backend = make_backend(
            "supervised", 1, shard_timeout=5.0, fault_plan=FaultPlan()
        )
        try:
            assert isinstance(backend, SupervisedProcessBackend)
            assert backend.shard_timeout == 5.0
        finally:
            backend.close()

    def test_close_idempotent_after_partial_init(self, monkeypatch):
        started = []
        original = ProcessBackend._start_worker

        def flaky_start(self, shard):
            if shard == 1:
                raise RuntimeError("injected constructor failure")
            original(self, shard)
            started.append(self._procs[shard])

        monkeypatch.setattr(ProcessBackend, "_start_worker", flaky_start)
        with pytest.raises(RuntimeError, match="injected"):
            ProcessBackend(2)
        # The worker that did start was stopped and reaped, not leaked.
        assert len(started) == 1
        assert not started[0].is_alive()

    def test_supervised_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            _supervised(shard_timeout=0)
        with pytest.raises(ValueError):
            _supervised(max_restarts=-1)
        with pytest.raises(ValueError):
            _supervised(batch_attempts=0)
        with pytest.raises(ValueError):
            _supervised(restart_window=0)


class TestSupervisedBackend:
    def _run(self, plan, fitted_scrubber, workload, n_calls=1, **kwargs):
        """Drive the supervised backend; return (verdict lists, registry)."""
        registry = obs.MetricRegistry()
        shard_flows = ShardPlan(2).split(workload)
        with obs.use_registry(registry):
            backend = _supervised(plan, **kwargs)
            try:
                backend.broadcast(fitted_scrubber)
                results = [
                    backend.classify(shard_flows, min_flows=3)
                    for _ in range(n_calls)
                ]
            finally:
                backend.close()
        return results, registry, backend

    def test_no_faults_matches_serial(self, fitted_scrubber, workload, expected):
        results, registry, _ = self._run(FaultPlan(), fitted_scrubber, workload)
        assert results[0] == expected
        assert _counter(registry, names.C_RESILIENCE_WORKER_RESTARTS) == 0

    def test_classify_before_broadcast_raises(self, workload):
        backend = _supervised()
        try:
            with pytest.raises(RuntimeError):
                backend.classify(ShardPlan(2).split(workload), min_flows=3)
        finally:
            backend.close()

    def test_crash_restarts_and_retries(self, fitted_scrubber, workload, expected):
        plan = FaultPlan.parse("crash@0:batch=0")
        results, registry, _ = self._run(plan, fitted_scrubber, workload)
        assert results[0] == expected
        assert _counter(registry, names.C_RESILIENCE_WORKER_RESTARTS) == 1
        assert _counter(registry, names.C_RESILIENCE_BATCH_RETRIES) == 1
        assert _counter(registry, names.C_RESILIENCE_FAULTS_INJECTED) == 1
        assert _counter(registry, names.C_RESILIENCE_BATCHES_QUARANTINED) == 0

    def test_poison_batch_is_quarantined(self, fitted_scrubber, workload, expected):
        # count=2: the retry dies too -> the batch is classified by the
        # coordinator, and the stream is not wedged.
        plan = FaultPlan.parse("crash@0:batch=0:count=2")
        results, registry, _ = self._run(plan, fitted_scrubber, workload, n_calls=2)
        assert results == [expected, expected]
        assert _counter(registry, names.C_RESILIENCE_BATCHES_QUARANTINED) == 1
        assert _counter(registry, names.C_RESILIENCE_WORKER_RESTARTS) == 2

    def test_hang_is_bounded_by_deadline(self, fitted_scrubber, workload, expected):
        plan = FaultPlan.parse("hang@1:batch=0")
        results, registry, _ = self._run(
            plan, fitted_scrubber, workload, shard_timeout=0.5
        )
        assert results[0] == expected
        assert _counter(registry, names.C_RESILIENCE_DEADLINE_MISSES) == 1
        assert _counter(registry, names.C_RESILIENCE_WORKER_RESTARTS) == 1

    def test_slow_shard_still_answers_correctly(
        self, fitted_scrubber, workload, expected
    ):
        plan = FaultPlan.parse("slow@*:secs=0.05")
        results, registry, _ = self._run(plan, fitted_scrubber, workload)
        assert results[0] == expected
        assert _counter(registry, names.C_RESILIENCE_WORKER_RESTARTS) == 0

    def test_pipe_corruption_recovers(self, fitted_scrubber, workload, expected):
        plan = FaultPlan.parse("corrupt@0:batch=0")
        results, registry, _ = self._run(plan, fitted_scrubber, workload)
        assert results[0] == expected
        assert _counter(registry, names.C_RESILIENCE_WORKER_RESTARTS) == 1

    def test_permanent_failure_degrades_to_serial(
        self, fitted_scrubber, workload, expected
    ):
        # Every attempt on shard 0 crashes; budget of 1 restart -> the
        # shard degrades and all later batches run in the coordinator.
        plan = FaultPlan.parse("crash@0:count=99")
        results, registry, backend = self._run(
            plan, fitted_scrubber, workload, n_calls=3, max_restarts=1
        )
        assert results == [expected, expected, expected]
        assert backend.degraded_shards == (0,)
        gauge = registry.get(names.G_RESILIENCE_DEGRADED_SHARDS)
        assert gauge is not None and gauge.value == 1
        # Only the in-budget restart counts; the attempt that blew the
        # budget degraded the shard instead, and later calls never
        # touched the respawn path again.
        assert _counter(registry, names.C_RESILIENCE_WORKER_RESTARTS) == 1

    def test_degraded_snapshots_carry_fallback_work(
        self, fitted_scrubber, workload
    ):
        plan = FaultPlan.parse("crash@0:count=99")
        registry = obs.MetricRegistry()
        shard_flows = ShardPlan(2).split(workload)
        with obs.use_registry(registry):
            backend = _supervised(plan, max_restarts=0)
            try:
                backend.broadcast(fitted_scrubber)
                backend.classify(shard_flows, min_flows=3)
                snaps = backend.snapshots()
            finally:
                backend.close()
        assert len(snaps) == 2
        degraded_counters = {
            c["name"]: c["value"] for c in snaps[0]["counters"]
        }
        # The quarantine/degraded path mirrors worker accounting.
        assert degraded_counters.get(names.C_PARALLEL_SHARD_FLOWS, 0) > 0

    def test_model_rebroadcast_after_restart(self, fitted_scrubber, workload):
        # Crash between batches (batch 0 of shard 0), then verify batch 1
        # still classifies: the fresh worker must have received the model
        # again or it would die with AttributeError on a None scrubber.
        plan = FaultPlan.parse("crash@0:batch=0")
        results, registry, _ = self._run(
            plan, fitted_scrubber, workload, n_calls=2
        )
        assert results[0] == results[1]
        assert _counter(registry, names.C_RESILIENCE_WORKER_RESTARTS) == 1


class TestSupervisedEngine:
    """Full-engine chaos: the acceptance-criterion scenarios."""

    def _drive(self, engine, workload, redeploy=None):
        """Feed the workload bin by bin; optionally swap models mid-stream.

        ``redeploy`` maps a bin index to the scrubber to ``warm_start``
        just before that bin is ingested — each swap triggers a fresh
        broadcast on the next classify, i.e. a new fault-plan epoch,
        exactly like a daily retrain does.
        """
        bins = workload.time // BIN_SECONDS
        verdicts = []
        for b in range(int(bins.min()), int(bins.max()) + 1):
            if redeploy and b in redeploy:
                engine.warm_start(redeploy[b])
            verdicts.extend(engine.ingest(workload.select(bins == b)))
        verdicts.extend(engine.flush())
        return verdicts

    def test_kill_one_worker_per_epoch_is_bit_identical(
        self, fitted_scrubber, second_scrubber
    ):
        """A seeded plan killing one worker per model epoch drifts nothing.

        The mid-stream redeploy reproduces the retrain-epoch mechanics
        (new model -> broadcast -> epoch counter reset) without the
        nondeterminism of generating a multi-day training capture; the
        CI chaos job covers the real daily-retrain path end to end.
        """
        workload = strategies.labeled_flows(
            strategies.rng_for(21), n_flows=900, n_targets=12, n_bins=6
        )
        redeploy = {3: second_scrubber}
        serial = StreamingScrubber(**ENGINE_KWARGS).warm_start(fitted_scrubber)
        expected = self._drive(serial, workload, redeploy)
        assert expected

        plan = FaultPlan.parse("crash@0:batch=0:scope=epoch")
        with ShardedStreamingScrubber(
            n_shards=2,
            backend="supervised",
            backend_options=dict(
                shard_timeout=SAFE_TIMEOUT, retry_backoff=0.0, fault_plan=plan
            ),
            **ENGINE_KWARGS,
        ) as engine:
            engine.warm_start(fitted_scrubber)
            actual = self._drive(engine, workload, redeploy)
            snap = engine.merged_snapshot()
        assert actual == expected
        counters = {c["name"]: c["value"] for c in snap["counters"]}
        # One crash per epoch: the initial model and the redeployment.
        assert counters.get("parallel.model_broadcasts") == 2
        assert counters.get(names.C_RESILIENCE_WORKER_RESTARTS, 0) == 2
        assert counters.get(names.C_RESILIENCE_BATCH_RETRIES, 0) == 2

    def test_degrading_engine_still_matches_serial(self, fitted_scrubber):
        """A permanently dead shard degrades instead of hanging the run."""
        workload = strategies.labeled_flows(
            strategies.rng_for(33), n_flows=600, n_targets=10, n_bins=5
        )
        serial = StreamingScrubber(**ENGINE_KWARGS).warm_start(fitted_scrubber)
        expected = self._drive(serial, workload)

        plan = FaultPlan.parse("crash@1:count=9999")
        with ShardedStreamingScrubber(
            n_shards=2,
            backend="supervised",
            backend_options=dict(
                shard_timeout=SAFE_TIMEOUT,
                retry_backoff=0.0,
                max_restarts=1,
                fault_plan=plan,
            ),
            **ENGINE_KWARGS,
        ) as engine:
            engine.warm_start(fitted_scrubber)
            actual = self._drive(engine, workload)
            snap = engine.merged_snapshot()
        assert actual == expected
        gauges = {g["name"]: g["value"] for g in snap["gauges"]}
        assert gauges.get(names.G_RESILIENCE_DEGRADED_SHARDS) == 1

    def test_equivalence_shadow_passes_under_faults(self, fitted_scrubber):
        """`--check` semantics: the shadow serial engine sees no drift."""
        workload = strategies.labeled_flows(
            strategies.rng_for(44), n_flows=400, n_targets=8, n_bins=4
        )
        plan = FaultPlan.parse("crash@0:batch=1;slow@1:secs=0.02")
        with ShardedStreamingScrubber(
            n_shards=2,
            backend="supervised",
            equivalence_check=True,
            backend_options=dict(
                shard_timeout=SAFE_TIMEOUT, retry_backoff=0.0, fault_plan=plan
            ),
            **ENGINE_KWARGS,
        ) as engine:
            engine.warm_start(fitted_scrubber)
            verdicts = self._drive(engine, workload)
        assert verdicts


class TestShmResilience:
    """Chaos over the shared-memory transport (satellite of docs/IPC.md).

    The invariant is unchanged from the pipe-mode suites above: crashes,
    reclaims, quarantines and oversized-batch fallbacks must never
    change a verdict — and restart must re-attach the *live* ring and
    model segment, not re-pickle anything.
    """

    def _run_shm(self, plan, fitted_scrubber, workload, n_calls=1, **kwargs):
        registry = obs.MetricRegistry()
        shard_flows = ShardPlan(2).split(workload)
        with obs.use_registry(registry):
            backend = _supervised(plan, ipc="shm", **kwargs)
            try:
                backend.broadcast(fitted_scrubber)
                results = [
                    backend.classify(shard_flows, min_flows=3)
                    for _ in range(n_calls)
                ]
            finally:
                backend.close()
        return results, registry, backend

    def test_crash_mid_frame_reclaims_and_retries(
        self, fitted_scrubber, workload, expected
    ):
        # The fault fires before the worker reads the ring, so the
        # frame is orphaned un-acked: the restart path must reclaim it
        # or every later dispatch would fall back to the pipe.
        plan = FaultPlan.parse("crash@0:batch=0")
        results, registry, _ = self._run_shm(
            plan, fitted_scrubber, workload, n_calls=2
        )
        assert results == [expected, expected]
        assert _counter(registry, names.C_RESILIENCE_WORKER_RESTARTS) == 1
        assert _counter(registry, names.C_RESILIENCE_BATCH_RETRIES) == 1
        # The retry and the second call both rode the ring: reclaim
        # really did free the orphaned frame.
        assert _counter(registry, names.C_PARALLEL_IPC_FALLBACKS) == 0

    def test_respawned_worker_maps_live_model_segment(
        self, fitted_scrubber, second_scrubber, workload, expected
    ):
        # Republish after the initial broadcast, then crash a worker:
        # the respawn must map the *current* segment version (the old
        # one is unlinked, so a stale re-attach would fail loudly).
        registry = obs.MetricRegistry()
        shard_flows = ShardPlan(2).split(workload)
        plan = FaultPlan.parse("crash@0:batch=0:scope=epoch")
        with obs.use_registry(registry):
            backend = _supervised(plan, ipc="shm")
            try:
                backend.broadcast(fitted_scrubber)
                backend.classify(shard_flows, min_flows=3)
                backend.broadcast(second_scrubber)  # epoch 2, version 2
                second = backend.classify(shard_flows, min_flows=3)
                third = backend.classify(shard_flows, min_flows=3)
            finally:
                backend.close()
        assert second == third
        assert _counter(registry, names.C_RESILIENCE_WORKER_RESTARTS) == 2

    def test_poison_batch_quarantined_under_shm(
        self, fitted_scrubber, workload, expected
    ):
        plan = FaultPlan.parse("crash@0:batch=0:count=2")
        results, registry, _ = self._run_shm(
            plan, fitted_scrubber, workload, n_calls=2
        )
        assert results == [expected, expected]
        assert _counter(registry, names.C_RESILIENCE_BATCHES_QUARANTINED) == 1

    def test_oversized_batches_fall_back_under_supervision(
        self, fitted_scrubber, workload, expected
    ):
        results, registry, _ = self._run_shm(
            FaultPlan(), fitted_scrubber, workload, ring_bytes=1024
        )
        assert results[0] == expected
        assert _counter(registry, names.C_PARALLEL_IPC_FALLBACKS) == 2
        assert _counter(registry, names.C_PARALLEL_IPC_RING_BYTES) == 0

    def test_kill_per_epoch_with_shm_engine_is_bit_identical(
        self, fitted_scrubber, second_scrubber
    ):
        """The acceptance scenario of docs/IPC.md: chaos + shm + redeploy."""
        workload = strategies.labeled_flows(
            strategies.rng_for(21), n_flows=900, n_targets=12, n_bins=6
        )
        redeploy = {3: second_scrubber}
        serial = StreamingScrubber(**ENGINE_KWARGS).warm_start(fitted_scrubber)
        bins = workload.time // BIN_SECONDS
        expected = []
        for b in range(int(bins.min()), int(bins.max()) + 1):
            if b in redeploy:
                serial.warm_start(redeploy[b])
            expected.extend(serial.ingest(workload.select(bins == b)))
        expected.extend(serial.flush())
        assert expected

        plan = FaultPlan.parse("crash@0:batch=0:scope=epoch")
        with ShardedStreamingScrubber(
            n_shards=2,
            backend="supervised",
            backend_options=dict(
                shard_timeout=SAFE_TIMEOUT,
                retry_backoff=0.0,
                fault_plan=plan,
                ipc="shm",
            ),
            **ENGINE_KWARGS,
        ) as engine:
            engine.warm_start(fitted_scrubber)
            assert engine.ipc_mode == "shm"
            actual = []
            for b in range(int(bins.min()), int(bins.max()) + 1):
                if b in redeploy:
                    engine.warm_start(redeploy[b])
                actual.extend(engine.ingest(workload.select(bins == b)))
            actual.extend(engine.flush())
            snap = engine.merged_snapshot()
        assert actual == expected
        counters = {c["name"]: c["value"] for c in snap["counters"]}
        assert counters.get(names.C_RESILIENCE_WORKER_RESTARTS, 0) == 2
        assert counters.get(names.C_PARALLEL_IPC_RING_BYTES, 0) > 0
        assert counters.get(names.C_PARALLEL_IPC_FALLBACKS, 0) == 0
        # Every live worker is on a mapped model segment.
        assert counters.get(names.C_PARALLEL_IPC_SEGMENT_REMAPS, 0) >= 1
