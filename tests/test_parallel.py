"""Unit tests for ``repro.core.parallel``: plan, backends, coordinator."""

from __future__ import annotations

import numpy as np
import pytest

from tests import strategies
from repro import obs
from repro.bgp.prefix import Prefix
from repro.core.labeling.balancer import balance
from repro.core.parallel import (
    BACKENDS,
    EquivalenceError,
    ProcessBackend,
    SerialBackend,
    ShardPlan,
    ShardedStreamingScrubber,
    make_backend,
)
from repro.core.parallel.engine import EQUIVALENCE_ENV
from repro.core.scrubber import IXPScrubber, ScrubberConfig
from repro.obs import names

ENGINE_KWARGS = dict(
    window_days=2,
    bins_per_day=48,
    min_flows_per_verdict=3,
    label_grace_bins=10**6,
    seed=1,
)


@pytest.fixture(scope="module")
def fitted_scrubber() -> IXPScrubber:
    rng = strategies.rng_for(999)
    labeled = strategies.labeled_flows(rng, n_flows=6000, n_targets=12, n_bins=20)
    balanced = balance(labeled, np.random.default_rng(7)).flows
    config = ScrubberConfig(model="XGB", model_params={"n_estimators": 10})
    return IXPScrubber(config).fit(balanced)


@pytest.fixture()
def workload():
    return strategies.labeled_flows(
        strategies.rng_for(7), n_flows=400, n_targets=10, n_bins=4
    )


class TestShardPlan:
    def test_assign_is_deterministic_and_in_range(self):
        addresses = strategies.rng_for(3).integers(
            0, 2**32, size=2000, dtype=np.uint32
        )
        a = ShardPlan(4).assign(addresses)
        b = ShardPlan(4).assign(addresses)
        assert np.array_equal(a, b)
        assert a.min() >= 0 and a.max() < 4
        # The hash actually spreads load: every shard gets something.
        assert len(np.unique(a)) == 4

    def test_same_slash24_same_shard(self):
        plan = ShardPlan(8)
        base = 0xC6336400  # 198.51.100.0/24
        hosts = np.arange(base, base + 256, dtype=np.uint32)
        assert len(np.unique(plan.assign(hosts))) == 1
        # At /32 granularity the same hosts spread across shards.
        assert len(np.unique(ShardPlan(8, prefix_bits=32).assign(hosts))) > 1

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            ShardPlan(0)
        with pytest.raises(ValueError):
            ShardPlan(2, prefix_bits=33)
        with pytest.raises(ValueError):
            ShardPlan(2, pinned={Prefix.parse("10.0.0.0/8"): 2})

    def test_pins_apply_longest_prefix_first(self):
        plan = ShardPlan(
            4,
            pinned={
                Prefix.parse("10.0.0.0/8"): 0,
                Prefix.parse("10.1.2.0/24"): 3,
            },
        )
        addresses = np.array(
            [0x0A000001, 0x0A010201, 0x0A010301], dtype=np.uint32
        )
        assert plan.assign(addresses).tolist() == [0, 3, 0]
        # Scalar lookups agree with the vectorised path, pins included.
        for address in addresses.tolist():
            assert plan.shard_of(address) == plan.assign(
                np.array([address], dtype=np.uint32)
            )[0]

    def test_split_partitions_completely(self, workload):
        plan = ShardPlan(4)
        parts = plan.split(workload)
        assert sum(len(p) for p in parts) == len(workload)
        for shard, part in enumerate(parts):
            if len(part):
                assert (plan.assign(part.dst_ip) == shard).all()


class TestBackends:
    def test_make_backend_names_and_unknown(self):
        assert set(BACKENDS) == {"serial", "process", "supervised"}
        assert isinstance(make_backend("serial", 2), SerialBackend)
        with pytest.raises(ValueError, match="thread"):
            make_backend("thread", 2)

    def test_classify_before_broadcast_raises(self, workload):
        backend = make_backend("serial", 2)
        with pytest.raises(RuntimeError):
            backend.classify(ShardPlan(2).split(workload), min_flows=1)

    def test_process_matches_serial_backend(self, fitted_scrubber, workload):
        shard_flows = ShardPlan(2).split(workload)
        serial = make_backend("serial", 2)
        serial.broadcast(fitted_scrubber)
        expected = serial.classify(shard_flows, min_flows=3)
        process = ProcessBackend(2)
        try:
            process.broadcast(fitted_scrubber)
            actual = process.classify(shard_flows, min_flows=3)
        finally:
            process.close()
        assert actual == expected
        assert any(len(v) for v in expected)

    def test_process_close_is_idempotent(self):
        backend = ProcessBackend(2)
        backend.close()
        backend.close()


class TestShmBackend:
    """The shm transport: identical verdicts, fallbacks, broadcast skip."""

    def test_shm_matches_serial_backend(self, fitted_scrubber, workload):
        shard_flows = ShardPlan(2).split(workload)
        serial = make_backend("serial", 2)
        serial.broadcast(fitted_scrubber)
        expected = serial.classify(shard_flows, min_flows=3)
        registry = obs.MetricRegistry()
        with obs.use_registry(registry):
            backend = make_backend("process", 2, ipc="shm")
            try:
                backend.broadcast(fitted_scrubber)
                actual = backend.classify(shard_flows, min_flows=3)
            finally:
                backend.close()
        assert actual == expected
        assert any(len(v) for v in expected)
        # Both batches travelled the ring, not the pipe.
        ring_bytes = registry.get(names.C_PARALLEL_IPC_RING_BYTES)
        assert ring_bytes is not None and ring_bytes.value > 0
        assert registry.get(names.C_PARALLEL_IPC_FALLBACKS) is None

    def test_tiny_ring_falls_back_to_pipe(self, fitted_scrubber, workload):
        shard_flows = ShardPlan(2).split(workload)
        serial = make_backend("serial", 2)
        serial.broadcast(fitted_scrubber)
        expected = serial.classify(shard_flows, min_flows=3)
        registry = obs.MetricRegistry()
        with obs.use_registry(registry):
            # 1 KiB rings: every batch is oversized -> pickled pipe.
            backend = ProcessBackend(2, ipc="shm", ring_bytes=1024)
            try:
                backend.broadcast(fitted_scrubber)
                actual = backend.classify(shard_flows, min_flows=3)
            finally:
                backend.close()
        assert actual == expected
        fallbacks = registry.get(names.C_PARALLEL_IPC_FALLBACKS)
        assert fallbacks is not None and fallbacks.value == 2

    def test_unchanged_model_broadcast_is_skipped(self, fitted_scrubber):
        for ipc in ("pipe", "shm"):
            registry = obs.MetricRegistry()
            with obs.use_registry(registry):
                backend = ProcessBackend(2, ipc=ipc)
                try:
                    backend.broadcast(fitted_scrubber)
                    first = registry.get(names.C_PARALLEL_BROADCAST_BYTES).value
                    backend.broadcast(fitted_scrubber)  # same object: skip
                finally:
                    backend.close()
            assert registry.get(names.C_PARALLEL_BROADCAST_BYTES).value == first
            assert registry.get(names.C_PARALLEL_BROADCAST_SKIPPED).value == 1

    def test_serial_backend_also_skips_unchanged_model(self, fitted_scrubber):
        registry = obs.MetricRegistry()
        with obs.use_registry(registry):
            backend = make_backend("serial", 2)
            backend.broadcast(fitted_scrubber)
            backend.broadcast(fitted_scrubber)
        assert registry.get(names.C_PARALLEL_BROADCAST_SKIPPED).value == 1

    def test_workers_remap_each_published_model(
        self, fitted_scrubber, workload
    ):
        shard_flows = ShardPlan(2).split(workload)
        backend = ProcessBackend(2, ipc="shm")
        try:
            backend.broadcast(fitted_scrubber)
            backend.classify(shard_flows, min_flows=3)
            snaps = backend.snapshots()
        finally:
            backend.close()
        remaps = [
            {c["name"]: c["value"] for c in snap["counters"]}.get(
                names.C_PARALLEL_IPC_SEGMENT_REMAPS, 0
            )
            for snap in snaps
        ]
        assert remaps == [1, 1]

    def test_close_unlinks_all_segments(self, fitted_scrubber):
        import os

        backend = ProcessBackend(2, ipc="shm")
        backend.broadcast(fitted_scrubber)
        segments = [ring.name for ring in backend._rings]
        segments.append(backend._plane_box[0].ref().name)
        backend.close()
        for name in segments:
            assert not os.path.exists(f"/dev/shm/{name}")

    def test_invalid_ipc_mode_raises(self):
        with pytest.raises(ValueError, match="ipc mode"):
            ProcessBackend(2, ipc="carrier-pigeon")
        with pytest.raises(ValueError, match="ipc mode"):
            make_backend("process", 2, ipc="tcp")


class TestShardedEngine:
    def test_context_manager_and_double_close(self, fitted_scrubber, workload):
        with ShardedStreamingScrubber(
            n_shards=2, **ENGINE_KWARGS
        ) as engine:
            engine.warm_start(fitted_scrubber)
            assert engine.is_ready and engine.model is fitted_scrubber
            assert engine.n_shards == 2 and engine.backend_name == "serial"
            verdicts = engine.ingest(workload) + engine.flush()
            assert verdicts
        engine.close()  # second close is a no-op

    def test_equivalence_check_counts_and_passes(self, fitted_scrubber, workload):
        engine = ShardedStreamingScrubber(
            n_shards=2, equivalence_check=True, **ENGINE_KWARGS
        ).warm_start(fitted_scrubber)
        engine.ingest(workload)
        engine.flush()
        checks = engine.registry.get("parallel.equivalence_checks")
        assert checks is not None and checks.value == 2

    def test_equivalence_error_on_divergence(self, fitted_scrubber, workload):
        engine = ShardedStreamingScrubber(
            n_shards=2, equivalence_check=True, **ENGINE_KWARGS
        ).warm_start(fitted_scrubber)
        # Sabotage the shadow: no model -> it emits no verdicts while
        # the sharded engine does, so the first ingest must trip.
        engine._shadow._scrubber = None
        with pytest.raises(EquivalenceError):
            engine.ingest(workload)

    def test_equivalence_env_var_default(self, monkeypatch):
        monkeypatch.setenv(EQUIVALENCE_ENV, "1")
        assert ShardedStreamingScrubber(**ENGINE_KWARGS)._shadow is not None
        monkeypatch.setenv(EQUIVALENCE_ENV, "0")
        assert ShardedStreamingScrubber(**ENGINE_KWARGS)._shadow is None
        monkeypatch.delenv(EQUIVALENCE_ENV)
        assert ShardedStreamingScrubber(**ENGINE_KWARGS)._shadow is None

    def test_merged_snapshot_counts_stream_totals_once(
        self, fitted_scrubber, workload
    ):
        engine = ShardedStreamingScrubber(
            n_shards=4, **ENGINE_KWARGS
        ).warm_start(fitted_scrubber)
        engine.ingest(workload)
        engine.flush()
        snap = engine.merged_snapshot()
        counters = {c["name"]: c["value"] for c in snap["counters"]}
        # Coordinator-owned stream totals appear exactly once, not once
        # per shard registry.
        assert counters["streaming.flows_ingested"] == len(workload)
        # Every dispatched flow reached exactly one shard.
        assert counters["parallel.shard_flows"] == counters[
            "parallel.flows_dispatched"
        ]
        assert counters["parallel.model_broadcasts"] == 1
        gauges = {g["name"]: g["value"] for g in snap["gauges"]}
        assert gauges["parallel.shards"] == 4
        span_names = {s["name"] for s in snap["spans"]}
        assert {"parallel.classify", "parallel.shard_classify",
                "parallel.merge"} <= span_names

    def test_min_flows_threshold_respected(self, fitted_scrubber, workload):
        engine = ShardedStreamingScrubber(
            n_shards=2, **{**ENGINE_KWARGS, "min_flows_per_verdict": 10**9}
        ).warm_start(fitted_scrubber)
        assert engine.ingest(workload) + engine.flush() == []
