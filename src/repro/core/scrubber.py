"""The IXP Scrubber: two-step ML system (paper §5, Fig. 5).

Step 1 mines and curates flow-tagging rules (ACL candidates); Step 2
aggregates flows into per-target records, encodes categoricals as Weight
of Evidence, and classifies each (minute, target IP) as under attack or
benign. The fitted system produces predictions, ACLs for the positive
records, and local explanations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro import obs
from repro.core.encoding.matrix import FeatureMatrix, MatrixAssembler, assemble
from repro.core.encoding.woe import WoEEncoder
from repro.obs import names as metric_names
from repro.core.features.aggregation import AggregatedDataset, aggregate, aggregate_batch
from repro.core.models.pipeline import ModelPipeline, make_pipeline
from repro.core.rules.items import ItemEncoder
from repro.core.rules.minimize import minimize_rules
from repro.core.rules.mining import mine_rules
from repro.core.rules.model import RuleSet, RuleStatus, TaggingRule
from repro.netflow.dataset import BIN_SECONDS, FlowDataset


@dataclass(frozen=True)
class ScrubberConfig:
    """Configuration of one IXP Scrubber instance."""

    model: str = "XGB"
    model_params: dict[str, object] = field(default_factory=dict)
    #: ARM minimum support / confidence (§5.1.1).
    min_support: float = 0.0005
    min_confidence: float = 0.8
    #: Algorithm 1 loss thresholds (Appendix A: 0.01 / 0.01).
    confidence_loss: float = 0.01
    support_loss: float = 0.01
    #: Auto-accept mined rules (skip interactive curation). Operators
    #: would normally review in the UI; experiments auto-accept.
    auto_accept_rules: bool = True
    bin_seconds: int = BIN_SECONDS


@dataclass(frozen=True)
class TargetVerdict:
    """Classification outcome for one (minute bin, target IP) record."""

    bin: int
    target_ip: int
    is_ddos: bool
    score: float
    matched_rules: tuple[str, ...]


def build_verdicts(
    data: AggregatedDataset, scores: np.ndarray, threshold: float = 0.5
) -> list[TargetVerdict]:
    """Turn scored aggregated records into per-target verdicts.

    Shared by the one-shot, streaming and sharded classification paths
    so the verdict structure (ordering, rounding, rule tags) cannot
    drift between them.
    """
    labels = scores >= threshold
    tags = data.rule_tags or [()] * len(data)
    return [
        TargetVerdict(
            bin=int(data.bins[i]),
            target_ip=int(data.targets[i]),
            is_ddos=bool(labels[i]),
            score=float(scores[i]),
            matched_rules=tags[i],
        )
        for i in range(len(data))
    ]


class IXPScrubber:
    """End-to-end two-step DDoS detector for one vantage point."""

    def __init__(self, config: ScrubberConfig | None = None):
        self.config = config or ScrubberConfig()
        self.rule_set: RuleSet = RuleSet()
        self.item_encoder: Optional[ItemEncoder] = None
        self.woe = WoEEncoder()
        self.pipeline: Optional[ModelPipeline] = None

    # ------------------------------------------------------------------
    # Step 1
    # ------------------------------------------------------------------
    def mine_tagging_rules(self, flows: FlowDataset) -> RuleSet:
        """Mine, minimise and stage tagging rules from balanced flows."""
        with obs.span(metric_names.SPAN_SCRUBBER_MINE_RULES):
            result = mine_rules(
                flows,
                min_support=self.config.min_support,
                min_confidence=self.config.min_confidence,
            )
            minimized = minimize_rules(
                result.blackhole_rules,
                confidence_loss=self.config.confidence_loss,
                support_loss=self.config.support_loss,
            )
            self.item_encoder = result.encoder
            fresh = RuleSet.from_mining(minimized, result.encoder)
            if self.config.auto_accept_rules:
                for rule in fresh:
                    fresh.set_status(rule.rule_id, RuleStatus.ACCEPT)
            # Merge into any existing curated set (grows over time, §5.1.2).
            self.rule_set = self.rule_set.merge(fresh)
        obs.counter(metric_names.C_SCRUBBER_RULES_ACCEPTED).inc(
            len(self.rule_set.accepted())
        )
        return self.rule_set

    @property
    def accepted_rules(self) -> list[TaggingRule]:
        return self.rule_set.accepted()

    # ------------------------------------------------------------------
    # Step 2
    # ------------------------------------------------------------------
    def aggregate_flows(self, flows: FlowDataset) -> AggregatedDataset:
        """Aggregate flows to per-target records, annotating rule tags."""
        return aggregate(
            flows, rules=self.accepted_rules, bin_seconds=self.config.bin_seconds
        )

    def fit_aggregated(self, data: AggregatedDataset) -> "IXPScrubber":
        """Fit WoE and the classifier pipeline on aggregated records."""
        self.woe = WoEEncoder().fit(data)
        matrix = assemble(data, self.woe)
        self.pipeline = make_pipeline(self.config.model, **self.config.model_params)
        self.pipeline.fit(matrix.X, matrix.y)
        return self

    def fit(self, balanced_flows: FlowDataset) -> "IXPScrubber":
        """Full training: mine rules, aggregate, fit WoE + classifier."""
        with obs.span(metric_names.SPAN_SCRUBBER_FIT):
            self.mine_tagging_rules(balanced_flows)
            data = self.aggregate_flows(balanced_flows)
            return self.fit_aggregated(data)

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _require_fitted(self) -> ModelPipeline:
        if self.pipeline is None:
            raise RuntimeError("IXPScrubber is not fitted")
        return self.pipeline

    def feature_matrix(self, data: AggregatedDataset) -> FeatureMatrix:
        """Assemble the WoE-encoded feature matrix for records."""
        return assemble(data, self.woe)

    def predict_aggregated(self, data: AggregatedDataset) -> np.ndarray:
        """Predict labels (0/1) for aggregated records."""
        pipeline = self._require_fitted()
        return pipeline.predict(self.feature_matrix(data).X)

    def score_aggregated(self, data: AggregatedDataset) -> np.ndarray:
        """P(DDoS) per aggregated record."""
        pipeline = self._require_fitted()
        with obs.span(metric_names.SPAN_SCRUBBER_SCORE):
            scores = pipeline.predict_proba(self.feature_matrix(data).X)
        obs.counter(metric_names.C_SCRUBBER_RECORDS_SCORED).inc(len(data))
        return scores

    def predict_flows(self, flows: FlowDataset) -> list[TargetVerdict]:
        """Classify raw flows end-to-end into per-target verdicts."""
        data = self.aggregate_flows(flows)
        scores = self.score_aggregated(data)
        return build_verdicts(data, scores)

    def make_assembler(self) -> MatrixAssembler:
        """Freeze the fitted WoE tables into a reusable assembler.

        The assembler is valid for the current retrain epoch; build a
        fresh one after :meth:`fit` / :meth:`fit_aggregated` re-fit the
        encoder (``assembler.frozen.is_stale()`` flags this).
        """
        self._require_fitted()
        return MatrixAssembler(self.woe)

    def classify_flows_batch(
        self,
        flows: FlowDataset,
        min_flows: int = 1,
        threshold: float = 0.5,
        assembler: MatrixAssembler | None = None,
    ) -> list[TargetVerdict]:
        """Classify a multi-bin batch of flows into per-target verdicts.

        The batch path of the sharded streaming engine: aggregation uses
        the vectorised :func:`aggregate_batch`, and when ``assembler``
        is given the WoE encode reuses its frozen tables and row buffer
        instead of rebuilding per call. Verdicts are bit-identical to
        aggregating and scoring each bin separately (records of distinct
        bins never merge), ordered by (bin, target).
        """
        if len(flows) == 0:
            return []
        data = aggregate_batch(
            flows, rules=self.accepted_rules, bin_seconds=self.config.bin_seconds
        )
        if min_flows > 1:
            data = data.select(data.n_flows >= min_flows)
        return self.classify_aggregated(data, threshold=threshold, assembler=assembler)

    def classify_aggregated(
        self,
        data: AggregatedDataset,
        threshold: float = 0.5,
        assembler: MatrixAssembler | None = None,
    ) -> list[TargetVerdict]:
        """Score already-aggregated records into per-target verdicts.

        The scoring tail of :meth:`classify_flows_batch`, shared with
        the sketch-mode coordinator of :mod:`repro.core.parallel`,
        which builds its records from merged worker sketches instead of
        aggregating raw flows.
        """
        if len(data) == 0:
            return []
        if assembler is None:
            scores = self.score_aggregated(data)
        else:
            pipeline = self._require_fitted()
            with obs.span(metric_names.SPAN_SCRUBBER_SCORE):
                scores = pipeline.predict_proba(assembler.assemble(data).X)
            obs.counter(metric_names.C_SCRUBBER_RECORDS_SCORED).inc(len(data))
        return build_verdicts(data, scores, threshold)

    def generate_acls(self, verdicts: Sequence[TargetVerdict]) -> list[TaggingRule]:
        """ACLs to install for positive verdicts (matched accepted rules).

        Only rules that actually matched flows of DDoS-classified targets
        are returned; for positives without rule matches the operator can
        still rate-limit by target (paper §6.6).
        """
        needed = {
            rule_id for v in verdicts if v.is_ddos for rule_id in v.matched_rules
        }
        return [r for r in self.accepted_rules if r.rule_id in needed]

    # ------------------------------------------------------------------
    # Model transfer (§6.4)
    # ------------------------------------------------------------------
    def transfer_classifier_from(self, other: "IXPScrubber") -> "IXPScrubber":
        """Adopt another vantage point's classifier, keep local WoE.

        This is the paper's key transfer result: WoE encapsulates local
        knowledge (reflector IPs, member ports), so moving only the
        classifier retains performance across geographies.
        """
        other_pipeline = other._require_fitted()
        if not self.woe.is_fitted:
            raise RuntimeError("local WoE must be fitted before transfer")
        transferred = IXPScrubber(other.config)
        transferred.rule_set = self.rule_set
        transferred.item_encoder = self.item_encoder
        transferred.woe = self.woe
        # The numeric transformer chain travels with the classifier (its
        # fitted feature selection defines the classifier's input
        # width); only the WoE tables — the local knowledge — stay local.
        transferred.pipeline = other_pipeline
        return transferred
