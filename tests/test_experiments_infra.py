"""Tests for experiment infrastructure: caching, results, attribution,
registry and CLI."""

import numpy as np
import pytest

from repro.cli import main
from repro.core.features.aggregation import aggregate
from repro.experiments import EXPERIMENTS
from repro.experiments.attribution import TABLE3_VECTORS, attribute_records, vector_masks
from repro.experiments.common import ExperimentResult, cached, check_scale
from repro.netflow.dataset import FlowDataset
from tests.conftest import make_flow


class TestCache:
    def test_build_once(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        calls = []

        def builder():
            calls.append(1)
            return {"value": 42}

        assert cached(("k",), builder) == {"value": 42}
        assert cached(("k",), builder) == {"value": 42}
        assert len(calls) == 1

    def test_distinct_keys(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert cached(("a",), lambda: 1) == 1
        assert cached(("b",), lambda: 2) == 2

    def test_corrupt_cache_rebuilt(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cached(("x",), lambda: 1)
        for f in tmp_path.glob("*.pkl"):
            f.write_bytes(b"garbage")
        assert cached(("x",), lambda: 3) == 3


class TestExperimentResult:
    def test_format_table(self):
        result = ExperimentResult(experiment="t")
        result.rows = [{"a": 1, "b": 0.5}, {"a": 20, "b": 0.25}]
        text = result.format_table()
        assert "a" in text and "20" in text and "0.2500" in text

    def test_empty_table(self):
        assert "(no rows)" in ExperimentResult(experiment="t").format_table()

    def test_summary_mentions_series_and_notes(self):
        result = ExperimentResult(experiment="t")
        result.series["s"] = ([1, 2], [3, 4])
        result.notes["k"] = "v"
        summary = result.summary()
        assert "series s" in summary and "k=v" in summary

    def test_check_scale(self):
        assert check_scale("small") == "small"
        with pytest.raises(ValueError):
            check_scale("huge")


class TestAttribution:
    def build(self, src_port, protocol=17, extra=()):
        records = [
            make_flow(time=0, dst_ip=1, src_port=src_port, protocol=protocol,
                      packets=50, bytes_=25000, blackhole=True)
        ]
        records += list(extra)
        return aggregate(FlowDataset.from_records(records))

    def test_ntp_attribution(self):
        labels = attribute_records(self.build(123))
        assert labels == ["NTP"]

    def test_fragment_attribution(self):
        labels = attribute_records(self.build(0))
        assert labels == ["UDP Fragm."]

    def test_benign_none(self):
        labels = attribute_records(self.build(443, protocol=6))
        assert labels == [None]

    def test_known_port_wins_over_fragment(self):
        extra = [
            make_flow(time=1, dst_ip=1, src_port=0, dst_port=0, packets=10, bytes_=14000)
        ]
        labels = attribute_records(self.build(53, extra=extra))
        assert labels == ["DNS"]

    def test_vector_masks_shapes(self):
        data = self.build(123)
        masks = vector_masks(data)
        assert set(masks) == set(TABLE3_VECTORS)
        assert masks["NTP"].tolist() == [True]
        assert masks["DNS"].tolist() == [False]


class TestRegistry:
    def test_all_paper_artifacts_covered(self):
        expected = {
            "fig3", "table2", "fig4", "rules", "operators", "table3", "fig10",
            "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "table4",
            # extensions
            "security", "ablations",
        }
        assert set(EXPERIMENTS) == expected

    def test_every_module_has_run(self):
        for module in EXPERIMENTS.values():
            assert callable(module.run)


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out and "fig12" in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2

    def test_run_smallest_experiment(self, capsys, tmp_path, monkeypatch):
        """Exercise the run path end-to-end with the cheapest experiment
        on a tiny ad-hoc cache."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["run", "rules"]) == 0
        out = capsys.readouterr().out
        assert "rule-mining-funnel" in out
        assert "completed" in out
