"""The paper's primary contribution: the two-step IXP Scrubber model."""

from repro.core.drift import (
    TemporalSeries,
    TransferMatrix,
    geographic_transfer,
    one_shot_evaluation,
    reflector_overlap_matrix,
    sliding_window_evaluation,
)
from repro.core.explain import (
    Explanation,
    FeatureEvidence,
    OverlapReport,
    explain_record,
    rule_overlap,
    woe_distributions_by_outcome,
)
from repro.core.scrubber import IXPScrubber, ScrubberConfig, TargetVerdict

__all__ = [
    "Explanation",
    "FeatureEvidence",
    "IXPScrubber",
    "OverlapReport",
    "ScrubberConfig",
    "TargetVerdict",
    "TemporalSeries",
    "TransferMatrix",
    "explain_record",
    "geographic_transfer",
    "one_shot_evaluation",
    "reflector_overlap_matrix",
    "rule_overlap",
    "sliding_window_evaluation",
    "woe_distributions_by_outcome",
]
