"""Benign background traffic model.

Generates the non-attack traffic an IXP member's customers receive:
web/QUIC responses from content networks, small legitimate DNS and NTP
responses, mail, SSH, streaming and ephemeral peer-to-peer flows.

Two properties of the paper's data are deliberately reproduced:

* Benign traffic contains a minority share (~7.5 %, Fig. 4a) of traffic
  from well-known DDoS source ports — legitimate DNS resolver replies and
  NTP time synchronisation. Its packet sizes differ from attack traffic
  (a benign NTP reply is ~76 bytes, a monlist amplification reply ~468).
* Traffic volume per target is heavy-tailed: a few popular destinations
  receive most flows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netflow import fields
from repro.netflow.dataset import FlowDataset
from repro.netflow.fields import PROTO_TCP, PROTO_UDP
from repro.traffic.address_space import CLIENTS, SERVERS


@dataclass(frozen=True)
class BenignService:
    """One benign service class contributing response traffic."""

    name: str
    protocol: int
    src_port: int  # server-side port as seen in flows *towards* the target
    packet_size_mean: float
    packet_size_std: float
    weight: float  # relative share of benign flows
    #: Number of distinct server addresses for this service.
    server_count: int = 64


#: Default benign mix. Weights approximate a typical eyeball traffic
#: profile; the DNS/NTP/SNMP entries supply the benign share of
#: well-known DDoS ports.
DEFAULT_SERVICES: tuple[BenignService, ...] = (
    BenignService("HTTPS", PROTO_TCP, fields.PORT_HTTPS, 1200.0, 300.0, 0.42, 256),
    BenignService("HTTP", PROTO_TCP, fields.PORT_HTTP, 900.0, 350.0, 0.10, 128),
    BenignService("QUIC", PROTO_UDP, fields.PORT_QUIC, 1250.0, 150.0, 0.22, 128),
    BenignService("DNS", PROTO_UDP, fields.PORT_DNS, 120.0, 40.0, 0.05, 64),
    BenignService("NTP", PROTO_UDP, fields.PORT_NTP, 76.0, 8.0, 0.02, 32),
    BenignService("SNMP", PROTO_UDP, fields.PORT_SNMP, 150.0, 50.0, 0.0015, 16),
    BenignService("SMTP", PROTO_TCP, fields.PORT_SMTP, 600.0, 200.0, 0.03, 32),
    BenignService("SSH", PROTO_TCP, fields.PORT_SSH, 300.0, 150.0, 0.02, 32),
    BenignService("RTMP", PROTO_TCP, fields.PORT_RTMP, 1300.0, 100.0, 0.045, 16),
    BenignService("IMAPS", PROTO_TCP, fields.PORT_IMAPS, 500.0, 180.0, 0.02, 16),
)

#: Share of benign flows that are client->target ephemeral traffic
#: (requests, peer-to-peer, games, uploads) rather than server
#: responses. Keeping this substantial matters: with only well-known
#: service ports in the benign class, "unknown top source port" becomes
#: a degenerate single-feature attack detector.
EPHEMERAL_SHARE = 0.25


class BenignTrafficGenerator:
    """Draws benign flows towards a set of target addresses."""

    def __init__(
        self,
        seed: int,
        services: tuple[BenignService, ...] = DEFAULT_SERVICES,
        member_macs: np.ndarray | None = None,
    ):
        self._services = services
        rng = np.random.default_rng(seed)
        # Stable per-service server pools: these are the "known good"
        # sources whose WoE the classifier learns to be negative.
        self._server_pools = {
            s.name: SERVERS.sample(rng, s.server_count, replace=False)
            for s in services
        }
        weights = np.array([s.weight for s in services], dtype=np.float64)
        self._service_p = weights / weights.sum()
        if member_macs is None:
            member_macs = np.arange(1, 9, dtype=np.uint64)
        self._member_macs = np.asarray(member_macs, dtype=np.uint64)

    @property
    def services(self) -> tuple[BenignService, ...]:
        return self._services

    def server_pool(self, service_name: str) -> np.ndarray:
        """Stable server addresses for one service."""
        return self._server_pools[service_name]

    def generate(
        self,
        rng: np.random.Generator,
        targets: np.ndarray,
        start: int,
        end: int,
        flows_per_target_mean: float = 3.0,
    ) -> FlowDataset:
        """Generate benign flows to ``targets`` within ``[start, end)``.

        Flow counts per target are geometric (heavy-ish tail); timestamps
        are uniform over the window.
        """
        targets = np.asarray(targets, dtype=np.uint32)
        if targets.size == 0 or end <= start:
            return FlowDataset.empty()
        per_target = rng.geometric(1.0 / max(flows_per_target_mean, 1.0), size=targets.size)
        n = int(per_target.sum())
        dst_ip = np.repeat(targets, per_target)

        service_idx = rng.choice(len(self._services), size=n, p=self._service_p)
        ephemeral = rng.random(n) < EPHEMERAL_SHARE

        src_ip = np.empty(n, dtype=np.uint32)
        src_port = np.empty(n, dtype=np.uint16)
        dst_port = np.empty(n, dtype=np.uint16)
        protocol = np.empty(n, dtype=np.uint8)
        pkt_size = np.empty(n, dtype=np.float64)

        for i, service in enumerate(self._services):
            mask = (service_idx == i) & ~ephemeral
            count = int(mask.sum())
            if count == 0:
                continue
            pool = self._server_pools[service.name]
            src_ip[mask] = rng.choice(pool, size=count)
            src_port[mask] = service.src_port
            dst_port[mask] = rng.integers(1024, 65536, size=count)
            protocol[mask] = service.protocol
            pkt_size[mask] = np.clip(
                rng.normal(service.packet_size_mean, service.packet_size_std, size=count),
                64.0,
                1500.0,
            )

        n_eph = int(ephemeral.sum())
        if n_eph:
            src_ip[ephemeral] = CLIENTS.sample(rng, n_eph)
            src_port[ephemeral] = rng.integers(1024, 65536, size=n_eph)
            dst_port[ephemeral] = rng.integers(1024, 65536, size=n_eph)
            protocol[ephemeral] = np.where(rng.random(n_eph) < 0.6, PROTO_UDP, PROTO_TCP)
            pkt_size[ephemeral] = np.clip(rng.normal(500.0, 300.0, size=n_eph), 64.0, 1500.0)

        packets = rng.geometric(0.25, size=n).astype(np.int64)
        bytes_ = np.maximum((pkt_size * packets).astype(np.int64), packets * 64)
        time = rng.integers(start, end, size=n)
        src_mac = rng.choice(self._member_macs, size=n)

        return FlowDataset(
            {
                "time": time.astype(np.int64),
                "src_ip": src_ip,
                "dst_ip": dst_ip,
                "src_port": src_port,
                "dst_port": dst_port,
                "protocol": protocol,
                "packets": packets,
                "bytes": bytes_,
                "src_mac": src_mac,
                "blackhole": np.zeros(n, dtype=bool),
            }
        )
