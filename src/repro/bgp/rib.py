"""A minimal Routing Information Base (RIB).

The RIB tracks the currently active route per (prefix, origin) pair as
seen by the IXP route server, applying announcements and withdrawals in
timestamp order. It is the substrate on which the
:class:`~repro.bgp.blackhole.BlackholeRegistry` observes blackhole state.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.bgp.messages import Announcement, Update, Withdrawal
from repro.bgp.prefix import Prefix


class RoutingInformationBase:
    """Route-server view of announced prefixes.

    Multiple origins may announce the same prefix (anycast, mitigation
    hand-off); the RIB keeps one active route per (prefix, origin).
    """

    def __init__(self) -> None:
        self._routes: dict[tuple[Prefix, int], Announcement] = {}
        self._last_time: int | None = None

    def __len__(self) -> int:
        return len(self._routes)

    def apply(self, update: Update) -> None:
        """Apply one announcement or withdrawal.

        Updates must arrive in non-decreasing timestamp order; this mirrors
        a live BGP feed and keeps registry observers consistent.
        """
        if self._last_time is not None and update.time < self._last_time:
            raise ValueError(
                f"out-of-order BGP update at t={update.time} (last {self._last_time})"
            )
        self._last_time = update.time
        key = (update.prefix, update.origin_asn)
        if isinstance(update, Announcement):
            self._routes[key] = update
        elif isinstance(update, Withdrawal):
            self._routes.pop(key, None)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown update type: {type(update)!r}")

    def apply_all(self, updates: Iterable[Update]) -> None:
        """Apply a sequence of updates in order."""
        for update in updates:
            self.apply(update)

    def routes(self) -> list[Announcement]:
        """All currently active routes."""
        return list(self._routes.values())

    def routes_for_prefix(self, prefix: Prefix) -> list[Announcement]:
        """Active routes for exactly ``prefix`` (any origin)."""
        return [a for (p, _), a in self._routes.items() if p == prefix]

    def blackhole_routes(self) -> list[Announcement]:
        """Active routes carrying a blackhole community."""
        return [a for a in self._routes.values() if a.is_blackhole]
