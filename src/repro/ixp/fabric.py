"""The IXP switching fabric and route server.

:class:`IXPFabric` assembles the static side of one vantage point from an
:class:`~repro.ixp.profiles.IXPProfile`: the member ASes with their port
MACs and roles, the customer address space behind the members (the
destinations traffic flows to), the packet sampler, and the route-server
machinery that collects and redistributes blackhole announcements.
"""

from __future__ import annotations

import numpy as np

from repro.bgp.blackhole import BlackholeRegistry
from repro.bgp.messages import Update
from repro.bgp.rib import RoutingInformationBase
from repro.ixp.member import MemberAS, MemberRole
from repro.ixp.profiles import IXPProfile
from repro.ixp.sampling import PacketSampler
from repro.netflow.dataset import FlowDataset
from repro.traffic.address_space import VICTIMS, AddressBlock

#: Role mix of the member base (eyeballs dominate receiver counts).
_ROLE_MIX = (
    (MemberRole.EYEBALL, 0.5),
    (MemberRole.CONTENT, 0.3),
    (MemberRole.TRANSIT, 0.2),
)

#: Fraction of members that do not adhere to blackholing routes; their
#: forwarded traffic is what the capture pipeline sees (paper §3).
_NON_ADHERENCE = 0.3

_N_REGIONS = 16


class IXPFabric:
    """Static vantage-point state derived from a profile."""

    def __init__(self, profile: IXPProfile, sampling_rate: int = 1):
        self.profile = profile
        self.sampler = PacketSampler(sampling_rate)
        rng = np.random.default_rng(profile.seed)
        self.members = self._build_members(rng)
        self.rib = RoutingInformationBase()
        self.blackholes = BlackholeRegistry()

    def _build_members(self, rng: np.random.Generator) -> tuple[MemberAS, ...]:
        members = []
        roles = [role for role, _ in _ROLE_MIX]
        weights = np.array([w for _, w in _ROLE_MIX])
        weights = weights / weights.sum()
        base_asn = 64512 + self.profile.region * 1024
        for i in range(self.profile.n_members):
            role = roles[int(rng.choice(len(roles), p=weights))]
            members.append(
                MemberAS(
                    asn=base_asn + i,
                    mac=(self.profile.region << 32) | (0x02 << 40) | (i + 1),
                    role=role,
                    adheres_to_blackholing=bool(rng.random() >= _NON_ADHERENCE),
                    name=f"{self.profile.name}-member-{i}",
                )
            )
        return tuple(members)

    @property
    def member_macs(self) -> np.ndarray:
        """Port MACs of all members (the ``src_mac`` feature domain)."""
        return np.array([m.mac for m in self.members], dtype=np.uint64)

    @property
    def eyeball_members(self) -> tuple[MemberAS, ...]:
        return tuple(m for m in self.members if m.role == MemberRole.EYEBALL)

    @property
    def customer_space(self) -> AddressBlock:
        """The victim/benign-target address block of this vantage point."""
        size = VICTIMS.size // _N_REGIONS
        return AddressBlock(VICTIMS.base + self.profile.region * size, size)

    def process_updates(self, updates: list[Update]) -> None:
        """Feed route-server updates into the RIB and blackhole registry."""
        for update in updates:
            self.rib.apply(update)
            self.blackholes.apply(update)

    def capture(self, flows: FlowDataset, rng: np.random.Generator) -> FlowDataset:
        """Apply the port sampler to raw flows (the export path)."""
        return self.sampler.sample(flows, rng)
