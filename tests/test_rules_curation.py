"""Tests for the simulated operator-curation study."""

import numpy as np
import pytest

from repro.core.rules.curation import (
    DEFAULT_COHORT,
    OperatorProfile,
    curate,
    run_study,
)
from repro.core.rules.model import PortMatch, RuleSet, RuleStatus, TaggingRule
from repro.netflow.dataset import FlowDataset
from tests.conftest import make_flow


def staged_rules():
    return RuleSet(
        [
            TaggingRule(
                rule_id="good", confidence=0.99, support=0.05,
                protocol=17, port_src=PortMatch(values=frozenset({123})),
            ),
            TaggingRule(
                rule_id="weak", confidence=0.82, support=0.01,
                protocol=17, port_src=PortMatch(values=frozenset({9999})),
            ),
        ]
    )


def make_test_flows():
    records = [
        make_flow(time=i, src_port=123, blackhole=True) for i in range(50)
    ] + [make_flow(time=i, src_port=443, protocol=6) for i in range(50)]
    return FlowDataset.from_records(records)


class TestOperatorProfile:
    def test_rejects_extreme_error_rate(self):
        with pytest.raises(ValueError):
            OperatorProfile("x", error_rate=0.9)

    def test_default_cohort_has_five_subjects(self):
        """Two IXP operators + three authors (paper §5.1.3)."""
        assert len(DEFAULT_COHORT) == 5


class TestCurate:
    def test_all_rules_decided(self, rng):
        operator = OperatorProfile("x", error_rate=0.0)
        curated, seconds = curate(staged_rules(), operator, rng)
        assert curated.staged() == []
        assert seconds > 0

    def test_accepts_confident_rule(self, rng):
        operator = OperatorProfile("x", error_rate=0.0, confidence_threshold=0.9)
        curated, _ = curate(staged_rules(), operator, rng)
        assert curated.get("good").status == RuleStatus.ACCEPT
        assert curated.get("weak").status == RuleStatus.DECLINE

    def test_error_rate_flips_decisions(self):
        operator = OperatorProfile("x", error_rate=0.5, confidence_threshold=0.9)
        flips = 0
        for seed in range(20):
            curated, _ = curate(staged_rules(), operator, np.random.default_rng(seed))
            if curated.get("good").status == RuleStatus.DECLINE:
                flips += 1
        assert flips > 0

    def test_original_set_untouched(self, rng):
        rules = staged_rules()
        curate(rules, OperatorProfile("x", error_rate=0.0), rng)
        assert all(r.status == RuleStatus.STAGING for r in rules)


class TestRunStudy:
    def test_outputs_per_subject(self):
        results = run_study(staged_rules(), make_test_flows(), seed=3)
        assert len(results) == len(DEFAULT_COHORT)
        for r in results:
            assert 0.0 <= r.attack_dropped <= 1.0
            assert 0.0 <= r.benign_dropped <= 1.0
            assert r.minutes > 0

    def test_good_rules_drop_attacks_not_benign(self):
        results = run_study(staged_rules(), make_test_flows(), seed=3)
        mean_attack = np.mean([r.attack_dropped for r in results])
        mean_benign = np.mean([r.benign_dropped for r in results])
        assert mean_attack > 0.5
        assert mean_benign < 0.1

    def test_deterministic_given_seed(self):
        a = run_study(staged_rules(), make_test_flows(), seed=3)
        b = run_study(staged_rules(), make_test_flows(), seed=3)
        assert [(r.operator, r.n_accepted) for r in a] == [
            (r.operator, r.n_accepted) for r in b
        ]
