"""Feed-forward neural network (the paper's NN model).

A single-hidden-layer MLP with ReLU, inverted dropout and Adam on
binary cross-entropy — matching the paper's skorch configuration space
(hidden-layer width, dropout, learning rate; the PCA component count of
its pipeline lives in the pipeline definition, Fig. 8).
"""

from __future__ import annotations

import numpy as np

from repro.core.models.base import Classifier, check_fit_inputs


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -30.0, 30.0)))


class NeuralNetwork(Classifier):
    """One-hidden-layer MLP trained with Adam."""

    name = "NN"

    def __init__(
        self,
        n_hidden: int = 32,
        dropout: float = 0.0,
        learning_rate: float = 2.5e-3,
        epochs: int = 60,
        batch_size: int = 256,
        seed: int = 0,
    ):
        if n_hidden < 1:
            raise ValueError("n_hidden must be >= 1")
        if not 0.0 <= dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.n_hidden = n_hidden
        self.dropout = dropout
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self.seed = seed
        self._params: dict[str, np.ndarray] | None = None

    def get_params(self) -> dict[str, object]:
        return {
            "n_hidden": self.n_hidden,
            "dropout": self.dropout,
            "learning_rate": self.learning_rate,
            "epochs": self.epochs,
        }

    def fit(self, X: np.ndarray, y: np.ndarray) -> "NeuralNetwork":
        X, y = check_fit_inputs(X, y)
        rng = np.random.default_rng(self.seed)
        n, d = X.shape
        h = self.n_hidden
        params = {
            "W1": rng.normal(0.0, np.sqrt(2.0 / d), size=(d, h)),
            "b1": np.zeros(h),
            "W2": rng.normal(0.0, np.sqrt(2.0 / h), size=(h, 1)),
            "b2": np.zeros(1),
        }
        adam_m = {k: np.zeros_like(v) for k, v in params.items()}
        adam_v = {k: np.zeros_like(v) for k, v in params.items()}
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        yf = y.astype(np.float64).reshape(-1, 1)
        step = 0
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for lo in range(0, n, self.batch_size):
                batch = order[lo : lo + self.batch_size]
                xb, yb = X[batch], yf[batch]
                # Forward pass.
                z1 = xb @ params["W1"] + params["b1"]
                a1 = np.maximum(z1, 0.0)
                if self.dropout > 0:
                    mask = rng.random(a1.shape) >= self.dropout
                    a1 = a1 * mask / (1.0 - self.dropout)
                z2 = a1 @ params["W2"] + params["b2"]
                p = _sigmoid(z2)
                # Backward pass (BCE loss).
                m = xb.shape[0]
                dz2 = (p - yb) / m
                grads = {
                    "W2": a1.T @ dz2,
                    "b2": dz2.sum(axis=0),
                }
                da1 = dz2 @ params["W2"].T
                if self.dropout > 0:
                    da1 = da1 * mask / (1.0 - self.dropout)
                dz1 = da1 * (z1 > 0)
                grads["W1"] = xb.T @ dz1
                grads["b1"] = dz1.sum(axis=0)
                # Adam update.
                step += 1
                for key in params:
                    adam_m[key] = beta1 * adam_m[key] + (1 - beta1) * grads[key]
                    adam_v[key] = beta2 * adam_v[key] + (1 - beta2) * grads[key] ** 2
                    m_hat = adam_m[key] / (1 - beta1**step)
                    v_hat = adam_v[key] / (1 - beta2**step)
                    params[key] -= self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)
        self._params = params
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self._params is None:
            raise RuntimeError("NeuralNetwork is not fitted")
        X = np.asarray(X, dtype=np.float64)
        a1 = np.maximum(X @ self._params["W1"] + self._params["b1"], 0.0)
        return _sigmoid(a1 @ self._params["W2"] + self._params["b2"]).ravel()

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X) >= 0.5).astype(np.int64)
