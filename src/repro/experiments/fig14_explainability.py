"""Experiment E-F14: local explainability (paper Fig. 14).

* Fig. 14a — overlap between XGB classifications and rule-tag
  annotations: in what share of records do both mechanisms agree, and
  how many tagging rules are available to explain a coherent positive
  decision. Expected shape: strong agreement (paper: 70.9 % of records),
  most coherent positives explained by 1-3 rules.
* Fig. 14b — WoE distributions of the top XGB features, split by true
  positive vs false positive. Expected shape: clearly separated
  distributions with FPs shifted towards lower/neutral WoE.
"""

from __future__ import annotations

import numpy as np

from repro.core.encoding.matrix import assemble
from repro.core.encoding.woe import WoEEncoder
from repro.core.explain import rule_overlap, woe_distributions_by_outcome
from repro.core.features import schema
from repro.core.models.boosting import GradientBoostedTrees
from repro.core.models.pipeline import make_pipeline
from repro.core.models.selection import train_test_split
from repro.experiments.common import ExperimentResult, check_scale
from repro.experiments.datasets import merged_corpus
from repro.experiments.table3_models import mine_shared_rules


def run(scale: str = "small", seed: int = 5) -> ExperimentResult:
    check_scale(scale)
    _, rules = mine_shared_rules(scale)
    merged = merged_corpus(scale, rules=rules)

    rng = np.random.default_rng(seed)
    train_idx, test_idx = train_test_split(
        len(merged), 1.0 / 3.0, rng, stratify=merged.labels
    )
    train, test = merged.select(train_idx), merged.select(test_idx)
    woe = WoEEncoder().fit(train)
    pipeline = make_pipeline("XGB")
    matrix_train = assemble(train, woe)
    pipeline.fit(matrix_train.X, matrix_train.y)
    matrix_test = assemble(test, woe)
    predictions = pipeline.predict(matrix_test.X)

    result = ExperimentResult(experiment="fig14-explainability")

    # Fig. 14a: model / rule-tag agreement.
    overlap = rule_overlap(test, predictions)
    result.rows.append(
        {
            "metric": "coherent_share",
            "value": overlap.coherent_share,
        }
    )
    result.rows.append(
        {"metric": "explained_share (>=1 rule)", "value": overlap.explained_share}
    )
    result.rows.append(
        {
            "metric": "explained_share (1-3 rules)",
            "value": overlap.explained_up_to_3_share,
        }
    )
    result.series["fig14a/rule-count-histogram"] = (
        list(overlap.rule_count_histogram.keys()),
        list(overlap.rule_count_histogram.values()),
    )

    # Fig. 14b: WoE distributions of top XGB key features for TP vs FP.
    classifier = pipeline.classifier
    assert isinstance(classifier, GradientBoostedTrees)
    # Map gains back to original columns (FeatureReducer kept a subset).
    reducer = pipeline.transformers[0]
    kept = np.flatnonzero(reducer.keep_)
    gains = classifier.average_gain()
    key_count = len(schema.key_columns())
    key_features = [
        (matrix_test.columns[kept[j]], gains[j])
        for j in np.argsort(gains)[::-1]
        if kept[j] < key_count  # key (WoE) columns only
    ][:4]
    columns = [name for name, _ in key_features]
    distributions = woe_distributions_by_outcome(test, woe, predictions, columns)
    for name in columns:
        tp = distributions[name]["tp"]
        fp = distributions[name]["fp"]
        result.series[f"fig14b/{name}/tp"] = (list(range(tp.size)), tp.tolist())
        result.series[f"fig14b/{name}/fp"] = (list(range(fp.size)), fp.tolist())
        result.rows.append(
            {
                "metric": f"woe_median_tp/{name}",
                "value": float(np.median(tp)) if tp.size else float("nan"),
            }
        )
        result.rows.append(
            {
                "metric": f"woe_median_fp/{name}",
                "value": float(np.median(fp)) if fp.size else float("nan"),
            }
        )

    result.notes["coherent_share"] = overlap.coherent_share
    result.notes["explained_share"] = overlap.explained_share
    return result
