"""Experiment E-OPS: operator curation study (paper §5.1.3).

Rules are mined from the self-attack set, presented to a cohort of
(simulated) operators for accept/decline curation, and each subject's
accepted set is scored against ground truth: share of attack traffic
dropped and benign traffic collaterally dropped, plus curation time.

Expected shape (paper averages): ~77 % of DDoS dropped, well under 1 %
of benign dropped, a handful of minutes for a few dozen rules.
"""

from __future__ import annotations

import numpy as np

from repro.core.rules.curation import DEFAULT_COHORT, run_study
from repro.core.rules.minimize import minimize_rules
from repro.core.rules.mining import mine_rules
from repro.core.rules.model import RuleSet
from repro.experiments.common import ExperimentResult, check_scale
from repro.experiments.datasets import self_attack_corpus


def run(scale: str = "small", seed: int = 7) -> ExperimentResult:
    check_scale(scale)
    sas = self_attack_corpus(scale)
    flows = sas.flows

    # Mine on the first half of the campaign, score on the second half
    # (no leakage between rule mining and evaluation).
    midpoint = (sas.start + sas.end) // 2
    mine_flows = flows.time_slice(sas.start, midpoint)
    test_flows = flows.time_slice(midpoint, sas.end)

    mining = mine_rules(mine_flows, min_confidence=0.8)
    minimized = minimize_rules(mining.blackhole_rules)
    rule_set = RuleSet.from_mining(minimized, mining.encoder)

    results = run_study(rule_set, test_flows, cohort=DEFAULT_COHORT, seed=seed)
    result = ExperimentResult(experiment="operator-study")
    for r in results:
        result.rows.append(
            {
                "operator": r.operator,
                "attack_dropped_pct": 100.0 * r.attack_dropped,
                "benign_dropped_pct": 100.0 * r.benign_dropped,
                "minutes": r.minutes,
                "rules_accepted": r.n_accepted,
            }
        )
    result.notes["n_rules_presented"] = len(rule_set)
    result.notes["avg_attack_dropped_pct"] = float(
        np.mean([r.attack_dropped for r in results]) * 100.0
    )
    result.notes["avg_benign_dropped_pct"] = float(
        np.mean([r.benign_dropped for r in results]) * 100.0
    )
    result.notes["avg_minutes"] = float(np.mean([r.minutes for r in results]))
    return result
