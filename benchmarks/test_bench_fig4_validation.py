"""E-F4: dataset validation (Fig. 4a/4b)."""

import numpy as np

from repro.experiments import fig4_validation


def test_fig4_validation(run_experiment):
    result = run_experiment(fig4_validation)
    print()
    print(result.summary())

    # Fig. 4a shape: benign carries a minor share of well-known DDoS
    # ports (paper ~7.5 %), blackhole a dominant share (~87.5 %), the
    # self-attack set is pure DDoS.
    assert result.notes["benign_ddos_share_pct"] < 20.0
    assert result.notes["blackhole_ddos_share_pct"] > 70.0
    assert result.notes["sas_ddos_share_pct"] > 95.0
    assert (
        result.notes["blackhole_ddos_share_pct"]
        > result.notes["benign_ddos_share_pct"] + 50.0
    )

    # Fig. 4b shape: per-vector packet sizes agree between blackhole and
    # SAS wherever both contain the vector *as an attack* — ports whose
    # blackhole-class traffic is just benign collateral (a handful of
    # monitoring flows) are excluded, matching the paper's comparison of
    # attack-carrying vectors.
    size_rows = [
        r for r in result.rows
        if r["class"].startswith("sizes/")
        and r["n_flows"] >= 300
        and not np.isnan(r.get("bh_median_size", float("nan")))
        and not np.isnan(r.get("sas_median_size", float("nan")))
    ]
    assert size_rows, "no overlapping vectors between blackhole and SAS"
    for row in size_rows:
        assert abs(row["bh_median_size"] - row["sas_median_size"]) < 0.35 * max(
            row["bh_median_size"], row["sas_median_size"]
        )

    # ... except WS-Discovery, which the booter menu offers but which is
    # (nearly) absent from blackholing traffic: its *share* of the
    # blackhole class is an order of magnitude below its SAS share.
    bh_total = next(r["n_flows"] for r in result.rows if r["class"] == "blackhole")
    sas_total = next(r["n_flows"] for r in result.rows if r["class"] == "self-attack")
    wsd_bh_share = result.notes["wsd_blackhole_flows"] / bh_total
    wsd_sas_share = result.notes["wsd_sas_flows"] / sas_total
    assert result.notes["wsd_sas_flows"] > 0
    assert wsd_bh_share <= wsd_sas_share * 0.1
