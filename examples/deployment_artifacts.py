#!/usr/bin/env python
"""Deployment artifacts: persist a trained scrubber, export filters.

Production deployment needs two artifacts besides the running model:

1. a **versioned model file** — the fitted scrubber (curated rules, WoE
   tables, preprocessing, classifier) serialised to plain JSON, so it
   can be shipped, diffed and audited without pickle;
2. **installable filters** — accepted tagging rules rendered as BGP
   FlowSpec (RFC 8955) for the route server and as generic ACL lines
   for legacy devices, scoped to the victims the model flags.

Run:  python examples/deployment_artifacts.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import IXP_SE, IXPFabric, IXPScrubber, WorkloadGenerator, balance
from repro.bgp.prefix import Prefix
from repro.core.persistence import load_scrubber, save_scrubber
from repro.core.rules.export import export_acl, to_flowspec


def main() -> None:
    print("=== Training ===")
    fabric = IXPFabric(IXP_SE)
    capture = WorkloadGenerator(fabric).generate(0, 3)
    balanced = balance(capture.labeled_flows(), np.random.default_rng(5))
    scrubber = IXPScrubber().fit(balanced.flows)
    print(f"{len(scrubber.accepted_rules)} accepted rules, "
          f"{sum(len(t.mapping) for t in scrubber.woe.tables.values()):,} WoE entries")

    with tempfile.TemporaryDirectory() as tmp:
        model_path = Path(tmp) / "ixp-se-scrubber-v1.json"
        print("\n=== 1. Persisting the model ===")
        save_scrubber(scrubber, model_path)
        size_kb = model_path.stat().st_size / 1024
        print(f"wrote {model_path.name} ({size_kb:.0f} KiB, plain JSON)")

        restored = load_scrubber(model_path)
        data = scrubber.aggregate_flows(balanced.flows)
        identical = np.array_equal(
            restored.predict_aggregated(data), scrubber.predict_aggregated(data)
        )
        print(f"reloaded model reproduces predictions bit-for-bit: {identical}")

    print("\n=== 2. Exporting filters for a detected attack ===")
    verdicts = scrubber.predict_flows(balanced.flows)
    detection = max((v for v in verdicts if v.is_ddos), key=lambda v: v.score)
    acls = scrubber.generate_acls([detection])
    victim = Prefix.host(detection.target_ip)
    print(f"victim {victim}, score {detection.score:.3f}, "
          f"{len(acls)} matching accepted rule(s)")

    print("\nBGP FlowSpec (discard at the route server):")
    for rule in acls[:3]:
        print("  " + to_flowspec(rule, destination=victim).render())

    print("\nRate-limit variant (1 Mbit/s):")
    for rule in acls[:1]:
        print("  " + to_flowspec(rule, destination=victim, rate_limit_bps=1_000_000).render())

    print("\nGeneric ACL lines:")
    for line in export_acl(acls[:3]):
        print("  " + line)


if __name__ == "__main__":
    main()
