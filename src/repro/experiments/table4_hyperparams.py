"""Experiment E-T4: hyperparameter grid search (paper Appendix C).

Runs the grid search with 3-fold cross-validation per model on a
subsample of the merged corpus (the paper samples 250K records for the
same reason) and reports each model's best parameters and CV score.

The grids are scaled-down analogues of Table 4 — same parameters, a
trimmed value list per axis so the search completes in minutes on a
laptop.
"""

from __future__ import annotations

import numpy as np

from repro.core.encoding.matrix import assemble
from repro.core.encoding.woe import WoEEncoder
from repro.core.models.pipeline import make_pipeline
from repro.core.models.selection import grid_search
from repro.experiments.common import ExperimentResult, check_scale
from repro.experiments.datasets import merged_corpus

#: Per-model grids (subset of the paper's Table 4 value lists).
GRIDS: dict[str, dict[str, tuple]] = {
    "NB-G": {"var_smoothing": (1e-9, 1e-5, 1e-3, 0.1, 1.0)},
    "NB-M": {"alpha": (1e-4, 0.01, 0.5, 1.0, 10.0)},
    "NB-C": {"alpha": (1e-4, 0.01, 0.5, 1.0, 10.0)},
    "NB-B": {"alpha": (1e-4, 0.01, 0.5, 1.0, 10.0)},
    "DT": {
        "ccp_alpha": (0.0, 1e-7, 1e-5),
        "min_samples_leaf": (1, 5, 100),
        "min_samples_split": (2, 100),
    },
    "XGB": {
        "n_estimators": (8, 24, 60),
        "max_depth": (4, 6, 8),
        "learning_rate": (0.1, 0.3),
    },
    "LSVM": {
        "C": (1e-5, 1e-3, 0.1, 1.0, 10.0),
        "class_weight": (None, "balanced"),
    },
    "NN": {
        "n_pca_components": (25, 50),
        "n_hidden": (8, 32),
        "dropout": (0.0, 0.3),
    },
}

#: Records sampled for the search (paper: 250K).
SAMPLE_BY_SCALE = {"small": 2000, "paper": 8000}


def run(scale: str = "small", seed: int = 11, models: tuple[str, ...] | None = None) -> ExperimentResult:
    check_scale(scale)
    merged = merged_corpus(scale)
    rng = np.random.default_rng(seed)
    n_sample = min(SAMPLE_BY_SCALE[scale], len(merged))
    sample_idx = rng.choice(len(merged), size=n_sample, replace=False)
    sample = merged.select(np.sort(sample_idx))
    woe = WoEEncoder().fit(sample)
    matrix = assemble(sample, woe)

    result = ExperimentResult(experiment="table4-hyperparams")
    for name in models or tuple(GRIDS):
        grid = GRIDS[name]
        search = grid_search(
            lambda **params: make_pipeline(name, **params),
            grid,
            matrix.X,
            matrix.y,
            k=3,
            seed=seed,
        )
        result.rows.append(
            {
                "model": name,
                "best_params": str(search.best_params),
                "cv_fbeta": search.best_score,
                "grid_points": len(search.history),
            }
        )
    result.notes["n_sample"] = n_sample
    return result
