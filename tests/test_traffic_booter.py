"""Tests for the booter (self-attack set) simulator."""

import numpy as np
import pytest

from repro.traffic.booter import (
    BOOTER_MENU,
    MAX_ATTACK_SECONDS,
    MIN_ATTACK_SECONDS,
    BooterSimulator,
)


@pytest.fixture
def simulator(tiny_fabric):
    return BooterSimulator(tiny_fabric, seed=3)


class TestCampaign:
    def test_rejects_zero_attacks(self, simulator):
        with pytest.raises(ValueError):
            simulator.run_campaign(0)

    def test_event_count(self, simulator):
        capture = simulator.run_campaign(10)
        assert len(capture.events) == 10
        assert len(capture.event_vectors) == 10

    def test_package_duration_limits(self, simulator):
        capture = simulator.run_campaign(20)
        for event in capture.events:
            assert MIN_ATTACK_SECONDS <= event.duration <= MAX_ATTACK_SECONDS

    def test_no_blackholing_involved(self, simulator):
        capture = simulator.run_campaign(5)
        assert all(not e.blackholed for e in capture.events)

    def test_labels_are_ground_truth(self, simulator):
        capture = simulator.run_campaign(10)
        attack = capture.flows.select(capture.flows.blackhole)
        benign = capture.flows.select(~capture.flows.blackhole)
        assert len(attack) > 0 and len(benign) > 0
        # Attack flows target the dedicated victim block only.
        assert simulator.victims.contains_batch(attack.dst_ip).all()
        # Benign background never hits the dedicated victims.
        assert not simulator.victims.contains_batch(benign.dst_ip).any()

    def test_vectors_from_menu(self, simulator):
        capture = simulator.run_campaign(30)
        menu_names = {v.name for v, _ in BOOTER_MENU}
        used = {name for names in capture.event_vectors for name in names}
        assert used <= menu_names

    def test_wsd_offered(self, simulator):
        """WS-Discovery is on the booter menu (the Fig. 4b outlier)."""
        capture = simulator.run_campaign(60)
        used = {name for names in capture.event_vectors for name in names}
        assert "WS-Discovery" in used

    def test_deterministic(self, tiny_fabric):
        a = BooterSimulator(tiny_fabric, seed=3).run_campaign(5)
        b = BooterSimulator(tiny_fabric, seed=3).run_campaign(5)
        np.testing.assert_array_equal(a.flows.time, b.flows.time)
        np.testing.assert_array_equal(a.flows.src_ip, b.flows.src_ip)

    def test_flows_sorted_by_time(self, simulator):
        capture = simulator.run_campaign(10)
        assert (np.diff(capture.flows.time) >= 0).all()
