"""ASCII rendering of experiment series (figures without matplotlib).

The experiment harness stores every figure's data as named (x, y)
series. This module renders them in the terminal: line sparkplots for
time series (Fig. 11/13), CDF summaries (Fig. 3a/16a) and simple
heatmaps (Fig. 12/15) — enough to eyeball the shapes the benchmarks
assert.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional, Sequence

import numpy as np

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render a numeric series as a unicode sparkline."""
    data = np.asarray([v for v in values if not (isinstance(v, float) and math.isnan(v))], dtype=float)
    if data.size == 0:
        return "(empty)"
    if data.size > width:
        # Downsample by block means.
        edges = np.linspace(0, data.size, width + 1).astype(int)
        data = np.array([data[a:b].mean() for a, b in zip(edges[:-1], edges[1:]) if b > a])
    lo, hi = float(data.min()), float(data.max())
    if hi - lo < 1e-12:
        return _BLOCKS[4] * data.size
    scaled = (data - lo) / (hi - lo) * (len(_BLOCKS) - 2) + 1
    return "".join(_BLOCKS[int(round(v))] for v in scaled)


def render_series(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    prefix: Optional[str] = None,
    width: int = 60,
) -> str:
    """Render each (optionally prefix-filtered) series as a labelled
    sparkline with its min/max range."""
    lines = []
    for name in sorted(series):
        if prefix is not None and not name.startswith(prefix):
            continue
        _, y = series[name]
        data = [v for v in y if not (isinstance(v, float) and math.isnan(v))]
        if not data:
            lines.append(f"{name}: (no data)")
            continue
        lines.append(
            f"{name}: {sparkline(y, width)}  [{min(data):.3g} .. {max(data):.3g}]"
        )
    return "\n".join(lines) if lines else "(no series)"


def heatmap(
    rows: Sequence[str],
    cols: Sequence[str],
    values: np.ndarray,
    cell_format: str = "{:.2f}",
) -> str:
    """Render a labelled matrix (Fig. 12/15 style)."""
    values = np.asarray(values, dtype=float)
    if values.shape != (len(rows), len(cols)):
        raise ValueError("matrix shape does not match labels")
    rendered = [
        [("-" if math.isnan(values[i, j]) else cell_format.format(values[i, j])) for j in range(len(cols))]
        for i in range(len(rows))
    ]
    row_width = max((len(r) for r in rows), default=0)
    col_widths = [
        max(len(cols[j]), *(len(rendered[i][j]) for i in range(len(rows))))
        if rows
        else len(cols[j])
        for j in range(len(cols))
    ]
    lines = [
        " " * row_width + "  " + "  ".join(c.rjust(w) for c, w in zip(cols, col_widths))
    ]
    for i, row_label in enumerate(rows):
        lines.append(
            row_label.rjust(row_width)
            + "  "
            + "  ".join(rendered[i][j].rjust(col_widths[j]) for j in range(len(cols)))
        )
    return "\n".join(lines)


def cdf_summary(values: Sequence[float], quantiles: Sequence[float] = (0.5, 0.9, 0.99)) -> str:
    """One-line quantile summary of a distribution."""
    data = np.asarray(values, dtype=float)
    data = data[~np.isnan(data)]
    if data.size == 0:
        return "(empty)"
    parts = [f"p{int(q * 100)}={np.quantile(data, q):.4g}" for q in quantiles]
    return f"n={data.size} min={data.min():.4g} " + " ".join(parts) + f" max={data.max():.4g}"
