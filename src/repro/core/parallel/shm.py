"""Zero-copy shard IPC: shared-memory rings and the map-once model plane.

The process backends move two kinds of payload across the
coordinator→worker boundary, and before this module both crossed it as
pickled pipe messages: every closed-bin :class:`~repro.netflow.dataset.
FlowDataset` batch, and — once per retrain — the whole kernel-format
scrubber, re-pickled per worker. ``FlowDataset`` is a pointer-free
struct-of-arrays with a fixed :data:`~repro.netflow.dataset.SCHEMA`,
i.e. already a wire format; serialising it buys nothing but copies.
This module keeps the pipe as a **doorbell/control channel only** and
moves the bytes through ``multiprocessing.shared_memory``:

* :class:`ShmRing` — one single-producer/single-consumer ring per
  shard. The coordinator writes each batch as a framed blob (header:
  generation, seqno, bin, row count, payload bytes, crc32; payload:
  each schema column's raw bytes, 8-aligned), then sends a tiny
  ``("classify_shm", seqno, offset, nbytes, ...)`` doorbell over the
  pipe. The worker reconstructs read-only column views with
  ``np.frombuffer`` — no pickle, no copy — classifies, acks the seqno
  in the ring's control block and replies over the pipe. The protocol
  keeps **at most one frame in flight per shard** (strict
  request→reply), so space accounting degenerates to a produced/
  consumed seqno pair; a frame that does not fit (oversized batch, or
  an unacked frame left by a crashed worker) makes the caller fall
  back to the legacy pickled-pipe message instead of blocking — the
  ring can never deadlock the stream. After a worker crash the
  supervisor calls :meth:`ShmRing.reclaim`, which bumps the ring's
  generation and marks the orphaned frame consumed; stale frames are
  rejected by the generation check on the next read.

* :class:`ModelPlane` — the map-once model distribution path. The
  coordinator serialises the scrubber **once** per publish with pickle
  protocol 5, externalising every contiguous numpy buffer
  (``buffer_callback``) into a versioned shared segment laid out as
  ``[header | buffer table | pickle stream | raw buffers]``. Workers
  map the segment read-only and rebuild the model with
  ``pickle.loads(stream, buffers=...)``, so the model's arrays are
  views into shared memory — N workers share one copy instead of
  holding N deserialised clones. Respawned workers re-attach by name:
  the doorbell names the current segment, so restart needs no blob
  resend.

Lifetimes: the creating process (the backend) owns every segment and
must ``destroy()`` them — on ``close()`` or from the orphan reaper.
Attachers go through :func:`attach_segment`, which immediately
unregisters the mapping from ``resource_tracker``; without that, a
worker killed mid-batch would let its tracker unlink segments the
coordinator still uses (bpo-39959) and spew leak warnings at exit.

Writes into segment buffers are confined to this module by the RS204
shard-safety lint rule (see ``docs/ANALYSIS.md``): the frame and
header layout here *is* the protocol, and an out-of-band write would
corrupt it invisibly.
"""

from __future__ import annotations

import os
import pickle
import secrets
import struct
import zlib
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Optional

import numpy as np

from repro.netflow.dataset import BIN_SECONDS, SCHEMA, FlowDataset

__all__ = [
    "ShmRing",
    "ModelPlane",
    "ModelRef",
    "FrameRef",
    "ShmProtocolError",
    "attach_segment",
    "load_model",
    "frame_bytes_for",
    "DEFAULT_RING_BYTES",
]

#: Default per-shard ring capacity. 16 MiB holds a ~360k-flow batch
#: (46 B/flow, see docs/IPC.md for the sizing math); larger batches
#: fall back to the pipe rather than failing.
DEFAULT_RING_BYTES = 16 * 1024 * 1024

#: Frame magic ("RPRF" little-endian) — catches offset/layout bugs.
_FRAME_MAGIC = 0x46525052
#: Model-plane magic ("RPRM").
_PLANE_MAGIC = 0x4D525052
#: Ring control-block magic ("RPRC").
_CTRL_MAGIC = 0x43525052

#: Frame header: magic u32, generation u32, seqno i64, bin i64,
#: rows u64, payload bytes u64, crc32 u32 — padded to 8 bytes.
_FRAME_HEADER = struct.Struct("<IIqqQQI")
_FRAME_HEADER_BYTES = (_FRAME_HEADER.size + 7) & ~7

#: Model-plane header: magic u32, version u32, stream bytes u64,
#: buffer count u64, crc32 u32 — padded; a u64 length per out-of-band
#: buffer follows.
_PLANE_HEADER = struct.Struct("<IIQQI")
_PLANE_HEADER_BYTES = (_PLANE_HEADER.size + 7) & ~7

#: Control block: 8 int64 slots at offset 0 of a ring segment.
_CTRL_SLOTS = 8
_CTRL_BYTES = _CTRL_SLOTS * 8
_C_MAGIC = 0  # _CTRL_MAGIC, written last during init
_C_GEN = 1  # reclaim generation; stale frames fail the read check
_C_HEAD = 2  # producer byte cursor into the data region
_C_PRODUCED = 3  # seqno of the last frame written
_C_CONSUMED = 4  # seqno of the last frame acked by the worker
_C_CAPACITY = 5  # data-region bytes (redundant with the segment size)


def _align8(n: int) -> int:
    return (int(n) + 7) & ~7


def _payload_crc(buf, offset: int, length: int) -> int:
    """crc32 of the xor-folded payload: one pass at memory bandwidth.

    A straight ``zlib.crc32`` over the payload runs at ~3 GB/s — more
    CPU per byte than the copy it guards, which would erase the
    transport's advantage over the pickled pipe. Folding the payload
    into one 64-bit lane with ``np.bitwise_xor.reduce`` (~8x faster)
    and crc32-ing the 8-byte digest keeps the guard at memory
    bandwidth. Any single corrupted byte flips its lane and therefore
    the digest; structural failures (stale frame, wrong offset, torn
    header) are caught by the magic/generation/seqno/length checks
    before the crc is even consulted. Payload regions are 8-aligned by
    construction (:func:`_align8` per column), so the uint64 view is
    exact.
    """
    lanes = np.frombuffer(buf, dtype=np.uint64, count=length // 8, offset=offset)
    fold = int(np.bitwise_xor.reduce(lanes)) if len(lanes) else 0
    return zlib.crc32(fold.to_bytes(8, "little"))


class ShmProtocolError(RuntimeError):
    """A shared-memory frame or segment failed validation.

    Raised on magic/seqno/generation mismatches and crc32 failures —
    the shm analogue of a corrupted pipe message. The worker reports it
    over the doorbell pipe; the unsupervised backend surfaces it as a
    :class:`~repro.core.parallel.backends.ShardFailure`, the supervisor
    treats it like any other worker failure (restart, retry,
    quarantine).
    """


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without resource-tracker ownership.

    Only the creating process may unlink a segment. Python < 3.13
    registers *every* ``SharedMemory`` with ``resource_tracker``
    though, so an attaching worker that dies (or is killed by the
    supervisor) would have its tracker unlink segments the coordinator
    still uses, and clean exits would print bogus leak warnings
    (bpo-39959). Newer Pythons expose ``track=False``; elsewhere we
    attach and immediately unregister.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    # Pre-3.13: suppress the registration instead of unregistering
    # after the fact — an unregister message for a name this process
    # also *created* (unit tests attach in-process) would corrupt the
    # tracker's cache and still warn at exit.
    original_register = resource_tracker.register
    # repro: lint-ignore[RS201] per-process tracker shim is the point: each process must stop its own tracker registering a segment it does not own
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        # repro: lint-ignore[RS201] restores the per-process tracker hook patched three lines up
        resource_tracker.register = original_register


def _segment_name(kind: str, token: str) -> str:
    return f"repro-{kind}-{os.getpid()}-{token}"


@dataclass(frozen=True)
class FrameRef:
    """Doorbell payload for one ring frame: where it is, how big."""

    seqno: int
    offset: int
    nbytes: int


def frame_bytes_for(n_rows: int) -> int:
    """Frame size (header + 8-aligned columns) for an n-row batch."""
    payload = sum(_align8(n_rows * dtype.itemsize) for dtype in SCHEMA.values())
    return _FRAME_HEADER_BYTES + payload


class ShmRing:
    """One shard's SPSC batch ring over a shared-memory segment.

    The coordinator (producer) constructs it; the worker (consumer)
    attaches by name. Layout: a 64-byte control block of int64 slots,
    then the circular data region. The request→reply discipline of the
    backends keeps at most one frame in flight, so "is there room"
    reduces to "is the previous frame acked" — :meth:`write_flows`
    returns ``None`` (caller falls back to the pipe) instead of ever
    waiting on the consumer.
    """

    def __init__(
        self,
        capacity_bytes: int = DEFAULT_RING_BYTES,
        *,
        _attach_name: Optional[str] = None,
    ):
        self._closed = False
        self._owner = _attach_name is None
        if self._owner:
            capacity = _align8(max(int(capacity_bytes), _FRAME_HEADER_BYTES + 8))
            name = _segment_name("ring", secrets.token_hex(4))
            self._shm = shared_memory.SharedMemory(
                name=name, create=True, size=_CTRL_BYTES + capacity
            )
            try:
                # Pre-fault the data region: first-touch page allocation
                # is a kernel zeroing pass that would otherwise stall the
                # first dispatch cycle through each ring position
                # mid-stream.
                np.frombuffer(self._shm.buf, dtype=np.uint8)[:] = 0
                ctrl = self._ctrl_view()
                ctrl[_C_GEN] = 0
                ctrl[_C_HEAD] = 0
                ctrl[_C_PRODUCED] = 0
                ctrl[_C_CONSUMED] = 0
                ctrl[_C_CAPACITY] = capacity
                ctrl[_C_MAGIC] = _CTRL_MAGIC  # last: marks the block valid
            except BaseException:
                ctrl = None  # drop the view so the unmap can succeed
                self._closed = True
                self._shm.close()
                self._shm.unlink()
                raise
        else:
            self._shm = attach_segment(_attach_name)
            try:
                ctrl = self._ctrl_view()
                if int(ctrl[_C_MAGIC]) != _CTRL_MAGIC:
                    raise ShmProtocolError(
                        f"segment {_attach_name!r} has no valid ring "
                        "control block"
                    )
            except BaseException:
                ctrl = None  # drop the view so the unmap can succeed
                self._closed = True
                self._shm.close()
                raise
        self._ctrl = ctrl

    @classmethod
    def attach(cls, name: str) -> "ShmRing":
        """Map an existing ring (worker side; never unlinks)."""
        return cls(_attach_name=name)

    def _ctrl_view(self) -> np.ndarray:
        return np.frombuffer(self._shm.buf, dtype=np.int64, count=_CTRL_SLOTS)

    # -- introspection --------------------------------------------------
    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def capacity(self) -> int:
        return int(self._ctrl[_C_CAPACITY])

    @property
    def generation(self) -> int:
        return int(self._ctrl[_C_GEN])

    @property
    def in_flight(self) -> bool:
        """True while a written frame has not been acked."""
        return int(self._ctrl[_C_PRODUCED]) != int(self._ctrl[_C_CONSUMED])

    # -- producer side --------------------------------------------------
    def write_flows(self, seqno: int, flows: FlowDataset) -> Optional[FrameRef]:
        """Frame one batch into the ring; ``None`` means "use the pipe".

        ``None`` is returned when the previous frame is still unacked
        (a crashed worker's orphan, until :meth:`reclaim` runs) or the
        frame exceeds the ring capacity — both are fallback conditions,
        never errors, so the stream keeps moving regardless of batch
        size or worker state.
        """
        ctrl = self._ctrl
        if int(ctrl[_C_PRODUCED]) != int(ctrl[_C_CONSUMED]):
            return None
        rows = len(flows)
        nbytes = frame_bytes_for(rows)
        capacity = int(ctrl[_C_CAPACITY])
        if nbytes > capacity:
            return None
        pos = int(ctrl[_C_HEAD]) % capacity
        if pos + nbytes > capacity:
            pos = 0  # frames never wrap: skip the tail remainder
        base = _CTRL_BYTES + pos
        offset = base + _FRAME_HEADER_BYTES
        first_bin = int(flows.column("time")[0]) // BIN_SECONDS if rows else -1
        for name, dtype in SCHEMA.items():
            column = np.ascontiguousarray(flows.column(name))
            dst = np.frombuffer(
                self._shm.buf, dtype=dtype, count=rows, offset=offset
            )
            dst[:] = column
            offset += _align8(column.nbytes)
        payload = nbytes - _FRAME_HEADER_BYTES
        crc = _payload_crc(self._shm.buf, base + _FRAME_HEADER_BYTES, payload)
        _FRAME_HEADER.pack_into(
            self._shm.buf, base,
            _FRAME_MAGIC, int(ctrl[_C_GEN]), seqno, first_bin, rows, payload, crc,
        )
        ctrl[_C_HEAD] = pos + nbytes
        ctrl[_C_PRODUCED] = seqno
        return FrameRef(seqno=seqno, offset=pos, nbytes=nbytes)

    def reclaim(self) -> None:
        """Reset after a worker death: orphaned frames are abandoned.

        Bumps the generation (any frame written before the reclaim
        fails the consumer's generation check), rewinds the cursor and
        marks the in-flight frame consumed so the next
        :meth:`write_flows` has the whole ring again. Producer-side
        only; the respawned worker re-attaches the same segment and
        simply resumes at the next doorbell seqno.
        """
        ctrl = self._ctrl
        ctrl[_C_GEN] = int(ctrl[_C_GEN]) + 1
        ctrl[_C_HEAD] = 0
        ctrl[_C_CONSUMED] = int(ctrl[_C_PRODUCED])

    # -- consumer side --------------------------------------------------
    def read_flows(self, ref_seqno: int, offset: int, nbytes: int) -> FlowDataset:
        """Rebuild the framed batch as zero-copy read-only views.

        Validates magic, generation, seqno, and the payload crc32
        before handing the columns to :class:`FlowDataset`; any
        mismatch raises :class:`ShmProtocolError`.
        """
        base = _CTRL_BYTES + int(offset)
        magic, gen, seqno, _bin, rows, payload, crc = _FRAME_HEADER.unpack_from(
            self._shm.buf, base
        )
        if magic != _FRAME_MAGIC:
            raise ShmProtocolError(f"bad frame magic {magic:#x} at offset {offset}")
        if gen != int(self._ctrl[_C_GEN]):
            raise ShmProtocolError(
                f"stale frame generation {gen} (ring at {self.generation})"
            )
        if seqno != ref_seqno:
            raise ShmProtocolError(
                f"frame seqno {seqno} does not match doorbell seqno {ref_seqno}"
            )
        if _FRAME_HEADER_BYTES + payload != int(nbytes):
            raise ShmProtocolError(
                f"frame length {payload} disagrees with doorbell {nbytes}"
            )
        check = _payload_crc(self._shm.buf, base + _FRAME_HEADER_BYTES, payload)
        if check != crc:
            raise ShmProtocolError(
                f"frame crc mismatch: header {crc:#x}, payload {check:#x}"
            )
        columns: dict[str, np.ndarray] = {}
        position = base + _FRAME_HEADER_BYTES
        for name, dtype in SCHEMA.items():
            array = np.frombuffer(
                self._shm.buf, dtype=dtype, count=rows, offset=position
            )
            array.flags.writeable = False
            columns[name] = array
            position += _align8(array.nbytes)
        return FlowDataset(columns)

    def ack(self, seqno: int) -> None:
        """Mark the frame consumed; its space is reusable immediately.

        Call only after the reply no longer references the frame's
        views (verdicts and sketch states copy out of the batch).
        """
        self._ctrl[_C_CONSUMED] = seqno

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Unmap (both sides). Owner keeps the segment linked."""
        if self._closed:
            return
        self._closed = True
        self._ctrl = None  # release the exported buffer before close()
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - caller kept a view
            pass

    def destroy(self) -> None:
        """Unmap and unlink (owner side). Idempotent, never raises."""
        was_closed = self._closed
        self.close()
        if self._owner and not was_closed:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


@dataclass(frozen=True)
class ModelRef:
    """Doorbell payload naming the current model segment."""

    name: str
    version: int
    nbytes: int


class ModelPlane:
    """Versioned shared segments carrying the pickled-once model.

    ``publish`` serialises the object a single time with pickle
    protocol 5; every contiguous numpy buffer travels out-of-band into
    the segment, so :func:`load_model` reconstructs arrays as
    *read-only views into the mapping* rather than copies. Each publish
    creates a fresh segment named after the bumped version and unlinks
    the previous one — the current version stays linked (never just
    mapped) so a worker respawned long after the publish can still
    attach it by name.
    """

    def __init__(self):
        self._token = secrets.token_hex(4)
        self._version = 0
        self._segment: Optional[shared_memory.SharedMemory] = None

    @property
    def version(self) -> int:
        return self._version

    def ref(self) -> Optional[ModelRef]:
        """The current segment's doorbell payload, if any published."""
        if self._segment is None:
            return None
        return ModelRef(
            name=self._segment.name, version=self._version,
            nbytes=self._segment.size,
        )

    def publish(self, obj) -> ModelRef:
        """Serialise once into a fresh versioned segment."""
        buffers: list[pickle.PickleBuffer] = []
        stream = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
        raws = [buffer.raw() for buffer in buffers]
        table_bytes = _align8(8 * len(raws))
        stream_off = _PLANE_HEADER_BYTES + table_bytes
        offsets = [stream_off + _align8(len(stream))]
        for raw in raws[:-1] if raws else []:
            offsets.append(offsets[-1] + _align8(raw.nbytes))
        total = (offsets[-1] + _align8(raws[-1].nbytes)) if raws \
            else stream_off + _align8(len(stream))
        version = self._version + 1
        name = _segment_name("plane", f"{self._token}-{version}")
        segment = shared_memory.SharedMemory(name=name, create=True, size=total)
        try:
            crc = zlib.crc32(stream)
            segment.buf[stream_off:stream_off + len(stream)] = stream
            lengths = np.frombuffer(
                segment.buf, dtype=np.uint64, count=len(raws),
                offset=_PLANE_HEADER_BYTES,
            )
            for index, raw in enumerate(raws):
                lengths[index] = raw.nbytes
                flat = np.frombuffer(
                    segment.buf, dtype=np.uint8, count=raw.nbytes,
                    offset=offsets[index],
                )
                flat[:] = np.frombuffer(raw, dtype=np.uint8)
                crc = zlib.crc32(flat, crc)
                del flat
            del lengths  # release exported views before any later close()
            _PLANE_HEADER.pack_into(
                segment.buf, 0, _PLANE_MAGIC, version, len(stream), len(raws), crc
            )
        except BaseException:
            lengths = flat = None  # drop views so the unmap can succeed
            segment.close()
            segment.unlink()
            raise
        # Transfer ownership before anything else can raise: from here
        # on destroy() reclaims the segment.
        previous = self._segment
        self._segment = segment
        self._version = version
        for buffer in buffers:
            buffer.release()
        if previous is not None:
            previous.close()
            try:
                previous.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        return ModelRef(name=name, version=version, nbytes=total)

    def destroy(self) -> None:
        """Unmap and unlink the current segment. Idempotent."""
        segment, self._segment = self._segment, None
        if segment is None:
            return
        try:
            segment.close()
        except BufferError:  # pragma: no cover - caller kept a view
            return
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def load_model(name: str, expected_version: int):
    """Map a model segment read-only and rebuild the object (worker).

    Returns ``(obj, segment)``; the caller owns the segment handle and
    must keep it mapped for as long as the object lives — the object's
    numpy arrays are views into it. Raises :class:`ShmProtocolError`
    on magic/version/crc mismatch.
    """
    # repro: lint-ignore[RS602] the handler releases every view before
    # segment.close(); a raise from those releases means buffers are
    # still exported and the segment could not be unmapped anyway
    segment = attach_segment(name)
    view: Optional[memoryview] = None
    stream: Optional[memoryview] = None
    out_of_band: list[memoryview] = []
    try:
        magic, version, stream_bytes, n_buffers, crc = _PLANE_HEADER.unpack_from(
            segment.buf, 0
        )
        if magic != _PLANE_MAGIC:
            raise ShmProtocolError(f"segment {name!r} is not a model plane")
        if version != expected_version:
            raise ShmProtocolError(
                f"model segment {name!r} is version {version}, "
                f"doorbell announced {expected_version}"
            )
        lengths = [
            int(n)
            for n in np.frombuffer(
                segment.buf, dtype=np.uint64, count=n_buffers,
                offset=_PLANE_HEADER_BYTES,
            )
        ]
        view = memoryview(segment.buf)
        stream_off = _PLANE_HEADER_BYTES + _align8(8 * n_buffers)
        stream = view[stream_off:stream_off + stream_bytes]
        check = zlib.crc32(stream)
        position = stream_off + _align8(stream_bytes)
        for nbytes in lengths:
            raw = view[position:position + nbytes]
            check = zlib.crc32(raw, check)
            out_of_band.append(raw.toreadonly())
            raw.release()
            position += _align8(nbytes)
        if check != crc:
            raise ShmProtocolError(
                f"model segment {name!r} crc mismatch: "
                f"header {crc:#x}, payload {check:#x}"
            )
        obj = pickle.loads(stream, buffers=out_of_band)
        return obj, segment
    except Exception:
        # Release every view taken so far — the propagating traceback
        # keeps this frame (and its locals) alive, so without explicit
        # releases the segment could never be unmapped.
        for taken in out_of_band:
            taken.release()
        if stream is not None:
            stream.release()
        if view is not None:
            view.release()
        try:
            segment.close()
        except BufferError:  # pragma: no cover - caller-held views
            pass
        raise
