"""E-OPS: operator curation study (§5.1.3).

Paper averages: 76.73 % of ground-truth DDoS dropped, 0.43 % of benign
dropped, 6.62 minutes for 38 rules.
"""

from repro.experiments import operator_study


def test_operator_study(run_experiment):
    result = run_experiment(operator_study)
    print()
    print(result.summary())

    assert 55.0 < result.notes["avg_attack_dropped_pct"] <= 100.0
    assert result.notes["avg_benign_dropped_pct"] < 3.0
    assert 2.0 < result.notes["avg_minutes"] < 20.0
    assert 10 < result.notes["n_rules_presented"] < 150

    # Every subject individually produces a usable rule set.
    for row in result.rows:
        assert row["attack_dropped_pct"] > 40.0
        assert row["benign_dropped_pct"] < 10.0
