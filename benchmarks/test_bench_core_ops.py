"""Micro-benchmarks of the substrate and pipeline hot paths.

Not a paper artifact — these track the throughput of the operations
that dominate experiment wall-clock: workload generation, blackhole
matching, balancing, aggregation, WoE fitting/encoding, GBT training
and prediction, and FP-Growth mining.
"""

import numpy as np
import pytest

from repro.core.encoding.matrix import assemble
from repro.core.encoding.woe import WoEEncoder
from repro.core.features.aggregation import aggregate
from repro.core.labeling.balancer import balance
from repro.core.models.boosting import GradientBoostedTrees
from repro.core.rules.items import ItemEncoder, deduplicate
from repro.core.rules.itemsets import fp_growth
from repro.ixp.fabric import IXPFabric
from repro.ixp.profiles import IXP_SE
from repro.traffic.workload import WorkloadGenerator


@pytest.fixture(scope="module")
def corpus():
    fabric = IXPFabric(IXP_SE)
    capture = WorkloadGenerator(fabric).generate(0, 2)
    labeled = capture.labeled_flows()
    balanced = balance(labeled, np.random.default_rng(0)).flows
    data = aggregate(balanced)
    woe = WoEEncoder().fit(data)
    matrix = assemble(data, woe)
    return capture, labeled, balanced, data, woe, matrix


def test_bench_workload_generation(benchmark):
    fabric = IXPFabric(IXP_SE)

    def generate():
        return WorkloadGenerator(fabric).generate(0, 1)

    capture = benchmark.pedantic(generate, rounds=3, iterations=1)
    assert len(capture.flows) > 1000


def test_bench_blackhole_matching(benchmark, corpus):
    capture, *_ = corpus
    registry = capture.registry()
    mask = benchmark(registry.match_flows, capture.flows, capture.end)
    assert mask.any()


def test_bench_balancing(benchmark, corpus):
    _, labeled, *_ = corpus

    def run():
        return balance(labeled, np.random.default_rng(0))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert abs(result.blackhole_share - 0.5) < 0.1


def test_bench_aggregation(benchmark, corpus):
    _, _, balanced, *_ = corpus
    data = benchmark.pedantic(lambda: aggregate(balanced), rounds=3, iterations=1)
    assert len(data) > 50


def test_bench_woe_fit(benchmark, corpus):
    data = corpus[3]
    woe = benchmark.pedantic(lambda: WoEEncoder().fit(data), rounds=3, iterations=1)
    assert woe.is_fitted


def test_bench_feature_assembly(benchmark, corpus):
    data, woe = corpus[3], corpus[4]
    matrix = benchmark(assemble, data, woe)
    assert matrix.X.shape[1] == 150


def test_bench_gbt_fit(benchmark, corpus):
    matrix = corpus[5]
    X = np.nan_to_num(matrix.X, nan=-1.0)

    def fit():
        return GradientBoostedTrees(n_estimators=10, max_depth=4).fit(X, matrix.y)

    model = benchmark.pedantic(fit, rounds=2, iterations=1)
    assert model.trees_


def test_bench_gbt_predict(benchmark, corpus):
    matrix = corpus[5]
    X = np.nan_to_num(matrix.X, nan=-1.0)
    model = GradientBoostedTrees(n_estimators=10, max_depth=4).fit(X, matrix.y)
    predictions = benchmark(model.predict, X)
    assert predictions.shape == (X.shape[0],)


def test_bench_fp_growth(benchmark, corpus):
    _, _, balanced, *_ = corpus
    encoder = ItemEncoder.fit(balanced)
    transactions = deduplicate(encoder.encode_labeled(balanced))
    itemsets = benchmark(fp_growth, transactions, 0.001)
    assert itemsets
