"""Reflection/amplification attack generation.

An :class:`AttackEvent` describes one DDoS attack against one victim:
vector mix, time window and intensity. :class:`AttackGenerator` renders
the event into sampled flow records with the vector's L3/L4 signature:
reflector sources on the vector's service port, characteristic response
packet sizes, an accompanying stream of non-first UDP fragments (source
port 0), and destination ports either sprayed over the full range or
held quasi-stable — matching the paper's observations (Fig. 4, Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.netflow.dataset import FlowDataset
from repro.netflow.fields import PORT_FRAGMENT, PROTO_UDP
from repro.traffic.reflectors import ReflectorPool
from repro.traffic.vectors import DDoSVector


@dataclass(frozen=True)
class AttackEvent:
    """One DDoS attack against one victim address."""

    victim: int
    vectors: tuple[DDoSVector, ...]
    start: int
    end: int
    #: Sampled attack flows per minute arriving at the vantage point.
    flows_per_minute: float
    #: Whether the victim's network blackholes the victim during the
    #: attack (drives label generation, not flow generation).
    blackholed: bool = True
    #: Seconds between attack start and the blackhole announcement.
    reaction_delay: int = 120
    #: Relative intensity per vector (defaults to uniform).
    vector_weights: tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("attack must have positive duration")
        if not self.vectors:
            raise ValueError("attack needs at least one vector")
        if self.flows_per_minute <= 0:
            raise ValueError("attack intensity must be positive")
        if self.vector_weights and len(self.vector_weights) != len(self.vectors):
            raise ValueError("vector_weights length mismatch")

    @property
    def duration(self) -> int:
        return self.end - self.start

    def weights(self) -> np.ndarray:
        """Normalised per-vector intensity weights."""
        if self.vector_weights:
            w = np.asarray(self.vector_weights, dtype=np.float64)
        else:
            w = np.ones(len(self.vectors), dtype=np.float64)
        return w / w.sum()


class AttackGenerator:
    """Renders attack events into sampled flow records."""

    def __init__(self, pool: ReflectorPool, member_macs: np.ndarray | None = None):
        self._pool = pool
        if member_macs is None:
            member_macs = np.arange(1, 9, dtype=np.uint64)
        self._member_macs = np.asarray(member_macs, dtype=np.uint64)

    def generate(
        self,
        rng: np.random.Generator,
        event: AttackEvent,
        window_start: int | None = None,
        window_end: int | None = None,
        epoch: int = 0,
    ) -> FlowDataset:
        """Generate the event's flows, optionally clipped to a window.

        ``epoch`` selects the reflector-pool generation in use at the
        time of the attack (see
        :meth:`repro.traffic.reflectors.ReflectorPool.pool_at_epoch`).
        """
        start = event.start if window_start is None else max(event.start, window_start)
        end = event.end if window_end is None else min(event.end, window_end)
        if end <= start:
            return FlowDataset.empty()
        expected = event.flows_per_minute * (end - start) / 60.0
        n_total = int(rng.poisson(expected))
        if n_total == 0:
            return FlowDataset.empty()

        per_vector = rng.multinomial(n_total, event.weights())
        parts = []
        for vector, count in zip(event.vectors, per_vector):
            if count:
                parts.append(
                    self._vector_flows(rng, event, vector, int(count), start, end, epoch)
                )
        return FlowDataset.concat(parts)

    def _vector_flows(
        self,
        rng: np.random.Generator,
        event: AttackEvent,
        vector: DDoSVector,
        n: int,
        start: int,
        end: int,
        epoch: int = 0,
    ) -> FlowDataset:
        src_ip = self._pool.sample(vector, rng, n, epoch=epoch).astype(np.uint32)
        if vector.random_src_ports:
            # Direct floods: spoofed/botnet sources with arbitrary
            # ephemeral ports — no service-port signature to match on.
            src_port = rng.integers(1024, 65536, size=n).astype(np.uint16)
        else:
            src_port = np.full(n, vector.src_port, dtype=np.uint16)
        protocol = np.full(n, vector.protocol, dtype=np.uint8)
        pkt_size = vector.sample_packet_sizes(rng, n)

        # Non-first fragments: no L4 header, exporters report port 0 and
        # the carrier is plain UDP irrespective of the abused service.
        # For a share of fragmenting attacks the sampled view is
        # fragment-dominated (at 1:N packet sampling the service-port
        # first fragments are often missed entirely) — these populate
        # the paper's "UDP Fragm." class (Fig. 4a, Table 3).
        fragment_fraction = vector.fragment_fraction
        if fragment_fraction > 0.0 and rng.random() < 0.15:
            fragment_fraction = 0.95
        fragments = rng.random(n) < fragment_fraction
        src_port[fragments] = PORT_FRAGMENT
        if vector.protocol == PROTO_UDP:
            # Fragments of UDP amplification are near-MTU sized.
            pkt_size[fragments] = np.clip(
                rng.normal(1480.0, 20.0, size=int(fragments.sum())), 1200.0, 1500.0
            )

        if vector.sprays_dst_ports:
            dst_port = rng.integers(0, 65536, size=n).astype(np.uint16)
        else:
            # Responses return towards a small set of ephemeral ports.
            base_ports = rng.integers(1024, 65536, size=max(1, n // 64))
            dst_port = rng.choice(base_ports, size=n).astype(np.uint16)
        dst_port[fragments] = PORT_FRAGMENT

        # Attack flows aggregate many packets per sampled flow record.
        packets = rng.geometric(0.08, size=n).astype(np.int64)
        bytes_ = np.maximum((pkt_size * packets).astype(np.int64), packets * 64)
        time = rng.integers(start, end, size=n)
        # Attack traffic enters via the member ports facing transit /
        # reflector-rich networks; keep it on a subset of MACs.
        macs = self._member_macs[: max(1, len(self._member_macs) // 2)]
        src_mac = rng.choice(macs, size=n)

        return FlowDataset(
            {
                "time": time.astype(np.int64),
                "src_ip": src_ip,
                "dst_ip": np.full(n, event.victim, dtype=np.uint32),
                "src_port": src_port,
                "dst_port": dst_port,
                "protocol": protocol,
                "packets": packets,
                "bytes": bytes_,
                "src_mac": src_mac,
                "blackhole": np.zeros(n, dtype=bool),
            }
        )
