"""Lightweight span timers for tracing pipeline phases.

A *span* measures one timed phase of the pipeline — ``streaming.ingest``,
``scrubber.fit``, ``rules.mine`` — with support for nesting: spans opened
while another span is active record their parent, so the ingest →
bin-close → aggregate → WoE-encode → classify → retrain path shows up as
a tree rather than a flat list.

Usage::

    from repro import obs

    with obs.span(names.SPAN_STREAMING_INGEST):
        ...                       # nested spans attribute to this parent

Every completed span feeds two sinks on its registry:

* a :class:`~repro.obs.registry.Histogram` under the span's own name
  (seconds; percentiles, bucket counts), and
* a per-name :class:`SpanAggregate` on the tracker (count, total,
  min/max, parent breakdown) for the CLI's phase table.

Timing uses ``time.perf_counter`` (monotonic); the clock is injectable
for deterministic tests. The span stack is thread-local, so concurrent
drivers do not corrupt each other's nesting.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

__all__ = ["SpanAggregate", "SpanTracker", "span"]


@dataclass
class SpanAggregate:
    """Accumulated timing of all completed spans with one name."""

    name: str
    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = 0.0
    #: Completed-span count per parent span name ("" = root).
    parents: dict[str, int] = field(default_factory=dict)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def record(self, duration: float, parent: str) -> None:
        self.count += 1
        self.total += duration
        if duration < self.min:
            self.min = duration
        if duration > self.max:
            self.max = duration
        self.parents[parent] = self.parents.get(parent, 0) + 1

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "count": self.count,
            "total_seconds": self.total,
            "min_seconds": self.min if self.count else None,
            "max_seconds": self.max if self.count else None,
            "mean_seconds": self.mean if self.count else None,
            "parents": dict(self.parents),
        }


class SpanTracker:
    """Per-registry span state: thread-local stacks + per-name aggregates."""

    def __init__(self, registry, clock: Callable[[], float] = time.perf_counter):
        self._registry = registry
        self._clock = clock
        self._local = threading.local()
        self._aggregates: dict[str, SpanAggregate] = {}
        self._lock = threading.Lock()

    # -- stack ---------------------------------------------------------
    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current(self) -> Optional[str]:
        """Name of the innermost active span (None outside any span)."""
        stack = self._stack()
        return stack[-1] if stack else None

    def active_path(self) -> tuple[str, ...]:
        """The active nesting path, outermost first."""
        return tuple(self._stack())

    def depth(self) -> int:
        return len(self._stack())

    # -- recording -----------------------------------------------------
    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a phase; nested calls record their parent."""
        stack = self._stack()
        parent = stack[-1] if stack else ""
        stack.append(name)
        start = self._clock()
        try:
            yield
        finally:
            duration = self._clock() - start
            stack.pop()
            if duration < 0:  # non-monotonic injected clock: clamp
                duration = 0.0
            with self._lock:
                agg = self._aggregates.get(name)
                if agg is None:
                    agg = self._aggregates[name] = SpanAggregate(name)
                agg.record(duration, parent)
            self._registry.histogram(name).observe(duration)

    # -- inspection ----------------------------------------------------
    def stats(self) -> dict[str, SpanAggregate]:
        """Per-name aggregates, sorted by total time descending."""
        with self._lock:
            items = sorted(
                self._aggregates.values(), key=lambda a: -a.total
            )
        return {a.name: a for a in items}

    def names(self) -> set[str]:
        return set(self._aggregates)

    def reset(self) -> None:
        with self._lock:
            self._aggregates.clear()
        self._local = threading.local()


@contextmanager
def span(name: str) -> Iterator[None]:
    """Time a phase against the *active* registry (no-op when disabled)."""
    from repro.obs import registry as _registry

    if not _registry.is_enabled():
        yield
        return
    with _registry.get_registry().spans.span(name):
        yield
