"""Tests for salted pseudonymisation."""

import numpy as np
import pytest

from repro.netflow.anonymize import Anonymizer


class TestAnonymizer:
    def test_requires_salt(self):
        with pytest.raises(ValueError):
            Anonymizer("")

    def test_deterministic_per_salt(self):
        a = Anonymizer("salt-1")
        assert a.anonymize_ip(42) == a.anonymize_ip(42)

    def test_different_salts_differ(self):
        assert Anonymizer("salt-1").anonymize_ip(42) != Anonymizer("salt-2").anonymize_ip(42)

    def test_ip_stays_32_bit(self):
        a = Anonymizer("s")
        for value in (0, 1, 2**32 - 1):
            assert 0 <= a.anonymize_ip(value) < 2**32

    def test_mac_stays_48_bit(self):
        a = Anonymizer("s")
        assert 0 <= a.anonymize_mac(2**48 - 1) < 2**48

    def test_dataset_joinable(self, handmade_flows):
        """The same address maps identically across datasets."""
        a = Anonymizer("secret")
        first = a.anonymize(handmade_flows)
        second = a.anonymize(handmade_flows)
        np.testing.assert_array_equal(first.src_ip, second.src_ip)

    def test_dataset_grouping_preserved(self, handmade_flows):
        """Distinct addresses stay distinct, equal stay equal."""
        anonymized = Anonymizer("secret").anonymize(handmade_flows)
        original_groups = {}
        for i in range(len(handmade_flows)):
            original_groups.setdefault(int(handmade_flows.dst_ip[i]), set()).add(
                int(anonymized.dst_ip[i])
            )
        # Each original address maps to exactly one pseudonym.
        assert all(len(v) == 1 for v in original_groups.values())
        # And pseudonyms don't collide across the (small) address set.
        pseudonyms = [next(iter(v)) for v in original_groups.values()]
        assert len(set(pseudonyms)) == len(pseudonyms)

    def test_non_address_columns_untouched(self, handmade_flows):
        anonymized = Anonymizer("secret").anonymize(handmade_flows)
        np.testing.assert_array_equal(anonymized.time, handmade_flows.time)
        np.testing.assert_array_equal(anonymized.bytes, handmade_flows.bytes)
        np.testing.assert_array_equal(anonymized.src_port, handmade_flows.src_port)
