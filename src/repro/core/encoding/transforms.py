"""Numeric feature transformers of the preprocessing pipelines (Fig. 8).

All transformers follow the fit/transform contract on plain float64
matrices and are deliberately small: Imputer (I), Standardizer (S),
MinMaxNormalizer (N), FeatureReducer (FR).
"""

from __future__ import annotations

import numpy as np


class Transformer:
    """Base fit/transform interface."""

    def fit(self, X: np.ndarray) -> "Transformer":
        raise NotImplementedError

    def transform(self, X: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


class Imputer(Transformer):
    """Replace NaN values with a constant (the paper uses -1)."""

    def __init__(self, fill_value: float = -1.0):
        self.fill_value = fill_value

    def fit(self, X: np.ndarray) -> "Imputer":
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if not np.isnan(X).any():
            return X
        out = X.copy()
        out[np.isnan(out)] = self.fill_value
        return out


class Standardizer(Transformer):
    """Standardise columns to zero mean and unit variance."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "Standardizer":
        X = np.asarray(X, dtype=np.float64)
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("Standardizer is not fitted")
        return (np.asarray(X, dtype=np.float64) - self.mean_) / self.scale_


class MinMaxNormalizer(Transformer):
    """Scale columns into [0, 1] (required by multinomial naive Bayes)."""

    def __init__(self) -> None:
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "MinMaxNormalizer":
        X = np.asarray(X, dtype=np.float64)
        self.min_ = X.min(axis=0)
        value_range = X.max(axis=0) - self.min_
        value_range[value_range == 0.0] = 1.0
        self.range_ = value_range
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.min_ is None or self.range_ is None:
            raise RuntimeError("MinMaxNormalizer is not fitted")
        out = (np.asarray(X, dtype=np.float64) - self.min_) / self.range_
        # Transform-time values outside the fitted range are clipped so
        # downstream non-negativity assumptions hold.
        return np.clip(out, 0.0, 1.0)


class FeatureReducer(Transformer):
    """Drop near-constant columns identified on the training data (FR).

    The aggregation deliberately produces redundant columns (Appendix B);
    columns whose variance falls below ``threshold`` carry no usable
    signal and are removed before modeling.
    """

    def __init__(self, threshold: float = 1e-12):
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = threshold
        self.keep_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "FeatureReducer":
        X = np.asarray(X, dtype=np.float64)
        # All-NaN columns have undefined variance; they are exactly the
        # columns we want dropped, so compute on zero-filled data and
        # merge: a column is kept iff its non-NaN values vary.
        mask = np.isnan(X)
        filled = np.where(mask, 0.0, X)
        counts = (~mask).sum(axis=0)
        with np.errstate(invalid="ignore", divide="ignore"):
            means = np.where(counts > 0, filled.sum(axis=0) / np.maximum(counts, 1), 0.0)
            squares = np.where(
                counts > 0,
                (np.where(mask, 0.0, (X - means) ** 2)).sum(axis=0) / np.maximum(counts, 1),
                0.0,
            )
        variances = np.where(counts > 1, squares, 0.0)
        keep = variances > self.threshold
        if not keep.any():
            # Never reduce to an empty matrix; keep everything instead.
            keep = np.ones(X.shape[1], dtype=bool)
        self.keep_ = keep
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.keep_ is None:
            raise RuntimeError("FeatureReducer is not fitted")
        return np.asarray(X, dtype=np.float64)[:, self.keep_]

    @property
    def n_kept(self) -> int:
        if self.keep_ is None:
            raise RuntimeError("FeatureReducer is not fitted")
        return int(self.keep_.sum())
