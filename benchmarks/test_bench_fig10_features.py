"""E-F10: XGB feature importance by average gain (Fig. 10)."""

from repro.experiments import fig10_features


def test_fig10_features(run_experiment):
    result = run_experiment(fig10_features)
    print()
    print(result.summary())

    assert len(result.rows) == 10
    gains = [row["avg_gain"] for row in result.rows]
    assert gains == sorted(gains, reverse=True)
    assert gains[0] > 0.0

    # Paper shape: the top features mix stable vector properties (ports,
    # protocol, sizes) with drifting local knowledge (source IPs) — at
    # least three distinct feature domains appear.
    assert result.notes["distinct_domains_in_top"] >= 3
    domains = result.notes["domains"].split(",")
    assert "src_port" in domains  # the abused service ports
    assert "src_ip" in domains    # the (drifting) reflectors
