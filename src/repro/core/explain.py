"""Local explainability (paper §5.2.3, §6.6, Fig. 9 / Fig. 14).

Classification decisions are explained through two model-independent
mechanisms: the WoE encodings of the record's features (signed evidence
per feature) and the tagging rules annotated during aggregation
(problematic header combinations that double as ACLs). This module
renders both into an :class:`Explanation` per record and provides the
aggregate overlap/distribution analyses behind Fig. 14.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.encoding.woe import WoEEncoder
from repro.core.features import schema
from repro.core.features.aggregation import AggregatedDataset
from repro.core.models.baselines import RuleBasedClassifier
from repro.core.models.boosting import GradientBoostedTrees
from repro.core.models.kernels import LEAF
from repro.core.models.tree import DecisionTree
from repro.core.rules.model import TaggingRule
from repro.netflow.record import int_to_ip


@dataclass(frozen=True)
class FeatureEvidence:
    """WoE evidence of one feature of one record."""

    column: str
    raw_value: int
    woe: float

    def describe(self) -> str:
        domain, _, _, _ = schema.parse_column(self.column)
        value = int_to_ip(self.raw_value) if domain == "src_ip" and self.raw_value >= 0 else str(self.raw_value)
        direction = "attack" if self.woe > 0 else ("benign" if self.woe < 0 else "neutral")
        return f"{self.column}={value}: WoE {self.woe:+.2f} ({direction} evidence)"


@dataclass(frozen=True)
class Explanation:
    """Local explanation of one record's classification."""

    bin: int
    target_ip: int
    predicted_ddos: bool
    score: float
    #: WoE evidence sorted by absolute strength, strongest first.
    evidence: tuple[FeatureEvidence, ...]
    #: Tagging rules matched by the record's flows.
    matched_rules: tuple[TaggingRule, ...]

    def summary(self, top: int = 5) -> str:
        lines = [
            f"target {int_to_ip(self.target_ip)} @ bin {self.bin}: "
            f"{'DDoS' if self.predicted_ddos else 'benign'} (score {self.score:.3f})"
        ]
        for item in self.evidence[:top]:
            lines.append("  " + item.describe())
        for rule in self.matched_rules:
            lines.append("  rule " + rule.describe())
        return "\n".join(lines)


def explain_record(
    data: AggregatedDataset,
    index: int,
    woe: WoEEncoder,
    score: float,
    rules: Sequence[TaggingRule] = (),
    top: int = 10,
) -> Explanation:
    """Build the explanation for record ``index``."""
    if not 0 <= index < len(data):
        raise IndexError("record index out of range")
    evidence: list[FeatureEvidence] = []
    for column, values in data.categorical.items():
        raw = int(values[index])
        if raw == schema.MISSING_KEY:
            continue
        evidence.append(
            FeatureEvidence(
                column=column,
                raw_value=raw,
                woe=float(woe.encode_column(column, np.array([raw]))[0]),
            )
        )
    evidence.sort(key=lambda e: abs(e.woe), reverse=True)
    matched: tuple[TaggingRule, ...] = ()
    if data.rule_tags is not None and rules:
        by_id = {r.rule_id: r for r in rules}
        matched = tuple(
            by_id[t] for t in data.rule_tags[index] if t in by_id
        )
    return Explanation(
        bin=int(data.bins[index]),
        target_ip=int(data.targets[index]),
        predicted_ddos=score >= 0.5,
        score=score,
        evidence=tuple(evidence[:top]),
        matched_rules=matched,
    )


@dataclass(frozen=True)
class EnsembleSummary:
    """Structural view of a fitted tree model (Fig. 10 companion).

    Read straight off the compiled flat-array kernels — no node-graph
    reconstruction — so it is cheap enough to log after every retrain.
    """

    model: str
    n_trees: int
    n_nodes: int
    n_leaves: int
    max_depth: int
    #: Number of splits per feature index across the whole ensemble.
    feature_split_counts: np.ndarray

    def top_features(self, top: int = 10) -> list[tuple[int, int]]:
        """(feature, split count) pairs sorted by usage, strongest first."""
        order = np.argsort(self.feature_split_counts)[::-1]
        return [
            (int(f), int(self.feature_split_counts[f]))
            for f in order[:top]
            if self.feature_split_counts[f] > 0
        ]


def ensemble_summary(model: GradientBoostedTrees | DecisionTree) -> EnsembleSummary:
    """Summarise a fitted tree model from its flat kernel arrays."""
    if isinstance(model, GradientBoostedTrees):
        forest = model.forest_
        if forest is None:
            raise RuntimeError("GradientBoostedTrees is not fitted")
        feature, n_trees, depth = forest.feature, forest.n_trees, forest.max_depth()
    else:
        kernel = model.kernel_
        if kernel is None:
            raise RuntimeError("DecisionTree is not fitted")
        feature, n_trees, depth = kernel.feature, 1, kernel.max_depth()
    internal = feature[feature != LEAF]
    counts = np.bincount(internal, minlength=int(internal.max()) + 1 if internal.size else 0)
    return EnsembleSummary(
        model=model.name,
        n_trees=n_trees,
        n_nodes=int(feature.shape[0]),
        n_leaves=int((feature == LEAF).sum()),
        max_depth=depth,
        feature_split_counts=counts.astype(np.int64),
    )


@dataclass(frozen=True)
class OverlapReport:
    """Fig. 14a: agreement between the ML model and the rule tags."""

    #: Share of records where model and RBC decide coherently.
    coherent_share: float
    #: Among coherent *positive* decisions: share with >= 1 / <= 3 rules.
    explained_share: float
    explained_up_to_3_share: float
    #: Histogram of matched-rule counts on coherent positives.
    rule_count_histogram: dict[int, int]


def rule_overlap(
    data: AggregatedDataset, model_predictions: np.ndarray
) -> OverlapReport:
    """Quantify how often rule tags can explain model decisions."""
    if data.rule_tags is None:
        raise ValueError("aggregated data carries no rule annotations")
    preds = np.asarray(model_predictions).astype(bool)
    rbc = RuleBasedClassifier().predict_records(data).astype(bool)
    coherent = preds == rbc
    positives = coherent & preds
    histogram: dict[int, int] = {}
    explained = 0
    explained3 = 0
    n_pos = int(positives.sum())
    for i in np.flatnonzero(positives):
        count = len(data.rule_tags[i])
        histogram[count] = histogram.get(count, 0) + 1
        if count >= 1:
            explained += 1
        if 1 <= count <= 3:
            explained3 += 1
    return OverlapReport(
        coherent_share=float(coherent.mean()) if len(data) else 0.0,
        explained_share=explained / n_pos if n_pos else 0.0,
        explained_up_to_3_share=explained3 / n_pos if n_pos else 0.0,
        rule_count_histogram=histogram,
    )


def woe_distributions_by_outcome(
    data: AggregatedDataset,
    woe: WoEEncoder,
    predictions: np.ndarray,
    columns: Sequence[str],
) -> dict[str, dict[str, np.ndarray]]:
    """Fig. 14b: per-column WoE value distributions for TP vs FP records.

    Returns ``{column: {"tp": woe_values, "fp": woe_values}}``.
    """
    preds = np.asarray(predictions).astype(bool)
    labels = data.labels.astype(bool)
    tp = preds & labels
    fp = preds & ~labels
    out: dict[str, dict[str, np.ndarray]] = {}
    for column in columns:
        values = woe.encode_column(column, data.categorical[column])
        out[column] = {"tp": values[tp], "fp": values[fp]}
    return out
