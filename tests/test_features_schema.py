"""Tests for the 150-column feature schema."""

import pytest

from repro.core.features import schema


class TestSchema:
    def test_counts_match_paper(self):
        """|M| * |C| rankings with 2r columns each = 150 (paper §5.2.1)."""
        assert len(schema.CATEGORICALS) == 5
        assert len(schema.METRICS) == 3
        assert schema.RANKS == 5
        assert len(schema.all_columns()) == 150
        assert len(schema.key_columns()) == 75
        assert len(schema.value_columns()) == 75

    def test_no_duplicate_columns(self):
        columns = schema.all_columns()
        assert len(columns) == len(set(columns))

    def test_column_name_notation(self):
        """Fig. 10 notation: categorical/metric/rank."""
        assert schema.key_column("src_ip", "bytes", 0) == "src_ip/bytes/0"
        assert schema.value_column("src_ip", "bytes", 0) == "src_ip/bytes/0/value"

    def test_parse_key_column(self):
        assert schema.parse_column("src_port/packets/3") == ("src_port", "packets", 3, False)

    def test_parse_value_column(self):
        assert schema.parse_column("src_mac/bytes/1/value") == ("src_mac", "bytes", 1, True)

    def test_parse_malformed(self):
        with pytest.raises(ValueError):
            schema.parse_column("src_ip")

    def test_parse_roundtrip_all(self):
        for name in schema.all_columns():
            cat, metric, rank, is_value = schema.parse_column(name)
            assert cat in schema.CATEGORICALS
            assert metric in schema.METRICS
            assert 0 <= rank < schema.RANKS
            rebuilt = (
                schema.value_column(cat, metric, rank)
                if is_value
                else schema.key_column(cat, metric, rank)
            )
            assert rebuilt == name
