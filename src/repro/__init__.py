"""IXP Scrubber reproduction.

A from-scratch Python implementation of *IXP Scrubber: Learning from
Blackholing Traffic for ML-Driven DDoS Detection at Scale* (SIGCOMM
2022), including every substrate the system depends on: flow records,
BGP blackholing, an IXP fabric simulator, benign/DDoS traffic
generation, and all ML components (WoE encoding, FP-Growth rule mining,
gradient-boosted trees, and more) on plain numpy.

Quickstart::

    import numpy as np
    from repro import (
        IXPFabric, IXP_SE, WorkloadGenerator, balance, label_capture,
        IXPScrubber,
    )

    fabric = IXPFabric(IXP_SE)
    capture = WorkloadGenerator(fabric).generate(start_day=0, n_days=3)
    flows = label_capture(capture)
    balanced = balance(flows, np.random.default_rng(0))
    scrubber = IXPScrubber().fit(balanced.flows)
    verdicts = scrubber.predict_flows(balanced.flows)
"""

from repro import obs
from repro.core import (
    Explanation,
    IXPScrubber,
    ScrubberConfig,
    TargetVerdict,
    explain_record,
    geographic_transfer,
    one_shot_evaluation,
    reflector_overlap_matrix,
    rule_overlap,
    sliding_window_evaluation,
)
from repro.core.features import AggregatedDataset, aggregate
from repro.core.multiclass import RuleTagPredictor
from repro.core.persistence import load_scrubber, save_scrubber
from repro.core.streaming import StreamingScrubber, StreamingStats
from repro.core.labeling import BalancedDataset, balance, label_capture
from repro.core.models import (
    ConfusionMatrix,
    GradientBoostedTrees,
    ModelPipeline,
    fbeta_score,
    make_pipeline,
)
from repro.core.rules import (
    RuleSet,
    RuleStatus,
    TaggingRule,
    export_acl,
    export_flowspec,
    mine_rules,
    minimize_rules,
)
from repro.ixp import ALL_PROFILES, IXP_CE1, IXP_CE2, IXP_SE, IXP_US1, IXP_US2, IXPFabric
from repro.netflow import FlowDataset, FlowRecord
from repro.traffic import BooterSimulator, WorkloadCapture, WorkloadGenerator

__version__ = "1.0.0"

__all__ = [
    "ALL_PROFILES",
    "AggregatedDataset",
    "BalancedDataset",
    "BooterSimulator",
    "ConfusionMatrix",
    "Explanation",
    "FlowDataset",
    "FlowRecord",
    "GradientBoostedTrees",
    "IXPFabric",
    "IXPScrubber",
    "IXP_CE1",
    "IXP_CE2",
    "IXP_SE",
    "IXP_US1",
    "IXP_US2",
    "ModelPipeline",
    "RuleSet",
    "RuleStatus",
    "ScrubberConfig",
    "TaggingRule",
    "TargetVerdict",
    "WorkloadCapture",
    "WorkloadGenerator",
    "aggregate",
    "balance",
    "explain_record",
    "fbeta_score",
    "geographic_transfer",
    "label_capture",
    "load_scrubber",
    "make_pipeline",
    "mine_rules",
    "minimize_rules",
    "RuleTagPredictor",
    "StreamingScrubber",
    "StreamingStats",
    "obs",
    "export_acl",
    "export_flowspec",
    "save_scrubber",
    "one_shot_evaluation",
    "reflector_overlap_matrix",
    "rule_overlap",
    "sliding_window_evaluation",
    "__version__",
]
