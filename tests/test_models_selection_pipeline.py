"""Tests for model selection utilities and the Fig. 8 pipelines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.models.baselines import DummyClassifier, RuleBasedClassifier
from repro.core.models.pipeline import (
    PIPELINE_FACTORIES,
    TABLE3_MODELS,
    TABLE5_MODELS,
    make_pipeline,
)
from repro.core.models.selection import (
    grid_search,
    k_fold,
    parameter_grid,
    train_test_split,
)
from repro.core.models.tree import DecisionTree


class TestTrainTestSplit:
    def test_partition(self, rng):
        train, test = train_test_split(100, 1 / 3, rng)
        assert len(set(train) & set(test)) == 0
        assert len(train) + len(test) == 100

    def test_fraction_respected(self, rng):
        _, test = train_test_split(300, 1 / 3, rng)
        assert abs(len(test) - 100) <= 1

    def test_stratified_preserves_ratio(self, rng):
        labels = np.array([1] * 30 + [0] * 270)
        train, test = train_test_split(300, 1 / 3, rng, stratify=labels)
        assert abs(labels[test].mean() - 0.1) < 0.05

    def test_invalid_fraction(self, rng):
        with pytest.raises(ValueError):
            train_test_split(10, 1.5, rng)

    def test_too_small(self, rng):
        with pytest.raises(ValueError):
            train_test_split(1, 0.5, rng)

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(10, 500), seed=st.integers(0, 100))
    def test_partition_property(self, n, seed):
        rng = np.random.default_rng(seed)
        train, test = train_test_split(n, 0.25, rng)
        assert sorted(list(train) + list(test)) == list(range(n))


class TestKFold:
    def test_partition(self, rng):
        folds = list(k_fold(90, 3, rng))
        assert len(folds) == 3
        all_validation = np.concatenate([v for _, v in folds])
        assert sorted(all_validation) == list(range(90))

    def test_train_validation_disjoint(self, rng):
        for train, validation in k_fold(50, 5, rng):
            assert len(set(train) & set(validation)) == 0
            assert len(train) + len(validation) == 50

    def test_stratified_balance(self, rng):
        labels = np.array([1] * 30 + [0] * 60)
        for _, validation in k_fold(90, 3, rng, stratify=labels):
            assert abs(labels[validation].mean() - 1 / 3) < 0.12

    def test_invalid_k(self, rng):
        with pytest.raises(ValueError):
            list(k_fold(10, 1, rng))

    def test_too_few_samples(self, rng):
        with pytest.raises(ValueError):
            list(k_fold(2, 3, rng))


class TestGridSearch:
    def test_parameter_grid_expansion(self):
        grid = parameter_grid({"a": [1, 2], "b": ["x"]})
        assert grid == [{"a": 1, "b": "x"}, {"a": 2, "b": "x"}]

    def test_empty_grid(self):
        assert parameter_grid({}) == [{}]

    def test_picks_better_depth(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, size=(600, 4))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)  # needs depth >= 2
        result = grid_search(
            lambda **p: DecisionTree(**p), {"max_depth": [1, 4]}, X, y, k=3
        )
        assert result.best_params == {"max_depth": 4}
        # XOR root splits carry near-zero gini gain, so CART's first cut
        # is noise-driven; the cross-validated score stays well above
        # the depth-1 stump nevertheless.
        scores = {tuple(sorted(p.items())): s for p, s in result.history}
        assert scores[(("max_depth", 4),)] > scores[(("max_depth", 1),)] + 0.1
        assert len(result.history) == 2

    def test_history_covers_grid(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(90, 3))
        y = (X[:, 0] > 0).astype(int)
        result = grid_search(
            lambda **p: DecisionTree(**p),
            {"max_depth": [2, 3], "min_samples_leaf": [1, 5]},
            X, y, k=3,
        )
        assert len(result.history) == 4


class TestPipelines:
    @pytest.fixture
    def data(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(400, 12))
        X[rng.random(X.shape) < 0.05] = np.nan  # pipelines must impute
        y = (np.nan_to_num(X[:, 0]) > 0).astype(int)
        return X, y

    @pytest.mark.parametrize("name", TABLE5_MODELS)
    def test_all_pipelines_fit_and_predict(self, name, data):
        X, y = data
        pipeline = make_pipeline(name) if name != "NN" else make_pipeline(
            name, n_pca_components=8, epochs=10
        )
        pipeline.fit(X, y)
        predictions = pipeline.predict(X)
        assert predictions.shape == (400,)
        assert set(np.unique(predictions)) <= {0, 1}

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            make_pipeline("RandomForest")

    def test_table3_subset_of_table5(self):
        assert set(TABLE3_MODELS) < set(TABLE5_MODELS)
        assert set(TABLE5_MODELS) == set(PIPELINE_FACTORIES)

    def test_with_classifier_swaps(self, data):
        X, y = data
        a = make_pipeline("XGB", n_estimators=4).fit(X, y)
        b = make_pipeline("XGB", n_estimators=4).fit(X, 1 - y)
        swapped = a.with_classifier(b.classifier)
        # The swapped pipeline uses a's transformers but b's classifier:
        # predictions should match b's inverted-label behaviour.
        agreement = (swapped.predict(X) == b.predict(X)).mean()
        assert agreement > 0.9


class TestBaselines:
    def test_dummy_is_cointoss(self):
        X = np.zeros((10000, 2))
        y = np.zeros(10000, dtype=int)
        dummy = DummyClassifier(seed=0).fit(X, y)
        rate = dummy.predict(X).mean()
        assert 0.45 < rate < 0.55

    def test_dummy_requires_fit(self):
        with pytest.raises(RuntimeError):
            DummyClassifier().predict(np.zeros((1, 1)))

    def test_dummy_tolerates_nan(self):
        X = np.full((10, 2), np.nan)
        DummyClassifier().fit(X, np.zeros(10, dtype=int))

    def test_rbc_requires_annotations(self, handmade_flows):
        from repro.core.features.aggregation import aggregate

        data = aggregate(handmade_flows)
        with pytest.raises(ValueError):
            RuleBasedClassifier().predict_records(data)

    def test_rbc_predicts_from_tags(self, handmade_flows):
        from repro.core.features.aggregation import aggregate
        from repro.core.rules.model import PortMatch, TaggingRule

        rule = TaggingRule(
            rule_id="ntp1", confidence=0.99, support=0.1,
            protocol=17, port_src=PortMatch(values=frozenset({123})),
        )
        data = aggregate(handmade_flows, rules=[rule])
        predictions = RuleBasedClassifier().predict_records(data)
        # Records of target 100 in bin 0 contain NTP flows.
        idx = next(
            i for i in range(len(data)) if data.bins[i] == 0 and data.targets[i] == 100
        )
        assert predictions[idx] == 1

    def test_rbc_rule_subset(self, handmade_flows):
        from repro.core.features.aggregation import aggregate
        from repro.core.rules.model import PortMatch, TaggingRule

        rule = TaggingRule(
            rule_id="ntp1", confidence=0.99, support=0.1,
            protocol=17, port_src=PortMatch(values=frozenset({123})),
        )
        data = aggregate(handmade_flows, rules=[rule])
        none = RuleBasedClassifier(rule_ids=["other"]).predict_records(data)
        assert not none.any()
