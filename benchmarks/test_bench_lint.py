"""Incremental-lint benchmark (BENCH_lint.json).

Not a paper artifact — this guards the content-hash lint cache that
makes ``repro lint`` cheap enough to run on every edit. Two timings of
``run_lint`` over the *real* tree:

* **cold** — no cache file: every module is parsed and every pass runs.
* **warm** — an unchanged tree against a populated cache: the runner
  hashes file bytes, matches the project fingerprint and reconstructs
  the report without parsing a single module.

The warm run must be at least ``BENCH_LINT_MIN_SPEEDUP`` times faster
than cold (default 5; the observed ratio is two orders of magnitude)
and both runs must produce byte-identical JSON — the same equivalence
CI asserts through the CLI.

Timings measure ``run_lint`` directly rather than the ``repro lint``
process, so interpreter/numpy import time (~0.7 s, paid by any CLI) is
not billed to the cache.

Results land in ``BENCH_lint.json`` at the repo root.

Run:  PYTHONPATH=src python -m pytest benchmarks/test_bench_lint.py -q
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.analysis import default_config, format_json, run_lint

_REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_FILE = _REPO_ROOT / "BENCH_lint.json"

COLD_REPEATS = 3
WARM_REPEATS = 9

MIN_SPEEDUP = float(os.environ.get("BENCH_LINT_MIN_SPEEDUP", "5"))


def _median_seconds(fn, repeats):
    times = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return float(np.median(times)), result


def test_lint_cache_speedup(tmp_path):
    config = default_config()
    cache = tmp_path / "lint-cache.json"

    def cold():
        if cache.exists():
            cache.unlink()
        return run_lint(config, cache_path=cache)

    def warm():
        return run_lint(config, cache_path=cache)

    cold_s, cold_result = _median_seconds(cold, COLD_REPEATS)
    warm()  # populate once more so every timed warm run starts hot
    warm_s, warm_result = _median_seconds(warm, WARM_REPEATS)

    assert format_json(warm_result) == format_json(cold_result)
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")

    payload = {
        "modules_scanned": cold_result.modules_scanned,
        "cold_seconds": round(cold_s, 6),
        "warm_seconds": round(warm_s, 6),
        "speedup": round(speedup, 2),
        "min_speedup": MIN_SPEEDUP,
    }
    data = {}
    if BENCH_FILE.exists():
        data = json.loads(BENCH_FILE.read_text())
    data["lint_cache"] = payload
    BENCH_FILE.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")

    print()
    print(
        f"lint: cold {cold_s * 1e3:.1f} ms, warm {warm_s * 1e3:.1f} ms, "
        f"speedup {speedup:.0f}x over {cold_result.modules_scanned} modules"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"warm lint only {speedup:.1f}x faster than cold "
        f"(need {MIN_SPEEDUP}x): cold {cold_s:.3f}s warm {warm_s:.3f}s"
    )
