"""Self-attack set (SAS) generation via a booter-service simulator.

The paper validates against flow data from self-initiated DDoS attacks
purchased from DDoS-for-hire services (small packages: < 7 Gbps,
< 5 minutes, §4.3). This module simulates such purchases: short attacks
against dedicated victim addresses, using the vector menu booters
actually offer — which notably *includes* WS-Discovery, a vector that is
nearly absent from blackholing traffic (Fig. 4b).

The resulting capture carries ground-truth labels (the ``blackhole``
column marks attack flows directly); no BGP machinery is involved, which
is exactly what makes the SAS an independent check against sampling bias
(§4.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from typing import TYPE_CHECKING

from repro.netflow.dataset import FlowDataset
from repro.traffic.address_space import AddressBlock
from repro.traffic.attacks import AttackEvent, AttackGenerator
from repro.traffic.benign import BenignTrafficGenerator
from repro.traffic.reflectors import ReflectorPool
from repro.traffic.vectors import (
    APPLE_RD,
    CHARGEN,
    DDoSVector,
    DNS,
    LDAP,
    MEMCACHED,
    NTP,
    SNMP,
    SSDP,
    WS_DISCOVERY,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids circular import
    from repro.ixp.fabric import IXPFabric

#: The booter menu and its popularity among packages.
BOOTER_MENU: tuple[tuple[DDoSVector, float], ...] = (
    (NTP, 0.22),
    (DNS, 0.20),
    (LDAP, 0.14),
    (SSDP, 0.12),
    (MEMCACHED, 0.08),
    (SNMP, 0.06),
    (CHARGEN, 0.06),
    (WS_DISCOVERY, 0.08),
    (APPLE_RD, 0.04),
)

#: Package limits of the smallest booter offering (paper §4.3).
MAX_ATTACK_SECONDS = 300
MIN_ATTACK_SECONDS = 60


@dataclass
class SelfAttackCapture:
    """Ground-truth labeled flows from controlled self-attacks."""

    flows: FlowDataset  # blackhole column = attack ground truth
    events: list[AttackEvent]
    event_vectors: list[tuple[str, ...]]
    start: int
    end: int


class BooterSimulator:
    """Simulates purchasing booter attacks against dedicated victims."""

    def __init__(self, fabric: "IXPFabric", seed: int = 0x5A5):
        self.fabric = fabric
        self._seed = seed
        # Booters draw on the same regional reflector infrastructure as
        # real attackers, plus their own lists: use a pool from the same
        # region with a different seed (partially overlapping via the
        # shared block).
        self._pool = ReflectorPool(
            fabric.profile.region, seed=seed * 13 + 5, shared_fraction=0.15
        )
        self._attack_gen = AttackGenerator(self._pool, member_macs=fabric.member_macs)
        self._benign_gen = BenignTrafficGenerator(
            seed=seed * 13 + 6, member_macs=fabric.member_macs
        )
        # Dedicated victim space: a small block inside the vantage
        # point's customer space reserved for the experiment.
        space = fabric.customer_space
        self.victims = AddressBlock(space.base + space.size - 256, 256)

    def run_campaign(
        self,
        n_attacks: int,
        start: int = 0,
        spacing: int = 900,
        intensity: float = 80.0,
    ) -> SelfAttackCapture:
        """Purchase ``n_attacks`` sequential attacks, ``spacing`` s apart.

        Returns attack flows labeled True plus benign background from the
        same window labeled False (the SAS balancing of §4.1 then
        equalises the two classes).
        """
        if n_attacks <= 0:
            raise ValueError("n_attacks must be positive")
        rng = np.random.default_rng(self._seed)
        menu = [v for v, _ in BOOTER_MENU]
        weights = np.array([w for _, w in BOOTER_MENU])
        weights = weights / weights.sum()

        events: list[AttackEvent] = []
        event_vectors: list[tuple[str, ...]] = []
        parts: list[FlowDataset] = []
        t = start
        for _ in range(n_attacks):
            duration = int(rng.integers(MIN_ATTACK_SECONDS, MAX_ATTACK_SECONDS + 1))
            vector = menu[int(rng.choice(len(menu), p=weights))]
            victim = int(self.victims.sample(rng, 1)[0])
            event = AttackEvent(
                victim=victim,
                vectors=(vector,),
                start=t,
                end=t + duration,
                flows_per_minute=float(
                    np.clip(rng.lognormal(np.log(intensity), 0.4), 10.0, 500.0)
                ),
                blackholed=False,  # no blackholing involved in the SAS
            )
            events.append(event)
            event_vectors.append((vector.name,))
            attack_flows = self._attack_gen.generate(rng, event)
            parts.append(attack_flows.with_blackhole(np.ones(len(attack_flows), dtype=bool)))
            t += spacing
        end = t

        # Benign background over the whole campaign window, so the SAS
        # can be balanced like the ML training set. Destination
        # popularity is heavy-tailed, as in the live workload, so the
        # balancer can find benign IPs with attack-comparable counts.
        n_bins = max(1, (end - start) // 60)
        pool = self.fabric.customer_space.sample(
            np.random.default_rng(self._seed + 1), 256, replace=False
        )
        ranks = np.arange(1, pool.shape[0] + 1, dtype=np.float64)
        weights = ranks ** -1.6
        weights /= weights.sum()
        targets = rng.choice(pool, size=n_bins * 48, p=weights)
        benign = self._benign_gen.generate(
            rng, targets, start, end, flows_per_target_mean=6.0
        )
        parts.append(benign)

        flows = FlowDataset.concat(parts).sort_by_time()
        return SelfAttackCapture(
            flows=flows,
            events=events,
            event_vectors=event_vectors,
            start=start,
            end=end,
        )
