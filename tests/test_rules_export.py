"""Tests for FlowSpec / ACL rendering of tagging rules."""

import pytest

from repro.bgp.prefix import Prefix
from repro.core.rules.export import (
    MAX_INVERTED_RANGES,
    export_acl,
    export_flowspec,
    to_acl_line,
    to_flowspec,
)
from repro.core.rules.model import PortMatch, TaggingRule


def ntp_rule(**overrides):
    defaults = dict(
        rule_id="ntp00001",
        confidence=0.976,
        support=0.026,
        protocol=17,
        port_src=PortMatch(values=frozenset({123})),
        packet_size=(400, 500),
    )
    defaults.update(overrides)
    return TaggingRule(**defaults)


class TestFlowSpec:
    def test_basic_rendering(self):
        fs = to_flowspec(ntp_rule())
        assert "protocol =17" in fs.nlri
        assert "source-port =123" in fs.nlri
        assert "packet-length >=401&<=500" in fs.nlri
        assert fs.action == "traffic-rate 0"
        assert not fs.widened

    def test_destination_scoping(self):
        fs = to_flowspec(ntp_rule(), destination=Prefix.parse("192.0.2.1/32"))
        assert "destination 192.0.2.1/32" in fs.nlri

    def test_rate_limit_action(self):
        fs = to_flowspec(ntp_rule(), rate_limit_bps=1_000_000)
        assert fs.action == "traffic-rate 1000000"

    def test_small_negated_set_inverted(self):
        rule = ntp_rule(
            port_dst=PortMatch(values=frozenset({0, 100}), negated=True)
        )
        fs = to_flowspec(rule)
        assert not fs.widened
        assert "destination-port" in fs.nlri
        # Excluded ports 0 and 100 -> ranges [1,99] and [101,65535].
        assert ">=1&<=99" in fs.nlri
        assert ">=101&<=65535" in fs.nlri

    def test_large_negated_set_widens(self):
        excluded = frozenset(range(0, 2 * MAX_INVERTED_RANGES + 2, 2))
        rule = ntp_rule(port_dst=PortMatch(values=excluded, negated=True))
        fs = to_flowspec(rule)
        assert fs.widened
        assert "destination-port" not in fs.nlri
        assert "# widened" in fs.render()

    def test_multi_value_port_set(self):
        rule = ntp_rule(port_src=PortMatch(values=frozenset({53, 123})))
        fs = to_flowspec(rule)
        assert "source-port =53|=123" in fs.nlri

    def test_export_collection(self):
        rules = [ntp_rule(), ntp_rule(rule_id="x2")]
        exported = export_flowspec(rules)
        assert len(exported) == 2
        assert {fs.source_rule_id for fs in exported} == {"ntp00001", "x2"}


class TestAclLine:
    def test_basic_line(self):
        line = to_acl_line(ntp_rule())
        assert line.startswith("deny udp")
        assert "src-port eq {123}" in line
        assert "length 401-500" in line
        assert "rule ntp00001" in line

    def test_negated_dst_ports(self):
        rule = ntp_rule(port_dst=PortMatch(values=frozenset({0, 17}), negated=True))
        line = to_acl_line(rule)
        assert "dst-port not-in {0,17}" in line

    def test_wildcards(self):
        rule = TaggingRule(rule_id="x", confidence=0.9, support=0.1, protocol=6)
        line = to_acl_line(rule)
        assert "tcp" in line
        assert "src-port any" in line

    def test_custom_action(self):
        assert to_acl_line(ntp_rule(), action="police").startswith("police")

    def test_export_collection(self):
        lines = export_acl([ntp_rule(), ntp_rule(rule_id="y")])
        assert len(lines) == 2
