"""Regenerate the golden verdict traces under ``tests/golden/``.

The golden fixtures freeze the end-to-end verdict stream (bin, target,
label, score, matched rules) of the streaming engine on three seeded
workloads from ``tests/strategies.py``. ``tests/test_golden_traces.py``
replays the same workloads through the serial and the sharded engines
and fails on any drift beyond 1e-9 in score or any change in the
discrete fields — the regression tripwire for refactors of the
aggregation, encoding, scoring or parallel layers.

``tests/golden/scenarios/`` freezes full oracle scorecards of two
conducted scenarios (``repro.scenarios``); ``tests/test_scenarios.py``
re-runs them and applies the same 1e-9 gate to every float, pinning the
whole workload → engine → oracle path.

Regenerate **only** after an intentional behaviour change, with::

    PYTHONPATH=src python tests/gen_golden.py

then review the JSON diff and commit it together with the change that
motivated it. A regeneration that diffs when you did not intend to
change behaviour is a bug, not a fixture update.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import numpy as np

if __name__ == "__main__":  # script mode: make `tests.` importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from tests import strategies
from repro.core.labeling.balancer import balance
from repro.core.scrubber import IXPScrubber, ScrubberConfig
from repro.core.streaming import StreamingScrubber

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
SCENARIO_GOLDEN_DIR = GOLDEN_DIR / "scenarios"

#: One golden trace per workload seed.
WORKLOAD_SEEDS = (101, 202, 303)

#: Scenario scorecards frozen as goldens: (name, seed, scale). Small
#: scales keep regeneration and replay under a few seconds each.
SCENARIO_CASES = (
    ("carpet_bombing", 7, 0.25),
    ("volumetric_flood", 11, 0.25),
)

#: Engine parameters shared by generation and replay. The huge grace
#: period keeps the runs pure-classification (no retrain), so a trace
#: pins down exactly the aggregate → encode → score → verdict path.
ENGINE_KWARGS = dict(
    window_days=2,
    bins_per_day=48,
    min_flows_per_verdict=3,
    label_grace_bins=10**6,
    seed=1,
)


def build_scrubber() -> IXPScrubber:
    """The frozen model all golden traces are scored with."""
    rng = strategies.rng_for(999)
    labeled = strategies.labeled_flows(rng, n_flows=6000, n_targets=12, n_bins=20)
    balanced = balance(labeled, np.random.default_rng(7)).flows
    config = ScrubberConfig(model="XGB", model_params={"n_estimators": 10})
    return IXPScrubber(config).fit(balanced)


def build_workload(seed: int):
    """The flow stream for one golden trace."""
    return strategies.labeled_flows(
        strategies.rng_for(seed), n_flows=400, n_targets=10, n_bins=4
    )


def drive(engine, workload, chunk_bins: int = 2) -> list:
    """Stream a workload through an engine in fixed-size chunks."""
    bins = workload.time // 60
    verdicts = []
    for start in range(int(bins.min()), int(bins.max()) + 1, chunk_bins):
        mask = (bins >= start) & (bins < start + chunk_bins)
        verdicts.extend(engine.ingest(workload.select(mask)))
    verdicts.extend(engine.flush())
    return verdicts


def verdicts_to_records(verdicts) -> list[dict]:
    return [
        {
            "bin": v.bin,
            "target_ip": v.target_ip,
            "is_ddos": v.is_ddos,
            "score": v.score,
            "matched_rules": list(v.matched_rules),
        }
        for v in verdicts
    ]


def trace_path(seed: int) -> Path:
    return GOLDEN_DIR / f"trace_w{seed}.json"


def scenario_path(name: str, seed: int, scale: float) -> Path:
    return SCENARIO_GOLDEN_DIR / f"{name}_s{seed}_x{scale:g}.json"


def main() -> int:
    scrubber = build_scrubber()
    GOLDEN_DIR.mkdir(exist_ok=True)
    for seed in WORKLOAD_SEEDS:
        engine = StreamingScrubber(**ENGINE_KWARGS).warm_start(scrubber)
        verdicts = drive(engine, build_workload(seed))
        record = {
            "workload_seed": seed,
            "n_verdicts": len(verdicts),
            "verdicts": verdicts_to_records(verdicts),
        }
        path = trace_path(seed)
        path.write_text(json.dumps(record, indent=1) + "\n", encoding="utf-8")
        print(f"wrote {path.relative_to(GOLDEN_DIR.parent.parent)}: "
              f"{len(verdicts)} verdicts")

    from repro.scenarios import run_scenario, scorecard_json

    SCENARIO_GOLDEN_DIR.mkdir(exist_ok=True)
    for name, seed, scale in SCENARIO_CASES:
        result = run_scenario(name, seed=seed, scale=scale)
        path = scenario_path(name, seed, scale)
        path.write_text(
            scorecard_json(result.scorecard) + "\n", encoding="utf-8"
        )
        print(f"wrote {path.relative_to(GOLDEN_DIR.parent.parent)}: "
              f"passed={result.scorecard['passed']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
