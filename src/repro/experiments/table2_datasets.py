"""Experiment E-T2: dataset overview (paper Table 2).

Per vantage point: raw volume recorded (from the online volume
counters), estimated raw flow-record count, flow records surviving
balancing, the blackhole share of the balanced set, and the
balanced/unbalanced flow ratio.

Expected shape: balanced shares all near 50 % (deviations of a few
percent, the paper's worst is IXP-SE at 55.4 %), and a data reduction of
well over 99 % everywhere.
"""

from __future__ import annotations

import numpy as np

from repro.core.labeling.balancer import balance
from repro.experiments.common import ExperimentResult, check_scale
from repro.experiments.datasets import (
    DAYS_BY_SCALE,
    SAS_ATTACKS_BY_SCALE,
    balanced_corpus,
    build_capture,
    self_attack_corpus,
)
from repro.ixp.profiles import ALL_PROFILES


def run(scale: str = "small") -> ExperimentResult:
    check_scale(scale)
    n_days = DAYS_BY_SCALE[scale]
    result = ExperimentResult(experiment="table2-datasets")

    for profile in ALL_PROFILES:
        capture = build_capture(profile, n_days)
        balanced = balanced_corpus(profile, n_days)
        raw_bytes = float(capture.bin_stats.total_bytes.sum())
        raw_flows = int(capture.bin_stats.total_flows.sum())
        kept = balanced.report.flows_after
        result.rows.append(
            {
                "ixp": profile.name,
                "connected_ases": profile.n_members,
                "raw_data_gb": raw_bytes / 1e9,
                "raw_flow_records": raw_flows,
                "balanced_records": kept,
                "blackhole_share_pct": 100.0 * balanced.blackhole_share,
                "balanced_vs_raw_pct": 100.0 * kept / raw_flows if raw_flows else 0.0,
            }
        )

    sas = self_attack_corpus(scale)
    n_attack_flows = int(sas.flows.blackhole.sum())
    bal = balance(sas.flows, np.random.default_rng(0x5A5))
    result.rows.append(
        {
            "ixp": "SAS",
            "connected_ases": 0,
            "raw_data_gb": float("nan"),
            "raw_flow_records": n_attack_flows,
            "balanced_records": bal.report.flows_after,
            "blackhole_share_pct": 100.0 * bal.blackhole_share,
            "balanced_vs_raw_pct": float("nan"),
        }
    )

    shares = [
        row["blackhole_share_pct"]
        for row in result.rows
        if not np.isnan(row["blackhole_share_pct"])
    ]
    result.notes["max_share_deviation_pct"] = max(abs(s - 50.0) for s in shares)
    result.notes["min_reduction_pct"] = min(
        100.0 - row["balanced_vs_raw_pct"]
        for row in result.rows
        if not np.isnan(row["balanced_vs_raw_pct"])
    )
    result.notes["n_sas_attacks"] = SAS_ATTACKS_BY_SCALE[scale]
    return result
