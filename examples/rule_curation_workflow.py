#!/usr/bin/env python
"""Operator rule-curation workflow (paper §5.1, Fig. 6).

Shows the Step-1 lifecycle end to end:

1. mine association rules from balanced blackholing data (FP-Growth),
2. minimise the candidate set with Algorithm 1,
3. render the operator-facing table (the Fig. 6 UI, in text form),
4. simulate an operator review and score the accepted ACLs,
5. export the curated set to JSON (the paper's released format) and
   merge a fresh mining round into it — declined rules stay gone.

Run:  python examples/rule_curation_workflow.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import IXP_CE1, IXPFabric, WorkloadGenerator, balance
from repro.core.rules import (
    OperatorProfile,
    RuleSet,
    RuleStatus,
    coverage,
    curate,
    dump_rules,
    load_rules,
    mine_rules,
    minimize_rules,
)


def print_rule_table(rules: RuleSet, limit: int = 8) -> None:
    """Text rendering of the Fig. 6 curation UI."""
    header = f"{'id':>8s}  {'proto':>5s}  {'port_src':>9s}  {'port_dst':>24s}  {'pkt size':>12s}  {'conf':>6s}  {'supp':>7s}  status"
    print(header)
    print("-" * len(header))
    ordered = sorted(rules, key=lambda r: -r.support)[:limit]
    for r in ordered:
        dst = r.port_dst.render() if r.port_dst else "*"
        if len(dst) > 24:
            dst = dst[:21] + "..."
        size = f"({r.packet_size[0]},{r.packet_size[1]}]" if r.packet_size else "*"
        src = r.port_src.render() if r.port_src else "*"
        print(
            f"{r.rule_id:>8s}  {r.protocol if r.protocol is not None else '*':>5}  "
            f"{src:>9s}  {dst:>24s}  {size:>12s}  {r.confidence:6.3f}  "
            f"{r.support:7.4f}  {r.status.value}"
        )


def main() -> None:
    print("=== Mining tagging rules from IXP-CE1 blackholing data ===")
    fabric = IXPFabric(IXP_CE1)
    capture = WorkloadGenerator(fabric).generate(0, 3)
    balanced = balance(capture.labeled_flows(), np.random.default_rng(1))

    mining = mine_rules(balanced.flows, min_confidence=0.8)
    print(f"association rules (c >= 0.8):   {len(mining.all_rules)}")
    print(f"with blackhole consequent:      {len(mining.blackhole_rules)}")
    minimized = minimize_rules(mining.blackhole_rules)
    print(f"after Algorithm 1 (Lc=Ls=0.01): {len(minimized)}")

    staged = RuleSet.from_mining(minimized, mining.encoder)
    print("\n=== Curation UI (top rules by support) ===")
    print_rule_table(staged)

    print("\n=== Simulated operator review ===")
    operator = OperatorProfile("operator-1", error_rate=0.04, confidence_threshold=0.92)
    curated, seconds = curate(staged, operator, np.random.default_rng(42))
    accepted = curated.accepted()
    print(f"accepted {len(accepted)}/{len(curated)} rules in {seconds / 60:.1f} min")

    scores = coverage(accepted, balanced.flows)
    print(f"ACL coverage on labeled data: {scores['attack_dropped']:.1%} of attack "
          f"flows dropped, {scores['benign_dropped']:.2%} of benign flows dropped")

    print("\n=== Export, fresh mining round, merge ===")
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "curated-rules.json"
        dump_rules(curated, path)
        print(f"exported {len(curated)} rules to {path.name} "
              f"({path.stat().st_size} bytes)")

        restored = load_rules(path)
        fresh_capture = WorkloadGenerator(fabric).generate(3, 2)
        fresh_balanced = balance(
            fresh_capture.labeled_flows(), np.random.default_rng(2)
        )
        fresh_mining = mine_rules(fresh_balanced.flows, encoder=mining.encoder)
        fresh = RuleSet.from_mining(
            minimize_rules(fresh_mining.blackhole_rules), mining.encoder
        )
        merged = restored.merge(fresh)
        new_staged = [
            r for r in merged.staged() if r.rule_id not in restored
        ]
        declined_kept = all(
            merged.get(r.rule_id).status == RuleStatus.DECLINE
            for r in restored.declined()
        )
        print(f"fresh mining round produced {len(fresh)} rules; "
              f"{len(new_staged)} genuinely new (staged for review)")
        print(f"previously declined rules stayed declined: {declined_kept}")


if __name__ == "__main__":
    main()
