"""obs-names pass: the catalogue / emission / documentation triangle.

Three artifacts must stay in sync: the name catalogue
(``repro/obs/names.py``), the instrument call sites across the
pipeline, and the operator documentation (``docs/METRICS.md``). Each
direction of drift has its own rule:

* **RS401** — a catalogued constant no pipeline code references: dead
  observability surface (the docs promise a metric nothing emits).
* **RS402** — a string literal passed straight to ``counter(`` /
  ``gauge(`` / ``histogram(`` / ``span(``: instrumentation bypassing
  the catalogue, invisible to the one-place-to-read contract.
* **RS403** — an emitted name (catalogued or literal) with no
  `` `name` `` row in METRICS.md.
* **RS404** — an instrument kind contradicting the constant's prefix:
  ``counter(names.G_...)`` compiles fine and silently registers a
  counter under a gauge's name.

This pass replaces the regex half of ``tests/test_docs_lint.py`` — the
AST walk sees through aliasing (``from repro.obs import names as n``)
and ignores strings in comments/docstrings that the old regex matched.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.config import LintConfig
from repro.analysis.findings import Finding
from repro.analysis.project import (
    Module,
    Project,
    ScopeStack,
    attr_chain,
    collect_bindings,
    import_table,
)

__all__ = ["ObsNamesPass"]

#: Instrument factory attribute names and the name-prefix each accepts.
_KIND_PREFIXES = {
    "counter": ("C_",),
    "gauge": ("G_",),
    "histogram": ("SPAN_", "C_", "G_"),  # histograms also back spans
    "span": ("SPAN_",),
}


@dataclass
class _Catalogue:
    """Constants parsed from the names module."""

    module: Module
    by_const: dict[str, str] = field(default_factory=dict)  # C_X -> value
    by_value: dict[str, str] = field(default_factory=dict)  # value -> C_X
    lines: dict[str, int] = field(default_factory=dict)

    @classmethod
    def parse(cls, module: Module) -> "_Catalogue":
        cat = cls(module)
        for node in module.tree.body:
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if not target.id.startswith(("C_", "G_", "SPAN_")):
                continue
            if isinstance(node.value, ast.Constant) and isinstance(
                node.value.value, str
            ):
                cat.by_const[target.id] = node.value.value
                cat.by_value[node.value.value] = target.id
                cat.lines[target.id] = node.lineno
        return cat


class _EmissionScanner(ast.NodeVisitor):
    """Find instrument calls and catalogue references in one module."""

    def __init__(
        self,
        module: Module,
        catalogue: _Catalogue,
        config: LintConfig,
        referenced: set[str],
        findings: list[Finding],
        emitted_values: set[str],
    ):
        self.module = module
        self.catalogue = catalogue
        self.config = config
        self.referenced = referenced
        self.findings = findings
        self.emitted_values = emitted_values
        self.imports = import_table(module)
        self.scopes = ScopeStack(collect_bindings(module.tree))
        self.names_paths = self._names_aliases()

    def _names_aliases(self) -> set[str]:
        """Dotted prefixes that denote the names module in this file."""
        target = self.config.names_module
        package = target.rsplit(".", 1)[0]  # repro.obs
        out = {target}
        # `from repro import obs` -> obs.names.C_X
        for local, dotted in self.imports.items():
            if dotted == package:
                out.add(f"{dotted}.names")
        return out

    def _const_of(self, node: ast.AST) -> Optional[str]:
        """C_X if the expression is a reference to a catalogue constant."""
        parts = attr_chain(node)
        if parts is None or self.scopes.is_local(parts[0]):
            return None
        resolved = self.imports.get(parts[0])
        if resolved is None:
            return None
        dotted = ".".join([resolved] + parts[1:])
        # Direct constant import: from repro.obs.names import C_X
        if dotted.rsplit(".", 1)[0] == self.config.names_module:
            const = dotted.rsplit(".", 1)[1]
            return const if const in self.catalogue.by_const else None
        return None

    def visit_Call(self, node: ast.Call) -> None:
        kind = self._instrument_kind(node)
        if kind is not None and node.args:
            self._check_emission(node, kind, node.args[0])
        self.generic_visit(node)

    def _instrument_kind(self, node: ast.Call) -> Optional[str]:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _KIND_PREFIXES:
            return func.attr
        if isinstance(func, ast.Name) and func.id in _KIND_PREFIXES:
            # from repro.obs import counter / span
            resolved = self.imports.get(func.id)
            if resolved is not None or not self.scopes.is_local(func.id):
                return func.id
        return None

    def _check_emission(self, call: ast.Call, kind: str, arg: ast.AST) -> None:
        const = self._const_of(arg)
        if const is not None:
            self.referenced.add(const)
            self.emitted_values.add(self.catalogue.by_const[const])
            if not const.startswith(_KIND_PREFIXES[kind]):
                self.findings.append(
                    Finding(
                        rule="RS404",
                        path=self.module.rel,
                        line=call.lineno,
                        col=call.col_offset + 1,
                        message=(
                            f"{kind}(names.{const}) — the constant's prefix "
                            f"says it is not a {kind} name; use the matching "
                            "instrument or rename the constant"
                        ),
                        key=f"kind:{kind}:{const}",
                    )
                )
            return
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            value = arg.value
            self.emitted_values.add(value)
            registered = self.catalogue.by_value.get(value)
            if registered is None:
                self.findings.append(
                    Finding(
                        rule="RS402",
                        path=self.module.rel,
                        line=call.lineno,
                        col=call.col_offset + 1,
                        message=(
                            f"{kind}({value!r}) bypasses the name catalogue "
                            "— add a constant to repro/obs/names.py and "
                            "emit through it"
                        ),
                        key=f"literal:{value}",
                    )
                )
            else:
                self.referenced.add(registered)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # Any reference to names.C_X counts as "the pipeline uses it".
        const = self._const_of(node)
        if const is None:
            parts = attr_chain(node)
            if parts is not None and not self.scopes.is_local(parts[0]):
                resolved = self.imports.get(parts[0])
                if resolved is not None:
                    dotted = ".".join([resolved] + parts[1:])
                    prefix, _, last = dotted.rpartition(".")
                    if prefix in self.names_paths and last in (
                        self.catalogue.by_const
                    ):
                        const = last
        if const is not None:
            self.referenced.add(const)
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        # from repro.obs.names import C_X; ... C_X used bare.
        if isinstance(node.ctx, ast.Load) and not self.scopes.is_local(
            node.id
        ):
            resolved = self.imports.get(node.id)
            if resolved is not None:
                prefix, _, last = resolved.rpartition(".")
                if prefix == self.config.names_module and last in (
                    self.catalogue.by_const
                ):
                    self.referenced.add(last)


class ObsNamesPass:
    name = "obs-names"
    scope = "project"
    rule_ids = ("RS401", "RS402", "RS403", "RS404")

    def run(self, project: Project, config: LintConfig) -> list[Finding]:
        names_module = project.by_name.get(config.names_module)
        if names_module is None:
            return []  # nothing to check against (fixture trees)
        catalogue = _Catalogue.parse(names_module)
        findings: list[Finding] = []
        referenced: set[str] = set()
        emitted_values: set[str] = set()
        for module in project.modules:
            if module.name.split(".")[0] != config.package:
                continue
            if any(
                module.name == p or module.name.startswith(p + ".")
                for p in config.obs_exempt
            ):
                continue
            _EmissionScanner(
                module, catalogue, config, referenced, findings,
                emitted_values,
            ).visit(module.tree)

        for const, value in sorted(catalogue.by_const.items()):
            if const not in referenced:
                findings.append(
                    Finding(
                        rule="RS401",
                        path=names_module.rel,
                        line=catalogue.lines[const],
                        col=1,
                        message=(
                            f"{const} ({value!r}) is catalogued but nothing "
                            "in the pipeline references it — emit it or "
                            "delete it (and its docs/METRICS.md row)"
                        ),
                        key=f"dead-name:{const}",
                    )
                )

        if config.metrics_doc is not None and config.metrics_doc.exists():
            doc_text = config.metrics_doc.read_text(encoding="utf-8")
            documented = lambda v: f"`{v}`" in doc_text  # noqa: E731
            for value in sorted(
                set(catalogue.by_value) | emitted_values
            ):
                if not documented(value):
                    const = catalogue.by_value.get(value)
                    line = catalogue.lines.get(const, 1) if const else 1
                    findings.append(
                        Finding(
                            rule="RS403",
                            path=names_module.rel,
                            line=line,
                            col=1,
                            message=(
                                f"emitted name {value!r} has no row in "
                                f"{config.metrics_doc.name} — document it "
                                "(name, unit, emission site)"
                            ),
                            key=f"undocumented:{value}",
                        )
                    )
        return findings
