"""Docs lint: keep the markdown documentation in sync with the code.

Two contracts are enforced:

1. Every *relative* markdown link in README.md, DESIGN.md, and
   ``docs/*.md`` points at a file that exists (external ``http(s)://``
   and ``mailto:`` links are out of scope — no network in tests).
2. The obs name catalogue, the instrument call sites, and
   ``docs/METRICS.md`` agree. This used to be a regex scrape of
   ``counter("...")`` literals; it is now delegated to the obs-names
   pass of ``repro.analysis`` (rules RS401–RS404), whose AST walk sees
   through import aliasing and skips strings in docstrings/comments
   the regex used to match.
"""

import re
from pathlib import Path

import pytest

from repro.analysis import Baseline, default_config, format_human, run_lint
from repro.obs import names

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"
METRICS_DOC = DOCS_DIR / "METRICS.md"

LINT_TARGETS = sorted(
    [REPO_ROOT / "README.md", REPO_ROOT / "DESIGN.md"]
    + list(DOCS_DIR.glob("*.md"))
)

#: ``[text](target)`` — target captured up to the closing paren.
_MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_EXTERNAL = ("http://", "https://", "mailto:")


def _relative_links(path):
    for match in _MD_LINK.finditer(path.read_text(encoding="utf-8")):
        target = match.group(1)
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        yield target


def test_lint_targets_exist():
    assert METRICS_DOC.is_file()
    assert len(LINT_TARGETS) >= 4  # README, DESIGN, ARCHITECTURE, METRICS


@pytest.mark.parametrize(
    "doc", LINT_TARGETS, ids=[p.name for p in LINT_TARGETS]
)
def test_relative_markdown_links_resolve(doc):
    broken = []
    for target in _relative_links(doc):
        resolved = (doc.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{doc.name} has broken relative links: {broken}"


def test_name_catalogue_is_nontrivial():
    # Guard: if the catalogue import path breaks, the contract test
    # below would vacuously pass on an empty set.
    assert len(names.ALL_COUNTERS) >= 15
    assert len(names.ALL_GAUGES) >= 4
    assert len(names.ALL_SPANS) >= 15


def test_metric_names_emissions_and_docs_agree():
    """The obs-names contract (RS401–RS404) holds on the real tree.

    Catalogued names are all emitted somewhere, no call site bypasses
    the catalogue with a string literal, every emitted name has a
    METRICS.md row, and every instrument kind matches its constant's
    prefix. Running without the baseline keeps this test independent
    of lint-baseline.json: metric-name drift can never be grandfathered.
    """
    result = run_lint(
        default_config(REPO_ROOT),
        rules=["RS401", "RS402", "RS403", "RS404"],
        baseline=Baseline(),
    )
    assert result.findings == [], format_human(result)


def test_documented_metrics_point_back_at_real_code():
    """Every `file.py:symbol` pointer in the metrics tables exists."""
    doc_text = METRICS_DOC.read_text(encoding="utf-8")
    pointers = re.findall(r"`(src/repro/[\w/]+\.py):", doc_text)
    missing = sorted(
        {p for p in pointers if not (REPO_ROOT / p).is_file()}
    )
    assert not missing, f"docs/METRICS.md points at missing files: {missing}"
