"""E-T3: model comparison (Table 3 / Table 5).

Paper shape: all models reach high scores; XGB tops the table
(Fβ = 0.989) with the lowest fnr; DT is the weakest of the main group;
NB-C/NB-M fall below the main group; NB-B is worst; the dummy ~0.5; the
RBC reaches a strong SAS score without any learned classifier.
"""

import numpy as np

from repro.experiments import table3_models


def _row(result, model):
    return next(r for r in result.rows if r["model"] == model)


def test_table3_models(run_experiment):
    result = run_experiment(table3_models)
    print()
    print(result.summary())

    # Headline: XGB wins (and is therefore the recommended model).
    assert result.notes["best_model"] == "XGB"
    xgb = _row(result, "XGB")
    assert xgb["fbeta"] > 0.95

    # Full ordering shape of Table 5.
    main_group = [_row(result, m)["fbeta"] for m in ("XGB", "NN", "LSVM", "NB-G", "DT")]
    assert min(main_group) > 0.9
    assert _row(result, "DT")["fbeta"] <= max(main_group)
    for weak in ("NB-C", "NB-M"):
        assert _row(result, weak)["fbeta"] < xgb["fbeta"]
    nb_b = _row(result, "NB-B")
    assert nb_b["fbeta"] == min(
        _row(result, m)["fbeta"] for m in ("XGB", "NN", "LSVM", "NB-G", "DT", "NB-C", "NB-M", "NB-B")
    )

    # Dummy baseline: a coin toss.
    dum = _row(result, "DUM")
    assert abs(dum["fbeta"] - 0.5) < 0.1

    # Per-vector columns: high scores for every major vector (paper:
    # "all models perform equally well for all shown attack vectors").
    for vector in ("DNS", "NTP", "SNMP", "LDAP", "SSDP"):
        value = xgb[vector]
        if not np.isnan(value):
            assert value > 0.9, vector

    # SAS column: XGB transfers to the out-of-distribution ground truth;
    # the RBC achieves a strong score from rules alone (paper: 0.917);
    # the dummy stays at chance.
    assert xgb["fbeta_sas"] > 0.9
    assert _row(result, "RBC")["fbeta_sas"] > 0.75
    assert abs(_row(result, "DUM")["fbeta_sas"] - 0.5) < 0.1

    # Prediction cost was measured for the real models.
    assert xgb["mcc"] > 0.0
