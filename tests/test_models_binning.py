"""Tests for quantile binning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.models.binning import QuantileBinner


class TestQuantileBinner:
    def test_rejects_bad_max_bins(self):
        with pytest.raises(ValueError):
            QuantileBinner(1)
        with pytest.raises(ValueError):
            QuantileBinner(300)

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            QuantileBinner().transform(np.zeros((2, 2)))

    def test_bins_monotone_in_values(self):
        X = np.linspace(0, 1, 1000).reshape(-1, 1)
        binner = QuantileBinner(16)
        binned = binner.fit_transform(X)
        assert (np.diff(binned[:, 0].astype(int)) >= 0).all()
        assert binned.max() <= 15

    def test_constant_column_single_bin(self):
        X = np.full((100, 1), 3.0)
        binner = QuantileBinner(16)
        binned = binner.fit_transform(X)
        assert binner.n_bins(0) == 1
        assert (binned == 0).all()

    def test_threshold_consistency(self):
        """split 'bin <= k' must equal 'value <= threshold(k)'."""
        rng = np.random.default_rng(0)
        X = rng.normal(size=(500, 1))
        binner = QuantileBinner(32)
        binned = binner.fit_transform(X)
        for k in (0, 5, 15, 30):
            if k >= binner.n_bins(0) - 1:
                continue
            threshold = binner.threshold(0, k)
            np.testing.assert_array_equal(binned[:, 0] <= k, X[:, 0] <= threshold)

    def test_threshold_out_of_range(self):
        binner = QuantileBinner(4)
        binner.fit(np.arange(10.0).reshape(-1, 1))
        with pytest.raises(IndexError):
            binner.threshold(0, 99)

    def test_feature_count_mismatch(self):
        binner = QuantileBinner(4)
        binner.fit(np.zeros((5, 2)))
        with pytest.raises(ValueError):
            binner.transform(np.zeros((5, 3)))

    @settings(max_examples=25, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=4,
            max_size=200,
        )
    )
    def test_transform_deterministic_and_bounded(self, values):
        X = np.array(values).reshape(-1, 1)
        binner = QuantileBinner(16)
        a = binner.fit_transform(X)
        b = binner.transform(X)
        np.testing.assert_array_equal(a, b)
        assert a.max() < 16
