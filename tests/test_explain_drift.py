"""Tests for local explainability and drift-evaluation helpers."""

import numpy as np
import pytest

from repro.core.drift import (
    TransferMatrix,
    geographic_transfer,
    one_shot_evaluation,
    reflector_overlap_matrix,
    sliding_window_evaluation,
)
from repro.core.explain import (
    explain_record,
    rule_overlap,
    woe_distributions_by_outcome,
)
from repro.core.encoding.woe import WoEEncoder
from repro.core.features.aggregation import aggregate
from repro.core.rules.model import PortMatch, TaggingRule
from repro.core.scrubber import IXPScrubber, ScrubberConfig
from repro.netflow.dataset import FlowDataset
from tests.conftest import make_flow


@pytest.fixture
def annotated_data(handmade_flows):
    rule = TaggingRule(
        rule_id="ntp1", confidence=0.99, support=0.1,
        protocol=17, port_src=PortMatch(values=frozenset({123})),
    )
    flows = FlowDataset.concat([handmade_flows] * 10)
    data = aggregate(flows, rules=[rule])
    woe = WoEEncoder(min_count=1).fit(data)
    return data, woe, rule


class TestExplainRecord:
    def test_evidence_sorted_by_strength(self, annotated_data):
        data, woe, rule = annotated_data
        explanation = explain_record(data, 0, woe, score=0.9, rules=[rule])
        strengths = [abs(e.woe) for e in explanation.evidence]
        assert strengths == sorted(strengths, reverse=True)

    def test_matched_rules_resolved(self, annotated_data):
        data, woe, rule = annotated_data
        idx = next(i for i in range(len(data)) if data.rule_tags[i])
        explanation = explain_record(data, idx, woe, score=0.9, rules=[rule])
        assert explanation.matched_rules == (rule,)

    def test_summary_renders(self, annotated_data):
        data, woe, rule = annotated_data
        explanation = explain_record(data, 0, woe, score=0.7, rules=[rule])
        text = explanation.summary()
        assert "DDoS" in text or "benign" in text
        assert "WoE" in text

    def test_index_out_of_range(self, annotated_data):
        data, woe, _ = annotated_data
        with pytest.raises(IndexError):
            explain_record(data, len(data), woe, score=0.5)

    def test_prediction_threshold(self, annotated_data):
        data, woe, _ = annotated_data
        assert explain_record(data, 0, woe, score=0.51).predicted_ddos
        assert not explain_record(data, 0, woe, score=0.49).predicted_ddos


class TestRuleOverlap:
    def test_perfect_agreement(self, annotated_data):
        data, woe, rule = annotated_data
        rbc_like = np.array([1 if tags else 0 for tags in data.rule_tags])
        report = rule_overlap(data, rbc_like)
        assert report.coherent_share == 1.0
        assert report.explained_share == 1.0

    def test_requires_annotations(self, handmade_flows):
        data = aggregate(handmade_flows)
        with pytest.raises(ValueError):
            rule_overlap(data, np.zeros(len(data)))

    def test_histogram_counts(self, annotated_data):
        data, woe, _ = annotated_data
        predictions = np.array([1 if tags else 0 for tags in data.rule_tags])
        report = rule_overlap(data, predictions)
        assert sum(report.rule_count_histogram.values()) == int(predictions.sum())


class TestWoEDistributions:
    def test_split_by_outcome(self, annotated_data):
        data, woe, _ = annotated_data
        predictions = np.ones(len(data), dtype=int)
        column = "src_port/bytes/0"
        distributions = woe_distributions_by_outcome(data, woe, predictions, [column])
        tp = distributions[column]["tp"]
        fp = distributions[column]["fp"]
        assert tp.size == int(data.labels.sum())
        assert fp.size == int((~data.labels).sum())


def _toy_corpus(seed, n_bins=240, flip=False):
    """Aggregated records spanning ``n_bins`` minutes with learnable labels."""
    rng = np.random.default_rng(seed)
    records = []
    for b in range(n_bins):
        t = b * 60
        # Attack record (NTP signature) and benign record per bin.
        for k in range(3):
            records.append(
                make_flow(time=t + k, src_ip=int(rng.integers(100, 200)), dst_ip=1,
                          src_port=123, packets=40, bytes_=18720, blackhole=True)
            )
        for k in range(3):
            records.append(
                make_flow(time=t + k, src_ip=int(rng.integers(300, 400)), dst_ip=2,
                          src_port=443, protocol=6, packets=10, bytes_=12000)
            )
    return aggregate(FlowDataset.from_records(records))


class TestTemporalEvaluation:
    def test_one_shot_series(self):
        data = _toy_corpus(0)
        series = one_shot_evaluation(data, bins_per_day=60, train_days=1)
        assert series.days.shape == series.scores.shape
        assert series.days.shape[0] == 3  # 4 days total, 1 train
        assert series.median() > 0.9

    def test_sliding_series(self):
        data = _toy_corpus(0)
        series = sliding_window_evaluation(data, bins_per_day=60, window_days=1)
        assert series.days.shape[0] == 3
        assert series.median() > 0.9

    def test_sliding_needs_enough_days(self):
        data = _toy_corpus(0, n_bins=60)
        with pytest.raises(ValueError):
            sliding_window_evaluation(data, bins_per_day=60, window_days=5)


class TestGeographicTransfer:
    def test_matrix_shape_and_diagonal(self):
        corpora = {"A": _toy_corpus(1), "B": _toy_corpus(2)}
        config = ScrubberConfig(model="XGB", model_params={"n_estimators": 5})
        matrix = geographic_transfer(corpora, corpora, config=config)
        assert matrix.scores.shape == (2, 2)
        assert matrix.score("A", "A") > 0.9
        assert matrix.score("B", "B") > 0.9

    def test_classifier_only_mode(self):
        corpora = {"A": _toy_corpus(1), "B": _toy_corpus(2)}
        config = ScrubberConfig(model="XGB", model_params={"n_estimators": 5})
        matrix = geographic_transfer(corpora, corpora, config=config, keep_local_woe=True)
        assert matrix.score("A", "B") > 0.9

    def test_reflector_overlap_diagonal_is_one(self):
        corpora = {"A": _toy_corpus(1), "B": _toy_corpus(2)}
        scrubbers = {}
        for name, data in corpora.items():
            s = IXPScrubber(ScrubberConfig(model="XGB", model_params={"n_estimators": 3}))
            s.fit_aggregated(data)
            scrubbers[name] = s
        matrix = reflector_overlap_matrix(scrubbers, threshold=0.5)
        for site in ("A", "B"):
            value = matrix.score(site, site)
            assert value == 1.0 or np.isnan(value)

    def test_transfer_matrix_lookup_error(self):
        matrix = TransferMatrix(("A",), ("A",), np.array([[1.0]]))
        with pytest.raises(ValueError):
            matrix.score("X", "A")
