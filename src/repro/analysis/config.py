"""Lint configuration: the project contracts the passes enforce.

:func:`default_config` encodes **this repository's** contracts — the
layer DAG from ``docs/ARCHITECTURE.md``, the shard-worker entry points
from ``core/parallel``/``core/resilience``, the obs name catalogue and
its documentation page. Tests build custom configs over fixture trees,
so every pass stays reusable against any source root.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional

__all__ = [
    "LintConfig",
    "default_config",
    "REPO_ROOT",
    "DEFAULT_LAYERS",
    "DEFAULT_RESOURCE_CONSTRUCTORS",
]

#: The repository root, derived from this file's location under
#: ``src/repro/analysis/`` (parents: analysis, repro, src, root).
REPO_ROOT = Path(__file__).resolve().parents[3]

#: The ARCHITECTURE.md import DAG: each top-level subpackage of
#: ``repro`` maps to the set of sibling subpackages it may import at
#: runtime. ``repro.obs`` (and the analyzer itself) sit at the bottom:
#: stdlib/numpy only. A subpackage missing from this table fails the
#: layering pass until the contract (here + ARCHITECTURE.md) names it.
DEFAULT_LAYERS: Mapping[str, frozenset[str]] = {
    "obs": frozenset(),
    "analysis": frozenset(),
    "netflow": frozenset({"obs"}),
    "bgp": frozenset({"netflow", "obs"}),
    "traffic": frozenset({"netflow", "bgp", "obs"}),
    "ixp": frozenset({"netflow", "bgp", "traffic", "obs"}),
    "core": frozenset({"netflow", "bgp", "traffic", "obs"}),
    "experiments": frozenset(
        {"core", "ixp", "netflow", "bgp", "traffic", "obs"}
    ),
    "scenarios": frozenset({"core", "netflow", "bgp", "traffic", "obs"}),
    "cli": frozenset(
        {"core", "experiments", "ixp", "netflow", "bgp", "traffic", "obs",
         "analysis", "scenarios"}
    ),
}


#: The OS-level resources this repository acquires, by constructor.
#: Labels show up in RS6xx messages. ``open`` (the builtin) is listed
#: for completeness; it is matched by bare name when unshadowed.
DEFAULT_RESOURCE_CONSTRUCTORS: Mapping[str, str] = {
    "open": "file handle",
    "os.open": "file descriptor",
    "os.fdopen": "file handle",
    "multiprocessing.shared_memory.SharedMemory": "shared-memory segment",
    "repro.core.parallel.shm.attach_segment": "shared-memory segment",
    "repro.core.parallel.shm.ShmRing": "shm ring",
    "repro.core.parallel.shm.ShmRing.attach": "shm ring",
    "repro.core.parallel.shm.ModelPlane": "model plane",
    "repro.core.parallel.shm.ModelPlane.attach": "model plane",
    "repro.core.recovery.journal.VerdictJournal": "verdict journal",
    "repro.core.recovery.journal.VerdictJournal.open": "verdict journal",
    "repro.core.recovery.snapshot.CheckpointStore": "checkpoint store",
}


@dataclass(frozen=True)
class LintConfig:
    """Everything the passes need to know about one project."""

    #: Directory containing the top-level package(s) (the repo's src/).
    src_root: Path
    #: The top-level package the contracts speak about.
    package: str = "repro"
    #: Paths in findings are rendered relative to this directory.
    rel_to: Optional[Path] = None
    #: Layer DAG: subpackage -> allowed sibling subpackages.
    layers: Mapping[str, frozenset[str]] = field(
        default_factory=lambda: dict(DEFAULT_LAYERS)
    )
    #: External top-level imports allowed anywhere in the package.
    external_allow: frozenset[str] = frozenset({"numpy", "scipy"})
    #: Module prefixes where wall-clock reads are legitimate (the obs
    #: layer owns the injectable clock).
    clock_exempt: tuple[str, ...] = ("repro.obs",)
    #: Module prefixes where set-iteration order matters (RS103 scope):
    #: layers whose outputs feed serialization, hashing, or verdicts.
    set_iter_scopes: tuple[str, ...] = (
        "repro.core", "repro.netflow", "repro.scenarios"
    )
    #: Qualified names of the functions that run inside shard workers;
    #: the race detector's call-graph roots.
    worker_entry_points: tuple[str, ...] = (
        "repro.core.parallel.backends._worker_main",
        "repro.core.parallel.backends._execute_fault",
    )
    #: Module prefixes allowed to write raw shared-memory segment bytes
    #: (RS204 scope): the ring/model-plane protocol implementation owns
    #: every frame and control-block layout; a ``.buf`` write anywhere
    #: else bypasses the seqno/generation/crc discipline documented in
    #: ``docs/IPC.md``.
    shm_protocol_modules: tuple[str, ...] = ("repro.core.parallel.shm",)
    #: The obs name catalogue module and the page documenting it.
    names_module: str = "repro.obs.names"
    metrics_doc: Optional[Path] = None
    #: Module prefixes exempt from the obs-names emission scan (the obs
    #: layer handles caller-supplied names, it never emits its own).
    obs_exempt: tuple[str, ...] = ("repro.obs",)
    #: Module prefixes whose files must survive a crash (RS501/RS502
    #: scope): everything they write must go through the sanctioned
    #: durable-write idiom.
    durable_modules: tuple[str, ...] = (
        "repro.core.recovery", "repro.core.persistence"
    )
    #: The sanctioned writer modules, exempt from RS501/RS502: the
    #: temp+fsync+rename implementation itself, and the append-only
    #: journal with its own fsync-per-append discipline.
    durable_writers: tuple[str, ...] = (
        "repro.core.recovery.durable",
        "repro.core.recovery.journal",
    )
    #: Resource constructors the lifecycle pass (RS601–RS604) tracks:
    #: resolved dotted call path -> human label. Acquiring one of these
    #: binds a resource that must reach a release method, a ``with``
    #: block, an ownership transfer, or an escape on every path out of
    #: the function — including the exception edges. The builtin
    #: ``open`` is matched by name when not shadowed.
    resource_constructors: Mapping[str, str] = field(
        default_factory=lambda: dict(DEFAULT_RESOURCE_CONSTRUCTORS)
    )
    #: Method names that count as releasing the receiver.
    resource_release_methods: frozenset[str] = frozenset(
        {
            "close", "destroy", "unlink", "release", "terminate", "kill",
            "join", "shutdown", "stop", "finalize", "detach",
        }
    )
    #: Trailing attribute names that mark a process spawn even when the
    #: receiver cannot be resolved (``self._ctx.Process(...)``).
    resource_spawn_attrs: frozenset[str] = frozenset({"Process", "Popen"})
    #: Modules under the hot-path discipline (RS701–RS703): the
    #: line-rate counting paths where per-flow Python loops and
    #: loop-level numpy reallocation are throughput bugs.
    hot_modules: tuple[str, ...] = (
        "repro.core.features.sketches",
        "repro.core.features.aggregation",
        "repro.core.models.kernels",
        "repro.core.parallel.shm",
    )
    #: Loop-target names that mark a per-flow/per-row loop (RS701).
    flow_loop_targets: frozenset[str] = frozenset(
        {
            "flow", "row", "record", "pkt", "packet", "event", "sample",
            "datapoint",
        }
    )
    #: Iterable names that mark a per-flow loop regardless of target.
    flow_loop_iterables: frozenset[str] = frozenset(
        {"dataset", "flows", "batch", "batches", "records", "packets",
         "rows", "samples"}
    )
    #: Incremental result cache (sha256-keyed); None disables caching.
    cache_path: Optional[Path] = None
    #: Default baseline file.
    baseline_path: Optional[Path] = None


def default_config(root: Optional[Path] = None) -> LintConfig:
    """The configuration for this repository."""
    root = (root or REPO_ROOT).resolve()
    return LintConfig(
        src_root=root / "src",
        rel_to=root,
        metrics_doc=root / "docs" / "METRICS.md",
        baseline_path=root / "lint-baseline.json",
        cache_path=root / ".repro-lint-cache.json",
    )
