"""CART decision tree with histogram split search.

Supports the hyperparameters of the paper's grid (Appendix C, Table 4):
``ccp_alpha`` (minimal cost-complexity pruning), ``min_impurity_decrease``,
``min_samples_leaf`` and ``min_samples_split``, plus ``max_depth``.

The trainer builds per-(feature, bin) count/positive histograms with one
combined-key ``bincount`` per node and searches every feature's split in
a single vectorised pass; at each split only the smaller child is
re-scanned, the sibling's histograms being the parent's minus the small
child's — exact for CART, whose histograms hold integer counts, so the
fitted tree is bit-identical to the original per-feature scan. The
fitted tree is compiled to a flat-array
:class:`~repro.core.models.kernels.TreeKernel`, which handles all
prediction (iterative node-index propagation) and is the only state
that pickling ships — the ``_Node`` graph is a derived view, rebuilt on
demand for pruning walks and tooling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro import obs
from repro.core.models.base import Classifier, check_fit_inputs
from repro.core.models.binning import DEFAULT_MAX_BINS, QuantileBinner
from repro.core.models.kernels import HistogramScratch, TreeKernel
from repro.obs import names


@dataclass
class _Node:
    n: int
    value: float  # P(y=1) in this node
    impurity: float  # gini
    feature: Optional[int] = None
    threshold: float = 0.0  # raw-value threshold; left: x <= threshold
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    def leaves(self) -> int:
        if self.is_leaf:
            return 1
        assert self.left is not None and self.right is not None
        return self.left.leaves() + self.right.leaves()


def _gini(pos: float, total: float) -> float:
    if total <= 0:
        return 0.0
    p = pos / total
    return 2.0 * p * (1.0 - p)


class DecisionTree(Classifier):
    """Binary CART classifier (gini impurity, histogram splits)."""

    name = "DT"

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_split: int = 2,
        min_samples_leaf: int = 5,
        min_impurity_decrease: float = 0.0,
        ccp_alpha: float = 0.0,
        max_bins: int = DEFAULT_MAX_BINS,
    ):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        if ccp_alpha < 0:
            raise ValueError("ccp_alpha must be non-negative")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.min_impurity_decrease = min_impurity_decrease
        self.ccp_alpha = ccp_alpha
        self.max_bins = max_bins
        self._binner = QuantileBinner(max_bins)
        #: Compiled flat-array tree — the primary fitted state.
        self.kernel_: Optional[TreeKernel] = None
        self._root_cache: Optional[_Node] = None
        self._n_train = 0

    def get_params(self) -> dict[str, object]:
        return {
            "max_depth": self.max_depth,
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "min_impurity_decrease": self.min_impurity_decrease,
            "ccp_alpha": self.ccp_alpha,
        }

    # ------------------------------------------------------------------
    # Fitted-tree views
    # ------------------------------------------------------------------
    @property
    def root_(self) -> Optional[_Node]:
        """Node-graph view of the tree (rebuilt from the kernel).

        Kept for pruning walks, tests and tooling; prediction never
        touches it. Assigning a root node recompiles :attr:`kernel_`.
        """
        if self._root_cache is None and self.kernel_ is not None:
            self._root_cache = self.kernel_.to_cart_nodes()
        return self._root_cache

    @root_.setter
    def root_(self, node: Optional[_Node]) -> None:
        self._root_cache = node
        self.kernel_ = None if node is None else TreeKernel.from_cart_root(node)

    def __getstate__(self) -> dict:
        # Ship the compact arrays only; the node graph is derived state.
        state = dict(self.__dict__)
        state["_root_cache"] = None
        return state

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTree":
        X, y = check_fit_inputs(X, y)
        with obs.span(names.SPAN_MODELS_FIT):
            binned = self._binner.fit_transform(X)
            self._n_train = X.shape[0]
            scratch = HistogramScratch(binned, self.max_bins)
            index = np.arange(X.shape[0])
            root = self._build(binned, y.astype(np.float64), index, 0, scratch, None)
            if self.ccp_alpha > 0:
                self._prune(root)
            self.root_ = root
        obs.counter(names.C_MODELS_TREES_BUILT).inc()
        obs.counter(names.C_MODELS_KERNEL_COMPILES).inc()
        assert self.kernel_ is not None
        obs.gauge(names.G_MODELS_ENSEMBLE_NODES).set(self.kernel_.n_nodes)
        return self

    def _build(
        self,
        binned: np.ndarray,
        y: np.ndarray,
        index: np.ndarray,
        depth: int,
        scratch: HistogramScratch,
        hist: Optional[tuple[np.ndarray, np.ndarray]],
    ) -> _Node:
        n = index.shape[0]
        if hist is None:
            pos = float(y[index].sum())
        else:
            # Every row lands in exactly one bin of feature 0, so its
            # positive histogram sums to the node total (exact: counts).
            pos = float(hist[1][0].sum())
        node = _Node(n=n, value=pos / n, impurity=_gini(pos, n))
        if (
            depth >= self.max_depth
            or n < self.min_samples_split
            or pos == 0.0
            or pos == n
        ):
            return node

        B = self.max_bins
        if hist is None:
            total_hist, pos_hist = scratch.pair(index, None, y[index])
            total_hist, pos_hist = total_hist[0], pos_hist[0]
        else:
            total_hist, pos_hist = hist

        # Vectorised split search over all (feature, bin) candidates.
        # Padding bins past a feature's real bin count are empty, so
        # their right side is 0 samples and min_samples_leaf rejects
        # them — no per-feature bookkeeping needed.
        left_n = np.cumsum(total_hist, axis=1)[:, :-1]
        left_pos = np.cumsum(pos_hist, axis=1)[:, :-1]
        right_n = n - left_n
        right_pos = pos - left_pos
        valid = (left_n >= self.min_samples_leaf) & (right_n >= self.min_samples_leaf)
        if not valid.any():
            return node
        with np.errstate(divide="ignore", invalid="ignore"):
            p_l = np.where(left_n > 0, left_pos / left_n, 0.0)
            p_r = np.where(right_n > 0, right_pos / right_n, 0.0)
        gini_l = 2.0 * p_l * (1.0 - p_l)
        gini_r = 2.0 * p_r * (1.0 - p_r)
        weighted = (left_n * gini_l + right_n * gini_r) / n
        # Impurity decrease weighted by node share of the training
        # set (sklearn's min_impurity_decrease convention).
        gain = (n / self._n_train) * (node.impurity - weighted)
        gain[~valid] = -np.inf
        # Flat C-order argmax = lowest feature then lowest bin on ties,
        # matching the original first-feature-wins per-feature scan.
        k = int(np.argmax(gain))
        best_gain = float(gain.flat[k])
        if not (best_gain > 0.0 and best_gain >= self.min_impurity_decrease):
            return node

        feature, split_bin = divmod(k, B - 1)
        node.feature = feature
        node.threshold = self._binner.threshold(feature, split_bin)
        go_left = binned[index, feature] <= split_bin
        left_index = index[go_left]
        right_index = index[~go_left]
        n_l = left_index.shape[0]
        pos_l = float(left_pos[feature, split_bin])

        def wants_hist(m: int, p: float) -> bool:
            # Mirrors the stopping test above: a child that will return
            # a leaf immediately never needs its histograms.
            return (
                depth + 1 < self.max_depth
                and m >= self.min_samples_split
                and p != 0.0
                and p != m
            )

        hist_l = hist_r = None
        if wants_hist(n_l, pos_l) or wants_hist(n - n_l, pos - pos_l):
            # Scan only the smaller child; the sibling's histograms are
            # parent − small, exact because counts are integers.
            small_is_left = n_l <= n - n_l
            small_index = left_index if small_is_left else right_index
            st, sp = scratch.pair(small_index, None, y[small_index])
            st, sp = st[0], sp[0]
            big = (total_hist - st, pos_hist - sp)
            hist_l, hist_r = ((st, sp), big) if small_is_left else (big, (st, sp))
            if not wants_hist(n_l, pos_l):
                hist_l = None
            if not wants_hist(n - n_l, pos - pos_l):
                hist_r = None
        node.left = self._build(binned, y, left_index, depth + 1, scratch, hist_l)
        node.right = self._build(binned, y, right_index, depth + 1, scratch, hist_r)
        return node

    # ------------------------------------------------------------------
    def _prune(self, root: _Node) -> None:
        """Minimal cost-complexity pruning at ``ccp_alpha``."""

        def node_cost(node: _Node) -> float:
            # Misclassification cost share of this node acting as a leaf.
            err = min(node.value, 1.0 - node.value)
            return err * node.n / self._n_train

        def subtree_cost_leaves(node: _Node) -> tuple[float, int]:
            if node.is_leaf:
                return node_cost(node), 1
            assert node.left is not None and node.right is not None
            cl, ll = subtree_cost_leaves(node.left)
            cr, lr = subtree_cost_leaves(node.right)
            return cl + cr, ll + lr

        while True:
            weakest: Optional[tuple[float, _Node]] = None

            def visit(node: _Node) -> None:
                nonlocal weakest
                if node.is_leaf:
                    return
                subtree_cost, leaves = subtree_cost_leaves(node)
                if leaves > 1:
                    g = (node_cost(node) - subtree_cost) / (leaves - 1)
                    if weakest is None or g < weakest[0]:
                        weakest = (g, node)
                assert node.left is not None and node.right is not None
                visit(node.left)
                visit(node.right)

            visit(root)
            if weakest is None or weakest[0] > self.ccp_alpha:
                break
            _, node = weakest
            node.left = None
            node.right = None
            node.feature = None

    # ------------------------------------------------------------------
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.kernel_ is None:
            raise RuntimeError("DecisionTree is not fitted")
        X = np.asarray(X, dtype=np.float64)
        with obs.span(names.SPAN_MODELS_PREDICT):
            return self.kernel_.apply(X)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X) >= 0.5).astype(np.int64)

    @property
    def n_leaves(self) -> int:
        if self.kernel_ is None:
            raise RuntimeError("DecisionTree is not fitted")
        return self.kernel_.n_leaves

    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        if self.kernel_ is None:
            raise RuntimeError("DecisionTree is not fitted")
        return self.kernel_.max_depth()
