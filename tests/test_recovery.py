"""Tests for the crash-safe checkpoint/restore subsystem.

Three layers, matching ``src/repro/core/recovery``:

1. the tagged JSON value codec (Hypothesis round-trip properties);
2. the durable on-disk formats — snapshot store + verdict journal —
   including corruption rejection and torn-tail recovery;
3. the resume protocol end to end: kill the driver at an arbitrary
   tick, resume, and require the concatenated verdict stream to be
   bit-identical to an uninterrupted run (exactly once, no loss).

Process/supervised-backend and sketch-mode crash matrices are
``slow``-marked; tier-1 covers the serial engine at 1 and 2 shards.
"""

import gc
import json
import zlib
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests import strategies as local
from repro.core.labeling.balancer import balance
from repro.core.parallel.backends import ProcessBackend
from repro.core.parallel.engine import ShardedStreamingScrubber
from repro.core.recovery import (
    CheckpointConfigError,
    CheckpointStore,
    CorruptJournalError,
    CorruptSnapshotError,
    JournalExistsError,
    NoCheckpointError,
    RecoverySession,
    ResumeDivergenceError,
    VerdictJournal,
    decode_value,
    drive_engine,
    durable_write,
    encode_value,
    iter_chunks,
)
from repro.core.recovery.journal import canonical_entry
from repro.core.resilience import FaultPlan
from repro.core.scrubber import IXPScrubber, ScrubberConfig, TargetVerdict
from repro.core.streaming import StreamingScrubber

# ----------------------------------------------------------------------
# Shared fixtures: a fitted model and a multi-bin workload.
# ----------------------------------------------------------------------

ENGINE_KWARGS = dict(
    window_days=2,
    bins_per_day=24,
    min_flows_per_verdict=3,
    label_grace_bins=10**6,
    seed=1,
)


@pytest.fixture(scope="module")
def scrubber():
    rng = local.rng_for(999)
    labeled = local.labeled_flows(rng, n_flows=6000, n_targets=12, n_bins=20)
    balanced = balance(labeled, np.random.default_rng(7)).flows
    config = ScrubberConfig(model="XGB", model_params={"n_estimators": 10})
    return IXPScrubber(config).fit(balanced)


@pytest.fixture(scope="module")
def workload():
    return local.labeled_flows(
        local.rng_for(321), n_flows=2400, n_targets=10, n_bins=24
    )


def make_engine(scrubber, **overrides):
    kwargs = {**ENGINE_KWARGS, **overrides}
    return StreamingScrubber(**kwargs).warm_start(scrubber)


def make_sharded(scrubber, n_shards=2, **overrides):
    kwargs = {**ENGINE_KWARGS, **overrides}
    engine = ShardedStreamingScrubber(
        n_shards=n_shards, backend=kwargs.pop("backend", "serial"),
        equivalence_check=False, agg=kwargs.pop("agg", "exact"),
        backend_options=kwargs.pop("backend_options", {}), **kwargs,
    )
    engine.warm_start(scrubber)
    return engine


def assert_same_verdicts(got, want):
    assert len(got) == len(want)
    for a, b in zip(got, want):
        assert (a.bin, a.target_ip, a.is_ddos) == (b.bin, b.target_ip, b.is_ddos)
        assert a.score == b.score  # bitwise, not approx
        assert tuple(a.matched_rules) == tuple(b.matched_rules)


# ----------------------------------------------------------------------
# Value codec properties.
# ----------------------------------------------------------------------

_DTYPES = st.sampled_from(["float64", "float32", "int64", "int32",
                           "uint32", "uint8", "bool"])


@st.composite
def arrays(draw):
    dtype = np.dtype(draw(_DTYPES))
    shape = draw(st.lists(st.integers(0, 5), min_size=0, max_size=3))
    n = int(np.prod(shape)) if shape else 1
    raw = draw(st.binary(min_size=n * dtype.itemsize,
                         max_size=n * dtype.itemsize))
    return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()


#: Bare (non-array) floats must stay finite: snapshots are serialized
#: with ``allow_nan=False`` so NaN/inf can never hide in a checkpoint.
#: Array payloads travel as raw bytes and may hold any bit pattern.
json_scalars = st.one_of(
    st.none(), st.booleans(), st.integers(-2**100, 2**100),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)

nested_values = st.recursive(
    st.one_of(json_scalars, arrays()),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
        st.dictionaries(st.integers(-10**6, 10**6), children, max_size=4),
        st.sets(st.integers(-10**6, 10**6), max_size=6),
    ),
    max_leaves=12,
)


def equivalent(a, b):
    if isinstance(a, np.ndarray):
        return (isinstance(b, np.ndarray) and a.dtype == b.dtype
                and a.shape == b.shape and a.tobytes() == b.tobytes())
    if isinstance(a, tuple):
        return (isinstance(b, tuple) and len(a) == len(b)
                and all(equivalent(x, y) for x, y in zip(a, b)))
    if isinstance(a, list):
        return (isinstance(b, list) and len(a) == len(b)
                and all(equivalent(x, y) for x, y in zip(a, b)))
    if isinstance(a, dict):
        # Insertion order is only guaranteed for tagged (non-str-key)
        # maps; plain JSON objects may be reordered by sort_keys.
        str_keyed = all(isinstance(k, str) for k in a)
        if not str_keyed and not (list(a) == list(b)):
            return False
        return (isinstance(b, dict) and set(a) == set(b)
                and all(equivalent(a[k], b[k]) for k in a))
    if isinstance(a, float):
        return isinstance(b, float) and repr(a) == repr(b)
    return type(a) is type(b) and a == b


class TestValueCodec:
    @settings(max_examples=60, deadline=None)
    @given(nested_values)
    def test_round_trip_through_json_text(self, value):
        encoded = encode_value(value)
        text = json.dumps(encoded, sort_keys=True, allow_nan=False)
        assert equivalent(decode_value(json.loads(text)), value)

    @settings(max_examples=60, deadline=None)
    @given(arrays())
    def test_arrays_round_trip_bitwise(self, array):
        back = decode_value(json.loads(json.dumps(encode_value(array))))
        assert back.dtype == array.dtype
        assert back.shape == array.shape
        assert back.tobytes() == array.tobytes()

    def test_int_key_dicts_preserve_insertion_order(self):
        value = {5: "a", 1: "b", 3: "c"}
        back = decode_value(encode_value(value))
        assert list(back) == [5, 1, 3]

    def test_unknown_tag_is_a_typed_error(self):
        with pytest.raises(CorruptSnapshotError):
            decode_value({"__repro__": "mystery"})

    def test_corrupt_base64_is_a_typed_error(self):
        bad = encode_value(np.arange(4.0))
        bad["data"] = "!!not base64!!"
        with pytest.raises(CorruptSnapshotError):
            decode_value(bad)

    def test_unencodable_type_raises_typeerror(self):
        with pytest.raises(TypeError):
            encode_value(object())


# ----------------------------------------------------------------------
# Engine state round trip.
# ----------------------------------------------------------------------

class TestEngineStateRoundTrip:
    def test_restore_is_bitwise_identical(self, scrubber, workload):
        engine = make_engine(scrubber)
        bins = workload.time // 60
        engine.ingest(workload.select(bins < 12))
        state = engine.capture_state()
        text = json.dumps(state, sort_keys=True, allow_nan=False)

        twin = make_engine(scrubber)
        twin.restore_state(json.loads(text))
        assert json.dumps(twin.capture_state(), sort_keys=True,
                          allow_nan=False) == text

        # Both engines continue identically after the hand-off.
        rest = workload.select(bins >= 12)
        assert_same_verdicts(
            twin.ingest(rest) + twin.flush(),
            engine.ingest(rest) + engine.flush(),
        )

    def test_restore_rejects_mismatched_params(self, scrubber, workload):
        engine = make_engine(scrubber)
        state = engine.capture_state()
        other = make_engine(scrubber, bins_per_day=48)
        with pytest.raises(CheckpointConfigError):
            other.restore_state(state)

    def test_sharded_restore_rejects_plan_mismatch(self, scrubber):
        engine = make_sharded(scrubber, n_shards=2)
        state = engine.capture_state()
        other = make_sharded(scrubber, n_shards=4)
        try:
            with pytest.raises(CheckpointConfigError):
                other.restore_state(state)
        finally:
            engine.close()
            other.close()


# ----------------------------------------------------------------------
# Verdict journal.
# ----------------------------------------------------------------------

def verdict(b, t, score=0.5):
    return TargetVerdict(bin=b, target_ip=t, is_ddos=score >= 0.5,
                         score=score, matched_rules=("r1",))


def jpath(directory):
    return Path(directory) / VerdictJournal.FILENAME


class TestJournal:
    def test_append_and_reopen(self, tmp_path):
        with VerdictJournal.open(jpath(tmp_path)) as journal:
            journal.append(0, [verdict(0, 1)])
            journal.append(1, [])
            journal.append(2, [verdict(2, 9, 0.25)])
        with VerdictJournal.open(jpath(tmp_path)) as journal:
            assert journal.last_tick == 2
            assert [e.tick for e in journal.entries] == [0, 1, 2]
            assert_same_verdicts(journal.entries[2].verdicts(),
                                 [verdict(2, 9, 0.25)])

    def test_ticks_must_increase(self, tmp_path):
        with VerdictJournal.open(jpath(tmp_path)) as journal:
            journal.append(3, [])
            with pytest.raises(ValueError):
                journal.append(3, [])

    def test_torn_tail_is_truncated(self, tmp_path):
        with VerdictJournal.open(jpath(tmp_path)) as journal:
            journal.append(0, [verdict(0, 1)])
            journal.append(1, [verdict(1, 2)])
        path = jpath(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:-7])  # tear the final record
        with VerdictJournal.open(path) as journal:
            assert journal.last_tick == 0
            journal.append(1, [verdict(1, 2)])  # writable after recovery
        assert path.read_bytes() == data

    def test_mid_file_corruption_is_a_typed_error(self, tmp_path):
        with VerdictJournal.open(jpath(tmp_path)) as journal:
            journal.append(0, [verdict(0, 1)])
            journal.append(1, [verdict(1, 2)])
        path = jpath(tmp_path)
        lines = path.read_bytes().splitlines(keepends=True)
        lines[0] = b"00000000 " + lines[0][9:]  # break the first crc
        path.write_bytes(b"".join(lines))
        with pytest.raises(CorruptJournalError):
            VerdictJournal.open(path)

    def test_canonical_entry_is_stable_bytes(self):
        body = canonical_entry(4, [verdict(4, 7, 0.75)])
        assert body == canonical_entry(4, [verdict(4, 7, 0.75)])
        parsed = json.loads(body)
        assert parsed["tick"] == 4
        assert parsed["verdicts"][0]["target"] == 7
        assert zlib.crc32(body.encode("utf-8")) is not None


# ----------------------------------------------------------------------
# Snapshot store.
# ----------------------------------------------------------------------

class TestSnapshotStore:
    def test_save_load_latest_and_retention(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        for tick in (2, 5, 8, 11):
            store.save(tick, {"tick": tick, "payload": list(range(tick))})
        assert store.ticks() == [8, 11]  # keep=2
        tick, state, rejected = store.latest()
        assert (tick, rejected) == (11, 0)
        assert state["payload"] == list(range(11))
        assert store.load(8)["tick"] == 8

    def test_empty_store_raises(self, tmp_path):
        with pytest.raises(NoCheckpointError):
            CheckpointStore(tmp_path).latest()

    def test_torn_payload_is_rejected_for_older(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=3)
        store.save(2, {"v": 1})
        path = store.save(5, {"v": 2})
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])  # torn write
        tick, state, rejected = CheckpointStore(tmp_path).latest()
        assert (tick, state["v"], rejected) == (2, 1, 1)

    def test_corrupt_manifest_is_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=3)
        store.save(2, {"v": 1})
        store.save(5, {"v": 2})
        manifest = tmp_path / "ckpt-000000000005.manifest.json"
        manifest.write_text("{not json", encoding="utf-8")
        tick, state, rejected = CheckpointStore(tmp_path).latest()
        assert (tick, state["v"], rejected) == (2, 1, 1)

    def test_orphan_payload_without_manifest_is_ignored(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=3)
        store.save(2, {"v": 1})
        orphan = tmp_path / "ckpt-000000000009.state.json"
        orphan.write_text('{"v": 9}', encoding="utf-8")
        tick, state, rejected = CheckpointStore(tmp_path).latest()
        assert (tick, rejected) == (2, 0)

    def test_load_unknown_tick_raises(self, tmp_path):
        with pytest.raises(NoCheckpointError):
            CheckpointStore(tmp_path).load(3)


class TestDurableWrite:
    def test_writes_and_replaces(self, tmp_path):
        path = tmp_path / "file.json"
        durable_write(path, b"one")
        durable_write(path, b"two")
        assert path.read_bytes() == b"two"
        assert not (tmp_path / "file.json.tmp").exists()


# ----------------------------------------------------------------------
# Crash/resume equivalence.
# ----------------------------------------------------------------------

def run_with_crash(factory, workload, directory, crash_tick, every=3,
                   chunk_bins=4, fault_specs=(), crash_handler=None):
    """One crashed run + one resumed run; returns combined verdicts."""
    engine = factory()
    try:
        session = RecoverySession(engine, directory, every=every,
                                  fault_specs=fault_specs,
                                  crash_handler=crash_handler)
        first = drive_engine(engine, workload, chunk_bins=chunk_bins,
                             session=session, stop_after_tick=crash_tick)
        # The session is deliberately not closed: every append is
        # already fsynced, so abandoning here models SIGKILL.
    finally:
        engine.close()
    engine = factory()
    try:
        session = RecoverySession(engine, directory, every=every,
                                  resume=True)
        rest = drive_engine(engine, workload, chunk_bins=chunk_bins,
                            session=session)
        session.close()
    finally:
        engine.close()
    return first + rest


class TestCrashResume:
    @pytest.mark.parametrize("crash_tick", [0, 2, 3, 5])
    def test_serial_engine_is_exactly_once(self, scrubber, workload,
                                           tmp_path, crash_tick):
        reference = drive_engine(make_engine(scrubber), workload,
                                 chunk_bins=4)
        combined = run_with_crash(lambda: make_engine(scrubber), workload,
                                  tmp_path, crash_tick)
        assert_same_verdicts(combined, reference)

    def test_journal_matches_uninterrupted_run_bytes(self, scrubber,
                                                     workload, tmp_path):
        ref_dir, crash_dir = tmp_path / "ref", tmp_path / "crash"
        engine = make_engine(scrubber)
        session = RecoverySession(engine, ref_dir, every=3)
        drive_engine(engine, workload, chunk_bins=4, session=session)
        session.close()
        run_with_crash(lambda: make_engine(scrubber), workload,
                       crash_dir, crash_tick=3)
        name = VerdictJournal.FILENAME
        assert (crash_dir / name).read_bytes() == (ref_dir / name).read_bytes()

    def test_sharded_serial_two_shards(self, scrubber, workload, tmp_path):
        ref = make_sharded(scrubber, n_shards=2)
        try:
            reference = drive_engine(ref, workload, chunk_bins=4)
        finally:
            ref.close()
        combined = run_with_crash(
            lambda: make_sharded(scrubber, n_shards=2), workload,
            tmp_path, crash_tick=3,
        )
        assert_same_verdicts(combined, reference)

    def test_resume_without_snapshot_replays_from_scratch(self, scrubber,
                                                          workload, tmp_path):
        reference = drive_engine(make_engine(scrubber), workload,
                                 chunk_bins=4)
        # every=0 disables periodic snapshots: resume has only the journal.
        combined = run_with_crash(lambda: make_engine(scrubber), workload,
                                  tmp_path, crash_tick=2, every=0)
        assert_same_verdicts(combined, reference)

    def test_fresh_session_refuses_existing_journal(self, scrubber,
                                                    workload, tmp_path):
        engine = make_engine(scrubber)
        session = RecoverySession(engine, tmp_path, every=3)
        drive_engine(engine, workload, chunk_bins=4, session=session,
                     stop_after_tick=2)
        session.close()
        with pytest.raises(JournalExistsError):
            RecoverySession(make_engine(scrubber), tmp_path, every=3)

    def test_divergent_replay_is_a_typed_error(self, scrubber, workload,
                                               tmp_path):
        engine = make_engine(scrubber)
        session = RecoverySession(engine, tmp_path, every=10**6)
        drive_engine(engine, workload, chunk_bins=4, session=session,
                     stop_after_tick=3)
        session.close()
        # Resume with a different workload: the replayed verdicts no
        # longer match the journaled bytes.
        other = local.labeled_flows(
            local.rng_for(77), n_flows=2400, n_targets=10, n_bins=24
        )
        engine = make_engine(scrubber)
        session = RecoverySession(engine, tmp_path, every=10**6, resume=True)
        with pytest.raises(ResumeDivergenceError):
            drive_engine(engine, other, chunk_bins=4, session=session)


@pytest.mark.slow
class TestCrashResumeMatrix:
    @pytest.mark.parametrize("backend", ["process", "supervised"])
    def test_process_backends(self, scrubber, workload, tmp_path, backend):
        def factory():
            return make_sharded(scrubber, n_shards=2, backend=backend)

        ref = factory()
        try:
            reference = drive_engine(ref, workload, chunk_bins=4)
        finally:
            ref.close()
        combined = run_with_crash(factory, workload, tmp_path, crash_tick=3)
        assert_same_verdicts(combined, reference)

    def test_sketch_aggregation(self, scrubber, workload, tmp_path):
        def factory():
            return make_sharded(scrubber, n_shards=4, agg="sketch")

        ref = factory()
        try:
            reference = drive_engine(ref, workload, chunk_bins=4)
        finally:
            ref.close()
        combined = run_with_crash(factory, workload, tmp_path, crash_tick=4)
        assert_same_verdicts(combined, reference)


# ----------------------------------------------------------------------
# Disk-fault injection.
# ----------------------------------------------------------------------

class _Crash(Exception):
    """In-process stand-in for the crash handler's os._exit."""


class TestDiskFaults:
    def test_enospc_is_survivable_and_counted(self, scrubber, workload,
                                              tmp_path):
        plan = FaultPlan.parse("enospc@1")
        engine = make_engine(scrubber)
        session = RecoverySession(engine, tmp_path, every=2,
                                  fault_specs=plan.disk_specs())
        drive_engine(engine, workload, chunk_bins=4, session=session)
        session.close()
        ticks = CheckpointStore(tmp_path).ticks()
        assert ticks  # later checkpoints landed after the failed one
        reference = drive_engine(make_engine(scrubber), workload,
                                 chunk_bins=4)
        combined = run_with_crash(lambda: make_engine(scrubber), workload,
                                  tmp_path / "b", crash_tick=4, every=2,
                                  fault_specs=plan.disk_specs())
        assert_same_verdicts(combined, reference)

    def test_torn_write_fails_closed_to_older_snapshot(self, scrubber,
                                                       workload, tmp_path):
        plan = FaultPlan.parse("torn-write@1")
        reference = drive_engine(make_engine(scrubber), workload,
                                 chunk_bins=4)
        engine = make_engine(scrubber)
        session = RecoverySession(engine, tmp_path, every=2,
                                  fault_specs=plan.disk_specs())
        first = drive_engine(engine, workload, chunk_bins=4, session=session,
                             stop_after_tick=3)
        engine.close()
        engine = make_engine(scrubber)
        session = RecoverySession(engine, tmp_path, every=2, resume=True)
        assert session.restored_tick == 1  # tick-3 snapshot was torn
        rest = drive_engine(engine, workload, chunk_bins=4, session=session)
        session.close()
        # The torn snapshot cost nothing: replay covers the gap.
        assert_same_verdicts(first + rest, reference)

    def test_crash_at_checkpoint_leaves_no_manifest(self, scrubber,
                                                    workload, tmp_path):
        plan = FaultPlan.parse("crash-at-checkpoint@1")

        def boom():
            raise _Crash()

        engine = make_engine(scrubber)
        session = RecoverySession(engine, tmp_path, every=2,
                                  fault_specs=plan.disk_specs(),
                                  crash_handler=boom)
        with pytest.raises(_Crash):
            drive_engine(engine, workload, chunk_bins=4, session=session)
        assert CheckpointStore(tmp_path).ticks() == [1]  # ordinal 0 only
        # The payload of the aborted ordinal may exist; it is an orphan.
        reference = drive_engine(make_engine(scrubber), workload,
                                 chunk_bins=4)
        engine = make_engine(scrubber)
        session = RecoverySession(engine, tmp_path, every=2, resume=True)
        drive_engine(engine, workload, chunk_bins=4, session=session)
        session.close()
        journaled = [v for e in VerdictJournal.open(jpath(tmp_path)).entries
                     for v in e.verdicts()]
        assert_same_verdicts(journaled, reference)

    def test_disk_specs_reject_worker_options(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("enospc@1:batch=2")


# ----------------------------------------------------------------------
# iter_chunks contract.
# ----------------------------------------------------------------------

class TestIterChunks:
    def test_covers_every_flow_exactly_once(self, workload):
        seen = 0
        for tick, chunk, updates in iter_chunks(workload, (), chunk_bins=4):
            assert updates == []
            seen += len(chunk)
        assert seen == len(workload)

    def test_ticks_are_contiguous_from_zero(self, workload):
        ticks = [t for t, _, _ in iter_chunks(workload, (), chunk_bins=4,
                                              start_bin=0, end_bin=24)]
        assert ticks == list(range(6))


# ----------------------------------------------------------------------
# Orphan-worker reaper (satellite regression).
# ----------------------------------------------------------------------

@pytest.mark.slow
class TestOrphanReaper:
    def test_unclosed_backend_reaps_workers_on_gc(self, scrubber):
        backend = ProcessBackend(n_shards=2)
        procs = list(backend._procs)
        assert all(p.is_alive() for p in procs)
        finalizer = backend._finalizer
        del backend
        gc.collect()
        assert not finalizer.alive  # ran via weakref.finalize
        for proc in procs:
            proc.join(timeout=10)
            assert not proc.is_alive()

    def test_close_detaches_finalizer(self, scrubber):
        backend = ProcessBackend(n_shards=1)
        backend.close()
        assert not backend._finalizer.alive
