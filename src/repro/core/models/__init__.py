"""Step 2 classifiers, metrics, selection, and model pipelines."""

from repro.core.models.base import Classifier, check_fit_inputs
from repro.core.models.baselines import DummyClassifier, RuleBasedClassifier
from repro.core.models.bayes import (
    BernoulliNB,
    ComplementNB,
    GaussianNB,
    MultinomialNB,
)
from repro.core.models.binning import QuantileBinner
from repro.core.models.boosting import GradientBoostedTrees
from repro.core.models.kernels import (
    ForestKernel,
    HistogramScratch,
    TreeKernel,
    reference_cart_values,
    reference_forest_margin,
)
from repro.core.models.linear import LinearSVM
from repro.core.models.metrics import (
    DEFAULT_BETA,
    ConfusionMatrix,
    ModelScore,
    f1_score,
    fbeta_score,
    prediction_cost_mcc,
)
from repro.core.models.nn import NeuralNetwork
from repro.core.models.pipeline import (
    PIPELINE_FACTORIES,
    TABLE3_MODELS,
    TABLE5_MODELS,
    ModelPipeline,
    make_pipeline,
)
from repro.core.models.selection import (
    GridSearchResult,
    grid_search,
    k_fold,
    parameter_grid,
    train_test_split,
)
from repro.core.models.tree import DecisionTree

__all__ = [
    "BernoulliNB",
    "Classifier",
    "ComplementNB",
    "ConfusionMatrix",
    "DEFAULT_BETA",
    "DecisionTree",
    "DummyClassifier",
    "ForestKernel",
    "GaussianNB",
    "GradientBoostedTrees",
    "GridSearchResult",
    "HistogramScratch",
    "LinearSVM",
    "ModelPipeline",
    "ModelScore",
    "MultinomialNB",
    "NeuralNetwork",
    "PIPELINE_FACTORIES",
    "QuantileBinner",
    "RuleBasedClassifier",
    "TABLE3_MODELS",
    "TABLE5_MODELS",
    "TreeKernel",
    "check_fit_inputs",
    "reference_cart_values",
    "reference_forest_margin",
    "f1_score",
    "fbeta_score",
    "grid_search",
    "k_fold",
    "make_pipeline",
    "parameter_grid",
    "prediction_cost_mcc",
    "train_test_split",
]
