"""The balancing procedure of paper §3 (Fig. 3b).

Blackholed traffic is a tiny fraction of IXP traffic (< 0.8 % of bytes,
Fig. 3a); training on the raw mix would collapse any classifier onto the
majority class. The balancing procedure selects, per one-minute bin:

1. *all* blackholed flows (the under-represented class), and
2. a benign sample matching both the number of distinct destination IPs
   and the per-destination flow counts of the blackholed traffic.

The result is an ~50:50 dataset whose two classes have correlated
flows-per-IP profiles (validated in Fig. 3c with Pearson r ≈ 0.77).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.netflow.dataset import BIN_SECONDS, FlowDataset
from repro.obs import names as metric_names


@dataclass(frozen=True)
class BalanceReport:
    """Per-bin bookkeeping of the balancing procedure.

    One entry per time bin that contained blackholed traffic. The
    flows-per-IP columns feed the Fig. 3c validation scatter.
    """

    bins: np.ndarray
    blackhole_ips: np.ndarray
    blackhole_flows: np.ndarray
    benign_ips: np.ndarray
    benign_flows: np.ndarray
    flows_before: int
    flows_after: int

    @property
    def reduction(self) -> float:
        """Fraction of input flows discarded by balancing."""
        if self.flows_before == 0:
            return 0.0
        return 1.0 - self.flows_after / self.flows_before

    def flows_per_ip(self) -> tuple[np.ndarray, np.ndarray]:
        """(blackhole, benign) flows per unique IP per bin (Fig. 3c)."""
        with np.errstate(divide="ignore", invalid="ignore"):
            bh = np.where(self.blackhole_ips > 0, self.blackhole_flows / self.blackhole_ips, 0.0)
            be = np.where(self.benign_ips > 0, self.benign_flows / self.benign_ips, 0.0)
        return bh, be

    def pearson_r(self) -> float:
        """Pearson correlation of per-bin flows/IP between the classes."""
        bh, be = self.flows_per_ip()
        if bh.size < 2 or np.std(bh) == 0 or np.std(be) == 0:
            return float("nan")
        return float(np.corrcoef(bh, be)[0, 1])


@dataclass(frozen=True)
class BalancedDataset:
    """A balanced training set plus its balance report."""

    flows: FlowDataset
    report: BalanceReport

    @property
    def blackhole_share(self) -> float:
        return self.flows.blackhole_share


def _per_ip_counts(dst: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Unique destination IPs and their flow counts."""
    ips, counts = np.unique(dst, return_counts=True)
    return ips, counts


def balance(
    flows: FlowDataset,
    rng: np.random.Generator,
    bin_seconds: int = BIN_SECONDS,
) -> BalancedDataset:
    """Apply the balancing procedure to a labeled flow dataset.

    Per bin, all blackholed flows are kept. Benign destination IPs are
    then drawn (without replacement) to match the number of blackholed
    destinations; each drawn benign IP is paired with one blackholed IP
    by descending flow count and subsampled to the paired count. Bins
    without blackholed traffic contribute nothing — exactly the online
    recording behaviour that discards the unbalanced bulk early.
    """
    with obs.span(metric_names.SPAN_LABELING_BALANCE):
        result = _balance(flows, rng, bin_seconds)
    obs.counter(metric_names.C_LABELING_FLOWS_IN).inc(result.report.flows_before)
    obs.counter(metric_names.C_LABELING_FLOWS_KEPT).inc(result.report.flows_after)
    obs.gauge(metric_names.G_LABELING_LAST_REDUCTION).set(result.report.reduction)
    return result


def _balance(
    flows: FlowDataset,
    rng: np.random.Generator,
    bin_seconds: int,
) -> BalancedDataset:
    if len(flows) == 0:
        empty = FlowDataset.empty()
        report = BalanceReport(
            bins=np.empty(0, dtype=np.int64),
            blackhole_ips=np.empty(0, dtype=np.int64),
            blackhole_flows=np.empty(0, dtype=np.int64),
            benign_ips=np.empty(0, dtype=np.int64),
            benign_flows=np.empty(0, dtype=np.int64),
            flows_before=0,
            flows_after=0,
        )
        return BalancedDataset(flows=empty, report=report)

    bins = flows.time_bin(bin_seconds)
    labels = flows.blackhole
    dst = flows.dst_ip
    keep_index_parts: list[np.ndarray] = []

    rep_bins: list[int] = []
    rep_bh_ips: list[int] = []
    rep_bh_flows: list[int] = []
    rep_be_ips: list[int] = []
    rep_be_flows: list[int] = []

    for bin_id in np.unique(bins[labels]):
        in_bin = bins == bin_id
        bh_idx = np.flatnonzero(in_bin & labels)
        be_idx = np.flatnonzero(in_bin & ~labels)
        keep_index_parts.append(bh_idx)

        bh_ips, bh_counts = _per_ip_counts(dst[bh_idx])
        n_ips = bh_ips.shape[0]
        # Order blackholed targets by descending intensity; pair benign
        # targets by the same order so flow counts correlate per IP.
        target_counts = np.sort(bh_counts)[::-1]

        be_selected = 0
        be_flow_count = 0
        if be_idx.size:
            be_ips, be_counts = _per_ip_counts(dst[be_idx])
            n_pick = min(n_ips, be_ips.shape[0])
            # For each blackholed IP's flow quota (descending), pick one
            # benign IP at random among those that can supply at least
            # half the quota, falling back to the largest remaining.
            # Randomising among qualifying IPs (instead of always taking
            # the top counts) avoids systematically selecting the same
            # heavy destinations in every bin.
            available = np.argsort(be_counts, kind="stable")[::-1].tolist()
            leftovers: list[np.ndarray] = []  # unused flows of picked IPs
            for rank in range(n_pick):
                quota_target = int(target_counts[rank])
                threshold = max(1, quota_target // 2)
                qualifying = [
                    pos for pos in available if be_counts[pos] >= threshold
                ]
                if qualifying:
                    pick = qualifying[int(rng.integers(len(qualifying)))]
                else:
                    pick = available[0]
                available.remove(pick)
                ip = be_ips[pick]
                ip_flows = be_idx[dst[be_idx] == ip]
                quota = int(min(quota_target, ip_flows.shape[0]))
                if quota <= 0:
                    continue
                permuted = rng.permutation(ip_flows)
                keep_index_parts.append(permuted[:quota])
                if quota < permuted.shape[0]:
                    leftovers.append(permuted[quota:])
                be_selected += 1
                be_flow_count += quota
                if not available:
                    break
            # Redistribution pass: when quotas could not be filled (no
            # benign IP had enough flows), top up from the unused flows
            # of the already-picked IPs so the per-bin class totals stay
            # comparable. The set of benign IPs is unchanged; only the
            # equal-flows-per-IP pairing is relaxed, which Fig. 3c
            # tolerates (the paper reports correlated, not identical,
            # per-IP counts).
            shortfall = int(bh_idx.shape[0]) - be_flow_count
            for extra in leftovers:
                if shortfall <= 0:
                    break
                take = min(shortfall, extra.shape[0])
                keep_index_parts.append(extra[:take])
                be_flow_count += take
                shortfall -= take

        rep_bins.append(int(bin_id))
        rep_bh_ips.append(n_ips)
        rep_bh_flows.append(int(bh_idx.shape[0]))
        rep_be_ips.append(be_selected)
        rep_be_flows.append(be_flow_count)

    if keep_index_parts:
        keep = np.sort(np.concatenate(keep_index_parts))
    else:
        keep = np.empty(0, dtype=np.int64)
    balanced = flows.select(keep)
    report = BalanceReport(
        bins=np.asarray(rep_bins, dtype=np.int64),
        blackhole_ips=np.asarray(rep_bh_ips, dtype=np.int64),
        blackhole_flows=np.asarray(rep_bh_flows, dtype=np.int64),
        benign_ips=np.asarray(rep_be_ips, dtype=np.int64),
        benign_flows=np.asarray(rep_be_flows, dtype=np.int64),
        flows_before=len(flows),
        flows_after=len(balanced),
    )
    return BalancedDataset(flows=balanced, report=report)
