"""Subprocess-free CLI tests: drive ``repro.cli.main(argv)`` directly.

Calling ``main`` in-process (instead of shelling out to
``python -m repro``) keeps these fast, coverage-visible and
debuggable; stdout/stderr are captured with pytest's ``capsys``.
``--days 1`` keeps the synthetic workloads small.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def test_list_exits_zero_and_names_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert out.strip(), "repro list printed nothing"


def test_unknown_experiment_exits_2(capsys):
    assert main(["run", "no-such-experiment"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


@pytest.mark.parametrize("bad", [["nope"], ["stats", "--days", "0"],
                                 ["stream", "--shards", "0"],
                                 ["stream", "--backend", "thread"],
                                 ["stats", "--format", "xml"],
                                 ["stream", "--faults", "explode@0"],
                                 ["stream", "--faults", "crash@x"],
                                 ["stream", "--shard-timeout", "0"],
                                 ["stream", "--max-restarts", "-1"],
                                 ["stream", "--agg", "hll"],
                                 ["stream", "--sketch-eps", "0"],
                                 ["stream", "--sketch-eps", "1.5"],
                                 ["stream", "--sketch-delta", "-0.1"]])
def test_invalid_arguments_exit_2(bad, capsys):
    with pytest.raises(SystemExit) as exc:
        main(bad)
    assert exc.value.code == 2
    capsys.readouterr()  # drain argparse usage text


class TestStats:
    def test_text_format(self, capsys):
        assert main(["stats", "--days", "1"]) == 0
        captured = capsys.readouterr()
        assert "== counters ==" in captured.out
        assert "streaming.flows_ingested" in captured.out
        assert "== spans (per phase) ==" in captured.out
        assert "[streamed" in captured.out  # footer with verdict count
        assert "generating 1 synthetic day(s)" in captured.err

    def test_json_format_parses_and_counts(self, capsys):
        assert main(["stats", "--days", "1", "--format", "json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        counters = {c["name"]: c["value"] for c in snap["counters"]}
        assert counters["streaming.flows_ingested"] > 0
        assert counters["streaming.bins_closed"] > 0

    def test_jsonl_export(self, capsys, tmp_path):
        path = tmp_path / "stats.jsonl"
        assert main(["stats", "--days", "1", "--jsonl", str(path)]) == 0
        capsys.readouterr()
        from repro import obs

        rows = obs.read_jsonl(path)
        assert len(rows) == 1 and rows[0]["days"] == 1


class TestStream:
    def test_sharded_text_format(self, capsys):
        assert main(["stream", "--days", "1", "--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "parallel.flows_dispatched" in out
        assert "parallel.shard_classify" in out
        assert "across 2 serial shard(s)" in out

    def test_sharded_json_merges_shard_metrics(self, capsys):
        assert main(
            ["stream", "--days", "1", "--shards", "2", "--format", "json"]
        ) == 0
        snap = json.loads(capsys.readouterr().out)
        counters = {c["name"]: c["value"] for c in snap["counters"]}
        # The merged snapshot carries coordinator and shard series once.
        assert counters["parallel.shard_flows"] == counters[
            "parallel.flows_dispatched"
        ]
        assert counters["streaming.flows_ingested"] > 0
        gauges = {g["name"]: g["value"] for g in snap["gauges"]}
        assert gauges["parallel.shards"] == 2

    def test_prometheus_format_with_equivalence_check(self, capsys):
        assert main(
            ["stream", "--days", "1", "--shards", "2", "--check",
             "--format", "prometheus"]
        ) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_parallel_flows_dispatched_total counter" in out
        assert "repro_parallel_equivalence_checks_total" in out
        for line in out.strip().splitlines():
            if not line.startswith("#"):
                assert len(line.rsplit(" ", 1)) == 2

    def test_serial_backend_rejects_supervision_flags(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["stream", "--days", "1", "--faults", "crash@0"])
        assert exc.value.code == 2
        assert "--backend process or supervised" in capsys.readouterr().err

    def test_serial_backend_rejects_shm_ipc(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["stream", "--days", "1", "--ipc", "shm"])
        assert exc.value.code == 2
        assert "--backend process or supervised" in capsys.readouterr().err

    def test_shm_ipc_streams_checked_and_reports(self, capsys):
        assert main(
            ["stream", "--days", "1", "--shards", "2", "--backend",
             "process", "--ipc", "shm", "--check"]
        ) == 0
        out = capsys.readouterr().out
        assert "ipc: shm" in out
        assert "pipe fallbacks" in out
        assert "parallel.ipc_ring_bytes" in out

    def test_sketch_flags_require_sketch_mode(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["stream", "--days", "1", "--sketch-eps", "0.01"])
        assert exc.value.code == 2
        assert "require --agg sketch" in capsys.readouterr().err

    def test_check_rejects_sketch_mode(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["stream", "--days", "1", "--agg", "sketch", "--check"])
        assert exc.value.code == 2
        assert "exact aggregation" in capsys.readouterr().err

    def test_sketch_mode_runs_and_reports(self, capsys):
        assert main(
            ["stream", "--days", "1", "--shards", "2", "--agg", "sketch",
             "--sketch-eps", "0.01", "--sketch-delta", "0.02"]
        ) == 0
        out = capsys.readouterr().out
        assert "sketch.flows_absorbed" in out
        assert "sketch.merges" in out
        assert "sketch: eps=0.01 delta=0.02" in out
        assert "MB state" in out

    def test_faults_upgrade_process_to_supervised_chaos_run(self, capsys):
        """The acceptance scenario: seeded crash per epoch, zero drift.

        ``--check`` runs the serial equivalence shadow on every chunk,
        so a clean exit *is* the bit-identical-verdicts assertion.
        """
        assert main(
            ["stream", "--days", "1", "--shards", "2", "--backend", "process",
             "--check", "--shard-timeout", "60",
             "--faults", "crash@0:batch=0:scope=epoch"]
        ) == 0
        captured = capsys.readouterr()
        assert "upgrading process backend to supervised" in captured.err
        assert "supervised shard(s)" in captured.out
        assert "equivalence checked" in captured.out
        assert "resilience:" in captured.out
        # The plan fired at least once (first batch of the first epoch).
        restarts = [
            line for line in captured.out.splitlines()
            if "resilience.worker_restarts" in line
        ]
        assert restarts, "supervised run printed no restart counter"


class TestAbbreviationRejection:
    """Prefix abbreviation is off: flag typos are usage errors.

    The regression: with argparse's default ``allow_abbrev=True`` a
    typo like ``--ag sketch`` silently matched ``--agg``, so
    ``repro stream --ag ...`` ran in whatever mode the prefix resolved
    to — and the footer printed sketch eps/delta for what the operator
    thought was an exact run.
    """

    @pytest.mark.parametrize("argv", [
        ["stream", "--ag", "sketch"],
        ["stream", "--shard", "2"],
        ["scenarios", "run", "--scenario", "flash_crowd", "--sca", "0.5"],
    ])
    def test_abbreviated_flags_exit_2(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        assert "unrecognized arguments" in capsys.readouterr().err

    def test_exact_mode_footer_never_mentions_sketch(self, capsys):
        assert main(["stream", "--days", "1", "--shards", "2"]) == 0
        assert "sketch:" not in capsys.readouterr().out

    def test_env_equivalence_rejects_sketch_mode(self, capsys, monkeypatch):
        from repro.core.parallel.engine import EQUIVALENCE_ENV

        monkeypatch.setenv(EQUIVALENCE_ENV, "1")
        with pytest.raises(SystemExit) as exc:
            main(["stream", "--days", "1", "--agg", "sketch"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert EQUIVALENCE_ENV in err and "exact aggregation" in err

    def test_env_equivalence_zero_means_off(self, capsys, monkeypatch):
        from repro.core.parallel.engine import EQUIVALENCE_ENV

        monkeypatch.setenv(EQUIVALENCE_ENV, "0")
        assert main(["stream", "--days", "1", "--agg", "sketch"]) == 0
        capsys.readouterr()


class TestScenarios:
    def test_list_names_every_registered_scenario(self, capsys):
        from repro.scenarios import scenario_names

        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_run_prints_scorecard_summary_and_passes(self, capsys):
        assert main(
            ["scenarios", "run", "--scenario", "volumetric_flood",
             "--seed", "11", "--scale", "0.25"]
        ) == 0
        out = capsys.readouterr().out
        assert "scenario volumetric_flood" in out
        assert "[ok ]" in out and "PASSED" in out

    def test_run_json_is_canonical_and_shard_invariant(self, capsys):
        argv = ["scenarios", "run", "--scenario", "carpet_bombing",
                "--seed", "7", "--scale", "0.25", "--json"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv + ["--shards", "4"]) == 0
        second = capsys.readouterr().out
        assert first == second, "scorecard JSON drifted with shard count"
        card = json.loads(first)
        assert card["scenario"] == "carpet_bombing" and card["passed"]
        for metric in ("detection_latency_max_bins", "localization_precision",
                       "localization_recall", "benign_collateral_rate"):
            assert metric in card["metrics"]

    def test_run_out_writes_the_same_json(self, capsys, tmp_path):
        path = tmp_path / "card.json"
        assert main(
            ["scenarios", "run", "--scenario", "volumetric_flood",
             "--seed", "11", "--scale", "0.25", "--json", "--out", str(path)]
        ) == 0
        captured = capsys.readouterr()
        assert path.read_text() == captured.out
        assert "scorecard written" in captured.err

    def test_unknown_scenario_exits_2(self, capsys):
        assert main(["scenarios", "run", "--scenario", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario" in err and "volumetric_flood" in err

    def test_failing_oracle_exits_1(self, capsys, monkeypatch):
        import repro.scenarios.conductor as conductor
        from repro.scenarios import Scenario, get_scenario
        from repro.scenarios.oracle import Check

        base = get_scenario("volumetric_flood")

        def impossible(seed, scale):
            spec = base.build(seed, scale)
            return type(spec)(
                **{**spec.__dict__,
                   "checks": (Check("cannot hold", "detection_recall",
                                    ">=", 2.0),)}
            )

        monkeypatch.setitem(
            conductor._REGISTRY, "impossible",
            Scenario("impossible", "always fails", impossible),
        )
        assert main(
            ["scenarios", "run", "--scenario", "impossible",
             "--seed", "11", "--scale", "0.25"]
        ) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "FAILED" in out

    def test_invalid_arguments_exit_2(self, capsys):
        for argv in (["scenarios", "run"],
                     ["scenarios", "run", "--scenario", "x", "--scale", "0"],
                     ["scenarios", "run", "--scenario", "x", "--shards", "0"],
                     ["scenarios", "run", "--scenario", "x", "--agg", "hll"],
                     ["scenarios"]):
            with pytest.raises(SystemExit) as exc:
                main(argv)
            assert exc.value.code == 2
            capsys.readouterr()


class TestLint:
    """``repro lint`` — the static-analysis front door."""

    def test_clean_tree_exits_zero_human(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out
        assert "module(s) scanned" in out

    def test_json_schema(self, capsys):
        assert main(["lint", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["findings"] == []
        assert set(payload["counts"]) == {
            "findings", "suppressed", "baselined", "stale_baseline",
        }
        assert payload["modules_scanned"] > 100
        assert "RS101" in payload["rules"]

    def test_rule_and_path_filters(self, capsys):
        assert main(
            ["lint", "--rules", "RS301,RS302", "--no-baseline",
             "src/repro/core"]
        ) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_unknown_rule_exits_2(self, capsys):
        assert main(["lint", "--rules", "RS999"]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_findings_exit_nonzero(self, capsys, monkeypatch):
        import repro.analysis
        from repro.analysis import Finding, LintResult

        fake = LintResult(
            findings=[
                Finding(rule="RS101", path="src/x.py", line=3, col=1,
                        message="wall-clock read", symbol="f")
            ],
            modules_scanned=1,
        )
        monkeypatch.setattr(
            repro.analysis, "run_lint", lambda *a, **k: fake
        )
        assert main(["lint"]) == 1
        out = capsys.readouterr().out
        assert "src/x.py:3:1 RS101" in out
        assert "1 finding(s)" in out

    def test_write_baseline_to_custom_path(self, capsys, tmp_path):
        path = tmp_path / "bl.json"
        assert main(
            ["lint", "--baseline", str(path), "--write-baseline"]
        ) == 0
        assert "wrote 0" in capsys.readouterr().out
        assert json.loads(path.read_text()) == {
            "version": 1, "entries": [],
        }

    def test_warm_cache_json_matches_cold(self, capsys):
        """The CI gate: cached rerun output is byte-identical."""
        assert main(["lint", "--format", "json", "--no-cache"]) == 0
        cold = capsys.readouterr().out
        assert main(["lint", "--format", "json"]) == 0  # fills the cache
        filled = capsys.readouterr().out
        assert main(["lint", "--format", "json"]) == 0  # fully warm
        warm = capsys.readouterr().out
        assert cold == filled == warm

    def test_changed_scope_exits_zero(self, capsys):
        # Scoping only filters a clean report; whatever the working
        # tree's diff is, the scoped run stays clean too.
        assert main(["lint", "--changed"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out


class TestStreamBackendResolution:
    """Unit tests for the flag/env -> backend mapping (no workers spawned)."""

    def _args(self, **overrides):
        import argparse

        defaults = dict(backend="serial", faults=None,
                        shard_timeout=None, max_restarts=None)
        defaults.update(overrides)
        return argparse.Namespace(**defaults)

    def test_plain_backends_pass_through(self, monkeypatch):
        from repro.cli import _resolve_stream_backend
        from repro.core.resilience import FAULTS_ENV

        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert _resolve_stream_backend(self._args()) == ("serial", {})
        assert _resolve_stream_backend(
            self._args(backend="process")
        ) == ("process", {})

    def test_env_plan_upgrades_process(self, monkeypatch, capsys):
        from repro.cli import _resolve_stream_backend
        from repro.core.resilience import FAULTS_ENV

        monkeypatch.setenv(FAULTS_ENV, "crash@0:batch=1")
        backend, options = _resolve_stream_backend(self._args(backend="process"))
        assert backend == "supervised"
        assert options["fault_plan"]
        assert "upgrading process backend to supervised" in capsys.readouterr().err

    def test_env_plan_is_ignored_on_serial(self, monkeypatch):
        # CI exports REPRO_FAULTS globally; a serial run has no workers
        # to supervise and must not fail because of it.
        from repro.cli import _resolve_stream_backend
        from repro.core.resilience import FAULTS_ENV

        monkeypatch.setenv(FAULTS_ENV, "crash@0")
        assert _resolve_stream_backend(self._args()) == ("serial", {})

    def test_supervision_knobs_forwarded(self, monkeypatch):
        from repro.cli import _resolve_stream_backend
        from repro.core.resilience import FAULTS_ENV

        monkeypatch.delenv(FAULTS_ENV, raising=False)
        backend, options = _resolve_stream_backend(
            self._args(backend="supervised", shard_timeout=5.0, max_restarts=1)
        )
        assert backend == "supervised"
        assert options["shard_timeout"] == 5.0 and options["max_restarts"] == 1
        assert not options["fault_plan"]
