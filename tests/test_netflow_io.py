"""Round-trip tests for flow dataset serialisation."""

import numpy as np
import pytest

from repro.netflow.dataset import FlowDataset
from repro.netflow.io import load_csv, load_npz, save_csv, save_npz


def _assert_equal(a: FlowDataset, b: FlowDataset) -> None:
    assert len(a) == len(b)
    for name, column in a.to_columns().items():
        np.testing.assert_array_equal(column, b.to_columns()[name])


class TestNpz:
    def test_roundtrip(self, handmade_flows, tmp_path):
        path = tmp_path / "flows.npz"
        save_npz(handmade_flows, path)
        _assert_equal(handmade_flows, load_npz(path))

    def test_empty_roundtrip(self, tmp_path):
        path = tmp_path / "empty.npz"
        save_npz(FlowDataset.empty(), path)
        assert len(load_npz(path)) == 0

    def test_creates_parent_dirs(self, handmade_flows, tmp_path):
        path = tmp_path / "nested" / "dir" / "flows.npz"
        save_npz(handmade_flows, path)
        assert path.exists()


class TestCsv:
    def test_roundtrip(self, handmade_flows, tmp_path):
        path = tmp_path / "flows.csv"
        save_csv(handmade_flows, path)
        _assert_equal(handmade_flows, load_csv(path))

    def test_header_present(self, handmade_flows, tmp_path):
        path = tmp_path / "flows.csv"
        save_csv(handmade_flows, path)
        header = path.read_text().splitlines()[0]
        assert header.startswith("time,src_ip")

    def test_rejects_wrong_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError, match="header"):
            load_csv(path)
