"""Atomic snapshot store with sha256 manifests and disk-fault injection.

A checkpoint at tick ``t`` is a *pair* of files::

    ckpt-<t:012d>.state.json      canonical JSON of the engine state
    ckpt-<t:012d>.manifest.json   {format, tick, payload, sha256, bytes}

both written with :func:`~repro.core.recovery.durable.durable_write`
(temp + fsync + rename + dir fsync), payload strictly before manifest.
The manifest is the commit record: a snapshot exists only once its
manifest is durably in place and its sha256 matches the payload bytes.
Every failure mode maps onto that invariant:

* crash between payload and manifest → orphan payload, no manifest,
  snapshot simply doesn't exist; the previous one is used;
* torn payload made visible anyway (simulated by the ``torn-write``
  fault) → sha256 mismatch at read time, snapshot rejected and the
  previous one is used;
* disk full (``enospc``) → :class:`CheckpointWriteError` before
  anything replaces the old files; the caller counts it and keeps
  streaming on the previous snapshot.

Disk faults come from the same ``REPRO_FAULTS`` grammar as worker
faults (:mod:`repro.core.resilience.faults`); for disk kinds the
``@N`` position selects the *checkpoint ordinal* (the N-th save attempt
of the run, 0-based; ``*`` = every attempt) and ``count=`` caps how
often the spec fires. ``crash-at-checkpoint`` calls the store's crash
handler — ``os._exit(70)`` by default, a hard death with no cleanup,
exactly between the payload and manifest writes (the worst moment).
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from pathlib import Path
from typing import Callable, Iterable, Optional

from repro.core.recovery.durable import durable_write
from repro.core.recovery.errors import (
    CorruptSnapshotError,
    NoCheckpointError,
)

__all__ = ["CheckpointStore", "DiskFaultInjector", "MANIFEST_FORMAT", "CRASH_EXIT_CODE"]

MANIFEST_FORMAT = 1

#: Process exit status of an injected ``crash-at-checkpoint`` death, so
#: harnesses can tell the simulated crash from a real failure.
CRASH_EXIT_CODE = 70

_MANIFEST_RE = re.compile(r"^ckpt-(\d{12})\.manifest\.json$")


def _canonical_json(obj) -> bytes:
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


def _default_crash() -> None:  # pragma: no cover - exercised in subprocesses
    os._exit(CRASH_EXIT_CODE)


class DiskFaultInjector:
    """Deterministic dispenser of disk faults per checkpoint ordinal."""

    def __init__(self, specs: Iterable = ()):
        self._specs = [s for s in specs if getattr(s, "is_disk", False)]
        self._fired = [0] * len(self._specs)

    def fault_for(self, ordinal: int) -> Optional[str]:
        """The fault kind to inject for save attempt ``ordinal``, if any."""
        for i, spec in enumerate(self._specs):
            if self._fired[i] >= spec.count:
                continue
            if spec.shard is not None and spec.shard != ordinal:
                continue
            self._fired[i] += 1
            return spec.kind
        return None


class CheckpointStore:
    """Reads and writes manifest-committed snapshots in one directory."""

    def __init__(
        self,
        directory: Path,
        injector: Optional[DiskFaultInjector] = None,
        crash_handler: Optional[Callable[[], None]] = None,
        keep: int = 3,
    ):
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._injector = injector or DiskFaultInjector()
        self._crash = crash_handler or _default_crash
        self._keep = keep
        self._saves = 0

    # -- writing --------------------------------------------------------
    def save(self, tick: int, state: dict) -> Path:
        """Durably commit a snapshot of ``state`` at ``tick``.

        Raises :class:`CheckpointWriteError` when the disk fails (real
        or injected ``enospc``); older snapshots are untouched in that
        case. Returns the manifest path on success.
        """
        ordinal = self._saves
        self._saves += 1
        fault = self._injector.fault_for(ordinal)
        payload = _canonical_json(state)
        payload_path = self.directory / f"ckpt-{tick:012d}.state.json"
        manifest_path = self.directory / f"ckpt-{tick:012d}.manifest.json"
        durable_write(
            payload_path,
            payload,
            fault=fault if fault in ("torn-write", "enospc") else None,
        )
        if fault == "crash-at-checkpoint":
            self._crash()
        manifest = {
            "format": MANIFEST_FORMAT,
            "tick": int(tick),
            "payload": payload_path.name,
            "sha256": hashlib.sha256(payload).hexdigest(),
            "bytes": len(payload),
        }
        durable_write(manifest_path, _canonical_json(manifest))
        self._retain()
        return manifest_path

    def _retain(self) -> None:
        """Drop all but the newest ``keep`` snapshots (manifest first,
        so a crash mid-retention never leaves a manifest without its
        payload)."""
        ticks = self.ticks()
        for tick in ticks[: -self._keep]:
            for name in (
                f"ckpt-{tick:012d}.manifest.json",
                f"ckpt-{tick:012d}.state.json",
            ):
                try:
                    os.unlink(self.directory / name)
                except OSError:
                    pass

    # -- reading --------------------------------------------------------
    def ticks(self) -> list[int]:
        """Ticks with a committed manifest, ascending."""
        out = []
        for entry in self.directory.iterdir():
            match = _MANIFEST_RE.match(entry.name)
            if match:
                out.append(int(match.group(1)))
        return sorted(out)

    def load(self, tick: int) -> dict:
        """Load and validate the snapshot at ``tick``.

        Raises :class:`CorruptSnapshotError` on any validation failure —
        unparsable or wrong-format manifest, missing payload, size or
        sha256 mismatch.
        """
        manifest_path = self.directory / f"ckpt-{tick:012d}.manifest.json"
        try:
            manifest = json.loads(manifest_path.read_text())
        except FileNotFoundError as exc:
            # Absent is not corrupt: there is simply no snapshot here.
            raise NoCheckpointError(
                f"no snapshot at tick {tick} in {self.directory}"
            ) from exc
        except OSError as exc:
            raise CorruptSnapshotError(f"{manifest_path}: unreadable: {exc}") from exc
        except ValueError as exc:
            raise CorruptSnapshotError(
                f"{manifest_path}: not valid JSON (truncated?): {exc}"
            ) from exc
        if not isinstance(manifest, dict) or manifest.get("format") != MANIFEST_FORMAT:
            raise CorruptSnapshotError(
                f"{manifest_path}: unknown manifest format "
                f"{manifest.get('format') if isinstance(manifest, dict) else manifest!r}"
            )
        if manifest.get("tick") != tick:
            raise CorruptSnapshotError(
                f"{manifest_path}: manifest tick {manifest.get('tick')!r} "
                f"does not match filename tick {tick}"
            )
        payload_path = self.directory / str(manifest.get("payload", ""))
        try:
            payload = payload_path.read_bytes()
        except OSError as exc:
            raise CorruptSnapshotError(
                f"{payload_path}: payload unreadable: {exc}"
            ) from exc
        if len(payload) != manifest.get("bytes"):
            raise CorruptSnapshotError(
                f"{payload_path}: {len(payload)} bytes on disk, manifest "
                f"promises {manifest.get('bytes')}"
            )
        digest = hashlib.sha256(payload).hexdigest()
        if digest != manifest.get("sha256"):
            raise CorruptSnapshotError(
                f"{payload_path}: sha256 mismatch (torn write?): "
                f"{digest} != {manifest.get('sha256')}"
            )
        try:
            return json.loads(payload)
        except ValueError as exc:  # pragma: no cover - sha already matched
            raise CorruptSnapshotError(
                f"{payload_path}: payload is not valid JSON: {exc}"
            ) from exc

    def latest(self) -> tuple[int, dict, int]:
        """Newest valid snapshot as ``(tick, state, n_rejected)``.

        Corrupt snapshots are skipped (their count is returned so the
        caller can surface it); raises :class:`NoCheckpointError` when
        no snapshot validates.
        """
        rejected = 0
        for tick in reversed(self.ticks()):
            try:
                return tick, self.load(tick), rejected
            except CorruptSnapshotError:
                rejected += 1
        raise NoCheckpointError(
            f"no valid snapshot in {self.directory} ({rejected} rejected)"
        )
