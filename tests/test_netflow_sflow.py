"""Tests for the binary (sFlow-style) flow interchange format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netflow.dataset import FlowDataset
from repro.netflow.sflow import (
    FORMAT_VERSION,
    MAGIC,
    RECORDS_PER_DATAGRAM,
    decode,
    encode,
    encode_datagrams,
)
from tests.conftest import make_flow


def _assert_equal(a: FlowDataset, b: FlowDataset) -> None:
    assert len(a) == len(b)
    for name, column in a.to_columns().items():
        np.testing.assert_array_equal(column, b.to_columns()[name], err_msg=name)


class TestRoundtrip:
    def test_small_roundtrip(self, handmade_flows):
        result = decode(encode(handmade_flows))
        _assert_equal(handmade_flows, result.flows)
        assert result.datagrams == 1
        assert not result.saturated

    def test_empty_roundtrip(self):
        result = decode(encode(FlowDataset.empty()))
        assert len(result.flows) == 0
        assert result.datagrams == 1

    def test_multi_datagram(self):
        flows = FlowDataset.from_records(
            [make_flow(time=i, src_port=i % 1000) for i in range(3 * RECORDS_PER_DATAGRAM + 7)]
        )
        result = decode(encode(flows))
        _assert_equal(flows, result.flows)
        assert result.datagrams == 4

    def test_blackhole_flag_preserved(self):
        flows = FlowDataset.from_records(
            [make_flow(time=0, blackhole=True), make_flow(time=1, blackhole=False)]
        )
        result = decode(encode(flows))
        np.testing.assert_array_equal(result.flows.blackhole, [True, False])

    def test_counter_saturation_flagged(self):
        flows = FlowDataset.from_records(
            [make_flow(packets=2**33, bytes_=2**34)]
        )
        result = decode(encode(flows))
        assert result.saturated
        assert result.flows.packets[0] == 2**32 - 1

    def test_mac_roundtrip(self):
        flows = FlowDataset.from_records([make_flow(src_mac=0xA1B2C3D4E5F6)])
        result = decode(encode(flows))
        assert result.flows.src_mac[0] == 0xA1B2C3D4E5F6


class TestErrors:
    def test_bad_magic(self, handmade_flows):
        payload = bytearray(encode(handmade_flows))
        payload[0:4] = b"XXXX"
        with pytest.raises(ValueError, match="magic"):
            decode(bytes(payload))

    def test_bad_version(self, handmade_flows):
        payload = bytearray(encode(handmade_flows))
        payload[4:6] = (FORMAT_VERSION + 1).to_bytes(2, "big")
        with pytest.raises(ValueError, match="version"):
            decode(bytes(payload))

    def test_truncated_body(self, handmade_flows):
        payload = encode(handmade_flows)
        with pytest.raises(ValueError, match="truncated"):
            decode(payload[:-5])

    def test_sequence_gap_detected(self):
        flows = FlowDataset.from_records(
            [make_flow(time=i) for i in range(2 * RECORDS_PER_DATAGRAM)]
        )
        datagrams = list(encode_datagrams(flows, first_sequence=0))
        assert len(datagrams) == 2
        # Re-number the second datagram to simulate loss.
        tampered = bytearray(datagrams[1])
        tampered[10:14] = (7).to_bytes(4, "big")
        with pytest.raises(ValueError, match="loss"):
            decode(datagrams[0] + bytes(tampered))

    def test_first_sequence_offset(self, handmade_flows):
        payload = encode(handmade_flows, first_sequence=41)
        result = decode(payload)
        assert result.datagrams == 1


@settings(max_examples=20, deadline=None)
@given(
    rows=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2**40),  # time
            st.integers(min_value=0, max_value=2**32 - 1),  # src ip
            st.integers(min_value=0, max_value=65535),  # src port
            st.integers(min_value=1, max_value=2**25 - 1),  # packets (x64 bytes < u32)
            st.booleans(),
        ),
        min_size=1,
        max_size=60,
    )
)
def test_roundtrip_property(rows):
    flows = FlowDataset.from_records(
        [
            make_flow(
                time=t, src_ip=ip, src_port=port, packets=packets,
                bytes_=packets * 64, blackhole=bh,
            )
            for t, ip, port, packets, bh in rows
        ]
    )
    result = decode(encode(flows))
    _assert_equal(flows, result.flows)
