"""Principal component analysis via SVD.

Used by the neural-network pipeline (Fig. 8) to compress the redundant
rank features, and by the Appendix B analysis of aggregation-induced
correlation (explained-variance curve, Fig. 16b).
"""

from __future__ import annotations

import numpy as np

from repro.core.encoding.transforms import Transformer


class PCA(Transformer):
    """Project onto the top ``n_components`` principal components."""

    def __init__(self, n_components: int):
        if n_components <= 0:
            raise ValueError("n_components must be positive")
        self.n_components = n_components
        self.mean_: np.ndarray | None = None
        self.components_: np.ndarray | None = None
        self.explained_variance_ratio_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "PCA":
        X = np.asarray(X, dtype=np.float64)
        if X.shape[0] < 2:
            raise ValueError("PCA needs at least two samples")
        k = min(self.n_components, X.shape[1], X.shape[0])
        self.mean_ = X.mean(axis=0)
        centered = X - self.mean_
        # SVD of the (centered) data matrix; rows of Vt are components.
        _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
        variances = singular_values**2 / max(X.shape[0] - 1, 1)
        total = variances.sum()
        ratio = variances / total if total > 0 else np.zeros_like(variances)
        self.components_ = vt[:k]
        self.explained_variance_ratio_ = ratio[:k]
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.components_ is None or self.mean_ is None:
            raise RuntimeError("PCA is not fitted")
        return (np.asarray(X, dtype=np.float64) - self.mean_) @ self.components_.T


def explained_variance_curve(X: np.ndarray, max_components: int | None = None) -> np.ndarray:
    """Cumulative explained-variance ratio over component count.

    The Fig. 16b curve: ``result[k]`` is the variance share explained by
    the first ``k+1`` components.
    """
    X = np.asarray(X, dtype=np.float64)
    k = min(X.shape[0], X.shape[1])
    if max_components is not None:
        k = min(k, max_components)
    pca = PCA(n_components=k).fit(X)
    assert pca.explained_variance_ratio_ is not None
    return np.cumsum(pca.explained_variance_ratio_)
