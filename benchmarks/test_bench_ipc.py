"""Shard-IPC transport benchmarks (BENCH_ipc.json).

Not a paper artifact — these guard the zero-copy shared-memory
transport (``repro.core.parallel.shm``) against the pickled-pipe
baseline it replaces. Two measurements:

* **dispatch** — ``ProcessBackend.echo`` round-trips batches through
  the transport with no classification compute, so the timing isolates
  serialization + copy + wakeup. The shm ring must move dispatch bytes
  at least ``BENCH_IPC_MIN_SPEEDUP`` times the pipe rate (default 2.0)
  and clear an absolute floor (``BENCH_IPC_MIN_BYTES_PER_SEC``,
  default 50 MB/s — collapses only, not runner noise).
* **end_to_end** — ``classify`` on the same batches with a fitted
  model. Compute dominates here, so the guard is only that shm does
  not *regress* the pipeline (``BENCH_IPC_MIN_E2E_RATIO``, default
  0.9); the headline number is recorded for the perf trajectory.

Results land in ``BENCH_ipc.json`` at the repo root.

Run:  PYTHONPATH=src python -m pytest benchmarks/test_bench_ipc.py -q
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.labeling.balancer import balance
from repro.core.parallel import ShardPlan
from repro.core.parallel.backends import ProcessBackend
from repro.core.scrubber import IXPScrubber, ScrubberConfig

_REPO_ROOT = Path(__file__).resolve().parents[1]
if str(_REPO_ROOT) not in sys.path:  # `pytest benchmarks/` without `-m`
    sys.path.insert(0, str(_REPO_ROOT))
from tests import strategies  # noqa: E402

BENCH_FILE = _REPO_ROOT / "BENCH_ipc.json"

N_SHARDS = 2
#: Big enough that per-message overhead is amortised and the payload
#: (~46 B/flow) stresses the copy path; small enough for a CI smoke
#: job and well under the 16 MiB default ring.
N_FLOWS = 200_000
ECHO_REPEATS = 9
#: Steady-state warm-up: enough round trips for a frame to cycle every
#: ring position (16 MiB ring / ~5 MB frames = 3 positions), so the
#: timed repeats measure the transport, not first-touch page faults.
WARMUP_REPEATS = 4


def _median_seconds(fn, repeats: int = ECHO_REPEATS):
    """Median wall-clock of ``repeats`` runs, plus the last result."""
    times = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return float(np.median(times)), result


def _record(op: str, payload: dict) -> None:
    """Merge one measurement into BENCH_ipc.json."""
    data = {}
    if BENCH_FILE.exists():
        data = json.loads(BENCH_FILE.read_text())
    data[op] = payload
    BENCH_FILE.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def shard_flows():
    flows = strategies.flows(
        strategies.rng_for(2027), n_flows=N_FLOWS, n_targets=64, n_bins=4
    )
    parts = ShardPlan(N_SHARDS).split(flows)
    assert all(p is not None and len(p) for p in parts)
    return parts


@pytest.fixture(scope="module")
def dispatch_bytes(shard_flows):
    return int(
        sum(
            sum(a.nbytes for a in part.to_columns().values())
            for part in shard_flows
        )
    )


@pytest.fixture(scope="module")
def fitted_scrubber():
    rng = strategies.rng_for(999)
    labeled = strategies.labeled_flows(rng, n_flows=6000, n_targets=12, n_bins=20)
    balanced = balance(labeled, np.random.default_rng(7)).flows
    config = ScrubberConfig(model="XGB", model_params={"n_estimators": 10})
    return IXPScrubber(config).fit(balanced)


def _timed_backend(ipc, fn, *, scrubber=None, repeats=ECHO_REPEATS):
    backend = ProcessBackend(N_SHARDS, ipc=ipc)
    try:
        if scrubber is not None:
            backend.broadcast(scrubber)
        for _ in range(WARMUP_REPEATS):  # imports, mappings, ring cycle
            fn(backend)
        return _median_seconds(lambda: fn(backend), repeats=repeats)
    finally:
        backend.close()


def test_bench_ipc_dispatch_and_e2e(shard_flows, dispatch_bytes, fitted_scrubber):
    rows = [len(p) for p in shard_flows]

    pipe_s, pipe_counts = _timed_backend(
        "pipe", lambda b: b.echo(shard_flows)
    )
    shm_s, shm_counts = _timed_backend(
        "shm", lambda b: b.echo(shard_flows)
    )
    # Sanity: both transports actually carried every row.
    assert pipe_counts == rows and shm_counts == rows

    pipe_bps = dispatch_bytes / pipe_s
    shm_bps = dispatch_bytes / shm_s
    speedup = shm_bps / pipe_bps

    e2e_pipe_s, expected = _timed_backend(
        "pipe",
        lambda b: b.classify(shard_flows, min_flows=3),
        scrubber=fitted_scrubber,
        repeats=3,
    )
    e2e_shm_s, actual = _timed_backend(
        "shm",
        lambda b: b.classify(shard_flows, min_flows=3),
        scrubber=fitted_scrubber,
        repeats=3,
    )
    # The zero-copy path must not change a single verdict.
    assert actual == expected and any(len(v) for v in expected)
    e2e_ratio = e2e_pipe_s / e2e_shm_s

    _record("dispatch_pipe", {
        "n_flows": int(N_FLOWS),
        "n_shards": N_SHARDS,
        "payload_bytes": dispatch_bytes,
        "seconds": round(pipe_s, 5),
        "bytes_per_sec": int(pipe_bps),
    })
    _record("dispatch_shm", {
        "n_flows": int(N_FLOWS),
        "n_shards": N_SHARDS,
        "payload_bytes": dispatch_bytes,
        "seconds": round(shm_s, 5),
        "bytes_per_sec": int(shm_bps),
        "speedup_vs_pipe": round(speedup, 2),
    })
    _record("end_to_end", {
        "n_flows": int(N_FLOWS),
        "n_shards": N_SHARDS,
        "pipe_seconds": round(e2e_pipe_s, 4),
        "shm_seconds": round(e2e_shm_s, 4),
        "shm_over_pipe": round(e2e_ratio, 2),
    })

    min_speedup = float(os.environ.get("BENCH_IPC_MIN_SPEEDUP", "2.0"))
    assert speedup >= min_speedup, (
        f"shm dispatch {shm_bps / 1e6:,.0f} MB/s is only {speedup:.2f}x the "
        f"pipe baseline ({pipe_bps / 1e6:,.0f} MB/s); guard {min_speedup}x"
    )
    min_bps = float(os.environ.get("BENCH_IPC_MIN_BYTES_PER_SEC", "50000000"))
    assert shm_bps >= min_bps, (
        f"shm dispatch {shm_bps / 1e6:,.0f} MB/s below the absolute floor "
        f"{min_bps / 1e6:,.0f} MB/s"
    )
    min_e2e = float(os.environ.get("BENCH_IPC_MIN_E2E_RATIO", "0.9"))
    assert e2e_ratio >= min_e2e, (
        f"shm end-to-end classify is {e2e_ratio:.2f}x pipe "
        f"(guard {min_e2e}x): the transport regressed the pipeline"
    )
