"""Supervised shard execution: deadlines, restarts, quarantine, degradation.

:class:`SupervisedProcessBackend` wraps the persistent-worker execution
of :class:`~repro.core.parallel.backends.ProcessBackend` in a
supervision loop with a *tested failure model*:

* **Deadlines** — every pipe read goes through ``poll(timeout)``; no
  blocking call in this backend waits longer than ``shard_timeout``.
  A missed deadline counts (``resilience.deadline_misses``) and is
  treated as a worker failure.
* **Restart + re-broadcast** — a dead, hung, or corrupted worker is
  reaped and respawned (``resilience.worker_restarts``), the current
  model blob is re-sent, and the in-flight batch is retried with a
  small backoff (``resilience.batch_retries``).
* **Poison-batch quarantine** — a batch whose attempts kill workers
  ``batch_attempts`` times (default twice) is classified in-process by
  the coordinator (``resilience.batches_quarantined``) so one bad bin
  can never wedge the stream.
* **Graceful degradation** — more than ``max_restarts`` restarts of one
  shard within a window of ``restart_window`` classify calls stops the
  respawn loop: the shard permanently falls back to serial in-process
  execution (``resilience.degraded_shards`` gauge, a clear log line),
  and the run completes correctly instead of thrashing.

Every fallback path classifies through the same
:meth:`~repro.core.scrubber.IXPScrubber.classify_flows_batch` call the
workers use, so verdicts stay **bit-identical** to the serial engine no
matter which failures occurred — the property the chaos tests assert.

Failures can be injected deterministically with a
:class:`~repro.core.resilience.faults.FaultPlan` (or the
``REPRO_FAULTS`` environment variable); the supervisor evaluates the
plan per dispatch attempt and ships directives to the worker, which
executes them in :func:`~repro.core.parallel.backends._worker_main`.
"""

from __future__ import annotations

import logging
import pickle
import time
from collections import deque
from typing import Optional, Sequence

from repro import obs
from repro.core.features.sketches import SketchParams
from repro.core.parallel import shm
from repro.core.parallel.backends import (
    ProcessBackend,
    _is_ipc_error,
    _sketch_shard_state,
)
from repro.core.resilience.faults import FaultPlan
from repro.core.scrubber import IXPScrubber, TargetVerdict
from repro.netflow.dataset import FlowDataset
from repro.obs import names

__all__ = ["SupervisedProcessBackend"]

log = logging.getLogger("repro.resilience")

#: Sentinel distinguishing "attempt failed" from any legitimate reply.
_FAILED = object()

#: Exceptions that mean "this worker (or its pipe) is gone/garbled".
_PIPE_ERRORS = (EOFError, OSError, pickle.UnpicklingError)


class SupervisedProcessBackend(ProcessBackend):
    """A :class:`ProcessBackend` that survives its workers.

    Parameters
    ----------
    n_shards, start_method, ipc, ring_bytes:
        As for :class:`~repro.core.parallel.backends.ProcessBackend`.
        With ``ipc="shm"`` a restarted worker re-attaches its shard's
        ring (reclaimed first, so a frame orphaned by the crash can
        never wedge it) and re-maps the current model-plane segment by
        name — no model re-pickle on the restart path either.
    shard_timeout:
        Deadline in seconds for any single pipe read. A worker that
        does not answer within it is killed and restarted.
    max_restarts:
        Restart budget per shard: more than this many restarts within
        ``restart_window`` classify calls degrades the shard to serial
        in-process execution for the rest of the run.
    restart_window:
        Width of the restart-budget window, measured in classify calls
        (deterministic — no wall clock in the failure model).
    batch_attempts:
        Total attempts a batch gets before quarantine (default 2: the
        original dispatch plus one retry — "killed a worker twice").
    retry_backoff:
        Seconds slept before retry ``n`` (scaled by ``n``); purely a
        pacing knob, it never affects verdicts.
    fault_plan:
        Deterministic fault injection plan. Defaults to parsing the
        ``REPRO_FAULTS`` environment variable; pass ``FaultPlan()`` to
        force faults off regardless of the environment.

    Resilience metrics are recorded into the *active* registry (the
    coordinator engine activates its own around classification), under
    the ``resilience.*`` names documented in ``docs/METRICS.md``.
    """

    name = "supervised"

    def __init__(
        self,
        n_shards: int,
        start_method: Optional[str] = None,
        shard_timeout: float = 30.0,
        max_restarts: int = 3,
        restart_window: int = 64,
        batch_attempts: int = 2,
        retry_backoff: float = 0.01,
        fault_plan: Optional[FaultPlan] = None,
        ipc: str = "pipe",
        ring_bytes: int = shm.DEFAULT_RING_BYTES,
    ):
        if shard_timeout <= 0:
            raise ValueError("shard_timeout must be > 0 seconds")
        if max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if restart_window < 1:
            raise ValueError("restart_window must be >= 1 classify calls")
        if batch_attempts < 1:
            raise ValueError("batch_attempts must be >= 1")
        self.shard_timeout = float(shard_timeout)
        self.max_restarts = int(max_restarts)
        self.restart_window = int(restart_window)
        self.batch_attempts = int(batch_attempts)
        self.retry_backoff = float(retry_backoff)
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan.from_env()
        self._scrubber: Optional[IXPScrubber] = None
        self._tick = 0  # classify-call counter; the restart-window clock
        self._seq = [0] * n_shards  # per-shard lifetime dispatch counter
        self._epoch_seq = [0] * n_shards  # per-shard dispatches this epoch
        self._degraded = [False] * n_shards
        self._restart_ticks = [deque() for _ in range(n_shards)]
        # Quarantined/degraded work records here, mirroring what the
        # worker's registry would have seen (shard_classify span,
        # shard_flows counter), and is merged into snapshots().
        self._fallback_registries = [obs.MetricRegistry() for _ in range(n_shards)]
        self._fallback_assembler = None
        self._fallback_model: Optional[IXPScrubber] = None
        super().__init__(
            n_shards, start_method=start_method, ipc=ipc, ring_bytes=ring_bytes
        )

    # -- model distribution --------------------------------------------
    def broadcast(self, scrubber: IXPScrubber) -> None:
        """Ship the model to every live shard, restarting dead ones.

        Unlike the unsupervised backend this never raises on a dead
        worker — the restart path re-sends the model, and a shard past
        its restart budget degrades instead. An unchanged model (same
        object as the last broadcast) is not re-serialised: dead
        workers are still resurrected — and re-receive the current
        model through the restart path — but live ones already hold it
        (``parallel.broadcast_skipped``).
        """
        self._epoch_seq = [0] * self.n_shards
        if scrubber is self._published_model and scrubber is self._scrubber:
            for shard in range(self.n_shards):
                if self._degraded[shard]:
                    continue
                proc = self._procs[shard]
                if proc is None or not proc.is_alive():
                    self._restart_worker(
                        shard, "worker found dead at model broadcast"
                    )
            obs.counter(names.C_PARALLEL_BROADCAST_SKIPPED).inc()
            return
        self._scrubber = scrubber
        message = self._publish_model(scrubber)
        for shard in range(self.n_shards):
            if self._degraded[shard]:
                continue
            proc = self._procs[shard]
            if proc is None or not proc.is_alive():
                # _restart_worker re-sends the model message itself.
                self._restart_worker(shard, "worker found dead at model broadcast")
                continue
            try:
                self._conns[shard].send(message)
            except (BrokenPipeError, OSError):
                self._restart_worker(shard, "pipe broke during model broadcast")
        self._published_model = scrubber

    # -- classification -------------------------------------------------
    def classify(
        self,
        shard_flows: Sequence[Optional[FlowDataset]],
        min_flows: int,
        agg: Optional[SketchParams] = None,
    ) -> list:
        """Deadline-supervised dispatch/collect with retry and fallback.

        Sketch mode (``agg`` given) supervises identically — restarts,
        quarantine and degradation all rebuild the shard's sketch state
        in-process from the same batch, which reproduces the worker's
        reply bit-for-bit (sketch builds are deterministic).
        """
        if self._scrubber is None:
            raise RuntimeError("no model broadcast to shards yet")
        self._tick += 1
        out: list = [None if agg is not None else [] for _ in shard_flows]
        pending: list[tuple[int, FlowDataset, int, int]] = []
        local: list[int] = []
        for shard, flows in enumerate(shard_flows):
            if flows is None or len(flows) == 0:
                continue
            run_seq, epoch_seq = self._seq[shard], self._epoch_seq[shard]
            self._seq[shard] += 1
            self._epoch_seq[shard] += 1
            if self._degraded[shard]:
                local.append(shard)
            elif self._dispatch(shard, flows, min_flows, run_seq, epoch_seq, 0, agg):
                pending.append((shard, flows, run_seq, epoch_seq))
            else:
                local.append(shard)  # degraded during dispatch
        # Degraded shards compute while live workers chew their batches.
        for shard in local:
            out[shard] = self._classify_fallback(
                shard, shard_flows[shard], min_flows, agg
            )
        for shard, flows, run_seq, epoch_seq in pending:
            out[shard] = self._collect(shard, flows, min_flows, run_seq, epoch_seq, agg)
        return out

    def _dispatch(
        self,
        shard: int,
        flows: FlowDataset,
        min_flows: int,
        run_seq: int,
        epoch_seq: int,
        attempt: int,
        agg: Optional[SketchParams] = None,
    ) -> bool:
        """Send one classify request; False once the shard is degraded."""
        while not self._degraded[shard]:
            proc = self._procs[shard]
            if proc is None or not proc.is_alive():
                if not self._restart_worker(shard, "worker found dead before dispatch"):
                    return False
                continue
            directive = None
            if self.fault_plan:
                directive = self.fault_plan.directive(shard, run_seq, epoch_seq, attempt)
                if directive is not None:
                    obs.counter(names.C_RESILIENCE_FAULTS_INJECTED).inc()
            try:
                self._send_classify(shard, flows, min_flows, directive, agg)
                return True
            except (BrokenPipeError, OSError):
                if not self._restart_worker(shard, "pipe broke during dispatch"):
                    return False
        return False

    def _collect(
        self,
        shard: int,
        flows: FlowDataset,
        min_flows: int,
        run_seq: int,
        epoch_seq: int,
        agg: Optional[SketchParams] = None,
    ):
        """Await one shard's reply, retrying through restarts."""
        attempt = 0
        while True:
            reply = self._await_reply(shard)
            if reply is not _FAILED:
                return reply
            attempt += 1
            if self._degraded[shard]:
                return self._classify_fallback(shard, flows, min_flows, agg)
            if attempt >= self.batch_attempts:
                return self._quarantine(shard, flows, min_flows, agg)
            obs.counter(names.C_RESILIENCE_BATCH_RETRIES).inc()
            if self.retry_backoff > 0:
                time.sleep(self.retry_backoff * attempt)
            if not self._dispatch(
                shard, flows, min_flows, run_seq, epoch_seq, attempt, agg
            ):
                return self._classify_fallback(shard, flows, min_flows, agg)

    def _await_reply(self, shard: int):
        """One deadline-bounded read; ``_FAILED`` (+ restart) on trouble."""
        conn = self._conns[shard]
        try:
            if not conn.poll(self.shard_timeout):
                obs.counter(names.C_RESILIENCE_DEADLINE_MISSES).inc()
                self._restart_worker(
                    shard, f"no reply within the {self.shard_timeout:.1f}s deadline"
                )
                return _FAILED
            reply = conn.recv()
            if _is_ipc_error(reply):
                # The worker rejected a shared-memory frame (crc/seqno/
                # generation). It answered in protocol but its view of
                # the ring cannot be trusted; restart reclaims the ring
                # and the retry re-frames the batch from scratch.
                self._restart_worker(
                    shard, f"shared-memory frame rejected: {reply[1]}"
                )
                return _FAILED
            return reply
        except _PIPE_ERRORS as exc:
            self._restart_worker(
                shard, f"worker died mid-batch: {exc if str(exc) else type(exc).__name__}"
            )
            return _FAILED

    # -- recovery -------------------------------------------------------
    def _restart_worker(self, shard: int, reason: str) -> bool:
        """Reap and respawn one worker; False if the shard degraded.

        The restart budget is checked first: more than ``max_restarts``
        restarts within the trailing ``restart_window`` classify calls
        degrades the shard instead of spawning another doomed worker.
        A fresh worker immediately receives the current model message —
        the pickled blob in pipe mode, the (name, version) doorbell of
        the still-linked model-plane segment in shm mode, which the
        respawn maps on arrival. In shm mode the shard's ring is
        reclaimed before the respawn: the generation bump abandons any
        frame the dead worker left unacked, so a crash mid-ring can
        never deadlock the next dispatch.
        """
        self._reap(shard)
        ring = self._rings[shard] if shard < len(self._rings) else None
        if ring is not None:
            ring.reclaim()
        ticks = self._restart_ticks[shard]
        ticks.append(self._tick)
        while ticks and ticks[0] <= self._tick - self.restart_window:
            ticks.popleft()
        if len(ticks) > self.max_restarts:
            self._degrade(shard, reason)
            return False
        with obs.span(names.SPAN_RESILIENCE_RESTART):
            obs.counter(names.C_RESILIENCE_WORKER_RESTARTS).inc()
            log.warning(
                "shard %d: %s; restarting worker (restart %d/%d in window)",
                shard, reason, len(ticks), self.max_restarts,
            )
            self._start_worker(shard)
            if self._model_message is not None:
                try:
                    self._conns[shard].send(self._model_message)
                except (BrokenPipeError, OSError):  # pragma: no cover - instant death
                    self._degrade(shard, "model re-broadcast to fresh worker failed")
                    return False
        return True

    def _reap(self, shard: int) -> None:
        """Tear down one worker slot (bounded: terminate, short joins)."""
        conn, proc = self._conns[shard], self._procs[shard]
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        if proc is not None and proc.is_alive():
            proc.terminate()
            proc.join(timeout=2)
            if proc.is_alive():  # pragma: no cover - ignores SIGTERM
                proc.kill()
                proc.join(timeout=1)
        self._conns[shard] = None
        self._procs[shard] = None

    def _degrade(self, shard: int, reason: str) -> None:
        """Permanently fall back to serial in-process execution."""
        if self._degraded[shard]:
            return
        self._degraded[shard] = True
        self._reap(shard)
        obs.gauge(names.G_RESILIENCE_DEGRADED_SHARDS).set(sum(self._degraded))
        log.error(
            "shard %d: degraded to serial in-process execution after "
            "%d restarts within %d classify calls (%s); verdicts are "
            "unaffected, throughput is",
            shard, len(self._restart_ticks[shard]), self.restart_window, reason,
        )

    # -- in-process fallback --------------------------------------------
    def _classify_fallback(
        self,
        shard: int,
        flows: FlowDataset,
        min_flows: int,
        agg: Optional[SketchParams] = None,
    ):
        """Handle a shard batch in the coordinator process.

        Identical code path to the workers (and the serial engine):
        ``classify_flows_batch`` with a frozen-WoE assembler in exact
        mode, the shared sketch-state builder in sketch mode — which is
        why degraded and quarantined batches keep verdicts bit-identical.
        """
        scrubber = self._scrubber
        if scrubber is not self._fallback_model:
            self._fallback_assembler = scrubber.make_assembler()
            self._fallback_model = scrubber
        with obs.use_registry(self._fallback_registries[shard]):
            with obs.span(names.SPAN_PARALLEL_SHARD_CLASSIFY):
                obs.counter(names.C_PARALLEL_SHARD_FLOWS).inc(len(flows))
                if agg is not None:
                    return _sketch_shard_state(flows, agg)
                return scrubber.classify_flows_batch(
                    flows, min_flows=min_flows, assembler=self._fallback_assembler
                )

    def _quarantine(
        self,
        shard: int,
        flows: FlowDataset,
        min_flows: int,
        agg: Optional[SketchParams] = None,
    ):
        """Poison batch: handle in-process and record the quarantine."""
        obs.counter(names.C_RESILIENCE_BATCHES_QUARANTINED).inc()
        log.error(
            "shard %d: batch of %d flows killed its worker %d time(s); "
            "quarantining — classifying in the coordinator process",
            shard, len(flows), self.batch_attempts,
        )
        return self._classify_fallback(shard, flows, min_flows, agg)

    # -- observability --------------------------------------------------
    def snapshots(self) -> list[dict]:
        """Per-shard snapshots: worker registry merged with fallback work.

        Deadline-bounded like everything else; a shard that cannot
        answer contributes its coordinator-side fallback registry only
        (worker counters restart from zero with the worker, so shard
        series are lower bounds under faults — see docs/METRICS.md).
        """
        out = []
        for shard in range(self.n_shards):
            fallback = obs.snapshot(self._fallback_registries[shard])
            proc = self._procs[shard]
            if self._degraded[shard] or proc is None or not proc.is_alive():
                out.append(fallback)
                continue
            conn = self._conns[shard]
            try:
                conn.send(("snapshot",))
                if not conn.poll(self.shard_timeout):
                    obs.counter(names.C_RESILIENCE_DEADLINE_MISSES).inc()
                    # The pipe now holds a stale reply; the worker cannot
                    # be trusted to stay in protocol sync. Reap it — the
                    # next classify restarts it under the usual budget.
                    self._reap(shard)
                    out.append(fallback)
                    continue
                out.append(obs.merge_snapshots([conn.recv(), fallback]))
            except _PIPE_ERRORS:
                self._reap(shard)
                out.append(fallback)
        return out

    @property
    def degraded_shards(self) -> tuple[int, ...]:
        """Indices of shards running in degraded (serial) mode."""
        return tuple(i for i, d in enumerate(self._degraded) if d)
