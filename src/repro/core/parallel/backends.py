"""Execution backends for shard classification.

A backend owns the N per-shard classification contexts: the deployed
model (re-broadcast after every retrain), a per-shard
:class:`~repro.obs.MetricRegistry`, and the frozen-WoE
:class:`~repro.core.encoding.matrix.MatrixAssembler` reused across bins
of one retrain epoch. Three implementations:

* :class:`SerialBackend` — runs shards sequentially in-process. The
  default: zero IPC cost, same results, and on a single-core host the
  batched execution alone carries the speedup.
* :class:`ProcessBackend` — persistent worker processes (``fork`` start
  method when available, ``spawn`` otherwise). Control messages travel
  over pipes; batch and model payloads travel either as pickled pipe
  messages (``ipc="pipe"``, the default) or through per-shard
  shared-memory rings and a map-once model plane (``ipc="shm"``, see
  :mod:`repro.core.parallel.shm` and ``docs/IPC.md``) with the pipe
  demoted to a doorbell. Verdicts come back as plain dataclass lists
  either way — the transport can never change results. A dead worker
  raises a typed :class:`ShardFailure` instead of hanging or leaking a
  raw pipe error.
* :class:`~repro.core.resilience.SupervisedProcessBackend` — the
  production wrapper: per-request deadlines, automatic restart with
  model re-broadcast, poison-batch quarantine and graceful degradation
  to serial execution (see :mod:`repro.core.resilience`).

All of them produce verdicts through the same
:meth:`~repro.core.scrubber.IXPScrubber.classify_flows_batch` call, so
backend choice can never change results — only where the work runs and
how failures are handled.

Sketch mode: when ``classify`` is called with ``agg`` (a
:class:`~repro.core.features.sketches.SketchParams`), workers become
pure *counters* — each builds a per-shard
:class:`~repro.core.features.sketches.SketchAggregator` from its batch
and replies with the picklable sketch state instead of verdicts; the
coordinator merges states and scores the merged records. Sketch builds
are deterministic functions of the batch, so retry-after-restart
reproduces the identical state (see ``docs/SKETCHES.md``).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
import weakref
from typing import Optional, Sequence

from repro import obs
from repro.core.features.sketches import SketchAggregator, SketchParams
from repro.core.parallel import shm
from repro.core.scrubber import IXPScrubber, TargetVerdict
from repro.netflow.dataset import FlowDataset
from repro.obs import names

__all__ = [
    "SerialBackend",
    "ProcessBackend",
    "ShardFailure",
    "make_backend",
    "BACKENDS",
    "IPC_MODES",
]

#: Worker transports of the process backends (see docs/IPC.md).
IPC_MODES = ("pipe", "shm")

#: Reply tag a worker sends when a shared-memory frame fails
#: validation (crc/seqno/generation). The unsupervised backend turns it
#: into a :class:`ShardFailure`; the supervisor restarts and retries.
_IPC_ERROR = "__ipc_error__"


def _is_ipc_error(reply) -> bool:
    return (
        isinstance(reply, tuple) and len(reply) == 2 and reply[0] == _IPC_ERROR
    )


class ShardFailure(RuntimeError):
    """A shard worker died or its pipe broke mid-operation.

    Raised by :class:`ProcessBackend` when it detects a dead worker (the
    unsupervised backend surfaces the failure to its caller); the
    supervised backend catches the same conditions internally and
    recovers instead.
    """

    def __init__(self, shard: int, reason: str):
        super().__init__(f"shard {shard}: {reason}")
        self.shard = shard
        self.reason = reason


class SerialBackend:
    """Run every shard sequentially in the coordinator process."""

    name = "serial"

    def __init__(self, n_shards: int):
        self.n_shards = n_shards
        self.registries = [obs.MetricRegistry() for _ in range(n_shards)]
        self._scrubber: Optional[IXPScrubber] = None
        self._assembler = None

    def broadcast(self, scrubber: IXPScrubber) -> None:
        """Deploy a newly trained model to all shards."""
        if scrubber is self._scrubber:
            obs.counter(names.C_PARALLEL_BROADCAST_SKIPPED).inc()
            return
        self._scrubber = scrubber
        self._assembler = scrubber.make_assembler()

    def classify(
        self,
        shard_flows: Sequence[Optional[FlowDataset]],
        min_flows: int,
        agg: Optional[SketchParams] = None,
    ) -> list:
        """Classify each shard's flow batch; one reply per shard.

        Exact mode (``agg=None``) replies with verdict lists; sketch
        mode replies with per-shard sketch states for the coordinator
        to merge (empty shards reply ``None``).
        """
        if self._scrubber is None:
            raise RuntimeError("no model broadcast to shards yet")
        out: list = []
        for shard, flows in enumerate(shard_flows):
            if flows is None or len(flows) == 0:
                out.append(None if agg is not None else [])
                continue
            with obs.use_registry(self.registries[shard]):
                with obs.span(names.SPAN_PARALLEL_SHARD_CLASSIFY):
                    obs.counter(names.C_PARALLEL_SHARD_FLOWS).inc(len(flows))
                    if agg is not None:
                        out.append(_sketch_shard_state(flows, agg))
                    else:
                        out.append(
                            self._scrubber.classify_flows_batch(
                                flows, min_flows=min_flows, assembler=self._assembler
                            )
                        )
        return out

    def snapshots(self) -> list[dict]:
        """One metrics snapshot per shard registry."""
        return [obs.snapshot(registry) for registry in self.registries]

    def close(self) -> None:
        """Release backend resources (no-op for in-process shards)."""


def _sketch_shard_state(flows: FlowDataset, agg: SketchParams) -> dict:
    """Build one shard's sketch state from its flow batch.

    A pure function of (batch, params): a retried batch — even on a
    freshly restarted worker — reproduces the bitwise-identical state,
    which is what keeps sketch-mode verdicts stable under faults.
    """
    return SketchAggregator(agg).absorb(flows).to_state()


def _execute_fault(conn, directive) -> bool:
    """Run an injected fault directive inside the worker.

    Returns True if the directive consumed the reply (the caller must
    not send a verdict list for this request). ``crash`` never returns.
    """
    kind, seconds = directive
    if kind == "crash":
        # A hard exit, not an exception: simulates OOM kills and
        # segfaults, the failures a supervisor actually sees.
        os._exit(70)
    if kind in ("hang", "slow"):
        # A hang sleeps past any deadline (the parent kills us); a slow
        # shard adds bounded latency and then answers correctly.
        time.sleep(seconds)
        return False
    if kind == "corrupt":
        # Raw bytes that cannot unpickle: the parent's recv() raises,
        # exercising the torn-frame / corrupted-pipe path.
        conn.send_bytes(b"\xde\xad\xbe\xef repro corrupt frame")
        return True
    return False


def _close_retired_segments(retired: list) -> list:
    """Close model segments whose arrays may still be referenced.

    A worker that just swapped models drops its references to the old
    scrubber, but the interpreter may not have released every exported
    buffer yet — those segments stay on the retired list (bounded: one
    per model version) and are retried at the next swap.
    """
    still_pinned = []
    for segment in retired:
        try:
            segment.close()
        except BufferError:
            still_pinned.append(segment)
    return still_pinned


def _worker_main(conn, shard_index: int, ring_name: Optional[str] = None) -> None:
    """Worker loop: react to model / classify / snapshot / stop messages.

    A classify message may carry an optional fault directive — evaluated
    by the supervisor's deterministic
    :class:`~repro.core.resilience.FaultPlan` and executed here, so
    chaos tests fail in the real worker code path.

    With ``ipc="shm"`` the worker attaches its shard's ring once at
    startup and two extra message kinds arrive: ``model_shm`` (map the
    named model segment read-only, rebuild the scrubber from it) and
    ``classify_shm`` (read the framed batch out of the ring as
    zero-copy views, classify, ack the seqno, reply over the pipe). A
    frame that fails validation is answered with an ``__ipc_error__``
    tuple instead of verdicts — and *not* acked, so the supervisor's
    reclaim owns the cleanup.
    """
    registry = obs.MetricRegistry()
    scrubber: Optional[IXPScrubber] = None
    assembler = None
    ring = shm.ShmRing.attach(ring_name) if ring_name is not None else None
    model_segment = None
    retired_segments: list = []
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            kind = message[0]
            if kind == "stop":
                break
            if kind == "model":
                scrubber = pickle.loads(message[1])
                assembler = scrubber.make_assembler()
            elif kind == "model_shm":
                segment_name, version = message[1], message[2]
                # Drop references into the previous segment before loading,
                # so its buffers can actually be released.
                scrubber = assembler = None
                scrubber, segment = shm.load_model(segment_name, version)
                assembler = scrubber.make_assembler()
                if model_segment is not None:
                    retired_segments.append(model_segment)
                model_segment = segment
                retired_segments = _close_retired_segments(retired_segments)
                with obs.use_registry(registry):
                    obs.counter(names.C_PARALLEL_IPC_SEGMENT_REMAPS).inc()
            elif kind in ("classify", "classify_shm"):
                if kind == "classify":
                    columns, min_flows = message[1], message[2]
                    directive = message[3] if len(message) > 3 else None
                    agg = message[4] if len(message) > 4 else None
                    if directive is not None and _execute_fault(conn, directive):
                        continue
                    flows = FlowDataset(columns)
                    seqno = None
                else:
                    seqno, offset, nbytes, min_flows, directive, agg = message[1:7]
                    # Faults fire before the ring read: a crash here leaves
                    # the frame unacked, which is exactly the orphan the
                    # supervisor's reclaim path must clean up.
                    if directive is not None and _execute_fault(conn, directive):
                        continue
                    try:
                        flows = ring.read_flows(seqno, offset, nbytes)
                    except shm.ShmProtocolError as exc:
                        conn.send((_IPC_ERROR, str(exc)))
                        continue
                with obs.use_registry(registry):
                    with obs.span(names.SPAN_PARALLEL_SHARD_CLASSIFY):
                        obs.counter(names.C_PARALLEL_SHARD_FLOWS).inc(len(flows))
                        if agg is not None:
                            reply = _sketch_shard_state(flows, agg)
                        else:
                            reply = scrubber.classify_flows_batch(
                                flows, min_flows=min_flows, assembler=assembler
                            )
                if seqno is not None:
                    # Verdicts/sketch states copy out of the batch, so the
                    # frame is dead; ack before replying — the coordinator
                    # may dispatch the next batch as soon as it hears back.
                    del flows
                    ring.ack(seqno)
                conn.send(reply)
            elif kind in ("echo", "echo_shm"):
                # Transport self-test for the IPC benchmark: rebuild the
                # batch exactly as classify would, reply with the row count.
                if kind == "echo":
                    flows = FlowDataset(message[1])
                    conn.send(len(flows))
                else:
                    seqno, offset, nbytes = message[1], message[2], message[3]
                    try:
                        flows = ring.read_flows(seqno, offset, nbytes)
                    except shm.ShmProtocolError as exc:
                        conn.send((_IPC_ERROR, str(exc)))
                        continue
                    rows = len(flows)
                    del flows
                    ring.ack(seqno)
                    conn.send(rows)
            elif kind == "snapshot":
                conn.send(obs.snapshot(registry))
    finally:
        if ring is not None:
            ring.close()
        conn.close()


class ProcessBackend:
    """Persistent worker processes, one per shard.

    Workers stay alive across bins so the model and its frozen-WoE
    assembler are deserialised once per retrain, not once per bin. All
    requests are answered in shard order, keeping the reduce step
    deterministic regardless of worker scheduling.

    ``ipc="pipe"`` (default) moves batches and models as pickled pipe
    messages. ``ipc="shm"`` moves batch bytes through a per-shard
    :class:`~repro.core.parallel.shm.ShmRing` and publishes each model
    once into a :class:`~repro.core.parallel.shm.ModelPlane` segment
    that workers map read-only; the pipe carries only doorbells,
    replies and control. Oversized batches (``ring_bytes``) fall back
    to the pipe automatically (``parallel.ipc_fallbacks``). The
    transport is invisible in the results: verdicts are bit-identical
    across modes.

    Failure model: this backend does not *recover* — a worker found
    dead raises :class:`ShardFailure` so the caller can decide. Use
    :class:`~repro.core.resilience.SupervisedProcessBackend` for
    deadlines, restarts and graceful degradation.
    """

    name = "process"

    def __init__(
        self,
        n_shards: int,
        start_method: Optional[str] = None,
        ipc: str = "pipe",
        ring_bytes: int = shm.DEFAULT_RING_BYTES,
    ):
        if ipc not in IPC_MODES:
            raise ValueError(
                f"unknown ipc mode {ipc!r}; expected one of {IPC_MODES}"
            )
        self.n_shards = n_shards
        self.ipc = ipc
        self.ring_bytes = int(ring_bytes)
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        # Pre-size so close() is safe however far __init__ got.
        self._conns: list = [None] * n_shards
        self._procs: list = [None] * n_shards
        self._rings: list = [None] * n_shards
        self._plane_box: list = [None]  # [ModelPlane] once shm is up
        self._ring_seq = [0] * n_shards
        self._published_model: Optional[IXPScrubber] = None
        self._model_message: Optional[tuple] = None
        # Reap orphaned workers (and unlink their segments) if the
        # owner never calls close(). The finalizer captures the slot
        # *lists* (mutated in place by _start_worker, the supervisor's
        # restart path, and the plane's republish), never self.
        self._finalizer = weakref.finalize(
            self, _reap_orphans, self._conns, self._procs,
            self._rings, self._plane_box,
        )
        try:
            if ipc == "shm":
                for shard in range(n_shards):
                    self._rings[shard] = shm.ShmRing(self.ring_bytes)
                self._plane_box[0] = shm.ModelPlane()
            for shard in range(n_shards):
                self._start_worker(shard)
        except BaseException:
            self.close()
            raise

    def _start_worker(self, shard: int) -> None:
        """(Re)spawn the worker process serving one shard slot."""
        parent_conn, child_conn = self._ctx.Pipe()
        ring = self._rings[shard]
        # repro: lint-ignore[RS602] a Process that never start()ed holds
        # no OS resources to release; terminate() on it would be a no-op
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, shard, None if ring is None else ring.name),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._conns[shard] = parent_conn
        self._procs[shard] = proc

    def _publish_model(self, scrubber: IXPScrubber) -> tuple:
        """Serialise the model once; return the per-worker message.

        Pipe mode pickles to a blob every worker receives verbatim;
        shm mode publishes a fresh model-plane segment and the message
        is just its (name, version) doorbell.
        """
        plane = self._plane_box[0]
        if plane is not None:
            ref = plane.publish(scrubber)
            obs.counter(names.C_PARALLEL_BROADCAST_BYTES).inc(ref.nbytes)
            obs.gauge(names.G_PARALLEL_IPC_RING_CAPACITY).set(self.ring_bytes)
            message = ("model_shm", ref.name, ref.version)
        else:
            # The scrubber's tree models pickle as compiled flat-array
            # kernels (node graphs are derived state and excluded), so
            # the payload is a handful of contiguous buffers.
            blob = pickle.dumps(scrubber)
            obs.counter(names.C_PARALLEL_BROADCAST_BYTES).inc(len(blob))
            message = ("model", blob)
        self._model_message = message
        return message

    def broadcast(self, scrubber: IXPScrubber) -> None:
        """Ship the model to every worker, serialising it exactly once.

        An unchanged model (same object as the last broadcast — e.g. an
        epoch that ended without a retrain) is not re-serialised or
        re-sent: every live worker already holds it
        (``parallel.broadcast_skipped``). Raises :class:`ShardFailure`
        naming the dead shard if a worker exited (or its pipe broke)
        before the model reached it.
        """
        if scrubber is self._published_model:
            for shard, proc in enumerate(self._procs):
                if proc is None or not proc.is_alive():
                    raise ShardFailure(
                        shard, "worker process died before broadcast"
                    )
            obs.counter(names.C_PARALLEL_BROADCAST_SKIPPED).inc()
            return
        message = self._publish_model(scrubber)
        for shard, conn in enumerate(self._conns):
            proc = self._procs[shard]
            if proc is None or not proc.is_alive():
                raise ShardFailure(shard, "worker process died before broadcast")
            try:
                conn.send(message)
            except (BrokenPipeError, OSError) as exc:
                raise ShardFailure(shard, f"model broadcast failed: {exc}") from exc
        self._published_model = scrubber

    def _send_classify(
        self,
        shard: int,
        flows: FlowDataset,
        min_flows: int,
        directive,
        agg: Optional[SketchParams],
    ) -> None:
        """Send one classify request: ring frame + doorbell, or pipe.

        The shm path frames the batch into the shard's ring and sends
        only a doorbell; when the frame does not fit (oversized batch,
        or an unacked frame from a just-crashed worker awaiting
        reclaim) it falls back to the legacy pickled message, counted
        by ``parallel.ipc_fallbacks``. Either way the worker sees an
        identical batch.
        """
        ring = self._rings[shard] if shard < len(self._rings) else None
        if ring is not None and len(flows):
            self._ring_seq[shard] += 1
            seqno = self._ring_seq[shard]
            ref = ring.write_flows(seqno, flows)
            if ref is not None:
                obs.counter(names.C_PARALLEL_IPC_RING_BYTES).inc(ref.nbytes)
                self._conns[shard].send(
                    ("classify_shm", seqno, ref.offset, ref.nbytes,
                     min_flows, directive, agg)
                )
                return
            obs.counter(names.C_PARALLEL_IPC_FALLBACKS).inc()
        self._conns[shard].send(
            ("classify", flows.to_columns(), min_flows, directive, agg)
        )

    def classify(
        self,
        shard_flows: Sequence[Optional[FlowDataset]],
        min_flows: int,
        agg: Optional[SketchParams] = None,
    ) -> list:
        """Dispatch per-shard batches, then collect in shard order.

        Sketch mode (``agg`` given) collects per-shard sketch states
        instead of verdict lists; empty shards reply ``None``.
        """
        active = []
        for shard, flows in enumerate(shard_flows):
            if flows is None or len(flows) == 0:
                continue
            try:
                self._send_classify(shard, flows, min_flows, None, agg)
            except (BrokenPipeError, OSError) as exc:
                raise ShardFailure(shard, f"batch dispatch failed: {exc}") from exc
            active.append(shard)
        out: list = [None if agg is not None else [] for _ in shard_flows]
        for shard in active:
            try:
                reply = self._conns[shard].recv()
            except (EOFError, OSError, pickle.UnpicklingError) as exc:
                raise ShardFailure(
                    shard,
                    f"worker died mid-batch: {exc if str(exc) else type(exc).__name__}",
                ) from exc
            if _is_ipc_error(reply):
                raise ShardFailure(
                    shard, f"shared-memory frame rejected: {reply[1]}"
                )
            out[shard] = reply
        return out

    def echo(
        self, shard_flows: Sequence[Optional[FlowDataset]]
    ) -> list[Optional[int]]:
        """Round-trip batches through the transport; replies are row counts.

        The dispatch path is byte-for-byte the classify path (ring
        frame + doorbell, or pickled pipe message) without the
        classification compute, which is what the IPC benchmark needs
        to measure transport throughput in isolation.
        """
        active = []
        for shard, flows in enumerate(shard_flows):
            if flows is None or len(flows) == 0:
                continue
            ring = self._rings[shard] if shard < len(self._rings) else None
            sent = False
            if ring is not None:
                self._ring_seq[shard] += 1
                seqno = self._ring_seq[shard]
                ref = ring.write_flows(seqno, flows)
                if ref is not None:
                    obs.counter(names.C_PARALLEL_IPC_RING_BYTES).inc(ref.nbytes)
                    self._conns[shard].send(
                        ("echo_shm", seqno, ref.offset, ref.nbytes)
                    )
                    sent = True
                else:
                    obs.counter(names.C_PARALLEL_IPC_FALLBACKS).inc()
            if not sent:
                self._conns[shard].send(("echo", flows.to_columns()))
            active.append(shard)
        out: list = [None] * len(shard_flows)
        for shard in active:
            reply = self._conns[shard].recv()
            if _is_ipc_error(reply):
                raise ShardFailure(
                    shard, f"shared-memory frame rejected: {reply[1]}"
                )
            out[shard] = reply
        return out

    def snapshots(self) -> list[dict]:
        """One metrics snapshot per worker, fetched over the pipe."""
        for conn in self._conns:
            conn.send(("snapshot",))
        return [conn.recv() for conn in self._conns]

    def close(self) -> None:
        """Stop all workers, reap them, unlink every shared segment.

        Idempotent, and safe after a partially failed ``__init__``:
        slots that never spawned are skipped, started workers are
        stopped and joined, rings and the model plane created so far
        are destroyed. Detaches the orphan-reaper finalizer first — an
        explicit close supersedes the garbage-collection fallback.
        """
        finalizer = getattr(self, "_finalizer", None)
        if finalizer is not None:
            finalizer.detach()
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1)
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.close()
            except OSError:  # pragma: no cover - already torn down
                pass
        for ring in self._rings:
            if ring is not None:
                ring.destroy()
        plane = self._plane_box[0]
        if plane is not None:
            plane.destroy()
        self._conns = []
        self._procs = []
        self._rings = []
        self._plane_box = [None]


def _reap_orphans(conns: list, procs: list, rings: list, plane_box: list) -> None:
    """Last-resort cleanup for workers whose backend was never closed.

    Runs from a ``weakref.finalize`` when the backend is garbage
    collected (and, via finalize's atexit hook, at interpreter exit),
    so an engine that was never ``close()``d cannot leak live worker
    processes — or linked shared-memory segments, which would otherwise
    outlive the interpreter in ``/dev/shm``. Deliberately takes the
    *slot lists*, not the backend — holding ``self`` in the finalizer
    would keep the backend alive forever. Best effort: ask nicely over
    the pipe, then terminate; workers go down before their segments.
    """
    for conn in conns:
        if conn is None:
            continue
        try:
            conn.send(("stop",))
        except (BrokenPipeError, OSError, ValueError):
            pass
    for proc in procs:
        if proc is None:
            continue
        try:
            proc.join(timeout=1)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1)
        except (OSError, ValueError, AssertionError):
            pass
    for conn in conns:
        if conn is None:
            continue
        try:
            conn.close()
        except OSError:
            pass
    for ring in rings:
        if ring is not None:
            try:
                ring.destroy()
            except OSError:  # pragma: no cover - torn-down tmpfs
                pass
    plane = plane_box[0]
    if plane is not None:
        try:
            plane.destroy()
        except OSError:  # pragma: no cover - torn-down tmpfs
            pass


def _supervised_backend(*args, **kwargs):
    # Imported lazily: repro.core.resilience imports this module.
    from repro.core.resilience.supervisor import SupervisedProcessBackend

    return SupervisedProcessBackend(*args, **kwargs)


BACKENDS = {
    SerialBackend.name: SerialBackend,
    ProcessBackend.name: ProcessBackend,
    "supervised": _supervised_backend,
}


def make_backend(name: str, n_shards: int, **kwargs):
    """Instantiate a backend by name, forwarding backend kwargs.

    ``serial`` takes no extra options; ``process`` accepts
    ``start_method`` (``"fork"``/``"spawn"``), ``ipc``
    (``"pipe"``/``"shm"``) and ``ring_bytes``; ``supervised`` adds the
    supervision knobs (``shard_timeout``, ``max_restarts``,
    ``fault_plan``, ... — see
    :class:`~repro.core.resilience.SupervisedProcessBackend`).
    """
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {sorted(BACKENDS)}"
        ) from None
    return cls(n_shards, **kwargs)
