"""sFlow-style packet sampling.

IXPs export flow data sampled at rates of 1:several-thousand packets.
:class:`PacketSampler` models this: each packet of a flow is retained
independently with probability ``1/rate``; flows whose sample count drops
to zero disappear, surviving flows carry the sampled counters. Byte
counts are scaled proportionally to the per-flow mean packet size, which
is what real exporters effectively report.

The synthetic generators in :mod:`repro.traffic` are calibrated in
*sampled* flow intensities, so experiment workloads use ``rate=1``
(identity); the sampler exists as the explicit substrate component and is
exercised by its own tests and the quickstart example.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.netflow.dataset import FlowDataset
from repro.obs import names as metric_names


class PacketSampler:
    """Bernoulli per-packet sampler at rate ``1:rate``."""

    def __init__(self, rate: int):
        if rate < 1:
            raise ValueError("sampling rate must be >= 1")
        self.rate = rate

    def sample(self, flows: FlowDataset, rng: np.random.Generator) -> FlowDataset:
        """Return the sampled view of ``flows``."""
        obs.counter(metric_names.C_IXP_SAMPLER_FLOWS_IN).inc(len(flows))
        if self.rate == 1 or len(flows) == 0:
            obs.counter(metric_names.C_IXP_SAMPLER_FLOWS_KEPT).inc(len(flows))
            return flows
        with obs.span(metric_names.SPAN_IXP_SAMPLE):
            packets = flows.packets
            sampled_packets = rng.binomial(packets, 1.0 / self.rate)
            keep = sampled_packets > 0
            if not keep.any():
                return FlowDataset.empty()
            subset = flows.select(keep)
            kept_packets = sampled_packets[keep].astype(np.int64)
            mean_size = subset.bytes / subset.packets
            columns = subset.to_columns()
            columns["packets"] = kept_packets
            columns["bytes"] = np.maximum(
                (mean_size * kept_packets).astype(np.int64), kept_packets * 64
            )
            sampled = FlowDataset(columns)
            obs.counter(metric_names.C_IXP_SAMPLER_FLOWS_KEPT).inc(len(sampled))
            return sampled

    def upscale_bytes(self, sampled: FlowDataset) -> float:
        """Estimate the original traffic volume in bytes from a sample."""
        return float(sampled.bytes.sum()) * self.rate
