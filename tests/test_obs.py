"""Tests for the observability layer (`repro.obs`)."""

import json
import math

import numpy as np
import pytest

from repro import obs
from repro.obs import names
from repro.obs.registry import MetricRegistry
from repro.obs.spans import SpanTracker


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        reg = MetricRegistry()
        c = reg.counter("t.count")
        assert c.value == 0
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_monotonic(self):
        c = MetricRegistry().counter("t.count")
        with pytest.raises(ValueError):
            c.inc(-1)
        assert c.value == 0

    def test_labeled_counters_are_distinct(self):
        reg = MetricRegistry()
        a = reg.counter("t.count", {"site": "SE"})
        b = reg.counter("t.count", {"site": "US1"})
        a.inc(5)
        assert b.value == 0
        assert reg.counter("t.count", {"site": "SE"}) is a


class TestGauge:
    def test_set_and_add(self):
        g = MetricRegistry().gauge("t.level")
        g.set(10)
        g.add(-3.5)
        assert g.value == 6.5
        g.set(0)
        assert g.value == 0.0


class TestHistogram:
    def test_bucket_edges_validation(self):
        reg = MetricRegistry()
        with pytest.raises(ValueError):
            reg.histogram("t.bad", buckets=())
        with pytest.raises(ValueError):
            reg.histogram("t.bad2", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            reg.histogram("t.bad3", buckets=(1.0, 1.0))

    def test_observe_and_bucket_counts(self):
        h = MetricRegistry().histogram("t.h", buckets=(1.0, 2.0, 5.0))
        for v in (0.5, 1.0, 1.5, 4.0, 100.0):
            h.observe(v)
        counts = h.bucket_counts()
        # Cumulative, Prometheus-style: le=1 -> 2 (0.5 and the edge 1.0).
        assert counts[1.0] == 2
        assert counts[2.0] == 3
        assert counts[5.0] == 4
        assert counts[math.inf] == 5
        assert h.count == 5
        assert h.sum == pytest.approx(107.0)
        assert h.min == 0.5
        assert h.max == 100.0

    def test_percentiles(self):
        h = MetricRegistry().histogram("t.h", buckets=(1.0, 2.0, 5.0))
        assert math.isnan(h.percentile(50))
        for v in (0.5, 1.5, 1.5, 4.0):
            h.observe(v)
        p50 = h.percentile(50)
        assert 1.0 <= p50 <= 2.0
        # Estimates are clamped to the observed range.
        assert h.percentile(0) >= h.min
        assert h.percentile(100) <= h.max
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_overflow_bucket_percentile_falls_back_to_max(self):
        h = MetricRegistry().histogram("t.h", buckets=(1.0,))
        h.observe(50.0)
        h.observe(70.0)
        assert h.percentile(99) == 70.0

    def test_mean(self):
        h = MetricRegistry().histogram("t.h", buckets=(10.0,))
        assert math.isnan(h.mean)
        h.observe(2.0)
        h.observe(4.0)
        assert h.mean == 3.0


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1

    def test_type_conflict_raises(self):
        reg = MetricRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_get_does_not_create(self):
        reg = MetricRegistry()
        assert reg.get("missing") is None
        assert len(reg) == 0

    def test_reset_clears_metrics_and_spans(self):
        reg = MetricRegistry()
        reg.counter("a").inc()
        with reg.spans.span("phase"):
            pass
        reg.reset()
        assert len(reg) == 0
        assert reg.spans.stats() == {}

    def test_active_registry_context(self):
        reg = MetricRegistry()
        default = obs.get_registry()
        with obs.use_registry(reg):
            assert obs.get_registry() is reg
            inner = MetricRegistry()
            with obs.use_registry(inner):
                assert obs.get_registry() is inner
            assert obs.get_registry() is reg
        assert obs.get_registry() is default

    def test_disable_makes_helpers_no_ops(self):
        reg = MetricRegistry()
        try:
            obs.disable()
            assert not obs.is_enabled()
            with obs.use_registry(reg):
                obs.counter("t.c").inc(10)
                obs.gauge("t.g").set(1)
                obs.histogram("t.h").observe(1)
                with obs.span("t.span"):
                    pass
        finally:
            obs.enable()
        assert len(reg) == 0
        assert reg.spans.stats() == {}


class FakeClock:
    """Deterministic clock: advances by a scripted step per call."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        t = self.now
        self.now += self.step
        return t


class TestSpans:
    def test_nesting_records_parent(self):
        reg = MetricRegistry()
        with reg.spans.span("outer"):
            assert reg.spans.current() == "outer"
            with reg.spans.span("inner"):
                assert reg.spans.active_path() == ("outer", "inner")
                assert reg.spans.depth() == 2
        assert reg.spans.current() is None
        stats = reg.spans.stats()
        assert stats["inner"].parents == {"outer": 1}
        assert stats["outer"].parents == {"": 1}

    def test_timing_monotonic_and_nested_totals(self):
        reg = MetricRegistry()
        tracker = SpanTracker(reg, clock=FakeClock(step=1.0))
        with tracker.span("outer"):
            with tracker.span("inner"):
                pass
        stats = tracker.stats()
        assert stats["inner"].total >= 0
        assert stats["outer"].total >= stats["inner"].total
        # With a 1s-per-tick clock: inner = 1 tick, outer = 3 ticks.
        assert stats["inner"].total == pytest.approx(1.0)
        assert stats["outer"].total == pytest.approx(3.0)
        assert stats["outer"].min <= stats["outer"].max

    def test_span_feeds_registry_histogram(self):
        reg = MetricRegistry()
        with reg.spans.span("phase"):
            pass
        hist = reg.get("phase")
        assert hist is not None
        assert hist.count == 1
        assert hist.sum >= 0

    def test_span_records_on_exception(self):
        reg = MetricRegistry()
        with pytest.raises(RuntimeError):
            with reg.spans.span("phase"):
                raise RuntimeError("boom")
        assert reg.spans.stats()["phase"].count == 1
        assert reg.spans.current() is None

    def test_stats_sorted_by_total_descending(self):
        reg = MetricRegistry()
        tracker = SpanTracker(reg, clock=FakeClock(step=1.0))
        with tracker.span("short"):
            pass
        with tracker.span("long"):
            with tracker.span("mid"):
                pass
        ordered = list(tracker.stats())
        assert ordered[0] == "long"
        assert set(ordered) == {"long", "mid", "short"}


class TestExporters:
    def _populated(self):
        reg = MetricRegistry()
        reg.counter("t.count").inc(7)
        reg.gauge("t.level").set(3.5)
        reg.histogram("t.h", buckets=(1.0, 2.0)).observe(1.5)
        with reg.spans.span("t.phase"):
            pass
        return reg

    def test_snapshot_is_json_serialisable(self):
        snap = obs.snapshot(self._populated())
        parsed = json.loads(json.dumps(snap))
        assert parsed["counters"][0] == {
            "name": "t.count",
            "type": "counter",
            "labels": {},
            "value": 7,
        }
        assert {h["name"] for h in parsed["histograms"]} == {"t.h", "t.phase"}
        assert parsed["spans"][0]["name"] == "t.phase"

    def test_jsonl_round_trip(self, tmp_path):
        reg = self._populated()
        exporter = obs.JsonLinesExporter(tmp_path / "stats.jsonl")
        exporter.export(reg, run="first")
        reg.counter("t.count").inc(3)
        exporter.export(reg, run="second")
        rows = obs.read_jsonl(tmp_path / "stats.jsonl")
        assert len(rows) == 2
        assert rows[0]["run"] == "first"
        by_name = {c["name"]: c["value"] for c in rows[1]["counters"]}
        assert by_name["t.count"] == 10

    def test_prometheus_text(self):
        text = obs.prometheus_text(self._populated())
        assert "# TYPE repro_t_count_total counter" in text
        assert "repro_t_count_total 7.0" in text
        assert "# TYPE repro_t_level gauge" in text
        assert 'repro_t_h_bucket{le="+Inf"} 1' in text
        assert "repro_t_h_count 1" in text
        # Every sample line parses as `name{labels} value`.
        for line in text.strip().splitlines():
            if not line.startswith("#"):
                assert len(line.rsplit(" ", 1)) == 2

    def test_format_snapshot_contains_sections(self):
        out = obs.format_snapshot(self._populated())
        assert "== counters ==" in out
        assert "== gauges ==" in out
        assert "== histograms ==" in out
        assert "== spans (per phase) ==" in out
        assert "t.phase" in out


class TestStreamingStatsCompat:
    def test_zero_before_any_traffic(self):
        from repro.core.streaming import StreamingScrubber

        engine = StreamingScrubber()
        assert engine.stats.flows_ingested == 0
        assert engine.stats.bins_closed == 0
        assert engine.stats.retrainings == 0
        assert engine.stats.training_flows == 0

    def test_unknown_attribute_raises(self):
        from repro.core.streaming import StreamingScrubber

        with pytest.raises(AttributeError):
            StreamingScrubber().stats.not_a_counter

    def test_view_tracks_registry(self):
        from repro.core.streaming import StreamingScrubber

        engine = StreamingScrubber()
        engine.registry.counter(names.C_STREAMING_BINS_CLOSED).inc(4)
        engine.registry.gauge(names.G_STREAMING_TRAINING_FLOWS).set(123)
        assert engine.stats.bins_closed == 4
        assert engine.stats.training_flows == 123
        assert engine.stats.as_dict()["bins_closed"] == 4

    def test_engines_have_private_registries(self):
        from repro.core.streaming import StreamingScrubber

        a, b = StreamingScrubber(), StreamingScrubber()
        a.registry.counter(names.C_STREAMING_BINS_CLOSED).inc()
        assert a.stats.bins_closed == 1
        assert b.stats.bins_closed == 0

    def test_ingest_populates_view_and_spans(self):
        from repro.core.streaming import StreamingScrubber
        from repro.netflow.dataset import FlowDataset
        from repro.netflow.record import FlowRecord

        records = [
            FlowRecord(
                time=t, src_ip=10, dst_ip=20, src_port=53, dst_port=1234,
                protocol=17, packets=1, bytes_=100, src_mac=1,
                blackhole=False,
            )
            for t in (0, 30, 70, 130)
        ]
        engine = StreamingScrubber()
        engine.ingest(FlowDataset.from_records(records))
        assert engine.stats.flows_ingested == 4
        assert engine.stats.bins_closed == 2  # bins 0 and 1 closed by bin 2
        span_names = engine.registry.spans.names()
        assert names.SPAN_STREAMING_INGEST in span_names
        assert names.SPAN_STREAMING_CLOSE_BIN in span_names


class TestBinRecloseDedupe:
    """Regression: late flows re-opening a closed bin at a bin boundary
    used to double-count ``streaming.bins_closed`` and the verdict
    counters when the bin closed a second time. Each bin and each
    (bin, target) verdict must be counted exactly once."""

    @staticmethod
    def _chunk(times, dst_ip=20):
        from tests.conftest import make_flow
        from repro.netflow.dataset import FlowDataset

        return FlowDataset.from_records(
            [make_flow(time=t, dst_ip=dst_ip) for t in times]
        )

    def test_bins_closed_counted_once_per_bin(self):
        from repro.core.streaming import StreamingScrubber

        engine = StreamingScrubber()
        engine.ingest(self._chunk([5, 15]))     # bin 0 open
        engine.ingest(self._chunk([65]))        # bin 1 arrives -> closes bin 0
        assert engine.stats.bins_closed == 1
        engine.ingest(self._chunk([30]))        # late flow re-opens bin 0
        engine.ingest(self._chunk([130]))       # bin 2 -> re-closes 0, closes 1
        assert engine.stats.bins_closed == 2    # not 3: bin 0 counted once
        engine.flush()                          # closes bin 2
        assert engine.stats.bins_closed == 3

    def test_verdict_counters_deduped_by_bin_and_target(self):
        from tests import strategies
        from repro.core.labeling.balancer import balance
        from repro.core.scrubber import IXPScrubber, ScrubberConfig
        from repro.core.streaming import StreamingScrubber

        rng = strategies.rng_for(41)
        balanced = balance(
            strategies.labeled_flows(rng, n_flows=2000, n_bins=6),
            np.random.default_rng(3),
        ).flows
        scrubber = IXPScrubber(
            ScrubberConfig(model="XGB", model_params={"n_estimators": 5})
        ).fit(balanced)
        engine = StreamingScrubber(
            min_flows_per_verdict=1, label_grace_bins=10**6
        ).warm_start(scrubber)

        first = engine.ingest(self._chunk([5, 15, 25]))  # bin 0 open
        first += engine.ingest(self._chunk([65]))        # closes bin 0
        assert {(v.bin, v.target_ip) for v in first} == {(0, 20)}
        emitted_once = engine.stats.verdicts_emitted
        ddos_once = engine.stats.ddos_verdicts
        assert emitted_once == 1

        engine.ingest(self._chunk([40]))                 # re-opens bin 0
        again = engine.ingest(self._chunk([130]))        # re-closes 0, closes 1
        # The late re-classification is still *returned* to the caller...
        assert (0, 20) in {(v.bin, v.target_ip) for v in again}
        # ...but the metrics count each (bin, target) exactly once; only
        # the genuinely new (1, 20) verdict increments the counters.
        assert engine.stats.verdicts_emitted == emitted_once + 1
        assert engine.stats.ddos_verdicts <= ddos_once + 1


class TestMergeSnapshots:
    def _shard(self, n):
        reg = MetricRegistry()
        reg.counter("t.count").inc(n)
        reg.counter("t.shard_only", {"shard": str(n)}).inc()
        reg.gauge("t.level").set(float(n))
        h = reg.histogram("t.h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5 * n, 1.5, 3.0):
            h.observe(v)
        with reg.spans.span("t.phase"):
            pass
        return reg

    def test_counters_and_gauges_sum_by_name_and_labels(self):
        snap = obs.merge_snapshots([self._shard(1), self._shard(2)])
        counters = {
            (c["name"], tuple(sorted(c["labels"].items()))): c["value"]
            for c in snap["counters"]
        }
        assert counters[("t.count", ())] == 3
        # Distinct label sets stay distinct series.
        assert counters[("t.shard_only", (("shard", "1"),))] == 1
        assert counters[("t.shard_only", (("shard", "2"),))] == 1
        assert snap["gauges"][0]["value"] == 3.0

    def test_histograms_merge_bucketwise_with_percentiles(self):
        snap = obs.merge_snapshots([self._shard(1), self._shard(2)])
        h = next(e for e in snap["histograms"] if e["name"] == "t.h")
        assert h["count"] == 6
        assert h["sum"] == pytest.approx(0.5 + 1.5 + 3.0 + 1.0 + 1.5 + 3.0)
        assert h["min"] == 0.5 and h["max"] == 3.0
        assert h["buckets"]["1.0"] == 2  # 0.5 and 1.0
        assert h["buckets"]["2.0"] == 4  # + the two 1.5s
        assert h["min"] <= h["p50"] <= h["p90"] <= h["p99"] <= h["max"]

    def test_spans_sum_and_single_source_is_identity(self):
        reg = self._shard(1)
        merged = obs.merge_snapshots([reg, self._shard(2)])
        (span,) = merged["spans"]
        assert span["count"] == 2
        assert span["mean_seconds"] == pytest.approx(
            span["total_seconds"] / 2
        )
        # Merging one source reproduces its own snapshot, and dict
        # sources (pre-taken snapshots) are accepted interchangeably.
        assert obs.merge_snapshots([reg]) == obs.merge_snapshots(
            [obs.snapshot(reg)]
        )
