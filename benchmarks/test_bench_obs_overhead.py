"""Guardrail: `repro.obs` instrumentation overhead on the core-ops path.

The observability layer is always on by default, so its cost on the
operations that dominate pipeline wall-clock (the same ones timed by
``test_bench_core_ops.py``: balancing, aggregation, WoE fitting, feature
assembly) must stay in the noise. This benchmark times the chain with
instrumentation enabled vs. globally disabled (``obs.disable()``) and
asserts the enabled/disabled ratio stays under 1.05 (< 5 % overhead).

Min-of-N timing is used on both sides — the standard way to strip
scheduler noise from a deterministic workload — with the enabled and
disabled runs interleaved so thermal/frequency drift hits both equally.
"""

import time

import numpy as np
import pytest

from repro import obs
from repro.core.encoding.matrix import assemble
from repro.core.encoding.woe import WoEEncoder
from repro.core.features.aggregation import aggregate
from repro.core.labeling.balancer import balance
from repro.ixp.fabric import IXPFabric
from repro.ixp.profiles import IXP_SE
from repro.traffic.workload import WorkloadGenerator

#: Maximum tolerated enabled/disabled wall-clock ratio.
MAX_OVERHEAD_RATIO = 1.05
ROUNDS = 7


@pytest.fixture(scope="module")
def labeled_corpus():
    fabric = IXPFabric(IXP_SE)
    capture = WorkloadGenerator(fabric).generate(0, 1)
    return capture.labeled_flows()


def _core_ops(labeled):
    """One pass over the instrumented core-op chain."""
    balanced = balance(labeled, np.random.default_rng(0)).flows
    data = aggregate(balanced)
    woe = WoEEncoder().fit(data)
    matrix = assemble(data, woe)
    return matrix


def test_bench_obs_overhead_under_5_percent(labeled_corpus):
    assert obs.is_enabled(), "obs must start enabled (the default)"
    enabled_times = []
    disabled_times = []
    try:
        # Warm-up once per mode (allocator, caches, lazy imports).
        _core_ops(labeled_corpus)
        obs.disable()
        _core_ops(labeled_corpus)
        obs.enable()

        for _ in range(ROUNDS):
            obs.disable()
            t0 = time.perf_counter()
            _core_ops(labeled_corpus)
            disabled_times.append(time.perf_counter() - t0)

            obs.enable()
            # A fresh registry per round keeps instrument lookup honest
            # (no warm single-entry dict) without unbounded growth.
            with obs.use_registry(obs.MetricRegistry()):
                t0 = time.perf_counter()
                _core_ops(labeled_corpus)
                enabled_times.append(time.perf_counter() - t0)
    finally:
        obs.enable()

    best_disabled = min(disabled_times)
    best_enabled = min(enabled_times)
    ratio = best_enabled / best_disabled
    print(
        f"\ncore-ops: disabled {best_disabled * 1e3:.1f} ms, "
        f"enabled {best_enabled * 1e3:.1f} ms, ratio {ratio:.4f}"
    )
    assert ratio < MAX_OVERHEAD_RATIO, (
        f"instrumentation overhead {100 * (ratio - 1):.1f}% exceeds "
        f"{100 * (MAX_OVERHEAD_RATIO - 1):.0f}% budget"
    )


def test_bench_obs_instrument_call_cost(benchmark):
    """Microbenchmark: one counter inc + one span enter/exit."""
    registry = obs.MetricRegistry()

    def one_round():
        with obs.use_registry(registry):
            with obs.span("bench.span"):
                obs.counter("bench.counter").inc()

    benchmark(one_round)
    assert registry.counter("bench.counter").value > 0
