"""JSON import/export of tagging rules.

Follows the shape of the paper's released rule list (Appendix F,
github.com/DE-CIX/ripe84-learning-acls): one JSON object per rule with
header fields, confidence and antecedent support. Port sets use the
``~{...}`` negation notation; wildcards serialise as ``"*"``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from repro.core.rules.model import PortMatch, RuleSet, RuleStatus, TaggingRule


def rule_to_dict(rule: TaggingRule) -> dict[str, Any]:
    """Serialise one rule to its JSON object."""
    return {
        "id": rule.rule_id,
        "protocol": rule.protocol if rule.protocol is not None else "*",
        "port_src": rule.port_src.render() if rule.port_src is not None else "*",
        "port_dst": rule.port_dst.render() if rule.port_dst is not None else "*",
        "packet_size": (
            f"({rule.packet_size[0]},{rule.packet_size[1]}]"
            if rule.packet_size is not None
            else "*"
        ),
        "confidence": round(rule.confidence, 5),
        "antecedent_support": round(rule.support, 5),
        "rule_status": rule.status.value,
        "notes": rule.notes,
    }


def rule_from_dict(data: dict[str, Any]) -> TaggingRule:
    """Parse one rule from its JSON object."""
    def port(value: Any) -> PortMatch | None:
        if value == "*" or value is None:
            return None
        if isinstance(value, int):
            return PortMatch(values=frozenset({value}))
        return PortMatch.parse(str(value))

    packet_size = None
    raw_size = data.get("packet_size", "*")
    if raw_size not in ("*", None):
        text = str(raw_size)
        if not (text.startswith("(") and text.endswith("]")):
            raise ValueError(f"malformed packet_size: {text!r}")
        low, _, high = text[1:-1].partition(",")
        packet_size = (int(low), int(high))

    protocol = data.get("protocol", "*")
    return TaggingRule(
        rule_id=str(data["id"]),
        confidence=float(data["confidence"]),
        support=float(data.get("antecedent_support", data.get("support", 0.0))),
        protocol=None if protocol in ("*", None) else int(protocol),
        port_src=port(data.get("port_src", "*")),
        port_dst=port(data.get("port_dst", "*")),
        packet_size=packet_size,
        status=RuleStatus(data.get("rule_status", "staging")),
        notes=str(data.get("notes", "")),
    )


def dump_rules(rules: Iterable[TaggingRule], path: str | Path) -> None:
    """Write rules to a JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = [rule_to_dict(r) for r in rules]
    path.write_text(json.dumps(payload, indent=2) + "\n")


def load_rules(path: str | Path) -> RuleSet:
    """Read a rule set from a JSON file."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, list):
        raise ValueError("rule file must contain a JSON array")
    return RuleSet(rule_from_dict(obj) for obj in payload)
