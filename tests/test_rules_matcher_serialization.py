"""Tests for vectorised rule matching and JSON serialisation."""

import numpy as np
import pytest

from repro.core.rules.matcher import (
    coverage,
    match_any,
    match_matrix,
    matched_rule_ids,
    rule_mask,
)
from repro.core.rules.model import PortMatch, RuleSet, RuleStatus, TaggingRule
from repro.core.rules.serialization import (
    dump_rules,
    load_rules,
    rule_from_dict,
    rule_to_dict,
)
from repro.netflow.dataset import FlowDataset
from tests.conftest import make_flow


@pytest.fixture
def ntp_rule():
    return TaggingRule(
        rule_id="ntp00001",
        confidence=0.976,
        support=0.026,
        protocol=17,
        port_src=PortMatch(values=frozenset({123})),
        packet_size=(400, 500),
        status=RuleStatus.ACCEPT,
        notes="NTP reflection with typical size.",
    )


@pytest.fixture
def fragment_rule():
    return TaggingRule(
        rule_id="frag0001",
        confidence=0.99,
        support=0.05,
        protocol=17,
        port_src=PortMatch(values=frozenset({0})),
        port_dst=PortMatch(values=frozenset({0})),
        status=RuleStatus.ACCEPT,
    )


class TestMatching:
    def test_rule_mask_matches_scalar(self, handmade_flows, ntp_rule):
        mask = rule_mask(ntp_rule, handmade_flows)
        for i in range(len(handmade_flows)):
            record = handmade_flows.record(i)
            assert mask[i] == ntp_rule.matches_record(
                record.protocol, record.src_port, record.dst_port, record.packet_size
            )

    def test_negated_port_mask(self, handmade_flows):
        rule = TaggingRule(
            rule_id="neg", confidence=0.9, support=0.1,
            port_dst=PortMatch(values=frozenset({5555, 6666}), negated=True),
        )
        mask = rule_mask(rule, handmade_flows)
        assert mask.sum() == len(handmade_flows) - 2

    def test_match_matrix_shape(self, handmade_flows, ntp_rule, fragment_rule):
        matrix = match_matrix([ntp_rule, fragment_rule], handmade_flows)
        assert matrix.shape == (len(handmade_flows), 2)

    def test_match_matrix_empty_rules(self, handmade_flows):
        assert match_matrix([], handmade_flows).shape == (len(handmade_flows), 0)

    def test_match_any(self, handmade_flows, ntp_rule, fragment_rule):
        any_mask = match_any([ntp_rule, fragment_rule], handmade_flows)
        matrix = match_matrix([ntp_rule, fragment_rule], handmade_flows)
        np.testing.assert_array_equal(any_mask, matrix.any(axis=1))

    def test_matched_rule_ids(self, handmade_flows, ntp_rule, fragment_rule):
        ids = matched_rule_ids([ntp_rule, fragment_rule], handmade_flows)
        assert len(ids) == len(handmade_flows)
        # Flow 0 is an NTP attack flow at 468 bytes.
        assert "ntp00001" in ids[0]
        # Flow 7 is a fragment flow (src/dst port 0).
        assert "frag0001" in ids[7]

    def test_coverage(self, handmade_flows, ntp_rule, fragment_rule):
        scores = coverage([ntp_rule, fragment_rule], handmade_flows)
        assert 0.0 <= scores["attack_dropped"] <= 1.0
        assert scores["benign_dropped"] == 0.0
        assert scores["attack_dropped"] > 0.0


class TestSerialization:
    def test_dict_roundtrip(self, ntp_rule):
        assert rule_from_dict(rule_to_dict(ntp_rule)) == ntp_rule

    def test_wildcards_roundtrip(self):
        rule = TaggingRule(rule_id="x", confidence=0.9, support=0.1, protocol=17)
        restored = rule_from_dict(rule_to_dict(rule))
        assert restored.port_src is None
        assert restored.packet_size is None

    def test_negated_set_notation(self, handmade_flows):
        rule = TaggingRule(
            rule_id="x", confidence=0.9, support=0.1,
            port_dst=PortMatch(values=frozenset({0, 17, 19}), negated=True),
        )
        data = rule_to_dict(rule)
        assert data["port_dst"] == "~{0,17,19}"
        assert rule_from_dict(data) == rule

    def test_file_roundtrip(self, tmp_path, ntp_rule, fragment_rule):
        path = tmp_path / "rules.json"
        dump_rules([ntp_rule, fragment_rule], path)
        restored = load_rules(path)
        assert len(restored) == 2
        assert restored.get("ntp00001") == ntp_rule

    def test_status_preserved(self, tmp_path, ntp_rule):
        path = tmp_path / "rules.json"
        dump_rules([ntp_rule], path)
        assert load_rules(path).get("ntp00001").status == RuleStatus.ACCEPT

    def test_rejects_non_array(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"id": "x"}')
        with pytest.raises(ValueError):
            load_rules(path)

    def test_accepts_integer_port(self):
        rule = rule_from_dict(
            {
                "id": "y",
                "protocol": 17,
                "port_src": 123,
                "port_dst": "*",
                "packet_size": "*",
                "confidence": 0.95,
                "antecedent_support": 0.01,
            }
        )
        assert rule.port_src == PortMatch(values=frozenset({123}))
