"""Experiment E-F11: temporal model drift (paper Fig. 11).

Fig. 11a (one-shot): train once on the first day / week / month of a
vantage point, score each later day. Expected shape: short training
intervals degrade and show outliers; longer intervals hold up.

Fig. 11b (sliding window): retrain daily on the trailing day / week /
month. Expected shape: clearly better than one-shot; wider windows
mainly remove outliers; the month window is the recommended setting.

At "paper" scale the windows are 1/7/28 simulated days over a 60-day
corpus; "small" uses 1/3/7 over 18 days so the ordering is still
observable in seconds.
"""

from __future__ import annotations

import numpy as np

from repro.core.drift import one_shot_evaluation, sliding_window_evaluation
from repro.experiments.common import ExperimentResult, check_scale
from repro.experiments.datasets import aggregated_corpus
from repro.ixp.profiles import profile_by_name

#: (corpus days, window list, sliding retrain cadence) per scale.
_SETUP = {
    "small": (14, (1, 3, 7), 2),
    "paper": (60, (1, 7, 28), 1),
}

#: Vantage points evaluated (the paper shows IXP-US1, IXP-CE1 and ALL).
SITES = ("IXP-US1", "IXP-CE1")


def run(scale: str = "small") -> ExperimentResult:
    check_scale(scale)
    n_days, windows, retrain_every = _SETUP[scale]
    result = ExperimentResult(experiment="fig11-temporal")

    for site in SITES:
        profile = profile_by_name(site)
        data = aggregated_corpus(profile, n_days)
        bins_per_day = profile.bins_per_day
        eval_start = max(windows)
        for window in windows:
            one_shot = one_shot_evaluation(
                data, bins_per_day, window, eval_start_day=eval_start
            )
            key = f"one-shot/{site}/{window}d"
            result.series[key] = (one_shot.days.tolist(), one_shot.scores.tolist())
            valid = one_shot.scores[~np.isnan(one_shot.scores)]
            result.rows.append(
                {
                    "site": site,
                    "regime": "one-shot",
                    "window_days": window,
                    "median_fbeta": float(np.median(valid)) if valid.size else float("nan"),
                    "min_fbeta": float(valid.min()) if valid.size else float("nan"),
                }
            )
        for window in windows:
            sliding = sliding_window_evaluation(
                data,
                bins_per_day,
                window,
                retrain_every=retrain_every,
                eval_start_day=eval_start,
            )
            key = f"sliding/{site}/{window}d"
            result.series[key] = (sliding.days.tolist(), sliding.scores.tolist())
            valid = sliding.scores[~np.isnan(sliding.scores)]
            result.rows.append(
                {
                    "site": site,
                    "regime": "sliding",
                    "window_days": window,
                    "median_fbeta": float(np.median(valid)) if valid.size else float("nan"),
                    "min_fbeta": float(valid.min()) if valid.size else float("nan"),
                }
            )

    def medians(regime: str) -> list[float]:
        return [
            row["median_fbeta"]
            for row in result.rows
            if row["regime"] == regime and not np.isnan(row["median_fbeta"])
        ]

    longest = max(windows)
    sliding_mean = float(np.mean(medians("sliding")))
    oneshot_mean = float(np.mean(medians("one-shot")))
    result.notes["sliding_mean_median"] = sliding_mean
    result.notes["oneshot_mean_median"] = oneshot_mean
    # Day-level noise dominates individual cells at small scale; the
    # regime comparison is made in aggregate across sites and windows.
    result.notes["sliding_beats_oneshot"] = sliding_mean >= oneshot_mean - 0.01
    result.notes["recommended"] = f"sliding window of {longest} days, retrained daily"
    return result
