"""Tests for the end-to-end workload generator."""

import numpy as np
import pytest

from repro.ixp.fabric import IXPFabric
from repro.traffic.workload import (
    DEFAULT_VECTOR_POPULARITY,
    WorkloadGenerator,
    _site_popularity,
)


class TestGenerate:
    def test_rejects_zero_days(self, tiny_fabric):
        with pytest.raises(ValueError):
            WorkloadGenerator(tiny_fabric).generate(0, 0)

    def test_flows_sorted(self, tiny_capture):
        assert (np.diff(tiny_capture.flows.time) >= 0).all()

    def test_updates_sorted(self, tiny_capture):
        times = [u.time for u in tiny_capture.updates]
        assert times == sorted(times)

    def test_flows_within_window(self, tiny_capture):
        assert (tiny_capture.flows.time >= tiny_capture.start).all()
        assert (tiny_capture.flows.time < tiny_capture.end).all()

    def test_events_recorded(self, tiny_capture):
        assert len(tiny_capture.events) > 0
        assert len(tiny_capture.event_vectors) == len(tiny_capture.events)

    def test_deterministic(self, tiny_fabric):
        a = WorkloadGenerator(tiny_fabric).generate(0, 1)
        b = WorkloadGenerator(tiny_fabric).generate(0, 1)
        np.testing.assert_array_equal(a.flows.time, b.flows.time)
        np.testing.assert_array_equal(a.flows.src_ip, b.flows.src_ip)
        assert len(a.updates) == len(b.updates)

    def test_day_streams_independent(self, tiny_fabric):
        """Day 1 of a 2-day run equals a 1-day run starting at day 1."""
        long = WorkloadGenerator(tiny_fabric).generate(0, 2)
        short = WorkloadGenerator(tiny_fabric).generate(1, 1)
        spd = tiny_fabric.profile.seconds_per_day
        # Events drawn for day 1 are identical in both runs.
        long_day1 = [e for e in long.events if spd <= e.start < 2 * spd]
        assert len(long_day1) == len(short.events)
        assert {e.victim for e in long_day1} == {e.victim for e in short.events}

    def test_labeled_flows_contains_attacks(self, labeled_flows):
        assert labeled_flows.blackhole.any()
        assert not labeled_flows.blackhole.all()

    def test_registry_consistent_with_labels(self, tiny_capture):
        registry = tiny_capture.registry()
        labeled = tiny_capture.labeled_flows()
        mask = registry.match_flows(tiny_capture.flows, horizon=tiny_capture.end)
        np.testing.assert_array_equal(mask, labeled.blackhole)


class TestBinStatistics:
    def test_bin_count(self, tiny_capture, tiny_profile):
        expected_bins = 2 * tiny_profile.bins_per_day
        assert tiny_capture.bin_stats.bins.shape[0] == expected_bins

    def test_blackhole_share_small(self, tiny_capture):
        """Blackholed traffic is a tiny share of total volume (Fig. 3a)."""
        share = tiny_capture.bin_stats.blackhole_share()
        assert share.max() < 0.05
        assert np.median(share) < 0.01

    def test_total_at_least_blackhole(self, tiny_capture):
        stats = tiny_capture.bin_stats
        assert (stats.total_bytes >= stats.blackhole_bytes).all()

    def test_positive_volume(self, tiny_capture):
        assert (tiny_capture.bin_stats.total_bytes > 0).all()


class TestVectorSchedule:
    def test_first_seen_respected(self, tiny_fabric):
        spd = tiny_fabric.profile.seconds_per_day
        generator = WorkloadGenerator(
            tiny_fabric,
            vector_first_seen={"NTP": spd},  # NTP only from day 1
            vector_popularity=DEFAULT_VECTOR_POPULARITY,
        )
        capture = generator.generate(0, 2)
        for event, vectors in zip(capture.events, capture.event_vectors):
            if "NTP" in vectors:
                assert event.start >= spd

    def test_site_popularity_deterministic(self):
        assert _site_popularity(101) == _site_popularity(101)

    def test_site_popularity_differs_by_seed(self):
        assert _site_popularity(101) != _site_popularity(102)

    def test_site_popularity_keeps_universal(self):
        for seed in (101, 102, 103, 104, 105):
            popularity = _site_popularity(seed)
            for name in ("DNS", "NTP", "LDAP", "SSDP"):
                assert popularity.get(name, 0.0) > 0.0

    def test_site_popularity_drops_some(self):
        popularity = _site_popularity(101)
        assert len(popularity) < len(DEFAULT_VECTOR_POPULARITY)
