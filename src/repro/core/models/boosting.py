"""Gradient-boosted decision trees (the paper's XGBoost stand-in).

Implements second-order (Newton) boosting on logistic loss with
histogram split search — the core algorithm of XGBoost [23] — including
L2 leaf regularisation, shrinkage, and per-feature *gain* accounting,
which drives the Fig. 10 feature-importance analysis ("average gain for
all splits").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.models.base import Classifier, check_fit_inputs
from repro.core.models.binning import DEFAULT_MAX_BINS, QuantileBinner


@dataclass
class _BoostNode:
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["_BoostNode"] = None
    right: Optional["_BoostNode"] = None
    weight: float = 0.0  # leaf output

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -30.0, 30.0)))


class GradientBoostedTrees(Classifier):
    """Newton-boosted tree ensemble for binary classification."""

    name = "XGB"

    def __init__(
        self,
        n_estimators: int = 60,
        max_depth: int = 6,
        learning_rate: float = 0.1,
        reg_lambda: float = 5.0,
        min_child_weight: float = 10.0,
        max_bins: int = DEFAULT_MAX_BINS,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if reg_lambda < 0:
            raise ValueError("reg_lambda must be non-negative")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.reg_lambda = reg_lambda
        self.min_child_weight = min_child_weight
        self.max_bins = max_bins
        self._binner = QuantileBinner(max_bins)
        self.trees_: list[_BoostNode] = []
        self.base_score_ = 0.0
        #: Per-feature accumulated split gain and split count (Fig. 10).
        self.feature_gain_: Optional[np.ndarray] = None
        self.feature_splits_: Optional[np.ndarray] = None

    def get_params(self) -> dict[str, object]:
        return {
            "n_estimators": self.n_estimators,
            "max_depth": self.max_depth,
            "learning_rate": self.learning_rate,
            "reg_lambda": self.reg_lambda,
        }

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostedTrees":
        X, y = check_fit_inputs(X, y)
        binned = self._binner.fit_transform(X)
        n, n_features = X.shape
        self.feature_gain_ = np.zeros(n_features, dtype=np.float64)
        self.feature_splits_ = np.zeros(n_features, dtype=np.int64)
        self.trees_ = []

        pos_rate = float(np.clip(y.mean(), 1e-6, 1.0 - 1e-6))
        self.base_score_ = float(np.log(pos_rate / (1.0 - pos_rate)))
        margin = np.full(n, self.base_score_, dtype=np.float64)

        yf = y.astype(np.float64)
        for _ in range(self.n_estimators):
            p = _sigmoid(margin)
            grad = p - yf
            hess = np.maximum(p * (1.0 - p), 1e-12)
            tree = self._build_tree(binned, grad, hess, np.arange(n), depth=0)
            self.trees_.append(tree)
            margin += self.learning_rate * self._tree_output(tree, X)
        return self

    def _build_tree(
        self,
        binned: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        index: np.ndarray,
        depth: int,
    ) -> _BoostNode:
        g_sum = float(grad[index].sum())
        h_sum = float(hess[index].sum())
        node = _BoostNode(weight=-g_sum / (h_sum + self.reg_lambda))
        if depth >= self.max_depth or index.shape[0] < 2:
            return node

        parent_score = g_sum * g_sum / (h_sum + self.reg_lambda)
        sub = binned[index]
        g_sub = grad[index]
        h_sub = hess[index]
        best_gain = 1e-9  # minimum split gain (gamma)
        best: Optional[tuple[int, int]] = None
        for j in range(binned.shape[1]):
            n_bins = self._binner.n_bins(j)
            if n_bins < 2:
                continue
            bins = sub[:, j]
            g_hist = np.bincount(bins, weights=g_sub, minlength=n_bins)
            h_hist = np.bincount(bins, weights=h_sub, minlength=n_bins)
            g_left = np.cumsum(g_hist)[:-1]
            h_left = np.cumsum(h_hist)[:-1]
            g_right = g_sum - g_left
            h_right = h_sum - h_left
            valid = (h_left >= self.min_child_weight) & (h_right >= self.min_child_weight)
            if not valid.any():
                continue
            gain = 0.5 * (
                g_left**2 / (h_left + self.reg_lambda)
                + g_right**2 / (h_right + self.reg_lambda)
                - parent_score
            )
            gain[~valid] = -np.inf
            k = int(np.argmax(gain))
            if gain[k] > best_gain:
                best_gain = float(gain[k])
                best = (j, k)

        if best is None:
            return node
        feature, split_bin = best
        assert self.feature_gain_ is not None and self.feature_splits_ is not None
        self.feature_gain_[feature] += best_gain
        self.feature_splits_[feature] += 1
        go_left = sub[:, feature] <= split_bin
        node.feature = feature
        node.threshold = self._binner.threshold(feature, split_bin)
        node.left = self._build_tree(binned, grad, hess, index[go_left], depth + 1)
        node.right = self._build_tree(binned, grad, hess, index[~go_left], depth + 1)
        return node

    # ------------------------------------------------------------------
    def _tree_output(self, tree: _BoostNode, X: np.ndarray) -> np.ndarray:
        out = np.empty(X.shape[0], dtype=np.float64)
        self._apply(tree, X, np.arange(X.shape[0]), out)
        return out

    def _apply(
        self, node: _BoostNode, X: np.ndarray, index: np.ndarray, out: np.ndarray
    ) -> None:
        if index.shape[0] == 0:
            return
        if node.is_leaf:
            out[index] = node.weight
            return
        assert node.left is not None and node.right is not None and node.feature is not None
        go_left = X[index, node.feature] <= node.threshold
        self._apply(node.left, X, index[go_left], out)
        self._apply(node.right, X, index[~go_left], out)

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw margin before the sigmoid."""
        if not self.trees_:
            raise RuntimeError("GradientBoostedTrees is not fitted")
        X = np.asarray(X, dtype=np.float64)
        margin = np.full(X.shape[0], self.base_score_, dtype=np.float64)
        for tree in self.trees_:
            margin += self.learning_rate * self._tree_output(tree, X)
        return margin

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return _sigmoid(self.decision_function(X))

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X) >= 0.5).astype(np.int64)

    def average_gain(self) -> np.ndarray:
        """Average split gain per feature (Fig. 10's importance measure)."""
        if self.feature_gain_ is None or self.feature_splits_ is None:
            raise RuntimeError("GradientBoostedTrees is not fitted")
        with np.errstate(divide="ignore", invalid="ignore"):
            avg = np.where(
                self.feature_splits_ > 0,
                self.feature_gain_ / np.maximum(self.feature_splits_, 1),
                0.0,
            )
        return avg
