"""Temporal and geographic drift evaluation (paper §6.3, §6.4).

These are the reusable evaluation loops behind Fig. 11 (one-shot vs
sliding-window training over time) and Fig. 12 (cross-IXP transfer
matrices). They operate on pre-aggregated records so the expensive
aggregation happens once per corpus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from repro import obs
from repro.core.features.aggregation import AggregatedDataset
from repro.core.models.metrics import fbeta_score
from repro.core.scrubber import IXPScrubber, ScrubberConfig
from repro.obs import names as metric_names


def _day_of_bins(bins: np.ndarray, bins_per_day: int) -> np.ndarray:
    return bins // bins_per_day


@dataclass(frozen=True)
class TemporalSeries:
    """Per-day score series for one training regime."""

    label: str
    days: np.ndarray
    scores: np.ndarray

    def median(self) -> float:
        return float(np.median(self.scores)) if self.scores.size else float("nan")

    def minimum(self) -> float:
        return float(self.scores.min()) if self.scores.size else float("nan")


def _fit_on(data: AggregatedDataset, config: ScrubberConfig) -> Optional[IXPScrubber]:
    if len(data) < 10 or len(np.unique(data.labels)) < 2:
        return None
    scrubber = IXPScrubber(config)
    scrubber.fit_aggregated(data)
    obs.counter(metric_names.C_DRIFT_MODELS_TRAINED).inc()
    return scrubber


def _score_day(
    scrubber: Optional[IXPScrubber], day_data: AggregatedDataset
) -> float:
    if scrubber is None or len(day_data) == 0:
        return float("nan")
    predictions = scrubber.predict_aggregated(day_data)
    obs.counter(metric_names.C_DRIFT_DAYS_SCORED).inc()
    return fbeta_score(day_data.labels.astype(int), predictions)


def one_shot_evaluation(
    data: AggregatedDataset,
    bins_per_day: int,
    train_days: int,
    config: ScrubberConfig | None = None,
    eval_start_day: Optional[int] = None,
) -> TemporalSeries:
    """Train once on the first ``train_days``; score every later day.

    Reproduces Fig. 11a for one training-interval length.
    ``eval_start_day`` (relative to the corpus start) pins the first
    scored day so that different training windows are compared on the
    *same* evaluation period; it defaults to the end of the training
    window.
    """
    config = config or ScrubberConfig()
    with obs.span(metric_names.SPAN_DRIFT_ONE_SHOT):
        days = _day_of_bins(data.bins, bins_per_day)
        first_day = int(days.min())
        train_mask = days < first_day + train_days
        scrubber = _fit_on(data.select(train_mask), config)
        if eval_start_day is None:
            eval_start_day = train_days
        if eval_start_day < train_days:
            raise ValueError("evaluation period overlaps the training window")
        eval_days = np.unique(days[days >= first_day + eval_start_day])
        scores = np.array(
            [_score_day(scrubber, data.select(days == d)) for d in eval_days]
        )
    return TemporalSeries(label=f"one-shot-{train_days}d", days=eval_days, scores=scores)


def sliding_window_evaluation(
    data: AggregatedDataset,
    bins_per_day: int,
    window_days: int,
    config: ScrubberConfig | None = None,
    retrain_every: int = 1,
    eval_start_day: Optional[int] = None,
) -> TemporalSeries:
    """Retrain daily on the past ``window_days``; score the current day.

    Reproduces Fig. 11b for one window length. ``retrain_every`` allows
    thinning the retraining cadence for cheap experiment variants;
    ``eval_start_day`` pins the evaluation period (default: directly
    after the first full window).
    """
    config = config or ScrubberConfig()
    with obs.span(metric_names.SPAN_DRIFT_SLIDING_WINDOW):
        days = _day_of_bins(data.bins, bins_per_day)
        unique_days = np.unique(days)
        if unique_days.size < window_days + 1:
            raise ValueError("not enough days for the requested window")
        start = window_days if eval_start_day is None else max(eval_start_day, window_days)
        eval_days = []
        scores = []
        scrubber: Optional[IXPScrubber] = None
        for k, day in enumerate(unique_days[start:]):
            if scrubber is None or k % retrain_every == 0:
                train_mask = (days >= day - window_days) & (days < day)
                scrubber = _fit_on(data.select(train_mask), config)
            eval_days.append(int(day))
            scores.append(_score_day(scrubber, data.select(days == day)))
    return TemporalSeries(
        label=f"sliding-{window_days}d",
        days=np.asarray(eval_days),
        scores=np.asarray(scores),
    )


@dataclass(frozen=True)
class TransferMatrix:
    """Fig. 12 result: train-site x test-site score matrix."""

    train_sites: tuple[str, ...]
    test_sites: tuple[str, ...]
    scores: np.ndarray  # (train, test)

    def score(self, train: str, test: str) -> float:
        return float(
            self.scores[self.train_sites.index(train), self.test_sites.index(test)]
        )


def geographic_transfer(
    train_sets: Mapping[str, AggregatedDataset],
    test_sets: Mapping[str, AggregatedDataset],
    config: ScrubberConfig | None = None,
    keep_local_woe: bool = False,
) -> TransferMatrix:
    """Train at each site, evaluate at every site (Fig. 12 left/right).

    With ``keep_local_woe=False`` the entire fitted model (incl. WoE)
    moves between sites — the naive transfer that degrades. With
    ``keep_local_woe=True`` each test site re-fits its *own* WoE on its
    training data and only adopts the remote classifier, reproducing the
    paper's key result.
    """
    config = config or ScrubberConfig()
    with obs.span(metric_names.SPAN_DRIFT_TRANSFER):
        return _geographic_transfer(train_sets, test_sets, config, keep_local_woe)


def _geographic_transfer(
    train_sets: Mapping[str, AggregatedDataset],
    test_sets: Mapping[str, AggregatedDataset],
    config: ScrubberConfig,
    keep_local_woe: bool,
) -> TransferMatrix:
    train_sites = tuple(train_sets)
    test_sites = tuple(test_sets)
    # Fit one scrubber per training site.
    fitted: dict[str, Optional[IXPScrubber]] = {
        site: _fit_on(train_sets[site], config) for site in train_sites
    }
    local: dict[str, Optional[IXPScrubber]] = {}
    if keep_local_woe:
        local = {site: _fit_on(train_sets[site], config) for site in test_sites}

    scores = np.full((len(train_sites), len(test_sites)), np.nan)
    for i, train_site in enumerate(train_sites):
        source = fitted[train_site]
        if source is None:
            continue
        for j, test_site in enumerate(test_sites):
            test_data = test_sets[test_site]
            if len(test_data) == 0:
                continue
            if keep_local_woe and train_site != test_site:
                receiver = local[test_site]
                if receiver is None:
                    continue
                model = receiver.transfer_classifier_from(source)
            else:
                model = source
            predictions = model.predict_aggregated(test_data)
            scores[i, j] = fbeta_score(test_data.labels.astype(int), predictions)
    return TransferMatrix(train_sites=train_sites, test_sites=test_sites, scores=scores)


def reflector_overlap_matrix(
    scrubbers: Mapping[str, IXPScrubber], threshold: float = 1.0
) -> TransferMatrix:
    """Fig. 12 (middle): overlap of high-WoE source IPs between sites.

    For each pair of sites, the share of site A's likely reflectors
    (src_ip WoE > threshold) that also appear as likely reflectors at
    site B.
    """
    sites = tuple(scrubbers)
    reflector_sets = {
        site: scrubbers[site].woe.table("src_ip").high_evidence_values(threshold)
        for site in sites
    }
    scores = np.zeros((len(sites), len(sites)))
    for i, a in enumerate(sites):
        for j, b in enumerate(sites):
            if not reflector_sets[a]:
                scores[i, j] = np.nan
                continue
            scores[i, j] = len(reflector_sets[a] & reflector_sets[b]) / len(
                reflector_sets[a]
            )
    return TransferMatrix(train_sites=sites, test_sites=sites, scores=scores)


# ----------------------------------------------------------------------
# Online drift tracking (streaming engine)
# ----------------------------------------------------------------------
class DriftTracker:
    """Streaming detector for drift in the per-bin verdict mix.

    The offline loops above measure drift between *models*; this tracker
    watches the live engine for drift in its *output*: the share of
    scored targets per closed bin that the model calls DDoS. A slow
    upward creep of that share (the ``slow_drift`` scenario) means the
    traffic mix is moving away from what the model was trained on.

    Mechanics: the share is smoothed with a deterministic EWMA; after a
    warmup period the smoothed value is frozen as the baseline, and the
    tracker *trips* once the EWMA stays more than ``threshold`` away
    from the baseline for ``consecutive`` observed bins. On a trip (and
    on every retrain) the baseline re-anchors to the current EWMA so a
    persistent shift is reported once, not every bin thereafter.

    The tracker is purely observational — it never changes verdicts —
    and purely deterministic: float arithmetic only, no clocks, no RNG,
    so resumed runs reproduce trips bit-for-bit. State round-trips
    through :meth:`to_state` / :meth:`from_state` for checkpointing.
    """

    def __init__(
        self,
        alpha: float = 0.25,
        threshold: float = 0.08,
        warmup_bins: int = 12,
        consecutive: int = 3,
    ):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if warmup_bins < 1:
            raise ValueError("warmup_bins must be >= 1")
        if consecutive < 1:
            raise ValueError("consecutive must be >= 1")
        self.alpha = alpha
        self.threshold = threshold
        self.warmup_bins = warmup_bins
        self.consecutive = consecutive
        self._ewma: Optional[float] = None
        self._baseline: Optional[float] = None
        self._bins_seen = 0
        self._streak = 0
        self.trips = 0

    def observe(self, ddos_share: float) -> bool:
        """Feed one closed bin's DDoS-verdict share; True when tripping."""
        self._bins_seen += 1
        if self._ewma is None:
            self._ewma = float(ddos_share)
        else:
            self._ewma = self.alpha * float(ddos_share) + (1.0 - self.alpha) * self._ewma
        if self._baseline is None:
            if self._bins_seen >= self.warmup_bins:
                self._baseline = self._ewma
            return False
        if abs(self._ewma - self._baseline) > self.threshold:
            self._streak += 1
        else:
            self._streak = 0
        if self._streak >= self.consecutive:
            self.trips += 1
            self._streak = 0
            self._baseline = self._ewma
            return True
        return False

    def rebaseline(self) -> None:
        """Re-anchor to the current EWMA (called after a retrain)."""
        if self._ewma is not None and self._baseline is not None:
            self._baseline = self._ewma
        self._streak = 0

    # -- checkpoint state ------------------------------------------------
    def to_state(self) -> dict:
        """JSON-safe state; floats round-trip exactly via repr."""
        return {
            "alpha": self.alpha,
            "threshold": self.threshold,
            "warmup_bins": self.warmup_bins,
            "consecutive": self.consecutive,
            "ewma": self._ewma,
            "baseline": self._baseline,
            "bins_seen": self._bins_seen,
            "streak": self._streak,
            "trips": self.trips,
        }

    @classmethod
    def from_state(cls, state: dict) -> "DriftTracker":
        tracker = cls(
            alpha=state["alpha"],
            threshold=state["threshold"],
            warmup_bins=int(state["warmup_bins"]),
            consecutive=int(state["consecutive"]),
        )
        tracker._ewma = state["ewma"]
        tracker._baseline = state["baseline"]
        tracker._bins_seen = int(state["bins_seen"])
        tracker._streak = int(state["streak"])
        tracker.trips = int(state["trips"])
        return tracker
