"""Salted pseudonymisation of flow identifiers.

The paper (§4.3) hashes IP and MAC addresses with a secret salt before
storage. This module reproduces that step: a keyed hash maps each address
to a stable pseudonym in the same value domain, so downstream processing
(grouping, WoE encoding) is unaffected while the original identifiers are
not recoverable without the salt.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.netflow.dataset import FlowDataset


class Anonymizer:
    """Deterministic, salt-keyed pseudonymiser for IPs and MACs.

    The same (salt, value) pair always yields the same pseudonym, so all
    datasets anonymised with one :class:`Anonymizer` remain joinable.
    """

    def __init__(self, salt: str):
        if not salt:
            raise ValueError("salt must be non-empty")
        self._salt = salt.encode()

    def _digest(self, value: int, width_bits: int) -> int:
        payload = self._salt + int(value).to_bytes(8, "big")
        raw = hashlib.blake2b(payload, digest_size=8).digest()
        return int.from_bytes(raw, "big") & ((1 << width_bits) - 1)

    def anonymize_ip(self, address: int) -> int:
        """Map one IPv4 address (uint32) to a pseudonymous uint32."""
        return self._digest(address, 32)

    def anonymize_mac(self, mac: int) -> int:
        """Map one MAC address (uint48 stored as uint64) to a pseudonym."""
        return self._digest(mac, 48)

    def _map_array(self, values: np.ndarray, width_bits: int) -> np.ndarray:
        # Hash each distinct value once; typical flow datasets have far
        # fewer unique addresses than rows.
        unique, inverse = np.unique(values, return_inverse=True)
        hashed = np.fromiter(
            (self._digest(int(v), width_bits) for v in unique),
            dtype=np.uint64,
            count=unique.shape[0],
        )
        return hashed[inverse]

    def anonymize(self, dataset: FlowDataset) -> FlowDataset:
        """Return a copy of ``dataset`` with IPs and MACs pseudonymised."""
        columns = dataset.to_columns()
        columns["src_ip"] = self._map_array(columns["src_ip"], 32).astype(np.uint32)
        columns["dst_ip"] = self._map_array(columns["dst_ip"], 32).astype(np.uint32)
        columns["src_mac"] = self._map_array(columns["src_mac"], 48)
        return FlowDataset(columns)
