"""Experiment E-F4: dataset validation (paper Fig. 4).

* Fig. 4a — share of well-known DDoS ports in three classes: the benign
  and blackhole halves of the ML training set and the self-attack set.
  Expected shape: benign ≈ 7.5 %, blackhole ≈ 87.5 %, SAS near 100 %.
* Fig. 4b — per-vector mean packet sizes, blackhole class vs SAS.
  Expected shape: similar sizes for every vector except WS-Discovery,
  which is present in the SAS (booter menu) but nearly absent from
  blackholing traffic.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, check_scale
from repro.experiments.datasets import (
    DAYS_BY_SCALE,
    balanced_corpus,
    self_attack_corpus,
)
from repro.ixp.profiles import ALL_PROFILES
from repro.netflow.dataset import FlowDataset
from repro.netflow.fields import ddos_port_label


def _ddos_port_flags(flows: FlowDataset) -> np.ndarray:
    protocols = flows.protocol
    ports = flows.src_port
    return np.asarray(
        [
            ddos_port_label(int(protocols[i]), int(ports[i])) is not None
            for i in range(len(flows))
        ],
        dtype=bool,
    )


def _vector_sizes(flows: FlowDataset) -> dict[str, np.ndarray]:
    protocols = flows.protocol
    ports = flows.src_port
    sizes = flows.packet_size
    out: dict[str, list[float]] = {}
    for i in range(len(flows)):
        label = ddos_port_label(int(protocols[i]), int(ports[i]))
        if label is not None:
            out.setdefault(label, []).append(float(sizes[i]))
    return {k: np.asarray(v) for k, v in out.items()}


def run(scale: str = "small") -> ExperimentResult:
    check_scale(scale)
    n_days = DAYS_BY_SCALE[scale]
    result = ExperimentResult(experiment="fig4-validation")

    merged = FlowDataset.concat(
        [balanced_corpus(p, n_days).flows for p in ALL_PROFILES]
    )
    benign = merged.select(~merged.blackhole)
    blackhole = merged.select(merged.blackhole)
    sas = self_attack_corpus(scale)
    sas_attack = sas.flows.select(sas.flows.blackhole)

    classes = {"benign": benign, "blackhole": blackhole, "self-attack": sas_attack}
    for name, flows in classes.items():
        flags = _ddos_port_flags(flows)
        result.rows.append(
            {
                "class": name,
                "n_flows": len(flows),
                "ddos_port_share_pct": 100.0 * float(flags.mean()) if len(flows) else 0.0,
            }
        )
    result.notes["benign_ddos_share_pct"] = result.rows[0]["ddos_port_share_pct"]
    result.notes["blackhole_ddos_share_pct"] = result.rows[1]["ddos_port_share_pct"]
    result.notes["sas_ddos_share_pct"] = result.rows[2]["ddos_port_share_pct"]

    # Fig. 4b: packet-size medians per vector, blackhole vs SAS.
    bh_sizes = _vector_sizes(blackhole)
    sas_sizes = _vector_sizes(sas_attack)
    for vector in sorted(set(bh_sizes) | set(sas_sizes)):
        bh = bh_sizes.get(vector, np.empty(0))
        sa = sas_sizes.get(vector, np.empty(0))
        result.series[f"fig4b/{vector}"] = (bh.tolist(), sa.tolist())
        result.rows.append(
            {
                "class": f"sizes/{vector}",
                "n_flows": int(bh.size),
                "ddos_port_share_pct": float("nan"),
                "bh_median_size": float(np.median(bh)) if bh.size else float("nan"),
                "sas_median_size": float(np.median(sa)) if sa.size else float("nan"),
            }
        )
    # WS-Discovery presence check (Fig. 4b's outlier).
    wsd_bh = bh_sizes.get("WS-Discovery", np.empty(0)).size
    wsd_sas = sas_sizes.get("WS-Discovery", np.empty(0)).size
    result.notes["wsd_blackhole_flows"] = int(wsd_bh)
    result.notes["wsd_sas_flows"] = int(wsd_sas)
    return result
