"""E-F13: learning new DDoS vectors without operator intervention
(Fig. 13).

Paper shape: once a new vector (SNMP / SSDP / memcached) starts being
blackholed, its source-port WoE rises from ~neutral to clearly positive
and the classifier's per-vector score follows; HTTP stays negative
throughout.
"""

import numpy as np

from repro.experiments import fig13_new_vectors


def test_fig13_new_vectors(run_experiment):
    result = run_experiment(fig13_new_vectors)
    print()
    print(result.summary())

    tracked = [r for r in result.rows if r["vector"] in ("SNMP", "SSDP", "memcached")]
    assert len(tracked) == 3
    for row in tracked:
        # WoE rises once the vector appears in blackholing traffic (the
        # paper's claim is the *rise*; for ports with a legitimate
        # benign population, e.g. SNMP monitoring, the level may stay
        # below zero while still lifting the classifier).
        assert row["woe_after"] > row["woe_before"] + 0.5, row["vector"]
        # ... and the classifier converges to high per-vector scores.
        assert row["final_fbeta"] > 0.75, row["vector"]
    # Vectors without benign carriers end clearly positive.
    for name in ("SSDP", "memcached"):
        row = next(r for r in tracked if r["vector"] == name)
        assert row["woe_after"] > 0.5, name

    # The HTTP reference stays negative (predominantly outside the
    # blackhole).
    assert result.notes["http_woe_mean"] < 0.0
