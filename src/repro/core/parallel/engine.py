"""Sharded streaming coordinator: parallel classification, serial brain.

:class:`ShardedStreamingScrubber` wraps a single
:class:`~repro.core.streaming.StreamingScrubber` — the *coordinator* —
that keeps doing everything order-sensitive exactly as the serial
engine does: bin bookkeeping, grace-period labeling, balancing (the only
RNG consumer) and the daily retrain. Only the per-bin classification of
closed bins fans out: flows are partitioned by hashed target prefix
(:class:`~repro.core.parallel.sharding.ShardPlan`), each shard batch is
aggregated/encoded/scored independently, and the reducer merges the
per-shard verdict lists by sorting on ``(bin, target_ip)``.

Because targets are disjoint across shards, per-shard aggregation is
exactly the restriction of the global aggregation, WoE encoding and tree
scoring are row-wise, and the reduce order equals the serial emission
order — so verdicts are **bit-identical** for any shard count and either
backend. ``equivalence_check=True`` (or ``REPRO_ENGINE_EQUIVALENCE=1``
in the environment — the debug mode) verifies that claim on every
ingest against a shadow serial engine and raises
:class:`EquivalenceError` on the first divergence.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional

from repro import obs
from repro.bgp.messages import Update
from repro.core.features.sketches import SketchAggregator, SketchParams
from repro.core.parallel.backends import make_backend
from repro.core.parallel.sharding import ShardPlan
from repro.core.scrubber import IXPScrubber, ScrubberConfig, TargetVerdict
from repro.core.streaming import ShardableEngine, StreamingScrubber
from repro.netflow.dataset import FlowDataset
from repro.obs import names

#: Aggregation modes of the sharded engine (see docs/SKETCHES.md).
AGG_MODES = ("exact", "sketch")

__all__ = ["ShardedStreamingScrubber", "EquivalenceError", "AGG_MODES"]

#: Environment switch that turns the equivalence shadow on by default.
EQUIVALENCE_ENV = "REPRO_ENGINE_EQUIVALENCE"

#: Metric-name prefix owned by the coordinator. Shard registries are
#: stripped of any such entries before merging so stream-level counts
#: (``streaming.flows_ingested`` etc.) are never double-counted in the
#: merged operator snapshot.
_COORDINATOR_PREFIX = "streaming."


class EquivalenceError(AssertionError):
    """Sharded and serial execution disagreed on a verdict."""


class _CoordinatorEngine(StreamingScrubber):
    """The inner serial engine with classification delegated outward."""

    def __init__(self, outer: "ShardedStreamingScrubber", **kwargs):
        self._outer = outer
        super().__init__(**kwargs)

    def _classify_closed(self, closed) -> list[TargetVerdict]:
        return self._outer._classify_closed_sharded(closed)


def _strip_coordinator_names(snap: dict) -> dict:
    """Drop coordinator-owned metric names from a shard snapshot."""
    out = dict(snap)
    for kind in ("counters", "gauges", "histograms", "spans"):
        out[kind] = [
            entry
            for entry in snap.get(kind, ())
            if not entry["name"].startswith(_COORDINATOR_PREFIX)
        ]
    return out


class ShardedStreamingScrubber(ShardableEngine):
    """Sharded drop-in for :class:`StreamingScrubber`.

    Parameters beyond the coordinator's (which are forwarded verbatim):

    n_shards / plan:
        Shard count, or a full :class:`ShardPlan` (pins, prefix bits).
    backend:
        ``"serial"`` (in-process, the default), ``"process"``
        (persistent worker processes) or ``"supervised"`` (worker
        processes under the fault-tolerant supervisor of
        :mod:`repro.core.resilience`). Verdicts do not depend on this.
    backend_options:
        Extra keyword arguments forwarded to the backend constructor —
        ``start_method``, ``ipc`` (``"pipe"``/``"shm"`` — shared-memory
        rings plus the map-once model plane, see ``docs/IPC.md``) and
        ``ring_bytes`` for the process backends; ``shard_timeout``,
        ``max_restarts``, ``fault_plan``, ... for ``supervised``.
    equivalence_check:
        Run a shadow serial engine on the same input and assert verdict
        equality on every call. Defaults to the
        ``REPRO_ENGINE_EQUIVALENCE`` environment switch. Debug aid —
        it doubles the work. Exact mode only: sketch-mode verdicts are
        approximate by design and would always diverge from the shadow.
    agg / sketch_params:
        Aggregation mode of the counting path. ``"exact"`` (default)
        preserves today's outputs bit-for-bit; ``"sketch"`` turns the
        workers into sketch counters whose states merge at the
        coordinator (see :mod:`repro.core.features.sketches` and
        ``docs/SKETCHES.md`` for the ε/δ accuracy contract the
        ``sketch_params`` knob controls).
    """

    def __init__(
        self,
        config: Optional[ScrubberConfig] = None,
        n_shards: int = 2,
        backend: str = "serial",
        plan: Optional[ShardPlan] = None,
        equivalence_check: Optional[bool] = None,
        registry: Optional[obs.MetricRegistry] = None,
        backend_options: Optional[dict] = None,
        agg: str = "exact",
        sketch_params: Optional[SketchParams] = None,
        **engine_kwargs,
    ):
        if agg not in AGG_MODES:
            raise ValueError(f"unknown agg mode {agg!r}; expected one of {AGG_MODES}")
        if sketch_params is not None and agg != "sketch":
            raise ValueError("sketch_params requires agg='sketch'")
        self._sketch_params = (
            (sketch_params or SketchParams()) if agg == "sketch" else None
        )
        self._coord_assembler = None
        self.plan = plan if plan is not None else ShardPlan(n_shards)
        self._inner = _CoordinatorEngine(
            self, config=config, registry=registry, **engine_kwargs
        )
        self.registry = self._inner.registry
        self.stats = self._inner.stats
        self._backend = make_backend(
            backend, self.plan.n_shards, **(backend_options or {})
        )
        self._broadcast_model: Optional[IXPScrubber] = None
        if equivalence_check is None:
            equivalence_check = os.environ.get(EQUIVALENCE_ENV, "") not in ("", "0")
        if equivalence_check and self._sketch_params is not None:
            raise ValueError(
                "equivalence_check requires exact aggregation: sketch-mode "
                "verdicts are approximate and cannot match the serial shadow"
            )
        self._shadow = (
            StreamingScrubber(config=config, **engine_kwargs)
            if equivalence_check
            else None
        )
        with obs.use_registry(self.registry):
            obs.gauge(names.G_PARALLEL_SHARDS).set(self.plan.n_shards)

    # -- ShardableEngine -----------------------------------------------
    @property
    def n_shards(self) -> int:
        return self.plan.n_shards

    @property
    def backend_name(self) -> str:
        return self._backend.name

    @property
    def ipc_mode(self) -> str:
        return getattr(self._backend, "ipc", "inline")

    @property
    def is_ready(self) -> bool:
        return self._inner.is_ready

    @property
    def model(self) -> Optional[IXPScrubber]:
        return self._inner.model

    def warm_start(self, scrubber: IXPScrubber) -> "ShardedStreamingScrubber":
        self._inner.warm_start(scrubber)
        if self._shadow is not None:
            self._shadow.warm_start(scrubber)
        return self

    @property
    def drift_trips(self) -> int:
        return self._inner.drift_trips

    def capture_state(self) -> dict:
        """JSON-safe snapshot of coordinator + shadow state."""
        from repro.core.recovery.state_codec import capture_sharded_state

        return capture_sharded_state(self)

    def restore_state(self, state: dict) -> "ShardedStreamingScrubber":
        """Restore a snapshot; the model re-broadcasts on the next bin."""
        from repro.core.recovery.state_codec import restore_sharded_state

        restore_sharded_state(self, state)
        return self

    def ingest(
        self, flows: FlowDataset, updates: Iterable[Update] = ()
    ) -> list[TargetVerdict]:
        updates = list(updates)
        verdicts = self._inner.ingest(flows, updates)
        if self._shadow is not None:
            self._assert_equivalent(self._shadow.ingest(flows, updates), verdicts)
        return verdicts

    def flush(self) -> list[TargetVerdict]:
        verdicts = self._inner.flush()
        if self._shadow is not None:
            self._assert_equivalent(self._shadow.flush(), verdicts)
        return verdicts

    # -- sharded classification ----------------------------------------
    def _classify_closed_sharded(
        self, closed: list[tuple[int, FlowDataset]]
    ) -> list[TargetVerdict]:
        scrubber = self._inner.model
        nonempty = [(b, flows) for b, flows in closed if len(flows)]
        if scrubber is None or not nonempty:
            return []
        with obs.span(names.SPAN_PARALLEL_CLASSIFY):
            parts: list[list[FlowDataset]] = [[] for _ in range(self.plan.n_shards)]
            total = 0
            for _, bin_flows in nonempty:
                ids = self.plan.assign(bin_flows.dst_ip)
                total += len(bin_flows)
                for shard in range(self.plan.n_shards):
                    selected = bin_flows.select(ids == shard)
                    if len(selected):
                        parts[shard].append(selected)
            shard_flows = [
                FlowDataset.concat(p) if p else None for p in parts
            ]
            obs.counter(names.C_PARALLEL_FLOWS_DISPATCHED).inc(total)
            if scrubber is not self._broadcast_model:
                self._backend.broadcast(scrubber)
                self._broadcast_model = scrubber
                obs.counter(names.C_PARALLEL_MODEL_BROADCASTS).inc()
                if self._sketch_params is not None:
                    self._coord_assembler = scrubber.make_assembler()
            results = self._backend.classify(
                shard_flows,
                self._inner.min_flows_per_verdict,
                agg=self._sketch_params,
            )
            with obs.span(names.SPAN_PARALLEL_MERGE):
                if self._sketch_params is not None:
                    merged = self._merge_sketch_states(results, scrubber)
                else:
                    merged = [v for shard_verdicts in results for v in shard_verdicts]
                    merged.sort(key=lambda v: (v.bin, v.target_ip))
            self._inner._count_verdicts(merged)
        return merged

    def _merge_sketch_states(
        self, states: list, scrubber: IXPScrubber
    ) -> list[TargetVerdict]:
        """Fold per-shard sketch states, build records once, score them.

        The merge is elementwise integer addition (and register max)
        over identically-seeded tables, so the folded state — and every
        verdict derived from it — is bitwise independent of shard count
        and merge order. Records come out ordered by (bin, target), the
        same emission order the exact reducer sorts into.
        """
        merged = SketchAggregator(self._sketch_params)
        for state in states:
            if not state:
                continue
            merged.merge(SketchAggregator.from_state(state))
        data = merged.build_records(min_flows=self._inner.min_flows_per_verdict)
        verdicts = scrubber.classify_aggregated(
            data, assembler=self._coord_assembler
        )
        verdicts.sort(key=lambda v: (v.bin, v.target_ip))
        return verdicts

    # -- equivalence ----------------------------------------------------
    def _assert_equivalent(
        self, expected: list[TargetVerdict], actual: list[TargetVerdict]
    ) -> None:
        with obs.use_registry(self.registry):
            obs.counter(names.C_PARALLEL_EQUIVALENCE_CHECKS).inc()
        if len(expected) != len(actual):
            raise EquivalenceError(
                f"sharded run emitted {len(actual)} verdicts, "
                f"serial emitted {len(expected)}"
            )
        for serial_v, sharded_v in zip(expected, actual):
            if serial_v != sharded_v:
                raise EquivalenceError(
                    f"verdict divergence at bin {serial_v.bin} "
                    f"target {serial_v.target_ip}: "
                    f"serial={serial_v} sharded={sharded_v}"
                )

    # -- observability --------------------------------------------------
    def merged_snapshot(self) -> dict:
        """Coordinator + all shard registries folded into one snapshot."""
        # The registry is active while fetching so supervised-backend
        # bookkeeping during the fetch (deadline misses on a dead
        # worker) lands in the coordinator's series, not the default's.
        with obs.use_registry(self.registry):
            shard_snaps = [
                _strip_coordinator_names(snap) for snap in self._backend.snapshots()
            ]
        return obs.merge_snapshots([obs.snapshot(self.registry), *shard_snaps])

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Shut down backend workers (idempotent)."""
        self._backend.close()
