"""Subprocess-free CLI tests: drive ``repro.cli.main(argv)`` directly.

Calling ``main`` in-process (instead of shelling out to
``python -m repro``) keeps these fast, coverage-visible and
debuggable; stdout/stderr are captured with pytest's ``capsys``.
``--days 1`` keeps the synthetic workloads small.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def test_list_exits_zero_and_names_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert out.strip(), "repro list printed nothing"


def test_unknown_experiment_exits_2(capsys):
    assert main(["run", "no-such-experiment"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


@pytest.mark.parametrize("bad", [["nope"], ["stats", "--days", "0"],
                                 ["stream", "--shards", "0"],
                                 ["stream", "--backend", "thread"],
                                 ["stats", "--format", "xml"]])
def test_invalid_arguments_exit_2(bad, capsys):
    with pytest.raises(SystemExit) as exc:
        main(bad)
    assert exc.value.code == 2
    capsys.readouterr()  # drain argparse usage text


class TestStats:
    def test_text_format(self, capsys):
        assert main(["stats", "--days", "1"]) == 0
        captured = capsys.readouterr()
        assert "== counters ==" in captured.out
        assert "streaming.flows_ingested" in captured.out
        assert "== spans (per phase) ==" in captured.out
        assert "[streamed" in captured.out  # footer with verdict count
        assert "generating 1 synthetic day(s)" in captured.err

    def test_json_format_parses_and_counts(self, capsys):
        assert main(["stats", "--days", "1", "--format", "json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        counters = {c["name"]: c["value"] for c in snap["counters"]}
        assert counters["streaming.flows_ingested"] > 0
        assert counters["streaming.bins_closed"] > 0

    def test_jsonl_export(self, capsys, tmp_path):
        path = tmp_path / "stats.jsonl"
        assert main(["stats", "--days", "1", "--jsonl", str(path)]) == 0
        capsys.readouterr()
        from repro import obs

        rows = obs.read_jsonl(path)
        assert len(rows) == 1 and rows[0]["days"] == 1


class TestStream:
    def test_sharded_text_format(self, capsys):
        assert main(["stream", "--days", "1", "--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "parallel.flows_dispatched" in out
        assert "parallel.shard_classify" in out
        assert "across 2 serial shard(s)" in out

    def test_sharded_json_merges_shard_metrics(self, capsys):
        assert main(
            ["stream", "--days", "1", "--shards", "2", "--format", "json"]
        ) == 0
        snap = json.loads(capsys.readouterr().out)
        counters = {c["name"]: c["value"] for c in snap["counters"]}
        # The merged snapshot carries coordinator and shard series once.
        assert counters["parallel.shard_flows"] == counters[
            "parallel.flows_dispatched"
        ]
        assert counters["streaming.flows_ingested"] > 0
        gauges = {g["name"]: g["value"] for g in snap["gauges"]}
        assert gauges["parallel.shards"] == 2

    def test_prometheus_format_with_equivalence_check(self, capsys):
        assert main(
            ["stream", "--days", "1", "--shards", "2", "--check",
             "--format", "prometheus"]
        ) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_parallel_flows_dispatched_total counter" in out
        assert "repro_parallel_equivalence_checks_total" in out
        for line in out.strip().splitlines():
            if not line.startswith("#"):
                assert len(line.rsplit(" ", 1)) == 2
