"""Unit tests for the scalar flow record model and address helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netflow.record import (
    FlowRecord,
    int_to_ip,
    int_to_mac,
    ip_to_int,
    mac_to_int,
)
from tests.conftest import make_flow


class TestIpConversion:
    def test_known_address(self):
        assert ip_to_int("10.0.0.1") == 0x0A000001

    def test_roundtrip_known(self):
        assert int_to_ip(ip_to_int("192.168.17.3")) == "192.168.17.3"

    def test_int_passthrough(self):
        assert ip_to_int(42) == 42

    def test_int_out_of_range(self):
        with pytest.raises(ValueError):
            ip_to_int(2**32)

    def test_malformed_string(self):
        with pytest.raises(Exception):
            ip_to_int("not.an.ip.addr")

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_roundtrip_property(self, value):
        assert ip_to_int(int_to_ip(value)) == value


class TestMacConversion:
    def test_known_mac(self):
        assert mac_to_int("00:00:00:00:00:ff") == 0xFF

    def test_roundtrip_known(self):
        mac = "02:42:ac:11:00:02"
        assert int_to_mac(mac_to_int(mac)) == mac

    def test_malformed(self):
        with pytest.raises(ValueError):
            mac_to_int("02:42:ac:11:00")

    def test_out_of_range_int(self):
        with pytest.raises(ValueError):
            mac_to_int(2**48)

    @given(st.integers(min_value=0, max_value=2**48 - 1))
    def test_roundtrip_property(self, value):
        assert mac_to_int(int_to_mac(value)) == value


class TestFlowRecord:
    def test_packet_size(self):
        flow = make_flow(packets=10, bytes_=5000)
        assert flow.packet_size == 500.0

    def test_rejects_zero_packets(self):
        with pytest.raises(ValueError):
            make_flow(packets=0)

    def test_rejects_zero_bytes(self):
        with pytest.raises(ValueError):
            make_flow(bytes_=0)

    def test_rejects_bad_port(self):
        with pytest.raises(ValueError):
            make_flow(src_port=70000)

    def test_protocol_name(self):
        assert make_flow(protocol=17).protocol_name == "UDP"
        assert make_flow(protocol=6).protocol_name == "TCP"
        assert make_flow(protocol=99).protocol_name == "99"

    def test_describe_mentions_blackhole(self):
        assert "blackholed" in make_flow(blackhole=True).describe()
        assert "blackholed" not in make_flow(blackhole=False).describe()

    def test_frozen(self):
        flow = make_flow()
        with pytest.raises(Exception):
            flow.time = 5  # type: ignore[misc]
