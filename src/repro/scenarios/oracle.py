"""Ground truth and scoring for operational scenarios.

A scenario *injects* attacks, so its oracle knows exactly which targets
were hit and when. Scoring is a pure function of the engine's verdict
stream plus that ground truth — no clocks, no randomness — which is
what makes scorecards bit-identical across reruns, shard counts and
backends (exact aggregation keeps the verdict stream itself invariant;
the oracle adds nothing that could drift).

Three score families, matching the paper's operational claims:

* **detection latency** — bins between the moment an attack becomes
  detectable (``detectable_from``, default its start) and the first
  DDoS verdict on any of its victims;
* **per-target localization** — precision/recall of the set of targets
  ever flagged DDoS against the set of injected victims;
* **benign collateral** — the fraction of *scored* benign-only targets
  that were ever flagged (the "benign drop" an operator would cause by
  acting on the verdicts).

Latency may be negative when the engine fires during a ramp-up phase
before the declared ``detectable_from`` bin — early detection is a
bonus, not an error, so it is reported as drawn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence

from repro.core.scrubber import TargetVerdict

__all__ = [
    "InjectedAttack",
    "GroundTruth",
    "Check",
    "score_verdicts",
    "evaluate_checks",
]


@dataclass(frozen=True)
class InjectedAttack:
    """One injected attack: the oracle's view of a campaign."""

    attack_id: str
    #: Every victim address the campaign targets (one for a flood,
    #: dozens for carpet bombing).
    victims: tuple[int, ...]
    start_bin: int
    #: Exclusive end bin.
    end_bin: int
    vectors: tuple[str, ...]
    #: Bin from which the latency clock runs; ``None`` means
    #: ``start_bin``. Slow-onset scenarios set this to the bin where the
    #: attack first exceeds a declared detectability threshold.
    detectable_from: Optional[int] = None

    def __post_init__(self) -> None:
        if self.end_bin <= self.start_bin:
            raise ValueError("attack must span at least one bin")
        if not self.victims:
            raise ValueError("attack needs at least one victim")

    @property
    def clock_start(self) -> int:
        return self.start_bin if self.detectable_from is None else self.detectable_from


@dataclass(frozen=True)
class GroundTruth:
    """Everything the oracle knows about one scenario stream."""

    attacks: tuple[InjectedAttack, ...]
    #: Targets that receive benign traffic only (attacked targets are
    #: excluded even if they also receive benign load).
    benign_targets: tuple[int, ...]
    #: Exclusive last bin of the stream.
    horizon_bin: int

    def attacked_targets(self) -> tuple[int, ...]:
        """Sorted union of every attack's victims."""
        return tuple(sorted({v for a in self.attacks for v in a.victims}))


@dataclass(frozen=True)
class Check:
    """A named threshold over one scorecard metric."""

    name: str
    metric: str
    op: str  # one of ">=", "<=", "=="
    threshold: float

    def __post_init__(self) -> None:
        if self.op not in (">=", "<=", "=="):
            raise ValueError(f"unknown check op {self.op!r}")

    def evaluate(self, values: Mapping[str, object]) -> dict:
        value = values.get(self.metric)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            passed = False
        elif self.op == ">=":
            passed = value >= self.threshold
        elif self.op == "<=":
            passed = value <= self.threshold
        else:
            passed = value == self.threshold
        return {
            "name": self.name,
            "metric": self.metric,
            "op": self.op,
            "threshold": self.threshold,
            "value": value,
            "passed": bool(passed),
        }


def score_verdicts(
    verdicts: Iterable[TargetVerdict], truth: GroundTruth
) -> tuple[dict, list[dict]]:
    """Score a verdict stream against the injected ground truth.

    Returns ``(metrics, attack_details)``: the flat metric dict every
    :class:`Check` evaluates over, and one detail record per injected
    attack. Latency metrics are ``None`` (JSON ``null``) when no attack
    was detected — never NaN, which strict JSON cannot carry.
    """
    ddos_bins_by_target: dict[int, list[int]] = {}
    scored_targets: set[int] = set()
    n_verdicts = 0
    n_ddos = 0
    for v in verdicts:
        n_verdicts += 1
        target = int(v.target_ip)
        scored_targets.add(target)
        if v.is_ddos:
            n_ddos += 1
            ddos_bins_by_target.setdefault(target, []).append(int(v.bin))

    details: list[dict] = []
    latencies: list[int] = []
    n_detected = 0
    for attack in truth.attacks:
        first: Optional[int] = None
        for victim in attack.victims:
            for b in ddos_bins_by_target.get(int(victim), ()):
                if attack.start_bin <= b < attack.end_bin and (
                    first is None or b < first
                ):
                    first = b
        detected = first is not None
        latency = None if first is None else first - attack.clock_start
        if detected:
            n_detected += 1
            latencies.append(latency)
        details.append(
            {
                "id": attack.attack_id,
                "n_victims": len(attack.victims),
                "start_bin": attack.start_bin,
                "end_bin": attack.end_bin,
                "detectable_from": attack.clock_start,
                "vectors": list(attack.vectors),
                "detected": detected,
                "first_detection_bin": first,
                "latency_bins": latency,
            }
        )

    attacked = set(truth.attacked_targets())
    flagged = set(ddos_bins_by_target)
    true_positives = flagged & attacked
    precision = len(true_positives) / len(flagged) if flagged else 1.0
    recall = len(true_positives) / len(attacked) if attacked else 1.0

    benign = set(truth.benign_targets) - attacked
    benign_scored = scored_targets & benign
    benign_flagged = flagged & benign
    collateral = (
        len(benign_flagged) / len(benign_scored) if benign_scored else 0.0
    )
    false_positive_verdicts = sum(
        len(ddos_bins_by_target[t]) for t in sorted(flagged - attacked)
    )

    metrics = {
        "attacks_total": len(truth.attacks),
        "attacks_detected": n_detected,
        "detection_recall": (
            n_detected / len(truth.attacks) if truth.attacks else 1.0
        ),
        "detection_latency_mean_bins": (
            sum(latencies) / len(latencies) if latencies else None
        ),
        "detection_latency_max_bins": max(latencies) if latencies else None,
        "localization_precision": precision,
        "localization_recall": recall,
        "targets_flagged": len(flagged),
        "benign_targets_scored": len(benign_scored),
        "benign_targets_flagged": len(benign_flagged),
        "benign_collateral_rate": collateral,
        "false_positive_verdicts": false_positive_verdicts,
        "verdicts_total": n_verdicts,
        "ddos_verdicts": n_ddos,
    }
    return metrics, details


def evaluate_checks(
    checks: Sequence[Check], values: Mapping[str, object]
) -> tuple[list[dict], bool]:
    """Evaluate every check; returns (results, all_passed)."""
    results = [c.evaluate(values) for c in checks]
    return results, all(r["passed"] for r in results)
