"""Sketch-mode aggregation benchmarks (BENCH_sketch.json).

Not a paper artifact — these guard the bounded-memory sketch path
(``repro.core.features.sketches``) on the workload it exists for: the
sparse carpet-bombing regime of many distinct targets with few flows
each (``tests/strategies.py:wide_flows``). Two guards:

* **memory** — measured sketch state vs the exact per-bin flow buffer,
  extrapolated to 10^6 distinct targets (exact grows linearly in
  flows; sketch state saturates at its capacity caps — the worked math
  is in ``docs/SKETCHES.md``). The extrapolated ratio must stay at or
  below ``BENCH_SKETCH_MAX_MEMORY_RATIO`` (default 0.25).
* **ingest** — sketch absorb throughput must not regress below the
  serial exact aggregation on the same flows
  (``BENCH_SKETCH_MIN_INGEST_RATIO``, default 1.0) and must clear an
  absolute flows/sec floor (``BENCH_SKETCH_MIN_FLOWS_PER_SEC``,
  default 100k — measured ~400k+ locally; the floor only catches
  collapses, not runner noise).

Results land in ``BENCH_sketch.json`` at the repo root so future PRs
have a perf trajectory to compare against.

Run:  PYTHONPATH=src python -m pytest benchmarks/test_bench_sketches.py -q
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.features.aggregation import aggregate_batch
from repro.core.features.sketches import SketchAggregator, SketchParams

_REPO_ROOT = Path(__file__).resolve().parents[1]
if str(_REPO_ROOT) not in sys.path:  # `pytest benchmarks/` without `-m`
    sys.path.insert(0, str(_REPO_ROOT))
from tests import strategies  # noqa: E402

BENCH_FILE = _REPO_ROOT / "BENCH_sketch.json"

#: Measured size: large enough that sketch state has saturated its
#: candidate caps, small enough for a CI smoke job.
N_TARGETS = 100_000
FLOWS_PER_TARGET = 2
#: The acceptance point the memory guard extrapolates to.
EXTRAPOLATED_TARGETS = 1_000_000


def _median_seconds(fn, repeats: int = 3):
    """Median wall-clock of ``repeats`` runs, plus the last result."""
    times = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return float(np.median(times)), result


def _record(op: str, payload: dict) -> None:
    """Merge one measurement into BENCH_sketch.json."""
    data = {}
    if BENCH_FILE.exists():
        data = json.loads(BENCH_FILE.read_text())
    data[op] = payload
    BENCH_FILE.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def workload():
    return strategies.wide_flows(
        strategies.rng_for(1009),
        n_targets=N_TARGETS,
        flows_per_target=FLOWS_PER_TARGET,
    )


def test_bench_sketch_ingest_and_memory(workload):
    flows = workload
    n_flows = len(flows.time)
    params = SketchParams()

    absorb_s, agg = _median_seconds(
        lambda: SketchAggregator(params).absorb(flows)
    )
    exact_s, _ = _median_seconds(lambda: aggregate_batch(flows))

    # Sanity: the timed sketch really absorbed the whole stream (the
    # accuracy contract itself is asserted by the property suite).
    assert sum(agg.total_flows(b) for b in agg.bins()) == n_flows

    absorb_fps = n_flows / absorb_s
    exact_fps = n_flows / exact_s
    ingest_ratio = absorb_fps / exact_fps

    # Memory: exact mode buffers every flow of an open bin at the
    # FlowDataset column widths; sketch state is capacity-capped.
    exact_bytes = int(sum(a.nbytes for a in flows.to_columns().values()))
    bytes_per_flow = exact_bytes / n_flows
    sketch_bytes = int(agg.memory_bytes())
    exact_extrapolated = int(
        bytes_per_flow * FLOWS_PER_TARGET * EXTRAPOLATED_TARGETS
    )
    # Sketch state at 10^6 targets is the measured (saturated) state —
    # candidate tracking is capped at hh_capacity long before 10^5.
    memory_ratio = sketch_bytes / exact_extrapolated

    _record("absorb_ingest", {
        "n_flows": int(n_flows),
        "n_targets": int(N_TARGETS),
        "seconds": round(absorb_s, 4),
        "flows_per_sec": int(absorb_fps),
    })
    _record("exact_aggregate", {
        "n_flows": int(n_flows),
        "n_targets": int(N_TARGETS),
        "seconds": round(exact_s, 4),
        "flows_per_sec": int(exact_fps),
    })
    _record("memory_per_bin", {
        "targets_measured": int(N_TARGETS),
        "sketch_bytes": sketch_bytes,
        "exact_bytes_measured": exact_bytes,
        "exact_bytes_per_flow": round(bytes_per_flow, 1),
        "targets_extrapolated": int(EXTRAPOLATED_TARGETS),
        "exact_bytes_extrapolated": exact_extrapolated,
        "ratio_at_extrapolated": round(memory_ratio, 5),
        "ingest_ratio": round(ingest_ratio, 2),
    })

    max_ratio = float(os.environ.get("BENCH_SKETCH_MAX_MEMORY_RATIO", "0.25"))
    assert memory_ratio <= max_ratio, (
        f"sketch/exact memory ratio {memory_ratio:.4f} above guard "
        f"{max_ratio} at {EXTRAPOLATED_TARGETS:,} targets "
        f"(sketch {sketch_bytes:,} B vs exact {exact_extrapolated:,} B)"
    )
    min_fps = float(os.environ.get("BENCH_SKETCH_MIN_FLOWS_PER_SEC", "100000"))
    assert absorb_fps >= min_fps, (
        f"sketch absorb throughput {absorb_fps:,.0f} flows/s below "
        f"guard {min_fps:,.0f}"
    )
    min_ingest = float(os.environ.get("BENCH_SKETCH_MIN_INGEST_RATIO", "1.0"))
    assert ingest_ratio >= min_ingest, (
        f"sketch absorb {absorb_fps:,.0f} flows/s regressed below "
        f"{min_ingest}x the serial exact aggregation ({exact_fps:,.0f} flows/s)"
    )
