"""``repro lint --changed``: scope the report to what a diff can affect.

The analysis itself always covers the whole project (cheap once the
cache is warm); ``--changed`` only narrows which findings are
*reported*. Scope = the modules whose files ``git`` says differ from
``HEAD`` (plus untracked files), widened to every module that
transitively imports one of them — an edit to ``shm.py`` can change
layering or shard-safety findings in its importers, so importers stay
in the report.

Outside a git checkout (or when git itself fails) the function returns
``None`` and the caller falls back to a full report — ``--changed`` is
a convenience, never a correctness gate. Non-Python changes (docs,
configs) do not narrow the scope selection; they simply are not
modules, so a docs-only diff yields an empty report. CI runs without
``--changed`` for exactly that reason.
"""

from __future__ import annotations

import subprocess
from pathlib import Path
from typing import Mapping, Optional, Sequence

__all__ = ["changed_paths", "git_changed_files"]


def git_changed_files(root: Path) -> Optional[list[str]]:
    """Repo-relative posix paths that differ from HEAD, or None.

    Covers staged + unstaged changes (``diff HEAD``) and untracked
    files. Any git failure — not a repo, no HEAD yet, binary missing —
    returns None so the caller can fall back to a full run.
    """
    out: list[str] = []
    for cmd in (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                cmd,
                cwd=root,
                capture_output=True,
                text=True,
                timeout=30,
                check=True,
            )
        except (OSError, subprocess.SubprocessError):
            return None
        out.extend(line.strip() for line in proc.stdout.splitlines())
    return sorted({p for p in out if p})


def _resolve_import(target: str, module_names: frozenset[str]) -> Optional[str]:
    """The project module an import target lands in, if any.

    ``repro.core.parallel.shm.ShmRing`` resolves to
    ``repro.core.parallel.shm`` by longest-prefix match against the
    known module names.
    """
    parts = target.split(".")
    for end in range(len(parts), 0, -1):
        candidate = ".".join(parts[:end])
        if candidate in module_names:
            return candidate
    return None


def changed_paths(
    root: Path,
    modules: Mapping[str, tuple[str, Sequence[str]]],
    changed: Optional[list[str]] = None,
) -> Optional[tuple[str, ...]]:
    """Report-filter paths for a ``--changed`` run, or None for full.

    ``modules`` maps each module's rel path to ``(dotted_name,
    import_targets)`` — exactly what the cache stores. The result is
    the rel paths of every directly-changed module plus the transitive
    closure of its reverse importers.
    """
    if changed is None:
        changed = git_changed_files(root)
    if changed is None:
        return None

    names = frozenset(name for name, _ in modules.values())
    name_to_rel = {name: rel for rel, (name, _) in modules.items()}
    # module name -> set of module names it imports (project-internal)
    imports_of: dict[str, set[str]] = {}
    for rel, (name, targets) in modules.items():
        resolved = set()
        for target in targets:
            dep = _resolve_import(target, names)
            if dep is not None and dep != name:
                resolved.add(dep)
        imports_of[name] = resolved

    changed_set = set(changed)
    affected = {name for rel, (name, _) in modules.items() if rel in changed_set}
    # Reverse closure: keep widening until no module outside ``affected``
    # imports a module inside it.
    while True:
        grown = {
            name
            for name, deps in imports_of.items()
            if name not in affected and deps & affected
        }
        if not grown:
            break
        affected |= grown
    return tuple(sorted(name_to_rel[name] for name in affected))
