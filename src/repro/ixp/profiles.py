"""The five IXP vantage-point profiles (paper Table 2).

Each profile captures the *relative* scale of one IXP in the paper's
dataset — connected ASes, traffic level, attack frequency — plus the
parameters of our synthetic workload for that vantage point. Absolute
volumes are scaled down by a documented factor (see DESIGN.md §1): the
reproduction target is the ordering and the balance/shape properties,
not terabits.

``bins_per_day`` compresses a simulated day into a tractable number of
one-minute bins; all downstream code operates on real timestamps and the
one-minute bin width of the paper, only the number of bins per "day" is
reduced.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class IXPProfile:
    """Scenario parameters of one IXP vantage point."""

    name: str
    region: int  # index into the reflector-pool regions
    n_members: int
    #: Relative traffic scale (IXP-CE1 = 1.0); drives benign volume.
    traffic_scale: float
    #: Mean number of attack events starting per simulated day.
    attacks_per_day: float
    #: Mean sampled attack flows per minute per event.
    attack_intensity: float
    #: Mean sampled benign flows per target per minute.
    benign_flows_per_target: float
    #: Benign target IPs receiving traffic per minute.
    benign_targets_per_minute: int
    #: Probability that an attacked network blackholes the victim.
    blackhole_probability: float = 0.96
    #: Probability a blackhole is precautionary (no attack behind it).
    spurious_blackhole_probability: float = 0.01
    #: One-minute bins per simulated day (time compression).
    bins_per_day: int = 96
    #: Base seed; combined with day index for reproducible streams.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_members <= 0:
            raise ValueError("profile needs members")
        if self.bins_per_day <= 0:
            raise ValueError("bins_per_day must be positive")
        if not 0.0 <= self.blackhole_probability <= 1.0:
            raise ValueError("blackhole_probability out of [0, 1]")

    @property
    def seconds_per_day(self) -> int:
        """Simulated seconds per day (bins_per_day one-minute bins)."""
        return self.bins_per_day * 60


#: Profiles mirroring Table 2, ordered by decreasing size. Scales are
#: relative; IXP-CE1 (>800 ASes, >10 Tbps) is the reference.
IXP_CE1 = IXPProfile(
    name="IXP-CE1", region=0, n_members=64, traffic_scale=1.0,
    attacks_per_day=40.0, attack_intensity=28.0,
    benign_flows_per_target=6.0, benign_targets_per_minute=96, seed=101,
)
IXP_US1 = IXPProfile(
    name="IXP-US1", region=1, n_members=32, traffic_scale=0.25,
    attacks_per_day=18.0, attack_intensity=26.0,
    benign_flows_per_target=5.0, benign_targets_per_minute=64, seed=102,
)
IXP_SE = IXPProfile(
    name="IXP-SE", region=2, n_members=24, traffic_scale=0.12,
    attacks_per_day=10.0, attack_intensity=24.0,
    benign_flows_per_target=5.0, benign_targets_per_minute=48, seed=103,
)
IXP_US2 = IXPProfile(
    name="IXP-US2", region=3, n_members=16, traffic_scale=0.05,
    attacks_per_day=4.0, attack_intensity=22.0,
    benign_flows_per_target=5.0, benign_targets_per_minute=44, seed=104,
)
IXP_CE2 = IXPProfile(
    name="IXP-CE2", region=4, n_members=20, traffic_scale=0.02,
    attacks_per_day=2.0, attack_intensity=20.0,
    benign_flows_per_target=5.0, benign_targets_per_minute=36, seed=105,
)

#: All five vantage points, largest first (Fig. 12 ordering).
ALL_PROFILES: tuple[IXPProfile, ...] = (IXP_CE1, IXP_US1, IXP_SE, IXP_US2, IXP_CE2)

PROFILE_BY_NAME: dict[str, IXPProfile] = {p.name: p for p in ALL_PROFILES}


def profile_by_name(name: str) -> IXPProfile:
    """Look up a profile by IXP name (raises ``KeyError``)."""
    return PROFILE_BY_NAME[name]
