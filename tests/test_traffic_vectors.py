"""Tests for the DDoS vector catalogue."""

import numpy as np
import pytest

from repro.netflow.fields import PROTO_TCP, PROTO_UDP, ddos_port_label
from repro.traffic.vectors import (
    ALL_VECTORS,
    DDoSVector,
    NTP,
    TOP_VECTORS,
    VECTOR_BY_NAME,
    vector_by_name,
)


class TestCatalogue:
    def test_names_unique(self):
        names = [v.name for v in ALL_VECTORS]
        assert len(names) == len(set(names))

    def test_top_vectors_subset(self):
        assert set(TOP_VECTORS) <= set(ALL_VECTORS)

    def test_lookup(self):
        assert vector_by_name("NTP") is NTP

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            vector_by_name("smurf")

    def test_every_udp_vector_is_a_known_ddos_port(self):
        """The catalogue must align with the Fig. 4a port taxonomy."""
        for vector in ALL_VECTORS:
            if vector.protocol == PROTO_UDP and vector.src_port != 0:
                assert ddos_port_label(vector.protocol, vector.src_port) is not None, vector.name

    def test_ntp_monlist_signature(self):
        """NTP replies cluster around the well-known ~468 byte monlist size."""
        assert 400 <= NTP.packet_size_mean <= 500

    def test_amplification_factors_sane(self):
        for vector in ALL_VECTORS:
            assert vector.amplification >= 1.0


class TestValidation:
    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            DDoSVector("x", PROTO_UDP, 1, packet_size_mean=0, packet_size_std=1, amplification=2)

    def test_rejects_bad_fragment_fraction(self):
        with pytest.raises(ValueError):
            DDoSVector(
                "x", PROTO_UDP, 1, packet_size_mean=100, packet_size_std=1,
                amplification=2, fragment_fraction=1.5,
            )

    def test_rejects_deamplification(self):
        with pytest.raises(ValueError):
            DDoSVector("x", PROTO_UDP, 1, packet_size_mean=100, packet_size_std=1, amplification=0.5)


class TestSampling:
    def test_sample_packet_sizes_bounds(self):
        rng = np.random.default_rng(0)
        sizes = NTP.sample_packet_sizes(rng, 1000)
        assert sizes.shape == (1000,)
        assert (sizes >= 64).all() and (sizes <= 1500).all()

    def test_sample_mean_near_signature(self):
        rng = np.random.default_rng(0)
        sizes = NTP.sample_packet_sizes(rng, 5000)
        assert abs(sizes.mean() - NTP.packet_size_mean) < 10
