"""Tests for feature-matrix assembly."""

import numpy as np
import pytest

from repro.core.encoding.matrix import FeatureMatrix, assemble, feature_columns
from repro.core.encoding.woe import WoEEncoder
from repro.core.features import schema
from repro.core.features.aggregation import aggregate


class TestAssemble:
    def test_requires_fitted_woe(self, handmade_flows):
        data = aggregate(handmade_flows)
        with pytest.raises(RuntimeError):
            assemble(data, WoEEncoder())

    def test_shape_and_columns(self, handmade_flows):
        data = aggregate(handmade_flows)
        woe = WoEEncoder(min_count=1).fit(data)
        matrix = assemble(data, woe)
        assert matrix.X.shape == (len(data), 150)
        assert matrix.columns == feature_columns()
        assert matrix.y.shape == (len(data),)

    def test_key_columns_are_woe_encoded(self, handmade_flows):
        data = aggregate(handmade_flows)
        woe = WoEEncoder(min_count=1).fit(data)
        matrix = assemble(data, woe)
        column = schema.key_column("src_port", "bytes", 0)
        j = matrix.column_index(column)
        expected = woe.encode_column(column, data.categorical[column])
        np.testing.assert_allclose(matrix.X[:, j], expected)

    def test_value_columns_pass_through(self, handmade_flows):
        data = aggregate(handmade_flows)
        woe = WoEEncoder(min_count=1).fit(data)
        matrix = assemble(data, woe)
        column = schema.value_column("src_ip", "bytes", 0)
        j = matrix.column_index(column)
        np.testing.assert_array_equal(matrix.X[:, j], data.metrics[column])

    def test_labels_are_int(self, handmade_flows):
        data = aggregate(handmade_flows)
        woe = WoEEncoder(min_count=1).fit(data)
        matrix = assemble(data, woe)
        assert matrix.y.dtype == np.int64
        assert set(np.unique(matrix.y)) <= {0, 1}


class TestFeatureMatrix:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FeatureMatrix(X=np.zeros((3, 2)), y=np.zeros(2), columns=("a", "b"))

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FeatureMatrix(X=np.zeros((3, 2)), y=np.zeros(3), columns=("a",))

    def test_len(self):
        matrix = FeatureMatrix(X=np.zeros((3, 1)), y=np.zeros(3), columns=("a",))
        assert len(matrix) == 3
