"""Tests for the curation UI renderer and ASCII figure rendering."""

import numpy as np
import pytest

from repro.core.rules.model import PortMatch, RuleSet, RuleStatus, TaggingRule
from repro.core.rules.ui import curation_summary, render_rule_table
from repro.experiments.plots import cdf_summary, heatmap, render_series, sparkline


def rules_fixture() -> RuleSet:
    rules = RuleSet(
        [
            TaggingRule(
                rule_id="aaaa0001", confidence=0.99, support=0.05, protocol=17,
                port_src=PortMatch(values=frozenset({123})),
                packet_size=(400, 500), notes="NTP reflection",
            ),
            TaggingRule(
                rule_id="bbbb0002", confidence=0.92, support=0.20, protocol=17,
                port_src=PortMatch(values=frozenset({53})),
            ),
            TaggingRule(
                rule_id="cccc0003", confidence=0.85, support=0.01, protocol=6,
                port_dst=PortMatch(values=frozenset({0, 17, 19, 9999}), negated=True),
            ),
        ]
    )
    rules.set_status("aaaa0001", RuleStatus.ACCEPT)
    rules.set_status("cccc0003", RuleStatus.DECLINE)
    return rules


class TestRuleTable:
    def test_contains_fig6_columns(self):
        table = render_rule_table(rules_fixture())
        header = table.splitlines()[0]
        for column in ("id", "protocol", "port_src", "port_dst", "packet_size",
                       "confidence", "support", "status", "notes"):
            assert column in header

    def test_sorted_by_support_desc(self):
        table = render_rule_table(rules_fixture(), sort_by="support")
        lines = table.splitlines()[2:]
        assert lines[0].startswith("bbbb0002")  # highest support first

    def test_sorted_by_confidence_desc(self):
        table = render_rule_table(rules_fixture(), sort_by="confidence")
        lines = table.splitlines()[2:]
        assert lines[0].startswith("aaaa0001")

    def test_status_filter(self):
        table = render_rule_table(rules_fixture(), status=RuleStatus.ACCEPT)
        body = table.splitlines()[2:]
        assert len(body) == 1 and body[0].startswith("aaaa0001")

    def test_limit(self):
        table = render_rule_table(rules_fixture(), limit=1)
        assert len(table.splitlines()) == 3

    def test_negated_set_rendered(self):
        table = render_rule_table(rules_fixture())
        assert "~{0,17,19,9999}" in table

    def test_empty_set(self):
        assert "(no rules)" in render_rule_table(RuleSet())

    def test_invalid_sort_key(self):
        with pytest.raises(ValueError):
            render_rule_table(rules_fixture(), sort_by="magic")

    def test_truncation(self):
        rules = RuleSet(
            [
                TaggingRule(
                    rule_id="dddd0004", confidence=0.9, support=0.1, protocol=17,
                    notes="x" * 200,
                )
            ]
        )
        table = render_rule_table(rules, max_cell_width=10)
        assert "xxxxxxx..." in table

    def test_curation_summary(self):
        assert curation_summary(rules_fixture()) == "1 accepted / 1 staging / 1 declined"


class TestSparkline:
    def test_monotone_series_rises(self):
        line = sparkline([0, 1, 2, 3, 4])
        assert line[0] == "▁" and line[-1] == "█"

    def test_constant_series(self):
        assert set(sparkline([5, 5, 5])) == {"▄"}

    def test_empty(self):
        assert sparkline([]) == "(empty)"

    def test_nan_filtered(self):
        assert sparkline([float("nan"), 1.0, 2.0]) != "(empty)"

    def test_downsampling(self):
        line = sparkline(list(range(1000)), width=50)
        assert len(line) <= 50


class TestRenderSeries:
    def test_prefix_filter(self):
        series = {"a/x": ([0, 1], [1.0, 2.0]), "b/y": ([0, 1], [3.0, 4.0])}
        out = render_series(series, prefix="a/")
        assert "a/x" in out and "b/y" not in out

    def test_range_annotation(self):
        out = render_series({"s": ([0, 1, 2], [1.0, 5.0, 3.0])})
        assert "[1 .. 5]" in out

    def test_empty(self):
        assert render_series({}) == "(no series)"


class TestHeatmap:
    def test_labels_and_values(self):
        out = heatmap(["r1", "r2"], ["c1", "c2"], np.array([[1.0, 0.5], [np.nan, 0.25]]))
        assert "r1" in out and "c2" in out
        assert "1.00" in out and "0.25" in out
        assert "-" in out  # nan cell

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            heatmap(["r1"], ["c1"], np.zeros((2, 2)))


class TestCdfSummary:
    def test_quantiles(self):
        out = cdf_summary(np.linspace(0, 1, 101))
        assert "p50=0.5" in out and "n=101" in out

    def test_empty(self):
        assert cdf_summary([]) == "(empty)"
