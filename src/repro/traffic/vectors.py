"""Catalogue of DDoS reflection/amplification vectors.

Each :class:`DDoSVector` describes the L3/L4 signature of one attack
vector as it appears in sampled flow data at an IXP: the transport
protocol, the reflector-side source port, the characteristic response
packet-size distribution (cf. paper Fig. 4b — e.g. NTP monlist replies
around 468 bytes), the amplification factor, and the fraction of traffic
arriving as non-first UDP fragments (reported with source port 0 by flow
exporters, the paper's "UDP Fragm." class).

The catalogue covers the paper's top-7 vectors of Table 3 plus the
"other DDoS" ports enumerated in Fig. 4a.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netflow import fields
from repro.netflow.fields import PROTO_GRE, PROTO_TCP, PROTO_UDP


@dataclass(frozen=True)
class DDoSVector:
    """Static signature of one reflection/amplification vector."""

    name: str
    protocol: int
    src_port: int
    #: Mean of the response packet-size distribution in bytes.
    packet_size_mean: float
    #: Standard deviation of the response packet size.
    packet_size_std: float
    #: Bandwidth amplification factor (response bytes / request bytes).
    amplification: float
    #: Fraction of attack packets arriving as non-first fragments.
    fragment_fraction: float = 0.0
    #: If True the attack sprays responses over arbitrary destination
    #: ports; otherwise responses return to a quasi-stable ephemeral port.
    sprays_dst_ports: bool = True
    #: Direct-path floods (spoofed/botnet sources) carry arbitrary
    #: ephemeral source ports instead of a reflector service port; they
    #: have no stable header signature and are only detectable through
    #: source-IP evidence and volume features.
    random_src_ports: bool = False

    def __post_init__(self) -> None:
        if self.packet_size_mean <= 0:
            raise ValueError(f"{self.name}: packet size must be positive")
        if not 0.0 <= self.fragment_fraction <= 1.0:
            raise ValueError(f"{self.name}: fragment fraction out of [0, 1]")
        if self.amplification < 1.0:
            raise ValueError(f"{self.name}: amplification factor must be >= 1")

    def sample_packet_sizes(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` response packet sizes (clipped to [64, 1500] bytes)."""
        sizes = rng.normal(self.packet_size_mean, self.packet_size_std, size=n)
        return np.clip(sizes, 64.0, 1500.0)


# ----------------------------------------------------------------------
# The vector catalogue. Packet sizes follow values reported in the
# measurement literature the paper cites (e.g. NTP monlist ~468 B [38],
# SSDP ~320 B, chargen ~358 B); amplification factors follow the usual
# US-CERT/Rozekrans tables. Exact magnitudes matter less than that each
# vector has a *stable, distinguishable* signature, which is what the
# ML pipeline keys on.
# ----------------------------------------------------------------------
NTP = DDoSVector(
    "NTP", PROTO_UDP, fields.PORT_NTP,
    packet_size_mean=468.0, packet_size_std=30.0, amplification=556.0,
)
DNS = DDoSVector(
    "DNS", PROTO_UDP, fields.PORT_DNS,
    packet_size_mean=1100.0, packet_size_std=250.0, amplification=54.0,
    fragment_fraction=0.25,
)
SNMP = DDoSVector(
    "SNMP", PROTO_UDP, fields.PORT_SNMP,
    packet_size_mean=900.0, packet_size_std=200.0, amplification=6.3,
    fragment_fraction=0.10,
)
LDAP = DDoSVector(
    "LDAP", PROTO_UDP, fields.PORT_LDAP,
    packet_size_mean=1300.0, packet_size_std=180.0, amplification=56.0,
    fragment_fraction=0.35,
)
SSDP = DDoSVector(
    "SSDP", PROTO_UDP, fields.PORT_SSDP,
    packet_size_mean=320.0, packet_size_std=40.0, amplification=30.8,
)
MEMCACHED = DDoSVector(
    "memcached", PROTO_UDP, fields.PORT_MEMCACHED,
    packet_size_mean=1400.0, packet_size_std=60.0, amplification=10000.0,
    fragment_fraction=0.40,
)
CHARGEN = DDoSVector(
    "chargen", PROTO_UDP, fields.PORT_CHARGEN,
    packet_size_mean=358.0, packet_size_std=60.0, amplification=358.8,
)
WS_DISCOVERY = DDoSVector(
    "WS-Discovery", PROTO_UDP, fields.PORT_WSD,
    packet_size_mean=780.0, packet_size_std=90.0, amplification=500.0,
)
APPLE_RD = DDoSVector(
    "Apple RD", PROTO_UDP, fields.PORT_APPLE_RD,
    packet_size_mean=1048.0, packet_size_std=120.0, amplification=35.5,
)
MSSQL = DDoSVector(
    "MSSQL", PROTO_UDP, fields.PORT_MSSQL,
    packet_size_mean=620.0, packet_size_std=100.0, amplification=25.0,
)
RPCBIND = DDoSVector(
    "rpcbind", PROTO_UDP, fields.PORT_RPCBIND,
    packet_size_mean=360.0, packet_size_std=50.0, amplification=28.4,
)
RPCBIND_TCP = DDoSVector(
    "rpcbind (TCP)", PROTO_TCP, fields.PORT_RPCBIND,
    packet_size_mean=340.0, packet_size_std=60.0, amplification=10.0,
    sprays_dst_ports=False,
)
DNS_TCP = DDoSVector(
    "DNS (TCP)", PROTO_TCP, fields.PORT_DNS,
    packet_size_mean=700.0, packet_size_std=200.0, amplification=4.0,
    sprays_dst_ports=False,
)
NETBIOS = DDoSVector(
    "NetBios", PROTO_UDP, fields.PORT_NETBIOS,
    packet_size_mean=280.0, packet_size_std=40.0, amplification=3.8,
)
RIP = DDoSVector(
    "RIP", PROTO_UDP, fields.PORT_RIP,
    packet_size_mean=404.0, packet_size_std=50.0, amplification=131.2,
)
OPENVPN = DDoSVector(
    "OpenVPN", PROTO_UDP, fields.PORT_OPENVPN,
    packet_size_mean=250.0, packet_size_std=60.0, amplification=6.0,
)
TFTP = DDoSVector(
    "TFTP", PROTO_UDP, fields.PORT_TFTP,
    packet_size_mean=516.0, packet_size_std=80.0, amplification=60.0,
)
UBIQUITI = DDoSVector(
    "Ubiq. SD", PROTO_UDP, fields.PORT_UBIQUITI,
    packet_size_mean=200.0, packet_size_std=30.0, amplification=30.0,
)
WCCP = DDoSVector(
    "WCCP", PROTO_UDP, fields.PORT_WCCP,
    packet_size_mean=300.0, packet_size_std=50.0, amplification=10.0,
)
DHCPDISC = DDoSVector(
    "DHCPDisc.", PROTO_UDP, fields.PORT_DHCPDISC,
    packet_size_mean=340.0, packet_size_std=40.0, amplification=5.0,
)
GRE_FLOOD = DDoSVector(
    "GRE", PROTO_GRE, 0,
    packet_size_mean=512.0, packet_size_std=120.0, amplification=1.0,
    sprays_dst_ports=False,
)
MICROSOFT_TS = DDoSVector(
    "Micr. TS", PROTO_UDP, fields.PORT_MICROSOFT_TS,
    packet_size_mean=250.0, packet_size_std=40.0, amplification=85.9,
)
UDP_FLOOD = DDoSVector(
    "UDP flood", PROTO_UDP, 0,
    packet_size_mean=600.0, packet_size_std=350.0, amplification=1.0,
    random_src_ports=True,
)

#: The top-7 vectors of Table 3 ("UDP Fragm." emerges from the
#: fragment fractions of the volumetric vectors rather than being a
#: vector of its own).
TOP_VECTORS: tuple[DDoSVector, ...] = (
    DNS, NTP, SNMP, LDAP, SSDP, MEMCACHED, APPLE_RD,
)

#: "Other DDoS" vectors of Fig. 4a.
OTHER_VECTORS: tuple[DDoSVector, ...] = (
    CHARGEN, WS_DISCOVERY, MSSQL, RPCBIND, RPCBIND_TCP, DNS_TCP, NETBIOS,
    RIP, OPENVPN, TFTP, UBIQUITI, WCCP, DHCPDISC, GRE_FLOOD, MICROSOFT_TS,
)

#: Direct-path (non-reflection) vectors: botnet/spoofed-source floods.
DIRECT_VECTORS: tuple[DDoSVector, ...] = (UDP_FLOOD,)

ALL_VECTORS: tuple[DDoSVector, ...] = TOP_VECTORS + OTHER_VECTORS + DIRECT_VECTORS

VECTOR_BY_NAME: dict[str, DDoSVector] = {v.name: v for v in ALL_VECTORS}


def vector_by_name(name: str) -> DDoSVector:
    """Look up a vector by its display name (raises ``KeyError``)."""
    return VECTOR_BY_NAME[name]
