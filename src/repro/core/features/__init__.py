"""Step 2 feature construction: per-target aggregation and rankings."""

from repro.core.features.aggregation import AggregatedDataset, aggregate
from repro.core.features.sketches import (
    CardinalitySketch,
    CountMinSketch,
    SketchAggregator,
    SketchParams,
    sketch_aggregate,
)
from repro.core.features.schema import (
    CATEGORICALS,
    METRICS,
    MISSING_KEY,
    RANKS,
    all_columns,
    key_column,
    key_columns,
    parse_column,
    value_column,
    value_columns,
)

__all__ = [
    "AggregatedDataset",
    "CATEGORICALS",
    "METRICS",
    "MISSING_KEY",
    "RANKS",
    "CardinalitySketch",
    "CountMinSketch",
    "SketchAggregator",
    "SketchParams",
    "aggregate",
    "sketch_aggregate",
    "all_columns",
    "key_column",
    "key_columns",
    "parse_column",
    "value_column",
    "value_columns",
]
