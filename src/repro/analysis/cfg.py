"""Intraprocedural control-flow graphs and a worklist dataflow solver.

This module graduates the analyzer from AST pattern-matching to
path-sensitive reasoning: the resource-lifecycle pass (RS601–RS604)
needs to prove "every acquired segment is released on *every* path out
of the function, including the exception edges", which is a dataflow
property, not a syntactic one.

Design decisions, in the order they bit:

* **One statement per block.** Python functions are small; basic-block
  packing would buy nothing and cost precision bookkeeping. Compound
  statements contribute a *header* block (the ``if``/``while`` test,
  the ``for`` iterable, the ``with`` context managers) plus the blocks
  of their bodies.
* **Three synthetic blocks** frame every function: ``entry``, ``exit``
  (all normal completions: falling off the end and every ``return``)
  and ``raise`` (exceptions escaping the function). A leak analysis
  reads its verdicts off the facts that reach ``exit`` and ``raise``.
* **Exception edges are explicit.** A statement *may raise* when it
  contains a call (not counting code inside nested ``def``/``lambda``
  /``class`` bodies, which does not execute here) or is a ``raise`` /
  ``assert``. Each may-raise block gets an ``exc`` edge to the innermost
  enclosing handler — or to the ``raise`` block. Plain subscript/
  attribute stores are deliberately *not* may-raise: treating every
  ``ctrl[i] = 0`` as a potential ``IndexError`` would drown the useful
  exception paths in noise.
* **``finally`` bodies are duplicated per continuation.** A single
  shared finally block would merge the normal, return and exception
  continuations and manufacture paths that do not exist (e.g. "raised,
  ran finally, then fell through normally" — exactly the false positive
  that would flag every ``try/finally: x.close()``). Instead the
  builder lazily materialises up to one copy of the finalbody per
  continuation kind (normal / return / exception / break / continue),
  each wired to its own target. Copies are built on demand, so a
  ``try/finally`` with no ``return`` inside pays for two copies, not
  five.
* **Handlers without a catch-all still propagate.** An ``except
  ValueError:`` handler receives the ``exc`` edge *and* the exception
  may continue outward; only a bare ``except:`` / ``except
  (Base)Exception`` stops outward propagation. (Treating ``Exception``
  as catch-all is technically unsound for ``KeyboardInterrupt`` but
  matches how cleanup handlers are actually written.)
* **Branch edges carry None-refinements.** ``if ring is not None:``
  tests produce edge annotations (``("none", "ring")`` on the false
  edge, ``("not-none", "ring")`` on the true edge; bare-name truthiness
  works too) that an analysis can use to kill facts that cannot hold on
  that edge — the standard guard idiom around conditionally-acquired
  resources.

The solver (:func:`solve`) is a classic monotone worklist over a
:class:`DataflowAnalysis`: forward or backward, may (union) or must
(intersection, via the :data:`TOP` sentinel), with an analysis-supplied
``transfer_exc`` so exception edges can see a statement's *pre* state
(an acquisition that raised never acquired) while release calls still
count on their own failure edges.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

__all__ = [
    "Block",
    "CFG",
    "DataflowAnalysis",
    "Edge",
    "TOP",
    "iter_functions",
    "may_raise",
    "solve",
]

#: Lattice top for must-analyses: "every fact holds" before any path
#: has been seen. ``DataflowAnalysis.join`` treats it as the identity.
TOP = object()

#: Exception-handler types that stop outward propagation.
_CATCH_ALL_NAMES = frozenset({"Exception", "BaseException"})


@dataclass(frozen=True)
class Block:
    """One CFG node: a statement, a header, or a synthetic frame node.

    ``role`` is one of ``entry`` / ``exit`` / ``raise`` (synthetic),
    ``stmt`` (a simple statement), ``test`` (an ``if``/``while``
    header), ``loop`` (a ``for`` header: iterable + target binding),
    ``with`` / ``with-exit`` (context-manager enter and normal leave),
    ``except`` (a handler entry: the exception-name binding) or
    ``join`` (an empty merge point).
    """

    index: int
    role: str
    stmt: Optional[ast.AST]

    @property
    def line(self) -> int:
        return getattr(self.stmt, "lineno", 0)


@dataclass(frozen=True)
class Edge:
    """A directed edge; ``kind`` is normal/true/false/exc.

    ``refine`` is an optional ``("none" | "not-none", varkey)``
    annotation derived from the branch condition; ``varkey`` is the
    dotted form of a name or ``self``-attribute chain.
    """

    src: int
    dst: int
    kind: str = "normal"
    refine: Optional[tuple[str, str]] = None


class CFG:
    """The control-flow graph of one function body."""

    ENTRY = 0
    EXIT = 1
    RAISE = 2

    def __init__(self) -> None:
        self.blocks: list[Block] = []
        self.edges: list[Edge] = []
        self.succ: dict[int, list[Edge]] = {}
        self.pred: dict[int, list[Edge]] = {}

    @classmethod
    def build(cls, func: ast.AST) -> "CFG":
        """Build the CFG of a ``FunctionDef``/``AsyncFunctionDef``."""
        return _Builder().build(func)

    def add_block(self, role: str, stmt: Optional[ast.AST]) -> int:
        index = len(self.blocks)
        self.blocks.append(Block(index=index, role=role, stmt=stmt))
        self.succ[index] = []
        self.pred[index] = []
        return index

    def add_edge(
        self,
        src: int,
        dst: int,
        kind: str = "normal",
        refine: Optional[tuple[str, str]] = None,
    ) -> None:
        edge = Edge(src=src, dst=dst, kind=kind, refine=refine)
        self.edges.append(edge)
        self.succ[src].append(edge)
        self.pred[dst].append(edge)


# ---------------------------------------------------------------------------
# may-raise
# ---------------------------------------------------------------------------

def _walk_executed(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` skipping code that does not execute *here*.

    Nested function/class bodies run later (or never); only their
    decorators, defaults, and base-class expressions execute at the
    statement itself.
    """
    stack: list[ast.AST] = [node]
    first = True
    while stack:
        n = stack.pop()
        yield n
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef)) and not (
            first and n is node
        ):
            stack.extend(n.decorator_list)
            stack.extend(d for d in n.args.defaults)
            stack.extend(d for d in n.args.kw_defaults if d is not None)
        elif isinstance(n, ast.Lambda):
            stack.extend(n.args.defaults)
            stack.extend(d for d in n.args.kw_defaults if d is not None)
        elif isinstance(n, ast.ClassDef):
            stack.extend(n.decorator_list)
            stack.extend(n.bases)
            stack.extend(k.value for k in n.keywords)
        else:
            stack.extend(ast.iter_child_nodes(n))
        first = False


def _contains_call(node: Optional[ast.AST]) -> bool:
    if node is None:
        return False
    return any(
        isinstance(n, (ast.Call, ast.Await, ast.Yield, ast.YieldFrom))
        for n in _walk_executed(node)
    )


def may_raise(stmt: ast.AST) -> bool:
    """Can executing this *simple* statement raise?

    Calls, ``raise`` and ``assert`` can; plain stores (including
    subscript/attribute stores) are deliberately considered safe — see
    the module docstring.
    """
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        # Only decorators/defaults/bases execute at the def site.
        parts: list[ast.AST] = list(stmt.decorator_list)
        if isinstance(stmt, ast.ClassDef):
            parts += list(stmt.bases) + [k.value for k in stmt.keywords]
        else:
            parts += [d for d in stmt.args.defaults]
            parts += [d for d in stmt.args.kw_defaults if d is not None]
        return any(_contains_call(p) for p in parts)
    return _contains_call(stmt)


# ---------------------------------------------------------------------------
# branch refinements
# ---------------------------------------------------------------------------

def _var_key(node: ast.AST) -> Optional[str]:
    """Dotted key of a Name or attribute chain (``self._shm``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return ".".join(parts)
    return None


def _refinements(
    test: ast.AST,
) -> tuple[Optional[tuple[str, str]], Optional[tuple[str, str]]]:
    """(true-edge, false-edge) refinements of a branch condition."""
    key = _var_key(test)
    if key is not None:
        return (("not-none", key), ("none", key))
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        true_r, false_r = _refinements(test.operand)
        return (false_r, true_r)
    if (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        key = _var_key(test.left)
        if key is not None:
            if isinstance(test.ops[0], ast.Is):
                return (("none", key), ("not-none", key))
            if isinstance(test.ops[0], ast.IsNot):
                return (("not-none", key), ("none", key))
    return (None, None)


def _always_true(test: ast.AST) -> bool:
    return isinstance(test, ast.Constant) and bool(test.value) is True


def _is_catch_all(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for t in types:
        name = getattr(t, "id", getattr(t, "attr", None))
        if name in _CATCH_ALL_NAMES:
            return True
    return False


# ---------------------------------------------------------------------------
# builder
# ---------------------------------------------------------------------------

#: A dangling edge waiting for its destination: (src, kind, refine).
_Pending = tuple[int, str, Optional[tuple[str, str]]]
#: A continuation: lazily yields the blocks control transfers to.
_Cont = Callable[[], list[int]]


@dataclass
class _Frame:
    """The continuations in scope while building a statement list."""

    exc: _Cont
    ret: _Cont
    brk: Optional[_Cont] = None
    cont: Optional[_Cont] = None


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()

    def build(self, func: ast.AST) -> CFG:
        cfg = self.cfg
        assert cfg.add_block("entry", None) == CFG.ENTRY
        assert cfg.add_block("exit", None) == CFG.EXIT
        assert cfg.add_block("raise", None) == CFG.RAISE
        frame = _Frame(exc=lambda: [CFG.RAISE], ret=lambda: [CFG.EXIT])
        out = self._stmts(
            list(func.body), [(CFG.ENTRY, "normal", None)], frame
        )
        self._seal(out, [CFG.EXIT])
        return cfg

    # -- plumbing -------------------------------------------------------
    def _seal(self, pending: list[_Pending], targets: list[int]) -> None:
        for src, kind, refine in pending:
            for dst in targets:
                self.cfg.add_edge(src, dst, kind, refine)

    def _exc_edges(self, block: int, frame: _Frame) -> None:
        for dst in frame.exc():
            self.cfg.add_edge(block, dst, "exc")

    def _stmts(
        self, body: list[ast.stmt], preds: list[_Pending], frame: _Frame
    ) -> list[_Pending]:
        for stmt in body:
            preds = self._stmt(stmt, preds, frame)
        return preds

    # -- statements -----------------------------------------------------
    def _stmt(
        self, stmt: ast.stmt, preds: list[_Pending], frame: _Frame
    ) -> list[_Pending]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, preds, frame)
        if isinstance(stmt, ast.While):
            return self._while(stmt, preds, frame)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, preds, frame)
        if isinstance(stmt, ast.Try) or (
            hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar)
        ):
            return self._try(stmt, preds, frame)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, preds, frame)
        if isinstance(stmt, ast.Return):
            block = self.cfg.add_block("stmt", stmt)
            self._seal(preds, [block])
            if _contains_call(stmt.value):
                self._exc_edges(block, frame)
            for dst in frame.ret():
                self.cfg.add_edge(block, dst, "normal")
            return []
        if isinstance(stmt, ast.Raise):
            block = self.cfg.add_block("stmt", stmt)
            self._seal(preds, [block])
            self._exc_edges(block, frame)
            return []
        if isinstance(stmt, ast.Break):
            block = self.cfg.add_block("stmt", stmt)
            self._seal(preds, [block])
            if frame.brk is not None:
                for dst in frame.brk():
                    self.cfg.add_edge(block, dst, "normal")
            return []
        if isinstance(stmt, ast.Continue):
            block = self.cfg.add_block("stmt", stmt)
            self._seal(preds, [block])
            if frame.cont is not None:
                for dst in frame.cont():
                    self.cfg.add_edge(block, dst, "normal")
            return []
        # Every other statement is a simple block.
        block = self.cfg.add_block("stmt", stmt)
        self._seal(preds, [block])
        if may_raise(stmt):
            self._exc_edges(block, frame)
        return [(block, "normal", None)]

    def _if(
        self, stmt: ast.If, preds: list[_Pending], frame: _Frame
    ) -> list[_Pending]:
        test = self.cfg.add_block("test", stmt)
        self._seal(preds, [test])
        if _contains_call(stmt.test):
            self._exc_edges(test, frame)
        true_r, false_r = _refinements(stmt.test)
        out = self._stmts(stmt.body, [(test, "true", true_r)], frame)
        if stmt.orelse:
            out += self._stmts(stmt.orelse, [(test, "false", false_r)], frame)
        else:
            out += [(test, "false", false_r)]
        return out

    def _while(
        self, stmt: ast.While, preds: list[_Pending], frame: _Frame
    ) -> list[_Pending]:
        test = self.cfg.add_block("test", stmt)
        after = self.cfg.add_block("join", stmt)
        self._seal(preds, [test])
        if _contains_call(stmt.test):
            self._exc_edges(test, frame)
        true_r, false_r = _refinements(stmt.test)
        loop_frame = _Frame(
            exc=frame.exc,
            ret=frame.ret,
            brk=lambda: [after],
            cont=lambda: [test],
        )
        body_out = self._stmts(stmt.body, [(test, "true", true_r)], loop_frame)
        self._seal(body_out, [test])
        if not _always_true(stmt.test):
            if stmt.orelse:
                else_out = self._stmts(
                    stmt.orelse, [(test, "false", false_r)], frame
                )
                self._seal(else_out, [after])
            else:
                self.cfg.add_edge(test, after, "false", false_r)
        return [(after, "normal", None)]

    def _for(
        self, stmt: ast.For, preds: list[_Pending], frame: _Frame
    ) -> list[_Pending]:
        head = self.cfg.add_block("loop", stmt)
        after = self.cfg.add_block("join", stmt)
        self._seal(preds, [head])
        if _contains_call(stmt.iter):
            self._exc_edges(head, frame)
        loop_frame = _Frame(
            exc=frame.exc,
            ret=frame.ret,
            brk=lambda: [after],
            cont=lambda: [head],
        )
        body_out = self._stmts(stmt.body, [(head, "true", None)], loop_frame)
        self._seal(body_out, [head])
        if stmt.orelse:
            else_out = self._stmts(stmt.orelse, [(head, "false", None)], frame)
            self._seal(else_out, [after])
        else:
            self.cfg.add_edge(head, after, "false")
        return [(after, "normal", None)]

    def _with(
        self, stmt: ast.With, preds: list[_Pending], frame: _Frame
    ) -> list[_Pending]:
        enter = self.cfg.add_block("with", stmt)
        self._seal(preds, [enter])
        if any(_contains_call(item.context_expr) for item in stmt.items):
            self._exc_edges(enter, frame)
        body_out = self._stmts(stmt.body, [(enter, "normal", None)], frame)
        leave = self.cfg.add_block("with-exit", stmt)
        self._seal(body_out, [leave])
        return [(leave, "normal", None)]

    def _try(
        self, stmt: ast.Try, preds: list[_Pending], frame: _Frame
    ) -> list[_Pending]:
        after = self.cfg.add_block("join", stmt)
        if stmt.finalbody:
            copies: dict[str, int] = {}

            def through_finally(key: str, cont: _Cont) -> _Cont:
                def thunk() -> list[int]:
                    if key not in copies:
                        fb = self.cfg.add_block("join", stmt)
                        copies[key] = fb
                        f_out = self._stmts(
                            list(stmt.finalbody), [(fb, "normal", None)], frame
                        )
                        self._seal(f_out, cont())
                    return [copies[key]]

                return thunk

            inner = _Frame(
                exc=through_finally("exc", frame.exc),
                ret=through_finally("ret", frame.ret),
                brk=(
                    through_finally("brk", frame.brk)
                    if frame.brk is not None
                    else None
                ),
                cont=(
                    through_finally("cont", frame.cont)
                    if frame.cont is not None
                    else None
                ),
            )
            normal_cont: _Cont = through_finally("normal", lambda: [after])
        else:
            inner = frame
            normal_cont = lambda: [after]  # noqa: E731

        handler_blocks: list[int] = []
        if stmt.handlers:
            handler_blocks = [
                self.cfg.add_block("except", h) for h in stmt.handlers
            ]
            catch_all = any(_is_catch_all(h) for h in stmt.handlers)

            def body_exc() -> list[int]:
                targets = list(handler_blocks)
                if not catch_all:
                    targets += inner.exc()
                return targets

            body_frame = _Frame(
                exc=body_exc, ret=inner.ret, brk=inner.brk, cont=inner.cont
            )
        else:
            body_frame = inner

        ends = self._stmts(list(stmt.body), preds, body_frame)
        if stmt.orelse:
            # The else block runs only after an exception-free body and
            # is *not* protected by the handlers.
            ends = self._stmts(stmt.orelse, ends, inner)
        for handler, hb in zip(stmt.handlers, handler_blocks):
            ends += self._stmts(
                list(handler.body), [(hb, "normal", None)], inner
            )
        self._seal(ends, normal_cont())
        return [(after, "normal", None)]


# ---------------------------------------------------------------------------
# solver
# ---------------------------------------------------------------------------

class DataflowAnalysis:
    """Base class for worklist analyses over a :class:`CFG`.

    Subclasses set ``direction`` ("forward"/"backward") and override
    ``transfer`` (and, for forward analyses that distinguish the
    pre-state visible on exception edges, ``transfer_exc``). ``join``
    defaults to set-union (a *may* analysis); a *must* analysis
    intersects and uses :data:`TOP` as the initial value.
    """

    direction = "forward"

    def boundary(self, cfg: CFG) -> object:
        """Fact at the boundary block (entry forward, exits backward)."""
        return frozenset()

    def initial(self, cfg: CFG) -> object:
        """Fact every other block starts from (TOP for must-analyses)."""
        return frozenset()

    def join(self, left: object, right: object) -> object:
        if left is TOP:
            return right
        if right is TOP:
            return left
        return left | right  # type: ignore[operator]

    def transfer(self, block: Block, fact: object) -> object:
        return fact

    def transfer_exc(self, block: Block, fact: object) -> object:
        """Fact carried by this block's exception edges (forward only).

        Defaults to ``transfer``; override to expose the pre-state
        (e.g. an acquisition that raised never acquired).
        """
        return self.transfer(block, fact)

    def refine(self, fact: object, edge: Edge) -> object:
        """Adjust a fact along one edge (branch refinements)."""
        return fact


def solve(cfg: CFG, analysis: DataflowAnalysis) -> dict[int, object]:
    """Run ``analysis`` to a fixed point; returns the per-block fact.

    Forward: the returned fact is the block's *input* (join over
    incoming edges); read leak verdicts off ``EXIT``/``RAISE``.
    Backward: the fact is the block's *output* (join over the facts
    flowing back from its successors).
    """
    forward = analysis.direction == "forward"
    facts: dict[int, object] = {
        b.index: analysis.initial(cfg) for b in cfg.blocks
    }
    if forward:
        facts[CFG.ENTRY] = analysis.boundary(cfg)
    else:
        facts[CFG.EXIT] = analysis.boundary(cfg)
        facts[CFG.RAISE] = analysis.boundary(cfg)
    work = deque(b.index for b in cfg.blocks)
    while work:
        index = work.popleft()
        block = cfg.blocks[index]
        base = facts[index]
        if base is TOP:
            # Nothing has reached this block yet (the boundary blocks
            # are seeded with boundary(), never TOP); propagating TOP
            # would poison must-analyses downstream, and transfer
            # functions need not understand the sentinel.
            continue
        out_normal = analysis.transfer(block, base)
        out_exc = (
            analysis.transfer_exc(block, base) if forward else out_normal
        )
        edges = cfg.succ[index] if forward else cfg.pred[index]
        for edge in edges:
            fact = out_exc if (forward and edge.kind == "exc") else out_normal
            fact = analysis.refine(fact, edge)
            dst = edge.dst if forward else edge.src
            merged = analysis.join(facts[dst], fact)
            if merged != facts[dst]:
                facts[dst] = merged
                work.append(dst)
    return facts


# ---------------------------------------------------------------------------
# function inventory (shared by the CFG-driven passes)
# ---------------------------------------------------------------------------

def iter_functions(
    tree: ast.AST,
) -> list[tuple[str, ast.AST, Optional[ast.ClassDef]]]:
    """Every function in a module: (qualname, node, enclosing class).

    Nested functions are yielded too (with the enclosing class of their
    *definition site* dropped — they are not methods).
    """
    out: list[tuple[str, ast.AST, Optional[ast.ClassDef]]] = []

    def walk(
        node: ast.AST, qual: str, cls: Optional[ast.ClassDef]
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = f"{qual}.{child.name}" if qual else child.name
                out.append((name, child, cls))
                walk(child, name, None)
            elif isinstance(child, ast.ClassDef):
                name = f"{qual}.{child.name}" if qual else child.name
                walk(child, name, child)
            else:
                walk(child, qual, cls)

    walk(tree, "", None)
    return out
