"""Experiment E-F16: aggregation-induced correlation (paper Appendix B).

* Fig. 16a — CDF of pairwise Spearman correlations among the metric
  value columns, grouped by metric family (packets / bytes /
  packet size). Expected shape: a substantial share of column pairs is
  strongly correlated (paper: ~20 % above 0.7-0.8).
* Fig. 16b — PCA explained-variance curve over the full feature matrix.
  Expected shape: a few dozen components explain ~0.8 of the variance;
  ~50 components explain nearly all of it.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.core.encoding.matrix import assemble
from repro.core.encoding.pca import explained_variance_curve
from repro.core.encoding.transforms import Imputer, Standardizer
from repro.core.encoding.woe import WoEEncoder
from repro.core.features import schema
from repro.experiments.common import ExperimentResult, check_scale
from repro.experiments.datasets import merged_corpus


def _spearman_cdf(X: np.ndarray) -> np.ndarray:
    """Upper-triangle absolute Spearman correlations, sorted."""
    corr, _ = stats.spearmanr(X)
    corr = np.atleast_2d(corr)
    iu = np.triu_indices_from(corr, k=1)
    values = np.abs(corr[iu])
    return np.sort(values[~np.isnan(values)])


def run(scale: str = "small") -> ExperimentResult:
    check_scale(scale)
    merged = merged_corpus(scale)
    result = ExperimentResult(experiment="fig16-correlation")

    imputer = Imputer()
    for metric in schema.METRICS:
        columns = [
            schema.value_column(c, metric, r)
            for c in schema.CATEGORICALS
            for r in range(schema.RANKS)
        ]
        X = np.stack([merged.metrics[c] for c in columns], axis=1)
        X = imputer.transform(X)
        sorted_corr = _spearman_cdf(X)
        cdf_y = np.arange(1, sorted_corr.size + 1) / sorted_corr.size
        result.series[f"fig16a/{metric}"] = (sorted_corr.tolist(), cdf_y.tolist())
        result.rows.append(
            {
                "analysis": f"spearman/{metric}",
                "share_above_0.7": float((sorted_corr > 0.7).mean()),
                "share_above_0.8": float((sorted_corr > 0.8).mean()),
            }
        )

    woe = WoEEncoder().fit(merged)
    matrix = assemble(merged, woe)
    X = Standardizer().fit_transform(imputer.transform(matrix.X))
    curve = explained_variance_curve(X, max_components=min(100, X.shape[1]))
    result.series["fig16b/explained-variance"] = (
        list(range(1, curve.size + 1)),
        curve.tolist(),
    )
    k80 = int(np.searchsorted(curve, 0.8) + 1)
    k99 = int(np.searchsorted(curve, 0.99) + 1)
    result.rows.append(
        {"analysis": "pca", "share_above_0.7": float("nan"), "share_above_0.8": float("nan"),
         "components_for_0.8": k80, "components_for_0.99": k99}
    )
    result.notes["components_for_0.8_variance"] = k80
    result.notes["components_for_0.99_variance"] = k99
    return result
