"""IXP substrate: members, vantage-point profiles, fabric, sampling."""

from repro.ixp.fabric import IXPFabric
from repro.ixp.member import MemberAS, MemberRole
from repro.ixp.profiles import (
    ALL_PROFILES,
    IXP_CE1,
    IXP_CE2,
    IXP_SE,
    IXP_US1,
    IXP_US2,
    IXPProfile,
    profile_by_name,
)
from repro.ixp.sampling import PacketSampler

__all__ = [
    "ALL_PROFILES",
    "IXP_CE1",
    "IXP_CE2",
    "IXP_SE",
    "IXP_US1",
    "IXP_US2",
    "IXPFabric",
    "IXPProfile",
    "MemberAS",
    "MemberRole",
    "PacketSampler",
    "profile_by_name",
]
