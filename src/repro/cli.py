"""Command-line interface.

``ixp-scrubber list`` shows the available experiments;
``ixp-scrubber run <id> [--scale small|paper]`` executes one (or
``all``) and prints its tables and headline notes.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import EXPERIMENTS, SCALES


def _cmd_list(_: argparse.Namespace) -> int:
    for name, module in EXPERIMENTS.items():
        doc = (module.__doc__ or "").strip().splitlines()[0]
        print(f"{name:10s} {doc}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    targets = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [t for t in targets if t not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; try 'ixp-scrubber list'", file=sys.stderr)
        return 2
    for target in targets:
        start = time.perf_counter()
        result = EXPERIMENTS[target].run(scale=args.scale)
        elapsed = time.perf_counter() - start
        print(result.summary())
        if args.plots and result.series:
            from repro.experiments.plots import render_series

            print(render_series(result.series))
        print(f"[{target} completed in {elapsed:.1f}s]\n")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ixp-scrubber",
        description="IXP Scrubber reproduction (SIGCOMM 2022) experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments").set_defaults(
        func=_cmd_list
    )
    run_parser = sub.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment id or 'all'")
    run_parser.add_argument(
        "--scale", choices=SCALES, default="small", help="corpus scale"
    )
    run_parser.add_argument(
        "--plots", action="store_true", help="render series as ASCII sparklines"
    )
    run_parser.set_defaults(func=_cmd_run)
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
