"""Tests for Weight of Evidence encoding."""

import math

import numpy as np
import pytest

from repro.core.encoding.woe import UNKNOWN_WOE, WoEEncoder, WoETable
from repro.core.features import schema
from repro.core.features.aggregation import aggregate
from repro.netflow.dataset import FlowDataset
from tests.conftest import make_flow


def build_data(n_attack=30, n_benign=30, attack_port=123, benign_port=443):
    """Aggregated data where attack records see ``attack_port`` and
    benign records see ``benign_port``."""
    records = []
    for i in range(n_attack):
        records.append(
            make_flow(time=i * 60, src_ip=1000 + i, dst_ip=1, src_port=attack_port, blackhole=True)
        )
    for i in range(n_benign):
        records.append(
            make_flow(time=i * 60, src_ip=2000 + i, dst_ip=2, src_port=benign_port, protocol=6)
        )
    return aggregate(FlowDataset.from_records(records))


class TestWoETable:
    def test_unknown_is_neutral(self):
        table = WoETable(domain="src_port", mapping={123: 2.0})
        assert table.encode_value(9999) == UNKNOWN_WOE

    def test_encode_vectorised(self):
        table = WoETable(domain="src_port", mapping={1: 1.5, 2: -0.5})
        values = table.encode(np.array([1, 2, 3, 1], dtype=np.int64))
        np.testing.assert_allclose(values, [1.5, -0.5, 0.0, 1.5])

    def test_high_evidence_values(self):
        table = WoETable(domain="src_ip", mapping={1: 2.0, 2: 0.5, 3: 1.01})
        assert table.high_evidence_values(1.0) == {1, 3}

    def test_override(self):
        table = WoETable(domain="src_port", mapping={})
        table.set_override(80, -5.0)
        assert table.encode_value(80) == -5.0


class TestWoEEncoder:
    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            WoEEncoder().table("src_port")

    def test_attack_port_positive_benign_negative(self):
        data = build_data()
        encoder = WoEEncoder(min_count=1).fit(data)
        table = encoder.table("src_port")
        assert table.encode_value(123) > 1.0
        assert table.encode_value(443) < -1.0

    def test_min_count_suppresses_rare_values(self):
        data = build_data()
        encoder = WoEEncoder(min_count=5).fit(data)
        # Each src_ip appears once -> below min_count -> neutral.
        assert encoder.table("src_ip").encode_value(1000) == UNKNOWN_WOE

    def test_min_count_keeps_frequent_values(self):
        data = build_data()
        encoder = WoEEncoder(min_count=5).fit(data)
        assert encoder.table("src_port").encode_value(123) > 0.0

    def test_exact_value_on_known_counts(self):
        """Hand-check the smoothed WoE for a clean split."""
        n = 30
        data = build_data(n_attack=n, n_benign=n)
        encoder = WoEEncoder(min_count=1).fit(data)
        # Port 123 occupies the rank-0 slot of every attack record for
        # each of the 3 metrics; 15 slots per record total but only one
        # distinct port -> it fills rank 0 for all 3 metrics = 3 slots
        # per record (other ranks are MISSING).
        pos_count = 3 * n
        denom_pos = n * schema.RANKS * len(schema.METRICS)
        denom_neg = n * schema.RANKS * len(schema.METRICS)
        expected = math.log(
            ((pos_count + 1.0) / (denom_pos + 1.0)) / ((0 + 1.0) / (denom_neg + 1.0))
        )
        assert encoder.table("src_port").encode_value(123) == pytest.approx(expected)

    def test_transform_shapes(self):
        data = build_data()
        encoder = WoEEncoder(min_count=1).fit(data)
        encoded = encoder.transform(data)
        assert set(encoded) == set(data.categorical)
        for name, values in encoded.items():
            assert values.shape == (len(data),)

    def test_encode_column_rejects_value_columns(self):
        data = build_data()
        encoder = WoEEncoder(min_count=1).fit(data)
        with pytest.raises(ValueError):
            encoder.encode_column("src_ip/bytes/0/value", np.array([1]))

    def test_invalid_min_count(self):
        with pytest.raises(ValueError):
            WoEEncoder(min_count=0)

    def test_single_class_data_fits(self):
        records = [
            make_flow(time=i * 60, dst_ip=1, blackhole=True) for i in range(5)
        ]
        data = aggregate(FlowDataset.from_records(records))
        encoder = WoEEncoder(min_count=1).fit(data)
        assert encoder.is_fitted


class TestIncrementalUpdate:
    def test_update_equals_fit_on_union(self):
        """fit(A) + update(B) must equal fit(A+B) with decay 1."""
        from repro.core.features.aggregation import AggregatedDataset

        a = build_data(n_attack=20, n_benign=20)
        b = build_data(n_attack=10, n_benign=10, attack_port=53, benign_port=80)
        both = AggregatedDataset.concat([a, b])

        incremental = WoEEncoder(min_count=1).fit(a).update(b)
        batch = WoEEncoder(min_count=1).fit(both)
        for domain in incremental.tables:
            assert incremental.tables[domain].mapping == pytest.approx(
                batch.tables[domain].mapping
            )

    def test_decay_forgets_old_evidence(self):
        """Heavy decay lets fresh counter-evidence flip a value's WoE."""
        old = build_data(n_attack=40, n_benign=40, attack_port=123, benign_port=443)
        # Port 123 is now benign (repurposed), 9999 attacks instead.
        fresh = build_data(n_attack=40, n_benign=40, attack_port=9999, benign_port=123)

        sticky = WoEEncoder(min_count=1).fit(old).update(fresh, decay=1.0)
        forgetful = WoEEncoder(min_count=1).fit(old).update(fresh, decay=0.05)
        woe_sticky = sticky.table("src_port").encode_value(123)
        woe_forgetful = forgetful.table("src_port").encode_value(123)
        assert woe_forgetful < woe_sticky
        assert woe_forgetful < 0.0  # fully flipped to benign evidence

    def test_decay_validation(self):
        data = build_data()
        encoder = WoEEncoder(min_count=1).fit(data)
        with pytest.raises(ValueError):
            encoder.update(data, decay=0.0)
        with pytest.raises(ValueError):
            encoder.update(data, decay=1.5)

    def test_update_marks_fitted(self):
        data = build_data()
        encoder = WoEEncoder(min_count=1)
        encoder.update(data)
        assert encoder.is_fitted
