"""E-F11: temporal model drift (Fig. 11a/11b).

Paper shape: one-shot models age (short training intervals degrade and
show outliers; longer ones hold up); daily retraining on a sliding
window beats one-shot training, and wider windows mainly remove
outliers.
"""

import numpy as np

from repro.experiments import fig11_temporal


def _row(result, site, regime, window):
    return next(
        r
        for r in result.rows
        if r["site"] == site and r["regime"] == regime and r["window_days"] == window
    )


def test_fig11_temporal(run_experiment):
    result = run_experiment(fig11_temporal)
    print()
    print(result.summary())

    # Aggregate regime comparison (individual cells are noise-dominated
    # at this scale): daily retraining holds up at least as well as
    # one-shot training.
    assert result.notes["sliding_beats_oneshot"]

    for site in ("IXP-US1", "IXP-CE1"):
        # (The paper's "longer one-shot windows reduce outliers" is a
        # data-volume effect that our statistically-rich simulated days
        # do not reproduce — see EXPERIMENTS.md, known deviation #6 —
        # so no per-window outlier assertion here.)

        # The recommended setting (sliding, widest window) performs at a
        # high level (paper: median 0.978-0.993, never below 0.95 —
        # scaled-down corpora carry more per-day variance).
        recommended = _row(result, site, "sliding", 7)
        assert recommended["median_fbeta"] > 0.9
        assert recommended["min_fbeta"] > 0.8
