"""Incremental lint cache: content-hash-keyed reuse of pass results.

The cache file (``.repro-lint-cache.json`` at the repo root) stores,
per module, the sha256 of the file's bytes plus everything a rerun
would recompute from that file alone: the module-scoped pass findings
and the parsed suppressions. Whole-project passes (shard safety, obs
names) are keyed on a single *project fingerprint* — the sorted
``(rel, sha)`` pairs of every module plus the metrics doc and the
analyzer fingerprint — because their output can change when *any* file
does.

Soundness rests on two invariants:

* module-scoped passes (``scope == "module"``) read nothing but the one
  module and the config, so ``same bytes + same analyzer`` implies the
  same findings;
* the *analyzer fingerprint* hashes every source file of the analysis
  package **and** a canonical rendering of the config, so editing a
  pass, a rule message, or the configured contracts invalidates
  everything at once.

A fully warm run therefore never calls ``ast.parse``: it hashes file
bytes, compares, and deserializes. Corrupt, missing, or
version-mismatched cache files degrade silently to a cold run — the
cache is an accelerator, never a source of truth.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields as dataclass_fields
from pathlib import Path
from typing import Any, Mapping, Optional

from repro.analysis.config import LintConfig
from repro.analysis.findings import Finding
from repro.analysis.suppressions import Suppression

__all__ = [
    "CACHE_VERSION",
    "analyzer_fingerprint",
    "file_sha",
    "load_cache",
    "module_record",
    "project_fingerprint",
    "restore_findings",
    "restore_suppressions",
    "save_cache",
]

#: Bump on any change to the cache file shape; a mismatched version is
#: treated exactly like a missing cache.
CACHE_VERSION = 1

_ANALYSIS_DIR = Path(__file__).resolve().parent


def file_sha(path: Path) -> str:
    """sha256 hexdigest of a file's raw bytes (not its decoded text)."""
    return hashlib.sha256(path.read_bytes()).hexdigest()


def _canonical(value: Any) -> Any:
    """A JSON-stable rendering of one config value.

    ``frozenset`` repr order is salted per process, so every unordered
    container must be sorted before it participates in a fingerprint.
    """
    if isinstance(value, (frozenset, set)):
        return sorted(str(v) for v in value)
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, Path):
        return str(value)
    return value


def analyzer_fingerprint(config: LintConfig) -> str:
    """Hash of the analyzer's own code plus the effective config.

    Any edit to a file under ``repro/analysis/`` (a new rule, a changed
    message, a fixed pass) or to the configured contracts produces a
    new fingerprint and therefore a cold run.
    """
    digest = hashlib.sha256()
    for path in sorted(_ANALYSIS_DIR.rglob("*.py")):
        digest.update(path.relative_to(_ANALYSIS_DIR).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    cfg = {
        f.name: _canonical(getattr(config, f.name))
        for f in dataclass_fields(config)
        if f.name not in ("cache_path", "baseline_path")
    }
    digest.update(json.dumps(cfg, sort_keys=True).encode("utf-8"))
    return digest.hexdigest()


def project_fingerprint(
    analyzer: str,
    module_shas: Mapping[str, str],
    metrics_doc: Optional[Path],
) -> str:
    """Key for the whole-project passes: every input they can read."""
    digest = hashlib.sha256(analyzer.encode())
    for rel, sha in sorted(module_shas.items()):
        digest.update(f"{rel}\0{sha}\0".encode())
    if metrics_doc is not None and metrics_doc.exists():
        digest.update(metrics_doc.read_bytes())
    else:
        digest.update(b"<no-metrics-doc>")
    return digest.hexdigest()


# -- (de)serialization ----------------------------------------------------

def _finding_dict(finding: Finding) -> dict:
    # ``key`` must round-trip (as_dict drops it for fingerprints);
    # reconstruction has to be byte-identical to a cold run.
    return {
        "rule": finding.rule,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
        "symbol": finding.symbol,
        "key": finding.key,
    }


def restore_findings(records: list[dict]) -> list[Finding]:
    return [
        Finding(
            rule=r["rule"],
            path=r["path"],
            line=r["line"],
            col=r["col"],
            message=r["message"],
            symbol=r.get("symbol", ""),
            key=r.get("key", ""),
        )
        for r in records
    ]


def _suppression_dict(sup: Suppression) -> dict:
    return {
        "line": sup.line,
        "target_line": sup.target_line,
        "rules": list(sup.rules),
        "reason": sup.reason,
    }


def restore_suppressions(rel: str, records: list[dict]) -> list[Suppression]:
    return [
        Suppression(
            path=rel,
            line=r["line"],
            target_line=r["target_line"],
            rules=tuple(r["rules"]),
            reason=r["reason"],
        )
        for r in records
    ]


def module_record(
    name: str,
    sha: str,
    findings: list[Finding],
    suppressions: list[Suppression],
    imports: list[str],
) -> dict:
    """The cache entry for one module."""
    return {
        "name": name,
        "sha256": sha,
        "findings": [_finding_dict(f) for f in findings],
        "suppressions": [_suppression_dict(s) for s in suppressions],
        "imports": sorted(set(imports)),
    }


# -- cache file I/O -------------------------------------------------------

def load_cache(path: Path, analyzer: str) -> Optional[dict]:
    """The parsed cache, or None when absent/corrupt/stale.

    ``analyzer`` mismatches invalidate the whole file: a changed pass
    may emit different findings for identical module bytes.
    """
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict):
        return None
    if data.get("version") != CACHE_VERSION:
        return None
    if data.get("analyzer") != analyzer:
        return None
    modules = data.get("modules")
    project = data.get("project")
    if not isinstance(modules, dict) or not isinstance(project, dict):
        return None
    return data


def save_cache(
    path: Path,
    analyzer: str,
    modules: Mapping[str, dict],
    fingerprint: str,
    project_findings: list[Finding],
) -> None:
    """Persist one run's results; failures are non-fatal by design."""
    payload = {
        "version": CACHE_VERSION,
        "analyzer": analyzer,
        "modules": dict(modules),
        "project": {
            "fingerprint": fingerprint,
            "findings": [_finding_dict(f) for f in project_findings],
        },
    }
    try:
        path.write_text(
            json.dumps(payload, sort_keys=True), encoding="utf-8"
        )
    except OSError:
        pass
