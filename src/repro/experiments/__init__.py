"""Experiment harness: one module per paper table/figure (see DESIGN.md)."""

from repro.experiments import (
    ablations,
    fig3_balancing,
    fig4_validation,
    fig10_features,
    fig11_temporal,
    fig12_geographic,
    fig13_new_vectors,
    fig14_explainability,
    fig15_sensitivity,
    fig16_correlation,
    operator_study,
    rule_mining,
    security,
    table2_datasets,
    table3_models,
    table4_hyperparams,
)
from repro.experiments.common import ExperimentResult, SCALES, cache_dir

#: Registry: experiment id -> module with a ``run(scale=...)`` callable.
EXPERIMENTS = {
    "fig3": fig3_balancing,
    "table2": table2_datasets,
    "fig4": fig4_validation,
    "rules": rule_mining,
    "operators": operator_study,
    "table3": table3_models,
    "fig10": fig10_features,
    "fig11": fig11_temporal,
    "fig12": fig12_geographic,
    "fig13": fig13_new_vectors,
    "fig14": fig14_explainability,
    "fig15": fig15_sensitivity,
    "fig16": fig16_correlation,
    "table4": table4_hyperparams,
    # Extensions beyond the paper's figures: Appendix E attack/defense
    # simulation and ablations of this reproduction's design choices.
    "security": security,
    "ablations": ablations,
}

__all__ = ["EXPERIMENTS", "ExperimentResult", "SCALES", "cache_dir"]
