"""Public-API audit: every exported symbol actually exists and imports.

Walks every module in the ``repro`` package, imports it, and checks that
each name in its ``__all__`` resolves to a real attribute. This catches
the classic drift where a symbol is renamed or removed but its
re-export (or ``__all__`` entry) lingers — ``from repro import X`` then
breaks only for the one user who needed X.
"""

import importlib
import pkgutil

import pytest

import repro


def _iter_module_names():
    yield "repro"
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


MODULE_NAMES = sorted(_iter_module_names())


def test_package_walk_found_the_tree():
    # Guard against the walker silently seeing an empty/partial tree.
    assert len(MODULE_NAMES) > 50
    for expected in (
        "repro.core.scrubber",
        "repro.core.streaming",
        "repro.obs",
        "repro.obs.registry",
        "repro.experiments.table3_models",
    ):
        assert expected in MODULE_NAMES


@pytest.mark.parametrize("module_name", MODULE_NAMES)
def test_module_imports_and_all_matches(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    if exported is None:
        return
    assert len(set(exported)) == len(exported), (
        f"{module_name}.__all__ contains duplicates"
    )
    missing = [name for name in exported if not hasattr(module, name)]
    assert not missing, (
        f"{module_name}.__all__ names undefined symbols: {missing}"
    )


def test_star_import_surface():
    """``from repro import *`` binds every advertised symbol."""
    namespace = {}
    exec("from repro import *", namespace)
    missing = [name for name in repro.__all__ if name not in namespace]
    assert not missing


def test_obs_symbols_reachable_from_package_root():
    assert repro.obs.MetricRegistry is not None
    assert "obs" in repro.__all__
    assert "StreamingStats" in repro.__all__
    assert repro.StreamingStats is not None
